"""Health watchdog tests: each rule in isolation, sequence-space
separation, layout equivalence of ``health.*`` streams over a real
pressured fleet, and the flight recorder's postmortem bundles."""

import json
from collections import defaultdict
from dataclasses import replace

import pytest

from repro import obs
from repro.cluster import ClusterConfig, ClusterSimulation
from repro.cluster.config import ChurnConfig, MigrationConfig
from repro.exec.actors import ActorPool
from repro.metrics.report import format_health_summary
from repro.obs import Clock, Telemetry
from repro.obs.health import (
    FlightRecorder,
    HealthMonitor,
    MigrationStormRule,
    PlacementFailureBurstRule,
    PromotionChurnRule,
    SwapThrashRule,
    WatermarkOscillationRule,
    summarize_health,
)
from repro.pressure import PressureConfig


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.clear_context()
    obs.set_trace_out_dir(None)
    yield
    obs.disable()
    obs.clear_context()
    obs.set_trace_out_dir(None)


def _telemetry(rules=None):
    telemetry = Telemetry(clock=Clock(wall=lambda: 0.0))
    telemetry.monitor = HealthMonitor(rules)
    return telemetry


def _health(telemetry):
    return [e for e in telemetry.events() if e.kind.startswith("health.")]


# ----------------------------------------------------------------------
# Rules in isolation
# ----------------------------------------------------------------------


def test_watermark_oscillation_fires_on_flapping():
    telemetry = _telemetry((WatermarkOscillationRule,))
    levels = ["low", "ok", "low", "ok", "low", "ok"]
    for epoch, level in enumerate(levels):
        telemetry.emit_at("pressure.watermark", 0, epoch,
                          level=level, free_pages=10)
    findings = _health(telemetry)
    assert findings
    assert findings[0].kind == "health.watermark_oscillation"
    assert dict(findings[0].fields)["flips"] >= 3


def test_watermark_steady_pressure_is_quiet():
    telemetry = _telemetry((WatermarkOscillationRule,))
    for epoch in range(8):
        telemetry.emit_at("pressure.watermark", 0, epoch,
                          level="low", free_pages=10)
    assert not _health(telemetry)


def test_migration_storm_counts_window():
    telemetry = _telemetry((MigrationStormRule,))
    for seq in range(6):
        telemetry.emit_at("fleet.migrate", None, seq // 3,
                          ordinal=seq, source=0, destination=1)
    findings = _health(telemetry)
    assert len(findings) == 1
    assert findings[0].kind == "health.migration_storm"
    assert dict(findings[0].fields)["migrations"] == 6


def test_migration_trickle_is_quiet():
    telemetry = _telemetry((MigrationStormRule,))
    for epoch in range(10):
        telemetry.emit_at("fleet.migrate", None, epoch, ordinal=epoch,
                          source=0, destination=1)
    # One migration per epoch never reaches 6 within a 4-epoch window.
    assert not _health(telemetry)


def test_promotion_churn_needs_both_directions():
    telemetry = _telemetry((PromotionChurnRule,))
    telemetry.emit_at("promote.host", 1, 0, promoted=10)
    assert not _health(telemetry)  # promotions alone are healthy
    telemetry.emit_at("pressure.demote", 1, 1, aligned=10)
    findings = _health(telemetry)
    assert len(findings) == 1
    fields = dict(findings[0].fields)
    assert fields["promoted"] == 10 and fields["demoted"] == 10


def test_swap_thrash_requires_in_and_out():
    telemetry = _telemetry((SwapThrashRule,))
    telemetry.emit_at("swap.out", 0, 0, pages=500, demoted_huge=0,
                      demoted_aligned=0)
    assert not _health(telemetry)
    telemetry.emit_at("swap.in", 0, 1, pages=400)
    findings = _health(telemetry)
    assert len(findings) == 1
    fields = dict(findings[0].fields)
    assert fields["out_pages"] == 500 and fields["in_pages"] == 400


def test_placement_failure_burst():
    telemetry = _telemetry((PlacementFailureBurstRule,))
    for seq in range(3):
        telemetry.emit_at("fleet.place_fail", None, 2, ordinal=seq,
                          needed=1000)
    findings = _health(telemetry)
    assert len(findings) == 1
    assert dict(findings[0].fields)["failures"] == 3


# ----------------------------------------------------------------------
# Monitor mechanics
# ----------------------------------------------------------------------


def test_health_events_use_their_own_sequence_space():
    # Health emission must not consume the underlying streams' per-host
    # seq counters: host events keep consecutive seqs around a finding.
    telemetry = _telemetry((PlacementFailureBurstRule,))
    for seq in range(4):
        telemetry.emit_at("fleet.place_fail", None, 0, ordinal=seq,
                          needed=10)
    regular = [e for e in telemetry.events()
               if e.kind == "fleet.place_fail"]
    assert [e.seq for e in regular] == [1, 2, 3, 4]
    findings = _health(telemetry)
    assert findings and findings[0].seq == 1


def test_monitor_state_is_per_host():
    telemetry = _telemetry((SwapThrashRule,))
    # Split across two hosts, neither crosses the threshold alone.
    telemetry.emit_at("swap.out", 0, 0, pages=300)
    telemetry.emit_at("swap.in", 1, 0, pages=300)
    assert not _health(telemetry)


def test_monitor_counts_findings():
    telemetry = _telemetry((PlacementFailureBurstRule,))
    for seq in range(3):
        telemetry.emit_at("fleet.place_fail", None, 0, ordinal=seq,
                          needed=10)
    assert telemetry.counters["health.placement_failures"] == 1
    summary = summarize_health(telemetry.events())
    assert summary["health.placement_failures"]["count"] == 1
    assert "placement_failures: 1" in format_health_summary(
        telemetry.events()
    )


def test_monitor_survives_snapshot_merge_roundtrip():
    # Worker events arriving via merge() drive the controller monitor
    # exactly as local emissions would.
    worker = Telemetry(clock=Clock(wall=lambda: 0.0))
    for seq in range(3):
        worker.emit_at("fleet.place_fail", None, 0, ordinal=seq, needed=10)
    controller = _telemetry((PlacementFailureBurstRule,))
    controller.merge(worker.snapshot())
    findings = _health(controller)
    assert len(findings) == 1
    # The finding sits right after its trigger in the merged stream.
    kinds = [e.kind for e in controller.events()]
    assert kinds == ["fleet.place_fail"] * 3 + ["health.placement_failures"]


# ----------------------------------------------------------------------
# Layout equivalence over a real pressured fleet
# ----------------------------------------------------------------------

#: Overcommitted enough that swap traffic (and with it at least one
#: watchdog) engages within a few epochs.
PRESSURED = ClusterConfig(
    hosts=2,
    host_mib=128,
    epochs=5,
    seed=7,
    system="Gemini",
    overcommit_ratio=2.5,
    placement_headroom=1.0,
    churn=ChurnConfig(
        initial_vms=8,
        arrivals_per_epoch=0.5,
        departure_rate=0.03,
        max_vms=14,
        guest_mib_choices=(48, 64),
        workload_pool=("Shore", "SP.D", "Sphinx", "Moses"),
    ),
    pressure=PressureConfig(enabled=True),
    migration=MigrationConfig(check_invariants=True),
    adaptive_parallel=False,
)


def _run_traced(config, workers):
    obs.enable(Telemetry(sample=1.0, clock=Clock(wall=lambda: 0.0)))
    sim = ClusterSimulation(config)
    sim.run(workers=workers)
    events = obs.get().events()
    obs.disable()
    obs.clear_context()
    forked = len(sim.ipc_bytes_epochs) == config.epochs and workers > 1
    return events, forked


def _health_by_host(events):
    streams = defaultdict(list)
    for event in events:
        if event.kind.startswith("health."):
            streams[event.host].append(event.identity())
    return dict(streams)


def test_health_streams_identical_across_layouts(monkeypatch):
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    serial_events, _ = _run_traced(PRESSURED, workers=1)
    # The pressured fleet must actually trip a watchdog, or this test
    # pins nothing.
    serial_health = _health_by_host(serial_events)
    assert serial_health
    parallel_events, forked = _run_traced(PRESSURED, workers=2)
    reference_events, _ = _run_traced(
        replace(PRESSURED, fused_epochs=False, view_deltas=False), workers=1
    )
    assert _health_by_host(reference_events) == serial_health
    if not forked:  # pragma: no cover
        pytest.skip("sandbox cannot fork")
    assert _health_by_host(parallel_events) == serial_health


def test_monitor_detached_after_run():
    obs.enable(Telemetry(sample=1.0, clock=Clock(wall=lambda: 0.0)))
    ClusterSimulation(replace(PRESSURED, epochs=2)).run(workers=1)
    assert obs.get().monitor is None


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


def test_flight_recorder_dumps_bundle(tmp_path):
    telemetry = _telemetry((PlacementFailureBurstRule,))
    recorder = FlightRecorder(telemetry, tmp_path, last_n=2)
    telemetry.monitor.on_breach = lambda finding: recorder.breach(
        finding, config={"hosts": 2}
    )
    with telemetry.span("fleet.epoch"):
        for seq in range(4):
            telemetry.emit_at("fleet.place_fail", None, 0, ordinal=seq,
                              needed=10)
    assert len(recorder.bundles) == 1  # deduplicated per health kind
    bundle = recorder.bundles[0]
    assert bundle.name.startswith("postmortem-00-health-placement")
    lines = (bundle / "events.jsonl").read_text().splitlines()
    assert len(lines) == 2  # last-N honoured
    spans = json.loads((bundle / "open_spans.json").read_text())
    assert spans["stack"] == ["fleet.epoch"]
    report = json.loads((bundle / "report.json").read_text())
    assert report["stats"]["events_emitted"] > 0
    assert json.loads((bundle / "config.json").read_text()) == {"hosts": 2}


def test_flight_recorder_limits_and_dedupes(tmp_path):
    telemetry = Telemetry(clock=Clock(wall=lambda: 0.0))
    recorder = FlightRecorder(telemetry, tmp_path, limit=2)
    error = RuntimeError("boom")
    assert recorder.dump("exception", error=error) is not None
    assert recorder.dump("exception", error=error) is None  # same object
    assert recorder.dump("other") is not None
    assert recorder.dump("overflow") is None  # limit reached


def test_actor_pool_on_failure_hook():
    pool = ActorPool(workers=2)
    pool.scatter([0, 1, 2, 3])
    if pool.is_local:  # pragma: no cover
        pytest.skip("sandbox cannot fork")
    seen = []
    pool.on_failure = seen.append
    pool.submit([(0, _raise_marker, ())])
    with pytest.raises(ValueError, match="marker"):
        pool.drain()
    assert len(seen) == 1 and isinstance(seen[0], ValueError)
    pool.close()


def _raise_marker(state):
    raise ValueError("marker")


def test_worker_exception_dumps_postmortem(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    obs.enable(Telemetry(sample=1.0, clock=Clock(wall=lambda: 0.0)))
    obs.set_trace_out_dir(str(tmp_path))
    config = replace(PRESSURED, epochs=10)
    sim = ClusterSimulation(config)
    original = sim._epoch_fused

    def sabotage(pool, epoch):
        if epoch == 2:
            raise RuntimeError("epoch sabotage")
        return original(pool, epoch)

    sim._epoch_fused = sabotage
    with pytest.raises(RuntimeError, match="epoch sabotage"):
        sim.run(workers=1)
    obs.set_trace_out_dir(None)
    bundles = sorted(tmp_path.glob("postmortem-*"))
    assert bundles
    report = json.loads((bundles[0] / "report.json").read_text())
    assert report["reason"] == "exception"
    assert "epoch sabotage" in report["error"]
