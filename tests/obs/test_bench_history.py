"""Bench-history tracker tests: record flattening, JSONL round-trip,
and the noise-aware regression gate."""

import json

from repro.metrics.report import format_bench_compare
from repro.obs.bench import (
    append_history,
    compare_history,
    flatten_metrics,
    history_record,
    load_history,
    metric_direction,
)

REPORT = {
    "fleet": {
        "hosts": 8,
        "serial_seconds": 2.0,
        "parallel_seconds": 1.0,
        "speedup_parallel_vs_serial": 2.0,
        "parallel_mode": "pool",  # non-numeric: dropped
    },
    "telemetry": {"disabled_call_ns": 100.0, "enabled": True},
}


def test_flatten_metrics_dotted_numeric_leaves():
    flat = flatten_metrics(REPORT)
    assert flat["fleet.serial_seconds"] == 2.0
    assert flat["telemetry.disabled_call_ns"] == 100.0
    assert "fleet.parallel_mode" not in flat
    assert "telemetry.enabled" not in flat  # bools are not metrics


def test_metric_direction():
    assert metric_direction("fleet.serial_seconds") == "lower"
    assert metric_direction("telemetry.disabled_call_ns") == "lower"
    assert metric_direction("fleet.speedup_parallel_vs_serial") == "higher"
    assert metric_direction("fleet.ipc_reduction_factor") == "higher"
    assert metric_direction("fleet.hosts") == "info"


def test_append_and_load_history_roundtrip(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    record = append_history(REPORT, path, timestamp="2026-08-08", rev="abc")
    assert record["ts"] == "2026-08-08"
    append_history(REPORT, path)
    loaded = load_history(path)
    assert len(loaded) == 2
    assert loaded[0]["metrics"]["fleet.serial_seconds"] == 2.0
    # A truncated trailing line (interrupted CI write) is tolerated.
    with open(path, "a") as stream:
        stream.write('{"metrics": {"x"')
    assert len(load_history(path)) == 2
    assert load_history(tmp_path / "missing.jsonl") == []


def _history(runs):
    return [history_record(report) for report in runs]


def test_compare_flags_timing_regression():
    history = _history([REPORT] * 3)
    slow = json.loads(json.dumps(REPORT))
    slow["fleet"]["serial_seconds"] = 3.0  # +50% vs median 2.0
    comparison = compare_history(history, slow, threshold=0.25)
    assert not comparison.ok
    names = [drift.name for drift in comparison.regressions]
    assert names == ["fleet.serial_seconds"]
    assert comparison.regressions[0].drift == 0.5


def test_compare_flags_speedup_loss():
    history = _history([REPORT] * 3)
    worse = json.loads(json.dumps(REPORT))
    worse["fleet"]["speedup_parallel_vs_serial"] = 1.2  # -40%
    comparison = compare_history(history, worse, threshold=0.25)
    assert [d.name for d in comparison.regressions] == [
        "fleet.speedup_parallel_vs_serial"
    ]


def test_compare_tolerates_noise_below_threshold():
    history = _history([REPORT] * 3)
    noisy = json.loads(json.dumps(REPORT))
    noisy["fleet"]["serial_seconds"] = 2.3  # +15% < 25%
    comparison = compare_history(history, noisy, threshold=0.25)
    assert comparison.ok
    assert comparison.checked > 0


def test_compare_uses_median_baseline():
    # One outlier run must not move the baseline: median of
    # (2.0, 2.0, 20.0) is 2.0, so a fresh 2.1 is within threshold.
    outlier = json.loads(json.dumps(REPORT))
    outlier["fleet"]["serial_seconds"] = 20.0
    history = _history([REPORT, REPORT, outlier])
    fresh = json.loads(json.dumps(REPORT))
    fresh["fleet"]["serial_seconds"] = 2.1
    assert compare_history(history, fresh, threshold=0.25).ok


def test_compare_improvements_and_new_metrics():
    history = _history([REPORT] * 2)
    fresh = json.loads(json.dumps(REPORT))
    fresh["fleet"]["serial_seconds"] = 1.0  # -50%: an improvement
    fresh["new_section"] = {"fresh_seconds": 9.9}  # no baseline: skipped
    comparison = compare_history(history, fresh, threshold=0.25)
    assert comparison.ok
    assert [d.name for d in comparison.improvements] == [
        "fleet.serial_seconds"
    ]
    text = format_bench_compare(comparison, 0.25)
    assert "no regressions" in text
    assert "improved fleet.serial_seconds" in text


def test_format_bench_compare_lists_regressions():
    history = _history([REPORT] * 3)
    slow = json.loads(json.dumps(REPORT))
    slow["fleet"]["serial_seconds"] = 4.0
    comparison = compare_history(history, slow, threshold=0.25)
    text = format_bench_compare(comparison, 0.25)
    assert "REGRESSION fleet.serial_seconds" in text
    assert "+100.0%" in text
