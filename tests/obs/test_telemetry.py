"""Unit tests for the telemetry registry: spans and self-time, the
deterministic event ring, snapshots/merging, and the obs facade."""

import pickle

import pytest

from repro import obs
from repro.obs import (
    Clock,
    Event,
    EventRing,
    ManualClock,
    Telemetry,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Each test starts and ends with telemetry disabled and no context."""
    obs.disable()
    obs.clear_context()
    yield
    obs.disable()
    obs.clear_context()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


def test_span_self_time_excludes_children():
    # ManualClock ticks once per now() call: parent enter=0, child
    # enter=1, child exit=2, parent exit=3 -> child total 1s, parent
    # total 3s of which 1s is the child's, so parent self is 2s.
    telemetry = Telemetry(clock=ManualClock(step=1.0))
    with telemetry.span("parent"):
        with telemetry.span("child"):
            pass
    stats = telemetry.span_stats()
    assert stats["child"] == {"count": 1, "total_s": 1.0, "self_s": 1.0}
    assert stats["parent"]["count"] == 1
    assert stats["parent"]["total_s"] == 3.0
    assert stats["parent"]["self_s"] == 2.0


def test_span_trace_records_nesting_depth():
    telemetry = Telemetry(clock=ManualClock(step=1.0))
    obs.set_context(host=4)
    with telemetry.span("outer"):
        with telemetry.span("inner"):
            pass
    trace = telemetry.span_trace()
    # Inner closes first; entries are (name, host, start, dur, depth).
    assert [(entry[0], entry[1], entry[4]) for entry in trace] == [
        ("inner", 4, 1),
        ("outer", 4, 0),
    ]


def test_span_exits_on_exception():
    telemetry = Telemetry(clock=ManualClock(step=1.0))
    with pytest.raises(RuntimeError):
        with telemetry.span("doomed"):
            raise RuntimeError("boom")
    assert telemetry.span_stats()["doomed"]["count"] == 1
    assert not telemetry._span_stack


def test_span_trace_is_capacity_bounded():
    telemetry = Telemetry(clock=ManualClock(), span_capacity=3)
    for _ in range(10):
        with telemetry.span("tick"):
            pass
    assert len(telemetry.span_trace()) == 3
    assert telemetry.span_stats()["tick"]["count"] == 10


# ----------------------------------------------------------------------
# Events: sequencing, sampling, capacity
# ----------------------------------------------------------------------


def test_per_host_sequences_are_independent():
    telemetry = Telemetry(clock=Clock(wall=lambda: 0.0))
    telemetry.emit_at("a", 0, 1)
    telemetry.emit_at("a", 1, 1)
    telemetry.emit_at("b", 0, 1)
    telemetry.emit_at("a", None, 1)
    seqs = [(e.host, e.seq) for e in telemetry.events()]
    assert seqs == [(0, 1), (1, 1), (0, 2), (None, 1)]


def test_event_identity_ignores_wall_time():
    a = Event(kind="k", host=1, epoch=2, seq=3, wall=0.5, fields=(("x", 1),))
    b = Event(kind="k", host=1, epoch=2, seq=3, wall=9.9, fields=(("x", 1),))
    assert a != b
    assert a.identity() == b.identity()


def test_sampling_keeps_the_same_subset_per_stream():
    # sample=0.5 -> stride 2: every other event per (kind, host) stream
    # is kept, but sequence numbers advance for all of them, so the kept
    # subset is identifiable no matter how streams interleave.
    telemetry = Telemetry(sample=0.5, clock=Clock(wall=lambda: 0.0))
    for _ in range(6):
        telemetry.emit_at("tick", 0, 0)
        telemetry.emit_at("tick", 1, 0)
    kept = [(e.host, e.seq) for e in telemetry.events()]
    assert kept == [(0, 1), (1, 1), (0, 3), (1, 3), (0, 5), (1, 5)]
    assert telemetry.ring.emitted == 12
    assert telemetry.ring.sampled == 6


def test_ring_drops_oldest_at_capacity():
    telemetry = Telemetry(capacity=3, clock=Clock(wall=lambda: 0.0))
    for index in range(5):
        telemetry.emit_at("tick", 0, index)
    assert [e.epoch for e in telemetry.events()] == [2, 3, 4]
    assert telemetry.ring.dropped == 2
    assert telemetry.ring.sampled == 5


def test_ring_rejects_bad_parameters():
    with pytest.raises(ValueError):
        EventRing(capacity=0)
    with pytest.raises(ValueError):
        EventRing(sample=0.0)
    with pytest.raises(ValueError):
        EventRing(sample=1.5)


# ----------------------------------------------------------------------
# Snapshots and merging (the cross-process path)
# ----------------------------------------------------------------------


def test_snapshot_reset_preserves_sequences_and_stride():
    telemetry = Telemetry(sample=0.5, clock=Clock(wall=lambda: 0.0))
    for _ in range(3):
        telemetry.emit_at("tick", 0, 0)
    first = telemetry.snapshot(reset=True)
    assert len(telemetry.ring) == 0
    assert telemetry.ring.emitted == 0  # volume counters are per-interval
    for _ in range(3):
        telemetry.emit_at("tick", 0, 1)
    second = telemetry.snapshot(reset=True)
    # Sequences continue across the reset (4, 5, 6) and the stride
    # counter does too: kept seqs are 1, 3 then 5.
    assert [e.seq for e in first.events] == [1, 3]
    assert [e.seq for e in second.events] == [5]


def test_merge_folds_metrics_spans_and_events():
    controller = Telemetry(clock=ManualClock(step=1.0))
    controller.count("epochs")
    controller.observe("latency", 5.0)
    controller.emit_at("ctl", None, 0)

    worker = Telemetry(clock=ManualClock(step=1.0))
    worker.count("epochs", 2.0)
    worker.observe("latency", 1.0)
    worker.observe("latency", 9.0)
    with worker.span("host.step"):
        pass
    worker.emit_at("wrk", 3, 0)

    controller.merge(worker.snapshot())
    assert controller.counters["epochs"] == 3.0
    assert controller.histogram("latency") == (3, 15.0, 1.0, 9.0)
    assert controller.span_stats()["host.step"]["count"] == 1
    assert {e.kind for e in controller.events()} == {"ctl", "wrk"}
    assert controller.ring.emitted == 2
    assert controller.ring.sampled == 2


def test_repeated_snapshot_merge_counts_each_event_once():
    # The spool drain runs every few epochs: volume counters must be
    # per-interval on the worker so the controller's totals are exact.
    controller = Telemetry(clock=Clock(wall=lambda: 0.0))
    worker = Telemetry(clock=Clock(wall=lambda: 0.0))
    for round_index in range(3):
        worker.emit_at("tick", 0, round_index)
        controller.merge(worker.snapshot(reset=True))
    assert controller.ring.emitted == 3
    assert controller.ring.sampled == 3
    assert [e.seq for e in controller.events()] == [1, 2, 3]


def test_snapshot_pickles():
    telemetry = Telemetry(clock=ManualClock())
    telemetry.count("x")
    with telemetry.span("s"):
        pass
    telemetry.emit_at("k", 0, 0, value=3)
    snapshot = telemetry.snapshot()
    clone = pickle.loads(pickle.dumps(snapshot))
    assert clone.counters == {"x": 1.0}
    assert clone.events == snapshot.events


# ----------------------------------------------------------------------
# Context tracking
# ----------------------------------------------------------------------


def test_context_partial_updates():
    obs.set_context(host=2, epoch=5)
    assert obs.current_context() == (2, 5)
    obs.set_context(epoch=6)  # host untouched
    assert obs.current_context() == (2, 6)
    obs.set_context(host=None)
    assert obs.current_context() == (None, 6)
    obs.clear_context()
    assert obs.current_context() == (None, None)


def test_context_tracked_even_when_disabled():
    # Worker exception notes read the context with telemetry off.
    assert not obs.enabled()
    obs.set_context(host=7, epoch=3)
    assert obs.current_context() == (7, 3)


# ----------------------------------------------------------------------
# The module facade
# ----------------------------------------------------------------------


def test_disabled_facade_is_inert():
    assert obs.get() is None
    with obs.span("ignored"):
        obs.emit("ignored", value=1)
        obs.count("ignored")
        obs.gauge("ignored", 1.0)
        obs.observe("ignored", 1.0)
    assert obs.get() is None
    assert obs.snapshot_blob() is None
    obs.merge_blob(None)  # tolerated


def test_enable_emit_and_reset_keep_shape():
    telemetry = obs.enable(capacity=8, sample=0.5)
    obs.set_context(host=1, epoch=2)
    obs.emit("tick", value=1)
    assert len(telemetry.events()) == 1
    fresh = obs.reset()
    assert fresh is not telemetry
    assert fresh.ring.capacity == 8
    assert fresh.ring.stride == 2
    assert not fresh.events()


def test_snapshot_blob_roundtrip_through_facade():
    obs.enable(clock=Clock(wall=lambda: 0.0))
    obs.emit_at("worker.tick", 2, 0, value=7)
    blob = obs.snapshot_blob()
    assert isinstance(blob, bytes)
    assert not obs.get().events()  # reset on snapshot
    obs.merge_blob(blob)
    events = obs.get().events()
    assert [(e.kind, e.host) for e in events] == [("worker.tick", 2)]


def test_configure_from_env_reads_knobs():
    env = {
        "REPRO_TRACE_OUT": "somewhere",
        "REPRO_TRACE_EVENTS": "128",
        "REPRO_TRACE_SAMPLE": "0.25",
    }
    telemetry = obs.configure_from_env(env)
    try:
        assert telemetry is not None
        assert telemetry.ring.capacity == 128
        assert telemetry.ring.stride == 4
        assert obs.trace_out_dir() == "somewhere"
    finally:
        obs.set_trace_out_dir(None)


def test_configure_from_env_defaults_to_off():
    assert obs.configure_from_env({}) is None
    assert not obs.enabled()


# ----------------------------------------------------------------------
# Quantile reservoirs and dropped-span accounting
# ----------------------------------------------------------------------


def test_quantiles_exact_below_reservoir_cap():
    telemetry = Telemetry(clock=ManualClock())
    for value in range(1, 101):  # 1..100
        telemetry.observe("latency", float(value))
    quantiles = telemetry.quantiles("latency")
    assert quantiles[0.5] == 50.0
    assert quantiles[0.95] == 95.0
    assert quantiles[0.99] == 99.0
    assert telemetry.quantiles("missing") is None


def test_reservoir_is_bounded_and_representative():
    telemetry = Telemetry(clock=ManualClock())
    for value in range(10_000):
        telemetry.observe("latency", float(value))
    stat = telemetry._histograms["latency"]
    assert len(stat[4]) <= Telemetry.RESERVOIR_CAP
    assert stat[5] > 1  # stride grew through decimation
    # Approximate quantiles stay within a few percent of truth.
    quantiles = telemetry.quantiles("latency")
    assert abs(quantiles[0.5] - 5_000) < 500
    assert abs(quantiles[0.99] - 9_900) < 500
    summary = telemetry.histogram_summary()["latency"]
    assert summary["count"] == 10_000
    assert summary["min"] == 0.0 and summary["max"] == 9_999.0
    assert summary["p50"] == quantiles[0.5]


def test_merge_folds_quantile_reservoirs():
    controller = Telemetry(clock=ManualClock())
    worker = Telemetry(clock=ManualClock())
    for value in range(1, 51):
        controller.observe("latency", float(value))
    for value in range(51, 101):
        worker.observe("latency", float(value))
    controller.merge(worker.snapshot())
    assert controller.histogram("latency") == (100, 5050.0, 1.0, 100.0)
    quantiles = controller.quantiles("latency")
    assert quantiles[0.5] == 50.0
    assert quantiles[0.99] == 99.0


def test_dropped_spans_are_counted_not_silent():
    telemetry = Telemetry(clock=ManualClock(), span_capacity=3)
    for _ in range(10):
        with telemetry.span("tick"):
            pass
    assert telemetry.spans_dropped == 7
    assert telemetry.stats()["spans_dropped"] == 7
    snapshot = telemetry.snapshot(reset=True)
    assert snapshot.span_dropped == 7
    assert telemetry.spans_dropped == 0  # per-interval, like the ring


def test_merge_folds_dropped_spans_and_overflow():
    controller = Telemetry(clock=ManualClock(), span_capacity=4)
    worker = Telemetry(clock=ManualClock(), span_capacity=3)
    for _ in range(5):  # worker drops 2 locally
        with worker.span("tick"):
            pass
    for _ in range(3):  # leaves one free slot in the controller trace
        with controller.span("ctl"):
            pass
    controller.merge(worker.snapshot())
    # Controller kept 3 own + 1 merged; 2 merged spans overflowed here
    # on top of the 2 the worker already dropped.
    assert len(controller.span_trace()) == 4
    assert controller.spans_dropped == 4
    assert controller.stats()["spans_dropped"] == 4
