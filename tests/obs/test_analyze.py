"""Unit tests for trace analysis: span-tree reconstruction, critical
paths, and differential run analysis (diff_runs)."""

import pytest

from repro import obs
from repro.metrics.report import format_critical_path, format_run_diff
from repro.obs import Clock, ManualClock, Telemetry
from repro.obs.analyze import (
    RunData,
    build_span_trees,
    critical_paths,
    diff_runs,
    host_range_text,
)
from repro.obs.export import export_run


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.clear_context()
    yield
    obs.disable()
    obs.clear_context()


# ----------------------------------------------------------------------
# Span forest reconstruction
# ----------------------------------------------------------------------


def test_build_span_trees_reattaches_children():
    telemetry = Telemetry(clock=ManualClock(step=1.0))
    with telemetry.span("epoch"):
        with telemetry.span("work"):
            with telemetry.span("inner"):
                pass
        with telemetry.span("daemons"):
            pass
    roots = build_span_trees(telemetry.span_trace())
    assert [root.name for root in roots] == ["epoch"]
    epoch = roots[0]
    assert [child.name for child in epoch.children] == ["work", "daemons"]
    work = epoch.children[0]
    assert [child.name for child in work.children] == ["inner"]
    # Self time is the span's duration minus its direct children.
    assert epoch.self_s == pytest.approx(
        epoch.duration - work.duration - epoch.children[1].duration
    )


def test_build_span_trees_promotes_orphans():
    # A depth-1 span whose parent never closed (truncation) becomes a
    # root rather than disappearing.
    trace = [("orphan", 0, 0.0, 1.0, 1)]
    roots = build_span_trees(trace)
    assert [root.name for root in roots] == ["orphan"]


def test_build_span_trees_separates_consecutive_epochs():
    telemetry = Telemetry(clock=ManualClock(step=1.0))
    for _ in range(3):
        with telemetry.span("epoch"):
            with telemetry.span("work"):
                pass
    roots = build_span_trees(telemetry.span_trace())
    assert len(roots) == 3
    assert all(len(root.children) == 1 for root in roots)


# ----------------------------------------------------------------------
# Critical paths
# ----------------------------------------------------------------------


def _traced_epochs():
    """Three sim.epoch trees where `classify` dominates two of them."""
    telemetry = Telemetry(clock=ManualClock(step=1.0))
    for epoch in range(3):
        with telemetry.span("sim.epoch"):
            with telemetry.span("sim.workloads"):
                pass  # 1 tick
            with telemetry.span("sim.classify"):
                if epoch < 2:
                    telemetry.clock.now()
                    telemetry.clock.now()
                    telemetry.clock.now()  # burn time: classify dominates
    return telemetry


def test_critical_path_follows_dominant_child():
    telemetry = _traced_epochs()
    report = critical_paths(telemetry, roots=("sim.epoch",))
    assert report.epochs == 3
    assert report.paths[0].path[0] == "sim.epoch"
    # The classify-dominated walk accounts for the most time.
    assert report.paths[0].path[-1] == "sim.classify"
    assert report.paths[0].count == 2
    assert report.total_s == pytest.approx(
        sum(entry[3] for entry in telemetry.span_trace() if entry[0] == "sim.epoch")
    )
    shares = sum(path.share for path in report.paths)
    assert shares == pytest.approx(1.0)
    # Attribution covers every span name in the matched trees.
    assert set(report.attribution) == {
        "sim.epoch", "sim.workloads", "sim.classify"
    }


def test_format_critical_path_renders_shares():
    report = critical_paths(_traced_epochs(), roots=("sim.epoch",))
    text = format_critical_path(report)
    assert "critical paths over 3 sim.epoch spans" in text
    assert "sim.epoch > sim.classify" in text
    assert "where the time went" in text


def test_critical_path_empty_trace():
    report = critical_paths([])
    assert report.epochs == 0
    assert format_critical_path(report) == "no root spans matched"


# ----------------------------------------------------------------------
# diff_runs
# ----------------------------------------------------------------------


def _sample_run(seed: int = 0, extra_promotes: int = 0):
    telemetry = Telemetry(clock=Clock(wall=lambda: 0.0))
    for host in range(3):
        telemetry.emit_at("host.epoch", host, 0, fmfi=0.5 + seed)
        telemetry.emit_at("booking.book", host, 0, region=host)
    for _ in range(extra_promotes):
        telemetry.emit_at("promote.host", 1, 0, promoted=4)
    telemetry.count("pressure.epochs", 2 + seed)
    return telemetry


def test_diff_runs_identical_runs_match():
    diff = diff_runs(_sample_run(), _sample_run())
    assert diff.deterministic_match
    assert not diff.counter_deltas
    assert not diff.divergence
    assert "IDENTICAL" in format_run_diff(diff)


def test_diff_runs_reports_attributed_divergence():
    diff = diff_runs(_sample_run(0), _sample_run(1, extra_promotes=3))
    assert not diff.deterministic_match
    names = [name for name, _, _ in diff.counter_deltas]
    assert "pressure.epochs" in names
    # Host 1 gained promote.host events; its stream diverges.
    assert 1 in diff.divergence
    kinds = {delta.kind for delta in diff.kind_deltas}
    assert "promote.host" in kinds
    text = format_run_diff(diff)
    assert "DIVERGED" in text
    assert "pressure.epochs" in text


def test_diff_runs_span_deltas_attributed():
    slow = Telemetry(clock=ManualClock(step=1.0))
    with slow.span("gemini.host"):
        pass
    fast = Telemetry(clock=ManualClock(step=0.25))
    with fast.span("gemini.host"):
        pass
    for _ in range(4):
        slow.emit_at("promote.host", 3, 0, promoted=2)
    fast.emit_at("promote.host", 3, 0, promoted=2)
    diff = diff_runs(fast, slow, threshold=0.1)
    assert diff.span_deltas and diff.span_deltas[0].name == "gemini.host"
    assert diff.attributions
    assert "gemini.host self" in diff.attributions[0]
    assert "promote.host" in diff.attributions[0]
    assert "host 3" in diff.attributions[0]


def test_diff_runs_over_export_dirs(tmp_path):
    export_run(_sample_run(), tmp_path / "a")
    export_run(_sample_run(), tmp_path / "b")
    diff = diff_runs(tmp_path / "a", tmp_path / "b")
    assert diff.deterministic_match
    export_run(_sample_run(1), tmp_path / "c")
    diff = diff_runs(tmp_path / "a", tmp_path / "c")
    assert not diff.deterministic_match
    assert any(
        name == "pressure.epochs" for name, _, _ in diff.counter_deltas
    )


def test_rundata_from_export_dir_reads_stats(tmp_path):
    telemetry = _sample_run()
    telemetry.observe("latency", 5.0)
    export_run(telemetry, tmp_path / "run")
    data = RunData.from_export_dir(tmp_path / "run")
    assert data.counters["pressure.epochs"] == 2
    assert data.histograms["latency"]["p50"] == 5.0
    assert data.stats["events_emitted"] == len(data.events)


def test_host_range_text_groups_runs():
    assert host_range_text([3, 4, 5]) == "hosts 3-5"
    assert host_range_text([2]) == "host 2"
    assert host_range_text([None, 0, 1, 4]) == "controller, hosts 0-1, host 4"
    assert host_range_text([]) == "no hosts"
