"""Exporter tests: JSONL round-trips, Chrome trace schema, the
per-epoch time series and the report renderers built on them."""

import json

import pytest

from repro import obs
from repro.obs import Clock, Event, ManualClock, Telemetry
from repro.obs.export import (
    chrome_trace,
    events_to_jsonl,
    export_run,
    read_jsonl,
    timeseries_rows,
)
from repro.metrics.report import format_top_spans, telemetry_series_to_csv


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.clear_context()
    yield
    obs.disable()
    obs.clear_context()


def _sample_events() -> list[Event]:
    return [
        Event("booking.book", 0, 0, 1, 0.25, (("region", 5), ("timeout", 1.5))),
        Event("promote.guest", 0, 0, 2, 0.5, (("promoted", 4), ("retried", 0))),
        Event("fleet.place", None, 0, 1, 0.75, (("on", 1), ("ordinal", 0))),
        Event("runs", 1, 1, 1, 1.0, (("spans", ((0, 4), (8, 2))),)),
    ]


def test_jsonl_round_trip_preserves_events():
    events = _sample_events()
    assert read_jsonl(events_to_jsonl(events)) == events


def test_jsonl_revives_tuple_fields():
    text = events_to_jsonl(_sample_events())
    revived = read_jsonl(text)[-1]
    assert dict(revived.fields)["spans"] == ((0, 4), (8, 2))


def test_chrome_trace_schema():
    telemetry = Telemetry(clock=ManualClock(step=0.001))
    obs.set_context(host=None)
    with telemetry.span("fleet.epoch"):
        with telemetry.span("fleet.consolidate"):
            pass
    telemetry.emit_at("fleet.place", None, 0, on=1)
    telemetry.emit_at("host.epoch", 2, 0, fmfi=0.5)
    trace = chrome_trace(telemetry)
    entries = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    phases = {entry["ph"] for entry in entries}
    assert phases == {"X", "i", "M"}
    for entry in entries:
        assert isinstance(entry["pid"], int)
        if entry["ph"] == "X":
            assert entry["cat"] == "span"
            assert entry["dur"] >= 0.0
            assert "ts" in entry
        elif entry["ph"] == "i":
            assert entry["s"] == "t"
            assert "ts" in entry
        else:
            assert entry["name"] == "process_name"
    # Controller is pid 0, host 2 is pid 3, both named via metadata.
    names = {
        entry["pid"]: entry["args"]["name"]
        for entry in entries
        if entry["ph"] == "M"
    }
    assert names[0] == "controller"
    assert names[3] == "host2"


def test_chrome_trace_is_valid_json():
    telemetry = Telemetry(clock=ManualClock())
    with telemetry.span("s"):
        pass
    encoded = json.dumps(chrome_trace(telemetry))
    assert json.loads(encoded)["traceEvents"]


def test_timeseries_rows_fold_decision_counts():
    events = [
        Event("booking.book", 0, 0, 1, 0.0, (("region", 1),)),
        Event("booking.book", 0, 0, 2, 0.0, (("region", 2),)),
        Event("booking.expire", 0, 0, 3, 0.0, (("count", 4),)),
        Event("promote.guest", 0, 0, 4, 0.0, (("promoted", 5),)),
        Event("promote.host", 0, 0, 5, 0.0, (("promoted", 2),)),
        Event("host.epoch", 0, 0, 6, 0.0, (("fmfi", 0.25),)),
        Event("fleet.migrate", None, 0, 1, 0.0, (("ordinal", 3),)),
        Event("host.epoch", 0, 1, 7, 0.0, (("fmfi", 0.5),)),
        Event("placement.select", None, None, 2, 0.0, ()),  # not a series kind
    ]
    rows = timeseries_rows(events)
    assert [(row["epoch"], row["host"]) for row in rows] == [
        (0, None), (0, 0), (1, 0),
    ]
    first_host_row = rows[1]
    assert first_host_row["bookings"] == 2
    assert first_host_row["expirations"] == 4
    assert first_host_row["guest_promotions"] == 5
    assert first_host_row["host_promotions"] == 2
    assert first_host_row["fmfi"] == 0.25
    assert rows[0]["migrations"] == 1
    assert rows[2]["fmfi"] == 0.5


def test_timeseries_csv_unions_columns():
    rows = timeseries_rows(
        [
            Event("host.epoch", 0, 0, 1, 0.0, (("fmfi", 0.1),)),
            Event("sim.epoch", None, 0, 1, 0.0, (("workload", "Redis"),)),
        ]
    )
    text = telemetry_series_to_csv(rows)
    lines = text.strip().splitlines()
    header = lines[0].split(",")
    assert header[:7] == [
        "epoch", "host", "bookings", "expirations",
        "guest_promotions", "host_promotions", "migrations",
    ]
    assert "fmfi" in header and "workload" in header
    assert len(lines) == 3


def test_format_top_spans_ranks_by_self_time():
    spans = {
        "fleet.epoch": {"count": 4, "total_s": 1.0, "self_s": 0.1},
        "host.step": {"count": 12, "total_s": 0.9, "self_s": 0.6},
        "host.daemons": {"count": 12, "total_s": 0.3, "self_s": 0.3},
    }
    table = format_top_spans(spans, n=2)
    lines = table.splitlines()
    assert len(lines) == 4  # header + separator + 2 rows
    assert lines[2].startswith("| host.step ")
    assert lines[3].startswith("| host.daemons ")
    assert format_top_spans({}) == "no spans recorded"


def test_export_run_writes_all_artifacts(tmp_path):
    telemetry = Telemetry(clock=ManualClock(step=0.001))
    with telemetry.span("fleet.epoch"):
        pass
    telemetry.emit_at("host.epoch", 0, 0, fmfi=0.5)
    paths = export_run(telemetry, tmp_path / "out")
    assert sorted(paths) == ["events", "series", "spans", "stats", "trace"]
    for path in paths.values():
        assert path.exists() and path.stat().st_size > 0
    assert read_jsonl(paths["events"].read_text())[0].kind == "host.epoch"
    assert json.loads(paths["trace"].read_text())["traceEvents"]
    assert "fleet.epoch" in json.loads(paths["spans"].read_text())
    assert paths["series"].read_text().startswith("epoch,host,")


def test_export_run_uses_deterministic_clock_wall():
    # A pinned clock keeps wall readings stable so exported artifacts
    # are byte-identical across runs (useful for golden-file diffs).
    telemetry = Telemetry(clock=Clock(wall=lambda: 0.0))
    telemetry.emit_at("host.epoch", 0, 0)
    first = events_to_jsonl(telemetry.events())
    telemetry2 = Telemetry(clock=Clock(wall=lambda: 0.0))
    telemetry2.emit_at("host.epoch", 0, 0)
    assert first == events_to_jsonl(telemetry2.events())


def test_jsonl_round_trip_pressure_and_swap_kinds():
    # The memory-pressure subsystem's event kinds survive export intact.
    events = [
        Event("pressure.watermark", 0, 2, 1, 0.0,
              (("free_pages", 120), ("level", "low"))),
        Event("swap.out", 0, 2, 2, 0.0,
              (("demoted_aligned", 1), ("demoted_huge", 2), ("pages", 640))),
        Event("swap.in", 0, 3, 3, 0.0, (("pages", 64),)),
        Event("pressure.demote", 0, 3, 4, 0.0, (("aligned", 5),)),
    ]
    assert read_jsonl(events_to_jsonl(events)) == events


def test_timeseries_rows_fold_pressure_and_swap():
    events = [
        Event("swap.out", 0, 0, 1, 0.0, (("pages", 500),)),
        Event("swap.out", 0, 0, 2, 0.0, (("pages", 100),)),
        Event("swap.in", 0, 0, 3, 0.0, (("pages", 40),)),
        Event("pressure.demote", 0, 0, 4, 0.0, (("aligned", 3),)),
        Event("pressure.watermark", 0, 0, 5, 0.0,
              (("free_pages", 80), ("level", "low"))),
        Event("pressure.watermark", 0, 1, 6, 0.0,
              (("free_pages", 900), ("level", "ok"))),
    ]
    rows = timeseries_rows(events)
    assert len(rows) == 2
    first, second = rows
    assert first["swap_out_pages"] == 600
    assert first["swap_in_pages"] == 40
    assert first["aligned_demotions"] == 3
    assert first["watermark"] == "low"
    assert first["free_pages"] == 80
    assert second["watermark"] == "ok"
    assert second["free_pages"] == 900
    csv_text = telemetry_series_to_csv(rows)
    header = csv_text.splitlines()[0].split(",")
    for column in ("swap_out_pages", "swap_in_pages",
                   "aligned_demotions", "watermark", "free_pages"):
        assert column in header


def test_chrome_trace_renders_pressure_instants():
    telemetry = Telemetry(clock=ManualClock(step=0.001))
    telemetry.emit_at("pressure.watermark", 1, 0, level="low", free_pages=8)
    telemetry.emit_at("swap.out", 1, 0, pages=320, demoted_huge=1,
                      demoted_aligned=0)
    entries = chrome_trace(telemetry)["traceEvents"]
    instants = [entry for entry in entries if entry["ph"] == "i"]
    assert {entry["name"] for entry in instants} == {
        "pressure.watermark", "swap.out",
    }
    for entry in instants:
        assert entry["s"] == "t" and entry["pid"] == 2
    by_name = {entry["name"]: entry for entry in instants}
    assert by_name["swap.out"]["args"]["pages"] == 320


def test_export_run_stats_artifact(tmp_path):
    telemetry = Telemetry(clock=ManualClock(step=0.001), span_capacity=2)
    for _ in range(4):
        with telemetry.span("tick"):
            pass
    telemetry.count("epochs", 3)
    telemetry.observe("latency", 2.0)
    telemetry.observe("latency", 8.0)
    paths = export_run(telemetry, tmp_path / "out")
    stats = json.loads(paths["stats"].read_text())
    assert stats["stats"]["spans_dropped"] == 2
    assert stats["counters"]["epochs"] == 3
    hist = stats["histograms"]["latency"]
    assert hist["count"] == 2 and hist["p50"] == 2.0 and hist["p99"] == 8.0
