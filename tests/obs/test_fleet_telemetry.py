"""Cross-process telemetry: the merged controller-side event stream must
be identical however the fleet's hosts are spread across processes, and
collecting it must never change simulation results."""

from collections import defaultdict
from dataclasses import replace

import pytest

from repro import obs
from repro.cluster import ClusterConfig, ClusterSimulation
from repro.cluster.config import MigrationConfig
from repro.obs import Clock, Telemetry

SMALL = ClusterConfig(
    hosts=3,
    host_mib=512,
    epochs=6,
    seed=7,
    migration=MigrationConfig(check_invariants=True),
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.clear_context()
    yield
    obs.disable()
    obs.clear_context()


def _run(config, workers, sample=1.0):
    """One traced fleet run; returns (result, events, forked)."""
    obs.enable(Telemetry(sample=sample, clock=Clock(wall=lambda: 0.0)))
    sim = ClusterSimulation(config)
    result = sim.run(workers=workers)
    events = obs.get().events()
    obs.disable()
    obs.clear_context()
    forked = len(sim.ipc_bytes_epochs) == config.epochs and workers > 1
    return result, events, forked


def _by_host(events):
    streams = defaultdict(list)
    for event in events:
        streams[event.host].append(event.identity())
    return dict(streams)


def test_serial_and_parallel_event_streams_match(monkeypatch):
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    config = replace(SMALL, adaptive_parallel=False)
    serial_result, serial_events, _ = _run(config, workers=1)
    parallel_result, parallel_events, forked = _run(config, workers=2)
    if not forked:  # pragma: no cover
        pytest.skip("sandbox cannot fork")
    assert parallel_result == serial_result
    # The merged controller-side log covers every host plus the
    # controller itself, and each per-host stream is event-identical.
    assert set(_by_host(serial_events)) == {None, 0, 1, 2}
    assert _by_host(parallel_events) == _by_host(serial_events)


def test_fused_and_reference_streams_match(monkeypatch):
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    fused_result, fused_events, _ = _run(
        replace(SMALL, adaptive_parallel=False), workers=1
    )
    ref_result, ref_events, _ = _run(
        replace(SMALL, adaptive_parallel=False, fused_epochs=False), workers=1
    )
    assert ref_result == fused_result
    assert _by_host(ref_events) == _by_host(fused_events)


def test_reference_protocol_parallel_stream_matches(monkeypatch):
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    config = replace(SMALL, adaptive_parallel=False, fused_epochs=False)
    _, serial_events, _ = _run(config, workers=1)
    _, parallel_events, forked = _run(config, workers=2)
    if not forked:  # pragma: no cover
        pytest.skip("sandbox cannot fork")
    assert _by_host(parallel_events) == _by_host(serial_events)


def test_sampled_streams_match_across_layouts(monkeypatch):
    # Stride sampling is per (kind, host) stream and survives spool
    # resets, so even a sampled log is layout-independent.
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    config = replace(SMALL, adaptive_parallel=False, spool_epochs=2)
    _, serial_events, _ = _run(config, workers=1, sample=0.5)
    _, parallel_events, forked = _run(config, workers=2, sample=0.5)
    if not forked:  # pragma: no cover
        pytest.skip("sandbox cannot fork")
    assert _by_host(parallel_events) == _by_host(serial_events)
    full_count = len(_run(config, workers=1)[1])
    assert 0 < len(serial_events) < full_count


def test_telemetry_never_changes_results():
    plain = ClusterSimulation(SMALL).run()
    traced, events, _ = _run(SMALL, workers=1)
    assert traced == plain
    assert events, "a traced run must produce events"


def test_adaptive_retraction_keeps_worker_events(monkeypatch):
    # Adaptive runs may retract the pool after epoch 0: the sweep before
    # retraction must preserve whatever the workers emitted, keeping the
    # stream identical to the serial one.
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    config = replace(SMALL, adaptive_parallel=True)
    _, serial_events, _ = _run(config, workers=1)
    _, adaptive_events, _ = _run(config, workers=2)
    assert _by_host(adaptive_events) == _by_host(serial_events)


def test_span_stats_cover_both_sides(monkeypatch):
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    obs.enable(Telemetry(clock=Clock()))
    sim = ClusterSimulation(replace(SMALL, adaptive_parallel=False))
    sim.run(workers=2)
    stats = obs.get().span_stats()
    obs.disable()
    obs.clear_context()
    if len(sim.ipc_bytes_epochs) != SMALL.epochs:  # pragma: no cover
        pytest.skip("sandbox cannot fork")
    # Controller-side and (merged) worker-side spans both present.
    assert stats["fleet.epoch"]["count"] == SMALL.epochs
    assert stats["host.step"]["count"] == SMALL.hosts * SMALL.epochs
    assert stats["host.step"]["total_s"] >= stats["host.daemons"]["total_s"]
