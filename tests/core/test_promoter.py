"""Unit tests for the misaligned huge page promoters (MHPP)."""

from repro.core.promoter import GuestPromoter, HostPromoter
from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.policies.base import HugePagePolicy


def make_vm(guest_regions=16):
    platform = Platform(64 * PAGES_PER_HUGE, HugePagePolicy())
    vm = platform.create_vm(guest_regions * PAGES_PER_HUGE, HugePagePolicy())
    return platform, vm


def fill_region_scattered(platform, vm, vma, target_gpregion):
    """Fault a full VMA region whose GPAs land inside target_gpregion but
    shifted, so in-place promotion is impossible without compaction."""
    # Occupy the first frame of the target region so faults start offset.
    vm.gpa_space.alloc_at(target_gpregion * PAGES_PER_HUGE, 0)
    for vpn in range(vma.start, vma.start + PAGES_PER_HUGE):
        platform.touch(vm, vpn)
    vm.gpa_space.free(target_gpregion * PAGES_PER_HUGE, 0)


def test_guest_promoter_aligns_type2_region():
    platform, vm = make_vm()
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    target = 0  # guest faults land in gpa region 0 (shifted by one frame)
    fill_region_scattered(platform, vm, vma, target)
    # Host maps the gpa region huge (a mis-aligned host huge page): first
    # demolish its EPT base mappings to emulate host-side promotion.
    ept = platform.ept(vm.id)
    for gpn in list(dict(ept.base_mappings())):
        if gpn // PAGES_PER_HUGE in (0, 1):
            hpn = ept.unmap_base(gpn)
            platform.memory.free(hpn, 0)
    hp = platform.host.alloc_huge_region()
    ept.map_huge(target, hp)

    promoter = GuestPromoter(vm, budget=4)
    promoter.enqueue([target])
    promoted = promoter.run(ept.is_huge, fmfi=0.0)
    assert promoted == 1
    table = vm.table()
    vregion = vma.start // PAGES_PER_HUGE
    assert table.is_huge(vregion)
    assert table.huge_target(vregion) == target
    assert promoter.promoted_total == 1


def test_guest_promoter_skips_demoted_host_page():
    platform, vm = make_vm()
    promoter = GuestPromoter(vm)
    promoter.enqueue([3])
    assert promoter.run(lambda r: False, fmfi=0.0) == 0
    assert promoter.backlog == 0  # dropped, not retried


def test_guest_promoter_requeues_infeasible_region():
    platform, vm = make_vm()
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    platform.touch(vm, vma.start)  # one page in gpa region 0
    # Huge host page over region 0, but fragmentation gate blocks prealloc.
    ept = platform.ept(vm.id)
    gpn = vm.translate(vma.start)
    hpn = ept.unmap_base(gpn)
    platform.memory.free(hpn, 0)
    hp = platform.host.alloc_huge_region()
    ept.map_huge(0, hp)
    promoter = GuestPromoter(vm, budget=4, prealloc_threshold=256)
    promoter.enqueue([0])
    assert promoter.run(ept.is_huge, fmfi=0.0) == 0
    assert promoter.backlog == 1  # kept for retry


def test_guest_promoter_preallocates_small_tail():
    platform, vm = make_vm()
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    # Touch most of the region; frames 0.. allocated sequentially from gpa 0.
    touched = PAGES_PER_HUGE - 20
    for vpn in range(vma.start, vma.start + touched):
        platform.touch(vm, vpn)
    ept = platform.ept(vm.id)
    for gpn in list(dict(ept.base_mappings())):
        hpn = ept.unmap_base(gpn)
        platform.memory.free(hpn, 0)
    hp = platform.host.alloc_huge_region()
    ept.map_huge(0, hp)
    promoter = GuestPromoter(vm, budget=4, prealloc_threshold=256)
    promoter.enqueue([0])
    assert promoter.run(ept.is_huge, fmfi=0.2) == 1
    assert promoter.preallocated_pages == 20
    assert vm.table().is_huge(vma.start // PAGES_PER_HUGE)


def test_guest_promoter_evicts_foreign_pages():
    platform, vm = make_vm()
    a = vm.mmap(PAGES_PER_HUGE, "a")
    b = vm.mmap(PAGES_PER_HUGE, "b")
    # Interleave faults so gpa region 0 holds pages of both VMAs.
    for offset in range(PAGES_PER_HUGE // 2):
        platform.touch(vm, a.start + offset)
        platform.touch(vm, b.start + offset)
    for offset in range(PAGES_PER_HUGE // 2, PAGES_PER_HUGE):
        platform.touch(vm, a.start + offset)
        platform.touch(vm, b.start + offset)
    ept = platform.ept(vm.id)
    for gpn in list(dict(ept.base_mappings())):
        hpn = ept.unmap_base(gpn)
        platform.memory.free(hpn, 0)
    hp = platform.host.alloc_huge_region()
    ept.map_huge(0, hp)
    promoter = GuestPromoter(vm, budget=4)
    promoter.enqueue([0])
    assert promoter.run(ept.is_huge, fmfi=0.0) == 1
    # The dominant owner of gpa region 0 now huge-maps it.
    owner = vm.guest.owner_of_region(0)
    assert owner is not None


def test_host_promoter_promotes_type2_ept_region():
    platform, vm = make_vm()
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    for vpn in range(vma.start, vma.start + PAGES_PER_HUGE):
        platform.touch(vm, vpn)
    # Mark the guest side huge over its gpa region (mis-aligned guest HP).
    table = vm.table()
    vregion = vma.start // PAGES_PER_HUGE
    gpregion = table.region_mappings(vregion)[vma.start] // PAGES_PER_HUGE
    promoter = HostPromoter(platform.host, budget=4)
    promoter.enqueue(vm.id, [gpregion])
    assert promoter.run() == 1
    assert platform.ept(vm.id).is_huge(gpregion)


def test_host_promoter_skips_empty_and_already_huge():
    platform, vm = make_vm()
    promoter = HostPromoter(platform.host, budget=4)
    promoter.enqueue(vm.id, [5])  # no EPT entries: type-1, skipped
    assert promoter.run() == 0
    assert promoter.backlog == 0


def test_host_promoter_budget_respected():
    platform, vm = make_vm()
    vmas = []
    for index in range(3):
        vma = vm.mmap(PAGES_PER_HUGE, f"arr{index}")
        for vpn in range(vma.start, vma.start + PAGES_PER_HUGE):
            platform.touch(vm, vpn)
        vmas.append(vma)
    gpregions = []
    for vma in vmas:
        vregion = vma.start // PAGES_PER_HUGE
        gpregions.append(
            vm.table().region_mappings(vregion)[vma.start] // PAGES_PER_HUGE
        )
    promoter = HostPromoter(platform.host, budget=2)
    promoter.enqueue(vm.id, gpregions)
    assert promoter.run() == 2
    assert promoter.backlog == 1
