"""Unit tests for the Gemini runtime orchestration."""

import pytest

from repro.core.policy import GeminiGuestPolicy, GeminiHostPolicy
from repro.core.runtime import GeminiConfig, GeminiRuntime
from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.policies.base import HugePagePolicy


def make_runtime(config=None):
    platform = Platform(128 * PAGES_PER_HUGE, GeminiHostPolicy())
    vm = platform.create_vm(32 * PAGES_PER_HUGE, GeminiGuestPolicy())
    runtime = GeminiRuntime(platform, config or GeminiConfig())
    runtime.register_vm(vm)
    return platform, vm, runtime


def test_register_vm_requires_gemini_policy():
    platform = Platform(128 * PAGES_PER_HUGE, GeminiHostPolicy())
    vm = platform.create_vm(32 * PAGES_PER_HUGE, HugePagePolicy())
    runtime = GeminiRuntime(platform)
    with pytest.raises(TypeError):
        runtime.register_vm(vm)


def test_host_policy_bound_to_booking():
    platform, _vm, runtime = make_runtime()
    assert platform.host.policy.booking is runtime.host_booking


def test_epoch_books_type1_misaligned_host_page():
    platform, vm, runtime = make_runtime()
    # A host huge page over a guest-free gpa region: type-1.
    hp = platform.host.alloc_huge_region()
    platform.ept(vm.id).map_huge(4, hp)
    runtime.epoch(now=0.0)
    state = runtime.guest_state(vm.id)
    assert 4 in state.booking
    assert state.booking.booked_total == 1


def test_epoch_routes_type2_to_promoter():
    platform, vm, runtime = make_runtime()
    hp = platform.host.alloc_huge_region()
    platform.ept(vm.id).map_huge(4, hp)
    # Allocate something inside the gpa region: type-2, not bookable.
    vm.gpa_space.alloc_at(4 * PAGES_PER_HUGE + 10, 0)
    runtime.epoch(now=0.0)
    state = runtime.guest_state(vm.id)
    assert 4 not in state.booking


def test_epoch_books_host_region_for_type1_guest_huge():
    platform, vm, runtime = make_runtime()
    vm.gpa_space.alloc_range(2 * PAGES_PER_HUGE, PAGES_PER_HUGE)
    vm.guest.table(PROCESS).map_huge(0, 2)  # guest huge, EPT empty: type-1
    runtime.epoch(now=0.0)
    assert runtime.host_booking.has_purpose((vm.id, 2))
    # A later EPT fault in that region is served with the booked page.
    platform.host.fault(vm.id, 2 * PAGES_PER_HUGE, full_region=True)
    assert platform.ept(vm.id).is_huge(2)


def test_epoch_promotes_type2_guest_huge_via_host_promoter():
    platform, vm, runtime = make_runtime()
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    for vpn in range(vma.start, vma.start + PAGES_PER_HUGE):
        platform.touch(vm, vpn)
    # Ensure the guest side is huge over an EPT-base-mapped gpa region.
    table = vm.table()
    vregion = vma.start // PAGES_PER_HUGE
    if not table.is_huge(vregion):
        assert vm.guest.promote_with_migration(PROCESS, vregion)
    gpregion = table.huge_target(vregion)
    assert not platform.ept(vm.id).is_huge(gpregion) or gpregion is not None
    runtime.epoch(now=0.0)
    runtime.epoch(now=1.0)
    assert platform.ept(vm.id).is_huge(gpregion)


def test_booking_cap_respected():
    config = GeminiConfig(booking_cap_fraction=1.0 / 32.0)  # one region
    platform, vm, runtime = make_runtime(config)
    for index in range(3):
        hp = platform.host.alloc_huge_region()
        platform.ept(vm.id).map_huge(4 + index, hp)
    runtime.epoch(now=0.0)
    state = runtime.guest_state(vm.id)
    assert len(state.booking) == 1  # capped


def test_ablation_disables_booking():
    config = GeminiConfig(enable_ema_hb=False)
    platform, vm, runtime = make_runtime(config)
    hp = platform.host.alloc_huge_region()
    platform.ept(vm.id).map_huge(4, hp)
    runtime.epoch(now=0.0)
    assert len(runtime.guest_state(vm.id).booking) == 0


def test_stats_aggregate():
    platform, vm, runtime = make_runtime()
    hp = platform.host.alloc_huge_region()
    platform.ept(vm.id).map_huge(4, hp)
    runtime.epoch(now=0.0)
    stats = runtime.stats()
    assert stats["scans"] == 1.0
    assert stats["bookings"] >= 1.0
    assert "bucket_reuse_rate" in stats


def test_guest_alignable_probe():
    platform, vm, runtime = make_runtime()
    assert runtime._guest_region_alignable(vm.id, 3)  # fully free: fine
    vma = vm.mmap(10, "a")
    platform.touch_vma(vm, vma)
    gpregion = vm.translate(vma.start) // PAGES_PER_HUGE
    assert runtime._guest_region_alignable(vm.id, gpregion)  # mapped: movable
    # An allocated-but-unmapped (unmovable) frame poisons the region.
    hole = vm.gpa_space.alloc(0)
    assert not runtime._guest_region_alignable(vm.id, hole // PAGES_PER_HUGE)
