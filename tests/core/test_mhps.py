"""Unit tests for the misaligned huge page scanner."""

from repro.core.mhps import MisalignedScanner
from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.policies.base import HugePagePolicy


def make_platform():
    platform = Platform(64 * PAGES_PER_HUGE, HugePagePolicy())
    vm = platform.create_vm(16 * PAGES_PER_HUGE, HugePagePolicy())
    return platform, vm


def test_empty_scan():
    platform, _vm = make_platform()
    scanner = MisalignedScanner(platform)
    result = scanner.scan()
    assert result.misaligned_guest == {}
    assert result.misaligned_host == {}
    assert result.scanned == 0
    assert scanner.scans == 1


def test_detects_misaligned_guest_huge_page():
    platform, vm = make_platform()
    vm.gpa_space.alloc_range(2 * PAGES_PER_HUGE, PAGES_PER_HUGE)
    vm.guest.table(PROCESS).map_huge(0, 2)
    result = MisalignedScanner(platform).scan()
    assert result.guest_regions(vm.id) == [2]
    assert result.host_regions(vm.id) == []


def test_detects_misaligned_host_huge_page():
    platform, vm = make_platform()
    platform.memory.alloc_range(5 * PAGES_PER_HUGE, PAGES_PER_HUGE)
    platform.ept(vm.id).map_huge(3, 5)
    result = MisalignedScanner(platform).scan()
    assert result.host_regions(vm.id) == [3]
    assert result.guest_regions(vm.id) == []


def test_aligned_pair_not_reported():
    platform, vm = make_platform()
    vm.gpa_space.alloc_range(2 * PAGES_PER_HUGE, PAGES_PER_HUGE)
    platform.memory.alloc_range(5 * PAGES_PER_HUGE, PAGES_PER_HUGE)
    vm.guest.table(PROCESS).map_huge(0, 2)
    platform.ept(vm.id).map_huge(2, 5)
    result = MisalignedScanner(platform).scan()
    assert result.guest_regions(vm.id) == []
    assert result.host_regions(vm.id) == []
    assert result.scanned == 2


def test_results_keyed_per_vm():
    platform, vm1 = make_platform()
    vm2 = platform.create_vm(16 * PAGES_PER_HUGE, HugePagePolicy())
    vm1.gpa_space.alloc_range(0, PAGES_PER_HUGE)
    vm1.guest.table(PROCESS).map_huge(0, 0)
    platform.memory.alloc_range(7 * PAGES_PER_HUGE, PAGES_PER_HUGE)
    platform.ept(vm2.id).map_huge(4, 7)
    result = MisalignedScanner(platform).scan()
    assert result.guest_regions(vm1.id) == [0]
    assert result.guest_regions(vm2.id) == []
    assert result.host_regions(vm2.id) == [4]
    assert result.host_regions(vm1.id) == []


def test_scan_cost_charged_to_host_background():
    platform, vm = make_platform()
    vm.gpa_space.alloc_range(0, PAGES_PER_HUGE)
    vm.guest.table(PROCESS).map_huge(0, 0)
    MisalignedScanner(platform).scan()
    assert platform.host.ledger.background_cycles > 0
