"""Gemini runtime with multiple VMs: per-VM isolation of components."""

from repro.core.policy import GeminiGuestPolicy, GeminiHostPolicy
from repro.core.mhps import MisalignedScanner
from repro.core.runtime import GeminiRuntime
from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.metrics.alignment import alignment_report
from repro.os.mm import PROCESS


def make_two_vms():
    platform = Platform(256 * PAGES_PER_HUGE, GeminiHostPolicy(), nodes=2)
    runtime = GeminiRuntime(platform)
    vms = []
    for _ in range(2):
        vm = platform.create_vm(32 * PAGES_PER_HUGE, GeminiGuestPolicy())
        runtime.register_vm(vm)
        vms.append(vm)
    return platform, runtime, vms


def test_per_vm_components_are_isolated():
    platform, runtime, (vm1, vm2) = make_two_vms()
    state1 = runtime.guest_state(vm1.id)
    state2 = runtime.guest_state(vm2.id)
    assert state1.booking is not state2.booking
    assert state1.bucket is not state2.bucket
    assert state1.promoter is not state2.promoter
    # Policies are bound to their own VM's components.
    assert vm1.guest.policy.booking is state1.booking
    assert vm2.guest.policy.booking is state2.booking


def test_bookings_target_the_right_vm():
    platform, runtime, (vm1, vm2) = make_two_vms()
    # A misaligned host huge page in vm1 only.
    hp = platform.host.alloc_huge_region()
    platform.ept(vm1.id).map_huge(4, hp)
    runtime.epoch(now=0.0)
    assert 4 in runtime.guest_state(vm1.id).booking
    assert 4 not in runtime.guest_state(vm2.id).booking


def test_host_bookings_keyed_by_vm():
    platform, runtime, (vm1, vm2) = make_two_vms()
    for vm in (vm1, vm2):
        vm.gpa_space.alloc_range(2 * PAGES_PER_HUGE, PAGES_PER_HUGE)
        vm.guest.table(PROCESS).map_huge(0, 2)
    runtime.epoch(now=0.0)
    assert runtime.host_booking.has_purpose((vm1.id, 2))
    assert runtime.host_booking.has_purpose((vm2.id, 2))
    # Each VM's EPT fault consumes its own booked page.
    platform.host.fault(vm1.id, 2 * PAGES_PER_HUGE, full_region=True)
    assert platform.ept(vm1.id).is_huge(2)
    assert not platform.ept(vm2.id).is_huge(2)


def test_scanner_and_alignment_report_agree():
    """MHPS's misaligned lists must be the exact complement of the
    alignment report's aligned counts."""
    platform, runtime, (vm1, _vm2) = make_two_vms()
    vma = vm1.mmap(2 * PAGES_PER_HUGE, "arr")
    for vpn in range(vma.start, vma.end):
        platform.touch(vm1, vpn)
    # Force one guest huge mapping (possibly misaligned).
    vregion = vma.start // PAGES_PER_HUGE
    if not vm1.table().is_huge(vregion):
        vm1.guest.promote_with_migration(PROCESS, vregion)
    result = MisalignedScanner(platform).scan()
    report = alignment_report(vm1.guest.table(PROCESS), platform.ept(vm1.id))
    misaligned_guest = len(result.guest_regions(vm1.id))
    misaligned_host = len(result.host_regions(vm1.id))
    assert report.guest_huge - report.aligned_guest == misaligned_guest
    assert report.host_huge - report.aligned_host == misaligned_host
