"""Unit tests for Gemini's per-layer policies."""

import pytest

from repro.core.booking import BookingTable, TimeoutController
from repro.core.bucket import HugeBucket
from repro.core.policy import GeminiGuestPolicy, GeminiHostPolicy
from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.policies.base import EpochTelemetry


def make_vm(guest_policy):
    platform = Platform(128 * PAGES_PER_HUGE, GeminiHostPolicy())
    vm = platform.create_vm(32 * PAGES_PER_HUGE, guest_policy)
    return platform, vm


def bind_components(vm, policy):
    controller = TimeoutController(initial=8.0, period=2)
    booking = BookingTable(vm.guest, controller)
    bucket = HugeBucket(vm.guest)
    policy.bind(booking, bucket)
    return booking, bucket


def test_guest_huge_fault_prefers_booked_region():
    policy = GeminiGuestPolicy()
    platform, vm = make_vm(policy)
    booking, _bucket = bind_components(vm, policy)
    booking.book(5, now=0.0)
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    platform.touch(vm, vma.start)
    table = vm.table()
    vregion = vma.start // PAGES_PER_HUGE
    assert table.is_huge(vregion)
    assert table.huge_target(vregion) == 5  # the booked region


def test_guest_huge_fault_from_bucket():
    policy = GeminiGuestPolicy()
    platform, vm = make_vm(policy)
    _booking, bucket = bind_components(vm, policy)
    vm.gpa_space.alloc_range(7 * PAGES_PER_HUGE, PAGES_PER_HUGE)
    bucket.offer(7)
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    platform.touch(vm, vma.start)
    vregion = vma.start // PAGES_PER_HUGE
    assert vm.table().huge_target(vregion) == 7
    assert bucket.reused_total == 1


def test_guest_ema_places_aligned_offsets():
    policy = GeminiGuestPolicy()
    platform, vm = make_vm(policy)
    bind_components(vm, policy)
    policy.sync_fault_budget = 0  # force the base-page path
    vma = vm.mmap(2 * PAGES_PER_HUGE, "arr")
    for offset in range(20):
        platform.touch(vm, vma.start + offset)
    for offset in range(20):
        gpn = vm.translate(vma.start + offset)
        assert gpn % PAGES_PER_HUGE == (vma.start + offset) % PAGES_PER_HUGE


def test_guest_ema_fills_booked_region_page_by_page():
    policy = GeminiGuestPolicy()
    platform, vm = make_vm(policy)
    booking, _bucket = bind_components(vm, policy)
    policy.sync_fault_budget = 0
    booking.book(0, now=0.0)  # book the lowest region: the anchor target
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    platform.touch(vm, vma.start)
    gpn = vm.translate(vma.start)
    assert gpn // PAGES_PER_HUGE == 0  # landed inside the booked region


def test_guest_aligned_free_goes_to_bucket():
    policy = GeminiGuestPolicy()
    platform, vm = make_vm(policy)
    booking, bucket = bind_components(vm, policy)
    booking.book(5, now=0.0)
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    platform.touch(vm, vma.start)
    # Back the guest huge page with a huge EPT entry -> well-aligned.
    ept = platform.ept(vm.id)
    gpregion = vm.table().huge_target(vma.start // PAGES_PER_HUGE)
    if not ept.is_huge(gpregion):
        for gpn in list(dict(ept.base_mappings())):
            hpn = ept.unmap_base(gpn)
            platform.memory.free(hpn, 0)
        ept.map_huge(gpregion, platform.host.alloc_huge_region())
    vm.munmap("arr")
    assert gpregion in bucket
    assert bucket.offered_total == 1


def test_guest_pressure_releases_reserved_memory():
    policy = GeminiGuestPolicy()
    platform, vm = make_vm(policy)
    booking, bucket = bind_components(vm, policy)
    booking.book(3, now=0.0)
    vm.gpa_space.alloc_range(9 * PAGES_PER_HUGE, PAGES_PER_HUGE)
    bucket.offer(9)
    released = policy.on_pressure()
    assert released == 2 * PAGES_PER_HUGE
    assert len(booking) == 0
    assert len(bucket) == 0


def test_guest_prealloc_promote_fills_missing_tail():
    policy = GeminiGuestPolicy(prealloc_threshold=256)
    platform, vm = make_vm(policy)
    bind_components(vm, policy)
    policy.sync_fault_budget = 0
    policy.on_epoch(EpochTelemetry(0, 0.0, fmfi=0.1))  # low fragmentation
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    touched = PAGES_PER_HUGE - 30
    for offset in range(touched):
        platform.touch(vm, vma.start + offset)
    vregion = vma.start // PAGES_PER_HUGE
    assert policy._promote(PROCESS, vregion)
    assert vm.table().is_huge(vregion)
    assert policy.preallocated_pages == 30


def test_guest_prealloc_blocked_by_fragmentation():
    policy = GeminiGuestPolicy(prealloc_threshold=256)
    platform, vm = make_vm(policy)
    bind_components(vm, policy)
    policy.sync_fault_budget = 0
    policy.on_epoch(EpochTelemetry(0, 0.0, fmfi=0.9))  # FMFI gate closed
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    for offset in range(PAGES_PER_HUGE - 30):
        platform.touch(vm, vma.start + offset)
    assert not policy._try_prealloc_promote(PROCESS, vma.start // PAGES_PER_HUGE)


def test_guest_holds_back_when_host_cannot_align():
    policy = GeminiGuestPolicy()
    platform, vm = make_vm(policy)
    bind_components(vm, policy)
    policy.sync_fault_budget = 0
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    for offset in range(PAGES_PER_HUGE):
        platform.touch(vm, vma.start + offset)
    vregion = vma.start // PAGES_PER_HUGE
    policy.host_can_align = False  # host out of huge-page capacity
    assert not policy._promote(PROCESS, vregion)
    assert not vm.table().is_huge(vregion)
    policy.host_can_align = True
    assert policy._promote(PROCESS, vregion)


def test_host_huge_fault_only_for_booked_purposes():
    host_policy = GeminiHostPolicy()
    platform = Platform(128 * PAGES_PER_HUGE, host_policy)
    vm = platform.create_vm(32 * PAGES_PER_HUGE, GeminiGuestPolicy())
    controller = TimeoutController()
    host_booking = BookingTable(platform.host, controller)
    host_policy.bind(host_booking)
    assert not host_policy.wants_huge_fault(vm.id, 3)
    candidate = platform.host.alloc_huge_region()
    platform.memory.free_range(candidate * PAGES_PER_HUGE, PAGES_PER_HUGE)
    host_booking.book(candidate, now=0.0, purpose=(vm.id, 3))
    assert host_policy.wants_huge_fault(vm.id, 3)
    assert host_policy.alloc_huge_region(vm.id, 3) == candidate


def test_host_candidates_filtered_by_liveness_and_alignability():
    host_policy = GeminiHostPolicy()
    platform = Platform(128 * PAGES_PER_HUGE, host_policy)
    vm = platform.create_vm(32 * PAGES_PER_HUGE, GeminiGuestPolicy())
    # Populate two EPT regions fully.
    for gpn in range(2 * PAGES_PER_HUGE):
        platform.host.fault(vm.id, gpn, full_region=False)
    assert len(host_policy._candidates()) == 2
    host_policy.live_regions = {vm.id: {0}}
    assert [c[1] for c in host_policy._candidates()] == [0]
    host_policy.guest_alignable = lambda client, vregion: False
    assert host_policy._candidates() == []


def test_ablated_policy_uses_default_placement():
    policy = GeminiGuestPolicy()
    platform, vm = make_vm(policy)
    policy.bind(None, None)  # EMA/HB and bucket ablated
    assert policy.choose_base_frame(PROCESS, 0) is None
    assert not policy.wants_huge_fault(PROCESS, 99)  # no reserved regions
    assert policy.on_pressure() == 0
