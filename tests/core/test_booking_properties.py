"""Property-based tests for the reserved-region pool."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.booking import ReservedRegionPool
from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.os.mm import MemoryLayer
from repro.policies.base import HugePagePolicy

REGIONS = 8
TOTAL = REGIONS * PAGES_PER_HUGE


def pool_conservation(layer, pool, handed_out):
    """Free + reserved + handed-out-page count must equal total memory."""
    assert (
        layer.memory.free_pages + pool.reserved_pages + handed_out == TOTAL
    )


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["reserve", "claim_region", "claim_page", "expire", "release"]),
            st.integers(min_value=0, max_value=REGIONS - 1),
            st.integers(min_value=0, max_value=PAGES_PER_HUGE - 1),
        ),
        max_size=50,
    )
)
def test_reservation_conservation(ops):
    layer = MemoryLayer("prop", PhysicalMemory(TOTAL), HugePagePolicy())
    pool = ReservedRegionPool(layer)
    handed = 0  # pages handed out (to mappings) or claimed as regions
    clock = 0.0
    for op, region, offset in ops:
        clock += 1.0
        if op == "reserve":
            pool.reserve_free(region, expiry=clock + 5.0)
        elif op == "claim_region":
            if pool.claim_region(region) is not None:
                handed += PAGES_PER_HUGE
        elif op == "claim_page":
            frame = region * PAGES_PER_HUGE + offset
            if pool.claim_page(frame):
                handed += 1
        elif op == "expire":
            pool.expire(clock)
        elif op == "release":
            pool.release_all()
        pool_conservation(layer, pool, handed)
    # Draining everything returns the remainder to the buddy.
    pool.release_all()
    assert layer.memory.free_pages == TOTAL - handed


@settings(max_examples=30, deadline=None)
@given(frames=st.sets(st.integers(min_value=0, max_value=PAGES_PER_HUGE - 1), min_size=1))
def test_partial_handout_then_expiry(frames):
    layer = MemoryLayer("prop", PhysicalMemory(TOTAL), HugePagePolicy())
    pool = ReservedRegionPool(layer)
    assert pool.reserve_free(2, expiry=10.0)
    base = 2 * PAGES_PER_HUGE
    for offset in frames:
        assert pool.claim_page(base + offset)
    released = pool.expire(10.0)
    if len(frames) == PAGES_PER_HUGE:
        # Fully handed out: the reservation already dissolved.
        assert released == 0
    else:
        assert released == PAGES_PER_HUGE - len(frames)
    # Handed frames stay allocated; everything else is free again.
    for offset in range(PAGES_PER_HUGE):
        expected_free = offset not in frames
        assert layer.memory.is_free(base + offset) == expected_free
