"""Unit tests for reserved-region pools, booking and Algorithm 1."""

import pytest

from repro.core.booking import BookingTable, ReservedRegionPool, TimeoutController
from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.os.mm import MemoryLayer
from repro.policies.base import HugePagePolicy


def make_layer(regions=8):
    return MemoryLayer(
        "test", PhysicalMemory(regions * PAGES_PER_HUGE), HugePagePolicy()
    )


def test_reserve_free_takes_region_out_of_buddy():
    layer = make_layer()
    pool = ReservedRegionPool(layer)
    assert pool.reserve_free(2, expiry=10.0)
    assert 2 in pool
    assert not layer.memory.is_free(2 * PAGES_PER_HUGE)
    assert pool.reserved_pages == PAGES_PER_HUGE


def test_reserve_fails_when_region_not_free():
    layer = make_layer()
    layer.memory.alloc_at(2 * PAGES_PER_HUGE + 5, 0)
    pool = ReservedRegionPool(layer)
    assert not pool.reserve_free(2, expiry=10.0)
    assert 2 not in pool


def test_reserve_twice_rejected():
    layer = make_layer()
    pool = ReservedRegionPool(layer)
    assert pool.reserve_free(2, 10.0)
    assert not pool.reserve_free(2, 10.0)


def test_claim_region_whole():
    layer = make_layer()
    pool = ReservedRegionPool(layer)
    pool.reserve_free(2, 10.0)
    assert pool.claim_region(2) == 2
    assert 2 not in pool
    # Region stays allocated (now owned by the mapping).
    assert not layer.memory.is_free(2 * PAGES_PER_HUGE)


def test_claim_region_any_untouched():
    layer = make_layer()
    pool = ReservedRegionPool(layer)
    pool.reserve_free(2, 10.0)
    pool.reserve_free(3, 10.0)
    pool.claim_page(3 * PAGES_PER_HUGE)  # region 3 is now touched
    assert pool.claim_region() == 2


def test_claim_region_by_purpose():
    layer = make_layer()
    pool = ReservedRegionPool(layer)
    pool.reserve_free(2, 10.0, purpose=("vm", 7))
    assert pool.has_purpose(("vm", 7))
    assert pool.claim_region(purpose=("vm", 7)) == 2
    assert not pool.has_purpose(("vm", 7))
    assert pool.claim_region(purpose=("vm", 7)) is None


def test_claim_page_hands_out_frames():
    layer = make_layer()
    pool = ReservedRegionPool(layer)
    pool.reserve_free(2, 10.0)
    frame = 2 * PAGES_PER_HUGE + 17
    assert pool.claim_page(frame)
    assert not pool.claim_page(frame)  # already handed
    assert pool.reserved_pages == PAGES_PER_HUGE - 1
    # A touched region cannot be claimed whole any more.
    assert pool.claim_region(2) is None


def test_claim_page_outside_pool():
    layer = make_layer()
    pool = ReservedRegionPool(layer)
    assert not pool.claim_page(17)


def test_fully_handed_region_leaves_pool():
    layer = make_layer()
    pool = ReservedRegionPool(layer)
    pool.reserve_free(2, 10.0)
    start = 2 * PAGES_PER_HUGE
    for frame in range(start, start + PAGES_PER_HUGE):
        assert pool.claim_page(frame)
    assert 2 not in pool
    assert pool.reserved_pages == 0


def test_expire_returns_unhanded_pages():
    layer = make_layer()
    pool = ReservedRegionPool(layer)
    pool.reserve_free(2, expiry=5.0)
    pool.claim_page(2 * PAGES_PER_HUGE)
    assert pool.expire(now=4.9) == 0
    released = pool.expire(now=5.0)
    assert released == PAGES_PER_HUGE - 1
    assert 2 not in pool
    # Handed frame stays allocated; the rest went back to the buddy.
    assert not layer.memory.is_free(2 * PAGES_PER_HUGE)
    assert layer.memory.is_free(2 * PAGES_PER_HUGE + 1)


def test_release_all():
    layer = make_layer()
    pool = ReservedRegionPool(layer)
    pool.reserve_free(2, 100.0)
    pool.reserve_free(3, 100.0)
    released = pool.release_all()
    assert released == 2 * PAGES_PER_HUGE
    assert len(pool) == 0


def test_absorb_allocated_region():
    layer = make_layer()
    layer.memory.alloc_range(2 * PAGES_PER_HUGE, PAGES_PER_HUGE)
    pool = ReservedRegionPool(layer)
    assert pool.absorb(2, 10.0)
    assert pool.expire(11.0) == PAGES_PER_HUGE
    assert layer.memory.is_free(2 * PAGES_PER_HUGE)


def test_booking_table_counts_and_uses_controller():
    layer = make_layer()
    controller = TimeoutController(initial=4.0, period=2)
    booking = BookingTable(layer, controller)
    assert booking.book(2, now=0.0)
    assert booking.booked_total == 1
    # Expiry honours the controller's effective timeout (4.0).
    assert booking.expire(3.9) == 0
    assert booking.expire(4.0) == PAGES_PER_HUGE
    assert booking.expired_total == 1


def test_timeout_controller_validation():
    with pytest.raises(ValueError):
        TimeoutController(initial=0)
    with pytest.raises(ValueError):
        TimeoutController(period=0)


def test_timeout_controller_adopts_improvement():
    controller = TimeoutController(initial=10.0, period=1)
    # Baseline window.
    controller.observe(tlb_misses=100.0, fmfi=0.5)
    assert controller.effective == pytest.approx(11.0)  # trial +10%
    # Trial window: misses improved, fragmentation unchanged -> adopt.
    controller.observe(tlb_misses=90.0, fmfi=0.5)
    assert controller.desired == pytest.approx(11.0)
    assert controller.adjustments == 1


def test_timeout_controller_rejects_worse_trial_then_tries_down():
    controller = TimeoutController(initial=10.0, period=1)
    controller.observe(100.0, 0.5)   # baseline
    controller.observe(110.0, 0.5)   # +10% trial made things worse
    assert controller.desired == pytest.approx(10.0)
    assert controller.effective == pytest.approx(10.0)
    controller.observe(100.0, 0.5)   # fresh baseline
    assert controller.effective == pytest.approx(9.0)  # -10% trial
    controller.observe(80.0, 0.4)    # improved -> adopt
    assert controller.desired == pytest.approx(9.0)


def test_timeout_controller_rejects_fragmentation_increase():
    controller = TimeoutController(initial=10.0, period=1)
    controller.observe(100.0, 0.5)
    # Misses improved but fragmentation got worse: reject.
    controller.observe(50.0, 0.6)
    assert controller.desired == pytest.approx(10.0)


def test_timeout_controller_clamps():
    controller = TimeoutController(
        initial=10.0, period=1, min_timeout=9.5, max_timeout=10.4
    )
    controller.observe(100.0, 0.5)
    assert controller.effective == pytest.approx(10.4)  # clamped from 11.0
