"""Unit tests for the huge bucket."""

from repro.core.bucket import HugeBucket
from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.os.mm import MemoryLayer
from repro.policies.base import HugePagePolicy


def make_layer(regions=8):
    return MemoryLayer(
        "test", PhysicalMemory(regions * PAGES_PER_HUGE), HugePagePolicy()
    )


def allocated_region(layer, pregion):
    layer.memory.alloc_range(pregion * PAGES_PER_HUGE, PAGES_PER_HUGE)
    return pregion


def test_offer_take_roundtrip():
    layer = make_layer()
    bucket = HugeBucket(layer, hold_epochs=4.0)
    allocated_region(layer, 3)
    assert bucket.offer(3)
    assert bucket.offered_total == 1
    assert bucket.take() == 3
    assert bucket.reused_total == 1
    assert bucket.reuse_rate == 1.0
    # Taken region remains allocated for the new mapping.
    assert not layer.memory.is_free(3 * PAGES_PER_HUGE)


def test_take_specific():
    layer = make_layer()
    bucket = HugeBucket(layer)
    allocated_region(layer, 2)
    allocated_region(layer, 5)
    bucket.offer(2)
    bucket.offer(5)
    assert bucket.take_specific(5) == 5
    assert bucket.take_specific(5) is None
    assert 2 in bucket


def test_tick_expires_after_hold():
    layer = make_layer()
    bucket = HugeBucket(layer, hold_epochs=2.0)
    allocated_region(layer, 3)
    bucket.tick(10.0)
    bucket.offer(3)
    assert bucket.tick(11.0) == 0
    assert bucket.tick(12.0) == PAGES_PER_HUGE
    assert layer.memory.is_free(3 * PAGES_PER_HUGE)
    assert bucket.reuse_rate == 0.0


def test_release_all_under_pressure():
    layer = make_layer()
    bucket = HugeBucket(layer)
    allocated_region(layer, 1)
    allocated_region(layer, 2)
    bucket.offer(1)
    bucket.offer(2)
    assert bucket.release_all() == 2 * PAGES_PER_HUGE
    assert len(bucket) == 0


def test_empty_take():
    bucket = HugeBucket(make_layer())
    assert bucket.take() is None
    assert bucket.reuse_rate == 0.0
