"""Unit tests for the comparison-system policies."""

import pytest

from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS, MemoryLayer
from repro.mem.physmem import PhysicalMemory
from repro.policies.base import EpochTelemetry
from repro.policies.systems import (
    BasePagesOnly,
    CAPagingPolicy,
    HawkEyePolicy,
    HugeAlways,
    IngensPolicy,
    RangerPolicy,
    THPPolicy,
)


def make_layer(policy, regions=64):
    return MemoryLayer("test", PhysicalMemory(regions * PAGES_PER_HUGE), policy)


def fill_region(layer, vregion, pages=PAGES_PER_HUGE):
    start = vregion * PAGES_PER_HUGE
    for vpn in range(start, start + pages):
        if not layer.table(PROCESS).is_mapped(vpn):
            layer.fault(PROCESS, vpn, full_region=False)


def test_base_pages_only_never_huge():
    policy = BasePagesOnly()
    layer = make_layer(policy)
    assert not policy.wants_huge_fault(PROCESS, 0)
    fill_region(layer, 0)
    policy.scan(100)
    assert layer.table(PROCESS).huge_count == 0


def test_huge_always_faults_huge():
    policy = HugeAlways()
    layer = make_layer(policy)
    layer.fault(PROCESS, 0, full_region=True)
    assert layer.table(PROCESS).is_huge(0)


def test_thp_sync_fault_budget_enforced():
    policy = THPPolicy(sync_fault_budget=1)
    layer = make_layer(policy)
    layer.fault(PROCESS, 0, full_region=True)
    assert layer.table(PROCESS).is_huge(0)
    # Budget exhausted: second region faults base pages.
    layer.fault(PROCESS, PAGES_PER_HUGE, full_region=True)
    assert not layer.table(PROCESS).is_huge(1)
    # The budget resets at the epoch boundary.
    policy.on_epoch(EpochTelemetry(0, 0.0, 0.0))
    layer.fault(PROCESS, 2 * PAGES_PER_HUGE, full_region=True)
    assert layer.table(PROCESS).is_huge(2)


def test_thp_defers_after_failed_compaction():
    policy = THPPolicy(sync_fault_budget=100)
    policy.defer_limit = 2
    layer = make_layer(policy, regions=2)
    # Destroy all free huge regions.
    layer.memory.alloc_at(100, 0)
    layer.memory.alloc_at(PAGES_PER_HUGE + 100, 0)
    for index in range(3):
        assert policy.alloc_huge_region(PROCESS, index) is None
    # After defer_limit failures THP stops attempting huge faults.
    assert not policy.wants_huge_fault(PROCESS, 9)
    # Each failed attempt charged a direct-compaction stall.
    assert layer.ledger.count("direct_compaction") == 3


def test_thp_scan_period_skips_scans():
    policy = THPPolicy()
    layer = make_layer(policy)
    fill_region(layer, 0)
    layer.memory.alloc_at(63 * PAGES_PER_HUGE, 0)  # prevent trivial in-place? no-op
    promoted_first = policy.scan()
    promoted_second = policy.scan()
    # scan_period=2: exactly one of two consecutive scans does work.
    assert (promoted_first == 0) != (promoted_second == 0) or (
        promoted_first == promoted_second == 0
    )


def test_ingens_waits_for_utilization():
    policy = IngensPolicy(scan_budget=8)
    layer = make_layer(policy)
    fill_region(layer, 0, pages=300)  # 59% utilisation < 90% threshold
    policy.scan()
    assert layer.table(PROCESS).huge_count == 0
    fill_region(layer, 0)  # now fully populated
    policy.scan()
    assert layer.table(PROCESS).huge_count == 1


def test_hawkeye_promotes_hottest_first():
    policy = HawkEyePolicy(scan_budget=1)
    layer = make_layer(policy)
    fill_region(layer, 0, pages=300)
    fill_region(layer, 1, pages=500)
    policy.scan()
    table = layer.table(PROCESS)
    # Benefit-sorted: the denser region is promoted first.
    assert table.is_huge(1)
    assert not table.is_huge(0)


def test_hawkeye_dedup_flag_set():
    assert HawkEyePolicy().deduplicates_zero_pages
    assert not IngensPolicy().deduplicates_zero_pages


def test_ca_paging_guest_placement_contiguous_not_aligned():
    platform = Platform(128 * PAGES_PER_HUGE, BasePagesOnly())
    # Suppress CA-paging's THP-style huge faults to isolate placement.
    vm = platform.create_vm(64 * PAGES_PER_HUGE, CAPagingPolicy(sync_fault_budget=0))
    # Make the lowest free frame unaligned so contiguity != alignment.
    vm.gpa_space.alloc_at(0, 0)
    vma = vm.mmap(2 * PAGES_PER_HUGE, "arr")
    platform.touch(vm, vma.start)
    platform.touch(vm, vma.start + 1)
    first = vm.translate(vma.start)
    second = vm.translate(vma.start + 1)
    assert second == first + 1  # contiguous
    assert first % PAGES_PER_HUGE != vma.start % PAGES_PER_HUGE  # not aligned


def test_ca_paging_host_chunks():
    policy = CAPagingPolicy(host_chunk_regions=4)
    layer = make_layer(policy)  # host-like: not virtualized
    bounds = policy._range_of(0, 5 * PAGES_PER_HUGE)
    assert bounds is not None
    start, end = bounds
    assert end - start == 4 * PAGES_PER_HUGE
    assert start <= 5 * PAGES_PER_HUGE < end


def test_ranger_charges_contiguity_moves():
    policy = RangerPolicy()
    layer = make_layer(policy)
    fill_region(layer, 0)
    policy.scan()
    assert layer.ledger.count("ranger_contiguity_moves") > 0
    assert layer.ledger.count("tlb_shootdown") > 0


def test_ranger_reshuffle_relocates_huge_mappings():
    policy = RangerPolicy()
    layer = make_layer(policy)
    fill_region(layer, 0)
    layer.try_promote_in_place(PROCESS, 0)
    before = layer.table(PROCESS).huge_target(0)
    policy.scan()
    after = layer.table(PROCESS).huge_target(0)
    assert before is not None and after is not None
    assert after != before  # the huge mapping moved
    assert layer.table(PROCESS).is_huge(0)  # but is still huge


def test_ranger_scan_without_mappings_is_free():
    policy = RangerPolicy()
    layer = make_layer(policy)
    policy.scan()
    assert layer.ledger.count("ranger_contiguity_moves") == 0
