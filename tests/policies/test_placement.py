"""Unit tests for the contiguity list and offset placer."""

from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.os.mm import MemoryLayer
from repro.policies.base import HugePagePolicy
from repro.policies.placement import ContiguityList, OffsetPlacer


def make_layer(regions=16):
    memory = PhysicalMemory(regions * PAGES_PER_HUGE)
    return MemoryLayer("test", memory, HugePagePolicy())


def whole_space(vstart, vend):
    def range_of(client, vpn):
        return (vstart, vend) if vstart <= vpn < vend else None

    return range_of


def test_contiguity_list_finds_fitting_region():
    layer = make_layer()
    clist = ContiguityList(layer)
    start = clist.find(span=PAGES_PER_HUGE, huge_aligned=True)
    assert start == 0


def test_contiguity_list_skips_unaligned_heads():
    layer = make_layer(regions=4)
    # Pin page 0: the first free region starts at 1 (unaligned).
    layer.memory.alloc_at(0, 0)
    clist = ContiguityList(layer)
    start = clist.find(span=PAGES_PER_HUGE, huge_aligned=True)
    assert start == PAGES_PER_HUGE


def test_contiguity_list_falls_back_to_largest():
    layer = make_layer(regions=4)
    # Fragment: pin middles so no region fits 4 huge pages contiguously.
    layer.memory.alloc_at(PAGES_PER_HUGE + 256, 0)
    clist = ContiguityList(layer)
    start = clist.find(span=4 * PAGES_PER_HUGE, huge_aligned=True)
    # Largest remaining aligned region starts at region 2.
    assert start == 2 * PAGES_PER_HUGE


def test_contiguity_list_next_fit_cursor_advances():
    layer = make_layer(regions=16)
    clist = ContiguityList(layer)
    first = clist.find(span=PAGES_PER_HUGE, huge_aligned=True)
    layer.memory.alloc_range(first, PAGES_PER_HUGE)
    second = clist.find(span=PAGES_PER_HUGE, huge_aligned=True)
    assert second > first


def test_contiguity_list_returns_none_when_exhausted():
    layer = make_layer(regions=1)
    layer.memory.alloc_range(0, PAGES_PER_HUGE)
    clist = ContiguityList(layer)
    assert clist.find(1, huge_aligned=False) is None


def test_placer_aligned_offsets_give_promotable_layout():
    layer = make_layer()
    vstart = 3 * PAGES_PER_HUGE + 7  # deliberately odd virtual start region
    vend = vstart + 2 * PAGES_PER_HUGE
    placer = OffsetPlacer(layer, align_huge=True, range_of=whole_space(vstart, vend))
    frames = {}
    for vpn in range(vstart, vend):
        frame = placer.place(0, vpn)
        assert frame is not None
        frames[vpn] = frame
    # Huge-aligned offset: vpn and frame agree modulo the region size.
    for vpn, frame in frames.items():
        assert vpn % PAGES_PER_HUGE == frame % PAGES_PER_HUGE
    assert placer.anchors == 1
    assert placer.sub_vma_splits == 0


def test_placer_unaligned_mode_is_contiguous_not_aligned():
    layer = make_layer()
    layer.memory.alloc_at(0, 0)  # free space starts at frame 1
    vstart = PAGES_PER_HUGE + 17
    vend = vstart + PAGES_PER_HUGE
    placer = OffsetPlacer(layer, align_huge=False, range_of=whole_space(vstart, vend))
    first = placer.place(0, vstart)
    second = placer.place(0, vstart + 1)
    assert first is not None and second == first + 1
    # CA-style anchor: offset is not huge-aligned.
    assert vstart % PAGES_PER_HUGE != first % PAGES_PER_HUGE


def test_placer_ignores_small_ranges():
    layer = make_layer()
    placer = OffsetPlacer(layer, align_huge=True, range_of=whole_space(0, 100))
    assert placer.place(0, 5) is None


def test_placer_out_of_range_vpn():
    layer = make_layer()
    placer = OffsetPlacer(
        layer, align_huge=True, range_of=whole_space(0, 2 * PAGES_PER_HUGE)
    )
    assert placer.place(0, 10_000_000) is None


def test_placer_tolerates_single_conflicts():
    """A transiently-occupied target defers to the default allocator
    without abandoning the descriptor."""
    layer = make_layer()
    vend = 4 * PAGES_PER_HUGE
    placer = OffsetPlacer(layer, align_huge=True, range_of=whole_space(0, vend))
    assert placer.place(0, 0) == 0
    layer.memory.alloc_at(5, 0)  # occupy the target of vpn 5
    assert placer.place(0, 5) is None
    assert placer.sub_vma_splits == 0
    # The descriptor survives: the next vpn still lands on its target.
    assert placer.place(0, 6) == 6


def test_placer_sub_vma_reanchors_on_persistent_conflict():
    layer = make_layer()
    vend = 4 * PAGES_PER_HUGE
    placer = OffsetPlacer(layer, align_huge=True, range_of=whole_space(0, vend))
    placer.miss_tolerance = 0  # re-anchor on the first conflict
    first = placer.place(0, 0)
    assert first == 0
    # Steal the frame vpn PAGES_PER_HUGE would map to, forcing a re-anchor.
    layer.memory.alloc_at(PAGES_PER_HUGE, 0)
    frame = placer.place(0, PAGES_PER_HUGE)
    assert frame is not None
    assert frame != PAGES_PER_HUGE
    assert placer.sub_vma_splits == 1
    # The new sub-VMA anchor still preserves huge alignment.
    assert frame % PAGES_PER_HUGE == 0


def test_placer_preferred_anchor_used_first():
    layer = make_layer()
    target_region = 7

    def preferred(client, vpn):
        return target_region

    placer = OffsetPlacer(
        layer,
        align_huge=True,
        range_of=whole_space(0, 2 * PAGES_PER_HUGE),
        preferred_anchor=preferred,
    )
    frame = placer.place(0, 0)
    assert frame == target_region * PAGES_PER_HUGE


def test_placer_claim_hook_overrides_buddy():
    layer = make_layer()
    reserved = 5 * PAGES_PER_HUGE
    layer.memory.alloc_range(reserved, PAGES_PER_HUGE)  # booked elsewhere
    handed = []

    def claim(frame):
        if reserved <= frame < reserved + PAGES_PER_HUGE:
            handed.append(frame)
            return True
        return False

    placer = OffsetPlacer(
        layer,
        align_huge=True,
        range_of=whole_space(0, PAGES_PER_HUGE),
        preferred_anchor=lambda c, v: 5,
        claim_hook=claim,
    )
    frame = placer.place(0, 0)
    assert frame == reserved
    assert handed == [reserved]


def test_placer_drop_client_forgets_descriptors():
    layer = make_layer()
    placer = OffsetPlacer(
        layer, align_huge=True, range_of=whole_space(0, 2 * PAGES_PER_HUGE)
    )
    placer.place(0, 0)
    placer.drop_client(0, 0, 2 * PAGES_PER_HUGE)
    assert placer._descriptors == []


def test_placer_move_to_front_lookup():
    layer = make_layer(regions=64)
    ranges = {
        0: (0, 2 * PAGES_PER_HUGE),
        1: (4 * PAGES_PER_HUGE, 6 * PAGES_PER_HUGE),
    }

    def range_of(client, vpn):
        lo, hi = ranges[client]
        return (lo, hi) if lo <= vpn < hi else None

    placer = OffsetPlacer(layer, align_huge=True, range_of=range_of)
    placer.place(0, 0)
    placer.place(1, 4 * PAGES_PER_HUGE)
    assert placer._descriptors[0].client == 1
    placer.place(0, 1)
    assert placer._descriptors[0].client == 0
