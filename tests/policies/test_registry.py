"""Unit tests for the system registry."""

import pytest

from repro.core.policy import GeminiGuestPolicy, GeminiHostPolicy
from repro.policies.registry import PAPER_SYSTEMS, SYSTEMS, system_spec
from repro.policies.systems import BasePagesOnly, HugeAlways


def test_paper_systems_all_registered():
    assert len(PAPER_SYSTEMS) == 8
    for name in PAPER_SYSTEMS:
        assert name in SYSTEMS


def test_unknown_system_rejected():
    with pytest.raises(KeyError, match="unknown system"):
        system_spec("NoSuchSystem")


def test_spec_factories_produce_fresh_instances():
    spec = system_spec("THP")
    a = spec.make_guest()
    b = spec.make_guest()
    assert a is not b
    assert type(a) is type(b)


def test_static_configurations():
    misalignment = system_spec("Misalignment")
    assert isinstance(misalignment.make_guest(), BasePagesOnly)
    assert isinstance(misalignment.make_host(), HugeAlways)
    hh = system_spec("Host-H-VM-H")
    assert isinstance(hh.make_guest(), HugeAlways)
    assert isinstance(hh.make_host(), HugeAlways)
    bh = system_spec("Host-B-VM-H")  # host base, VM huge
    assert isinstance(bh.make_guest(), HugeAlways)
    assert isinstance(bh.make_host(), BasePagesOnly)


def test_gemini_spec():
    spec = system_spec("Gemini")
    assert spec.uses_gemini_runtime
    assert isinstance(spec.make_guest(), GeminiGuestPolicy)
    assert isinstance(spec.make_host(), GeminiHostPolicy)
    for name in PAPER_SYSTEMS:
        if name != "Gemini":
            assert not system_spec(name).uses_gemini_runtime


def test_layer_names_distinct():
    names = {spec.make_guest().name for spec in SYSTEMS.values()}
    assert len(names) >= 7
