"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Gemini" in out
    assert "Redis" in out
    assert "Table 2" in out


def test_run_command(capsys):
    code = main([
        "run", "Shore", "--epochs", "4", "--fragment", "0.0",
        "-s", "Host-B-VM-B", "-s", "THP",
        "--guest-mib", "128", "--host-mib", "512",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Host-B-VM-B" in out
    assert "THP" in out
    assert "1.00x" in out


def test_run_unknown_workload():
    with pytest.raises(KeyError):
        main(["run", "nosuchworkload", "--epochs", "2"])


def test_experiment_choices_enforced():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "not-a-figure"])


def test_experiment_fig16_small(capsys):
    code = main([
        "experiment", "fig16", "--epochs", "6", "-w", "Shore",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 16" in out
    assert "EMA/HB" in out


def test_cluster_command(capsys):
    code = main([
        "cluster", "--hosts", "2", "--host-mib", "512",
        "--epochs", "4", "--seed", "7", "--check-invariants",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fleet: 2 hosts x 4 epochs" in out
    assert "fleet FMFI" in out
    assert "well-aligned rate" in out
    assert "migrations" in out
    assert "host0:" in out and "host1:" in out


def test_cluster_protocol_flags_map_to_config():
    args = build_parser().parse_args([
        "cluster", "--no-fused", "--no-view-deltas", "--no-adaptive",
        "--spool-epochs", "3",
    ])
    assert args.fused is False
    assert args.view_deltas is False
    assert args.adaptive is False
    assert args.spool_epochs == 3
    defaults = build_parser().parse_args(["cluster"])
    assert defaults.fused and defaults.view_deltas and defaults.adaptive
    assert defaults.spool_epochs is None


def test_cluster_protocol_flags_do_not_change_results(capsys):
    base = [
        "cluster", "--hosts", "2", "--host-mib", "512",
        "--epochs", "3", "--seed", "7",
    ]
    assert main(base) == 0
    reference = capsys.readouterr().out
    assert main(base + ["--no-fused", "--no-view-deltas",
                        "--spool-epochs", "1"]) == 0
    assert capsys.readouterr().out == reference


def test_cluster_profile_prints_hotspots(capsys):
    code = main([
        "cluster", "--hosts", "2", "--host-mib", "512",
        "--epochs", "2", "--profile", "5",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fleet FMFI" in out
    assert "cumulative" in out  # the pstats table made it out


def test_cluster_placement_choices_enforced():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["cluster", "--placement", "not-a-policy"])


def test_cluster_command_uses_cache(tmp_path, capsys):
    argv = [
        "cluster", "--hosts", "2", "--host-mib", "512", "--epochs", "3",
        "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "1 results stored" in first
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "1 hits" in second
    assert first.splitlines()[:5] == second.splitlines()[:5]


@pytest.fixture
def _trace_env(monkeypatch):
    """Pin the REPRO_TRACE* keys so the commands' own writes to
    os.environ are rolled back at teardown, and drop the obs singleton
    the traced command leaves enabled."""
    from repro import obs

    for key in ("REPRO_TRACE", "REPRO_TRACE_OUT", "REPRO_TRACE_EVENTS",
                "REPRO_TRACE_SAMPLE"):
        monkeypatch.setenv(key, "")
    # A warm result cache would skip the runs that emit the events.
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    yield
    obs.disable()
    obs.clear_context()
    obs.set_trace_out_dir(None)


def test_cluster_trace_out_exports_artifacts(tmp_path, capsys, _trace_env):
    out = tmp_path / "trace"
    code = main([
        "cluster", "--hosts", "2", "--host-mib", "512", "--epochs", "3",
        "--trace-out", str(out),
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "fleet FMFI" in stdout
    assert "trace exported to" in stdout
    for name in ("events.jsonl", "trace.json", "series.csv", "spans.json"):
        assert (out / name).stat().st_size > 0


def test_trace_subcommand_defaults_out_dir(tmp_path, capsys, monkeypatch,
                                           _trace_env):
    monkeypatch.chdir(tmp_path)
    assert main(["trace", "fig16", "--epochs", "4", "-w", "Shore"]) == 0
    out = capsys.readouterr().out
    assert "Figure 16" in out
    assert (tmp_path / "trace" / "fig16" / "events.jsonl").exists()


def test_trace_flags_map_to_parser():
    args = build_parser().parse_args([
        "run", "Redis", "--trace-out", "d", "--trace-events", "128",
        "--trace-sample", "0.5",
    ])
    assert args.trace_out == "d"
    assert args.trace_events == 128
    assert args.trace_sample == 0.5


def test_profile_report_lands_in_trace_dir(tmp_path, capsys, _trace_env):
    out = tmp_path / "trace"
    code = main([
        "cluster", "--hosts", "2", "--host-mib", "512", "--epochs", "2",
        "--profile", "5", "--trace-out", str(out),
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "cumulative" in stdout  # still printed
    assert "cumulative" in (out / "profile.txt").read_text()


def test_pressure_command(capsys):
    code = main([
        "pressure", "--hosts", "2", "--epochs", "3", "--seed", "7",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fleet: 2 hosts x 3 epochs" in out
    assert "overcommit ratio     2.50x" in out
    assert "alignment-aware" in out
    assert "swap traffic" in out
    assert "pressure demotions" in out
    assert "aligned huge retained" in out
    assert "final pressure" in out


def test_pressure_victim_choices_enforced():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["pressure", "--victims", "not-a-policy"])
    args = build_parser().parse_args(["pressure", "--victims", "lru-cold"])
    assert args.victims == "lru-cold"


def test_overcommit_experiment_is_registered():
    args = build_parser().parse_args(["experiment", "overcommit"])
    assert args.name == "overcommit"


def _export_cluster(out_dir, seed):
    from repro import obs

    # Each export models a separate CLI process: drop the registry the
    # previous traced invocation left enabled so events don't accumulate.
    obs.disable()
    obs.clear_context()
    code = main([
        "cluster", "--hosts", "2", "--host-mib", "512", "--epochs", "3",
        "--seed", str(seed), "--trace-out", str(out_dir),
    ])
    assert code == 0


def test_diff_same_seed_reports_identical(tmp_path, capsys, _trace_env):
    _export_cluster(tmp_path / "a", seed=42)
    _export_cluster(tmp_path / "b", seed=42)
    capsys.readouterr()
    assert main(["diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 0
    out = capsys.readouterr().out
    assert "IDENTICAL" in out
    # Strict mode succeeds too: nothing diverged.
    assert main(["diff", str(tmp_path / "a"), str(tmp_path / "b"),
                 "--strict"]) == 0


def test_diff_seed_change_reports_attributed_deltas(tmp_path, capsys,
                                                    _trace_env):
    _export_cluster(tmp_path / "a", seed=42)
    _export_cluster(tmp_path / "c", seed=43)
    capsys.readouterr()
    assert main(["diff", str(tmp_path / "a"), str(tmp_path / "c")]) == 0
    out = capsys.readouterr().out
    assert "DIVERGED" in out
    assert "first mismatch at seq" in out
    # Strict mode turns divergence into a failing exit code for CI.
    assert main(["diff", str(tmp_path / "a"), str(tmp_path / "c"),
                 "--strict"]) == 1


def test_trace_out_prints_critical_path(tmp_path, capsys, _trace_env):
    _export_cluster(tmp_path / "trace", seed=42)
    out = capsys.readouterr().out
    assert "critical paths over" in out
    assert "where the time went" in out


def test_bench_compare_command(tmp_path, capsys):
    import json

    from repro.obs.bench import append_history

    report = {"fleet": {"serial_seconds": 2.0}}
    history = tmp_path / "history.jsonl"
    for _ in range(3):
        append_history(report, history)
    fresh = tmp_path / "fresh.json"

    fresh.write_text(json.dumps({"fleet": {"serial_seconds": 2.1}}))
    assert main(["bench", "compare", "--history", str(history),
                 "--fresh", str(fresh)]) == 0
    assert "no regressions" in capsys.readouterr().out

    fresh.write_text(json.dumps({"fleet": {"serial_seconds": 4.0}}))
    assert main(["bench", "compare", "--history", str(history),
                 "--fresh", str(fresh)]) == 0  # fail-soft by default
    assert "REGRESSION fleet.serial_seconds" in capsys.readouterr().out
    assert main(["bench", "compare", "--history", str(history),
                 "--fresh", str(fresh), "--strict"]) == 1
    capsys.readouterr()


def test_bench_compare_tolerates_missing_inputs(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["bench", "compare", "--history",
                 str(tmp_path / "h.jsonl"), "--fresh", str(missing)]) == 1
    assert "bench report not found" in capsys.readouterr().out
    missing.write_text('{"fleet": {"serial_seconds": 1.0}}')
    assert main(["bench", "compare", "--history",
                 str(tmp_path / "h.jsonl"), "--fresh", str(missing)]) == 0
    assert "no bench history" in capsys.readouterr().out
