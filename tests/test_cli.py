"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Gemini" in out
    assert "Redis" in out
    assert "Table 2" in out


def test_run_command(capsys):
    code = main([
        "run", "Shore", "--epochs", "4", "--fragment", "0.0",
        "-s", "Host-B-VM-B", "-s", "THP",
        "--guest-mib", "128", "--host-mib", "512",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Host-B-VM-B" in out
    assert "THP" in out
    assert "1.00x" in out


def test_run_unknown_workload():
    with pytest.raises(KeyError):
        main(["run", "nosuchworkload", "--epochs", "2"])


def test_experiment_choices_enforced():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "not-a-figure"])


def test_experiment_fig16_small(capsys):
    code = main([
        "experiment", "fig16", "--epochs", "6", "-w", "Shore",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 16" in out
    assert "EMA/HB" in out
