"""Tests for the live-migration engine: pre-copy schedule, cost
charging, page conservation and EPT alignment destroy/rebuild."""

import pytest

from repro.cluster import ClusterConfig
from repro.cluster.config import MigrationConfig
from repro.cluster.host import Host, resident_pages, resident_runs
from repro.cluster.migration import (
    MigrationEngine,
    MigrationInvariantError,
    precopy_schedule,
)
from repro.hypervisor.vm import PROCESS
from repro.metrics.alignment import alignment_report
from repro.tlb import costs
from repro.workloads import make_workload

FIVE_FAMILIES = ["THP", "Ingens", "HawkEye", "CA-paging", "Translation-Ranger"]


def _hosts(system="THP", check=True, host_mib=512):
    config = ClusterConfig(
        hosts=2,
        host_mib=host_mib,
        epochs=8,
        seed=42,
        system=system,
        migration=MigrationConfig(check_invariants=check),
    )
    return Host(0, config), Host(1, config), config


def _warm_source(src, workload="Redis", epochs=4):
    src.add_tenant(0, 192, make_workload(workload), 0)
    for epoch in range(epochs):
        src.step_epoch(epoch)


def _report(host, ordinal):
    vm = host.tenants[ordinal].vm
    return alignment_report(vm.guest.table(PROCESS), host.platform.ept(vm.id))


# ----------------------------------------------------------------------
# Pre-copy schedule
# ----------------------------------------------------------------------


def test_precopy_static_workload_converges_in_one_round():
    config = MigrationConfig(max_rounds=8, downtime_pages=64)
    rounds, copied, downtime = precopy_schedule(10_000, 0.0, config)
    assert rounds == 1
    assert copied == 10_000
    assert downtime == 0


def test_precopy_rounds_grow_with_write_rate():
    config = MigrationConfig(max_rounds=30, downtime_pages=64)
    results = [precopy_schedule(10_000, wf, config) for wf in (0.05, 0.2, 0.5)]
    rounds = [r for r, _, _ in results]
    copied = [c for _, c, _ in results]
    assert rounds == sorted(rounds) and rounds[0] < rounds[-1]
    assert copied == sorted(copied) and copied[0] < copied[-1]
    # Every converged schedule meets the downtime budget.
    assert all(d <= config.downtime_pages for _, _, d in results)


def test_precopy_hot_writer_hits_round_cap():
    config = MigrationConfig(max_rounds=4, downtime_pages=16)
    rounds, _, downtime = precopy_schedule(100_000, 0.9, config)
    assert rounds == config.max_rounds
    assert downtime > config.downtime_pages  # forced stop, long downtime


def test_precopy_pathological_write_fraction_is_clamped():
    config = MigrationConfig(max_rounds=8, downtime_pages=64)
    rounds, copied, _ = precopy_schedule(10_000, 5.0, config)
    assert rounds == config.max_rounds
    assert copied <= 10_000 * (1 + 0.95 * config.max_rounds)


# ----------------------------------------------------------------------
# Cost charging
# ----------------------------------------------------------------------

def test_migration_charges_source_ledger():
    src, dst, config = _hosts()
    _warm_source(src)
    ledger = src.platform.host.ledger
    baseline = ledger.snapshot()

    engine = MigrationEngine(config.migration)
    record = engine.migrate(0, src, dst, 4, "test")
    delta = ledger.delta_since(baseline)

    assert delta.count("migration_precopy") == record.copied_pages
    assert delta.cycles("migration_precopy") == pytest.approx(
        costs.PAGE_COPY_CYCLES * record.copied_pages
    )
    assert delta.count("migration_stopcopy") == record.downtime_pages
    assert delta.count("tlb_shootdown") == record.rounds
    # Pre-copy overlaps execution (background); the blackout copy and the
    # per-round shoot-downs stall the VM (sync).
    assert delta.background.get("migration_precopy") is not None
    assert delta.sync.get("migration_stopcopy") is not None
    assert record.total_cycles == pytest.approx(
        record.precopy_cycles + record.stopcopy_cycles + record.shootdown_cycles
    )


def test_migration_record_matches_resident_set():
    src, dst, config = _hosts()
    _warm_source(src)
    resident = resident_pages(src.tenants[0].vm)

    record = MigrationEngine(config.migration).migrate(0, src, dst, 4, "test")
    assert record.resident_pages == resident
    assert record.copied_pages >= resident  # round 1 plus dirty re-sends
    assert record.source == 0 and record.destination == 1
    assert record.reason == "test"


# ----------------------------------------------------------------------
# Page conservation (the --check-invariants debug flag)
# ----------------------------------------------------------------------

def test_migration_moves_tenant_and_conserves_pages():
    src, dst, config = _hosts()
    _warm_source(src)
    vm = src.tenants[0].vm
    runs = resident_runs(vm)
    src_free_before = src.platform.memory.free_pages

    MigrationEngine(config.migration).migrate(0, src, dst, 4, "test")

    assert 0 not in src.tenants and 0 in dst.tenants
    assert vm.id not in src.platform.vms
    # Source frames were released...
    assert src.platform.memory.free_pages > src_free_before
    # ...and the destination re-backed the identical resident set.
    moved = dst.tenants[0].vm
    assert resident_runs(moved) == runs
    ept = dst.platform.ept(moved.id)
    for start, count in runs:
        for gpn in range(start, start + count):
            assert ept.translate(gpn) is not None


def test_invariant_check_catches_lost_pages():
    src, dst, config = _hosts()
    _warm_source(src)
    from repro.cluster.migration import migrate_in, migrate_out

    tenant, state, runs, _, _ = migrate_out(src, 0, config.migration)
    # Lose the last run in transit: the destination re-backs less than
    # the resident set, which the conservation check must flag.
    with pytest.raises(MigrationInvariantError):
        migrate_in(dst, tenant, state, runs[:-1], config.migration)


def test_invariant_check_is_opt_in():
    src, dst, config = _hosts(check=False)
    _warm_source(src)
    assert config.migration.check_invariants is False
    record = MigrationEngine(config.migration).migrate(0, src, dst, 4, "test")
    assert record.resident_pages > 0


# ----------------------------------------------------------------------
# Post-migration alignment across the five policy families
# ----------------------------------------------------------------------

@pytest.mark.parametrize("system", FIVE_FAMILIES)
def test_migration_destroys_then_rebuilds_alignment(system):
    src, dst, config = _hosts(system=system)
    _warm_source(src)
    before = _report(src, 0)
    assert before.host_huge > 0, "source should build huge backing first"

    MigrationEngine(config.migration).migrate(0, src, dst, 4, "test")
    after = _report(dst, 0)
    # The EPT does not travel: the destination demand-faults the resident
    # set, so host-side huge backing collapses at switch-over...
    assert after.host_huge < before.host_huge
    # ...while the guest's own page table is untouched by the move.
    assert after.guest_huge == before.guest_huge

    for epoch in (4, 5):
        dst.step_epoch(epoch)
    rebuilt = _report(dst, 0)
    # ...and the destination's coalescing policy rebuilds it at its own
    # pace from the destination's memory state.
    assert rebuilt.host_huge > after.host_huge
