"""Tests for the cluster engine: end-to-end runs, serial/parallel
determinism, placement outcomes and the cached entry point."""

from dataclasses import replace

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    FleetResult,
    fleet_key,
    run_cluster,
)
from repro.cluster.config import ConsolidationConfig, MigrationConfig
from repro.exec import ResultCache

SMALL = ClusterConfig(
    hosts=3,
    host_mib=512,
    epochs=6,
    seed=7,
    migration=MigrationConfig(check_invariants=True),
)


def test_end_to_end_small_fleet():
    result = ClusterSimulation(SMALL).run()
    assert result.hosts == 3 and result.epochs == 6
    # Every host reports every epoch.
    assert len(result.host_epochs) == 3 * 6
    assert result.tenant_epochs, "churn should land tenants that run"
    assert 0.0 <= result.fleet_fmfi <= 1.0
    assert 0.0 <= result.fleet_well_aligned_rate <= 1.0
    assert result.mean_throughput > 0.0
    assert set(result.host_fmfi()) == {0, 1, 2}
    for host, rate in result.alignment_distribution().items():
        assert 0 <= host < 3
        assert 0.0 <= rate <= 1.0


def test_final_host_states_are_gathered():
    sim = ClusterSimulation(SMALL)
    sim.run()
    assert len(sim.hosts) == 3
    total_tenants = sum(len(host.tenants) for host in sim.hosts)
    live = len(sim._vm_host)
    assert total_tenants == live
    for ordinal, index in sim._vm_host.items():
        assert ordinal in sim.hosts[index].tenants


def test_zero_hosts_rejected():
    with pytest.raises(ValueError):
        ClusterSimulation(ClusterConfig(hosts=0))


def test_serial_and_parallel_runs_are_identical():
    # The determinism contract: same seed, same results, any worker count.
    serial = ClusterSimulation(SMALL).run(workers=1)
    parallel = ClusterSimulation(SMALL).run(workers=2)
    assert serial == parallel


def test_consolidation_migrates_and_records():
    config = replace(SMALL, hosts=4, epochs=8)
    result = ClusterSimulation(config).run()
    assert result.migration_count > 0
    for record in result.migrations:
        assert record.source != record.destination
        assert record.resident_pages > 0
        assert record.rounds >= 1
        assert record.copied_pages >= record.resident_pages
        assert record.total_cycles > 0


def test_alignment_aware_beats_first_fit_on_aged_fleet():
    # The acceptance scenario: a THP fleet with a host-age fragmentation
    # gradient.  First-fit packs the aged hosts and collocates tenants on
    # shared coalescing budgets; alignment-aware spreads contention and
    # lands VMs where aligned backing is attainable.
    base = ClusterConfig(
        hosts=6,
        host_mib=768,
        epochs=10,
        seed=42,
        system="THP",
        fragment_host=0.9,
        consolidation=ConsolidationConfig(every=0),
    )
    first_fit = ClusterSimulation(replace(base, placement="first-fit")).run()
    aware = ClusterSimulation(replace(base, placement="alignment-aware")).run()
    assert aware.fleet_well_aligned_rate > first_fit.fleet_well_aligned_rate


def test_fleet_key_ignores_fast_path_flags():
    config = ClusterConfig(hosts=2, epochs=4)
    assert fleet_key(config) == fleet_key(replace(config, batch_faults=False))
    assert fleet_key(config) != fleet_key(replace(config, seed=1))
    assert fleet_key(config) != fleet_key(replace(config, placement="best-fit"))


def test_run_cluster_caches_results(tmp_path):
    config = replace(SMALL, epochs=4)
    cache = ResultCache(tmp_path, expected=FleetResult)
    first = run_cluster(config, cache=cache)
    assert cache.stats.stores == 1
    second = run_cluster(config, cache=cache)
    assert cache.stats.hits == 1
    assert first == second


def test_to_dict_is_json_friendly():
    import json

    result = run_cluster(replace(SMALL, epochs=4), cache=None)
    payload = result.to_dict()
    assert json.dumps(payload)
    assert payload["hosts"] == SMALL.hosts
    assert "fleet_fmfi" in payload
