"""Tests for the cluster engine: end-to-end runs, serial/parallel
determinism, placement outcomes and the cached entry point."""

from dataclasses import replace

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    FleetResult,
    fleet_key,
    run_cluster,
)
from repro.cluster.config import ConsolidationConfig, MigrationConfig
from repro.exec import ResultCache

SMALL = ClusterConfig(
    hosts=3,
    host_mib=512,
    epochs=6,
    seed=7,
    migration=MigrationConfig(check_invariants=True),
)


def test_end_to_end_small_fleet():
    result = ClusterSimulation(SMALL).run()
    assert result.hosts == 3 and result.epochs == 6
    # Every host reports every epoch.
    assert len(result.host_epochs) == 3 * 6
    assert result.tenant_epochs, "churn should land tenants that run"
    assert 0.0 <= result.fleet_fmfi <= 1.0
    assert 0.0 <= result.fleet_well_aligned_rate <= 1.0
    assert result.mean_throughput > 0.0
    assert set(result.host_fmfi()) == {0, 1, 2}
    for host, rate in result.alignment_distribution().items():
        assert 0 <= host < 3
        assert 0.0 <= rate <= 1.0


def test_final_host_states_are_gathered():
    sim = ClusterSimulation(SMALL)
    sim.run()
    assert len(sim.hosts) == 3
    total_tenants = sum(len(host.tenants) for host in sim.hosts)
    live = len(sim._vm_host)
    assert total_tenants == live
    for ordinal, index in sim._vm_host.items():
        assert ordinal in sim.hosts[index].tenants


def test_zero_hosts_rejected():
    with pytest.raises(ValueError):
        ClusterSimulation(ClusterConfig(hosts=0))


def test_serial_and_parallel_runs_are_identical(monkeypatch):
    # The determinism contract: same seed, same results, any worker count.
    # SMALL has fewer hosts than the parallel threshold, so force the
    # pool on to genuinely exercise the fused wire protocol.
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    config = replace(SMALL, adaptive_parallel=False)
    serial = ClusterSimulation(config).run(workers=1)
    parallel = ClusterSimulation(config).run(workers=2)
    assert serial == parallel


def test_fused_matches_reference_protocol():
    # The fused single-round-trip protocol must be a pure execution
    # strategy: byte-identical results to the per-event blocking path.
    reference = ClusterSimulation(
        replace(SMALL, fused_epochs=False, view_deltas=False)
    ).run(workers=1)
    fused = ClusterSimulation(SMALL).run(workers=1)
    assert reference == fused


@pytest.mark.parametrize("spool", [1, 3, 100])
@pytest.mark.parametrize("deltas", [True, False])
def test_parallel_identical_across_spool_and_delta_knobs(
    monkeypatch, spool, deltas
):
    # Spool drains must splice records back in reference order at every
    # drain boundary, and view deltas must reconstruct exact views.
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    serial = ClusterSimulation(SMALL).run(workers=1)
    config = replace(
        SMALL, spool_epochs=spool, view_deltas=deltas, adaptive_parallel=False
    )
    parallel = ClusterSimulation(config).run(workers=2)
    assert serial == parallel


def test_tiny_fleet_never_spawns_a_pool(monkeypatch):
    # Three hosts sit under the parallel threshold: even an explicit
    # worker request degrades to the in-process pool.
    monkeypatch.delenv("REPRO_MIN_PARALLEL", raising=False)
    sim = ClusterSimulation(SMALL)
    assert sim._effective_workers(4, adaptive=False) == 1
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    assert sim._effective_workers(4, adaptive=False) == 4


def test_serial_run_reports_zero_ipc():
    sim = ClusterSimulation(SMALL)
    sim.run(workers=1)
    assert sim.ipc_bytes_per_epoch == 0.0
    assert sim.ipc_peer_bytes == 0


def test_parallel_run_counts_ipc_bytes(monkeypatch):
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    sim = ClusterSimulation(replace(SMALL, adaptive_parallel=False))
    sim.run(workers=2)
    if len(sim.ipc_bytes_epochs) != SMALL.epochs:  # pragma: no cover
        pytest.skip("sandbox cannot fork")
    assert sim.ipc_bytes_per_epoch > 0.0


def test_view_deltas_reconstruct_summaries():
    from repro.cluster.host import Host, apply_view_delta
    from repro.workloads import make_workload

    host = Host(0, replace(SMALL, hosts=1))
    view = host.publish_view()
    assert view == host.summary()
    host.add_tenant(0, 64, make_workload("Redis"), epoch=0)
    kind, *payload = host.publish_view_payload()
    assert kind == "d"
    index, mask, values = payload
    assert index == host.index and mask != 0
    assert apply_view_delta(view, mask, values) == host.summary()
    # A quiet host publishes an empty delta, not a full view.
    kind2, _, mask2, values2 = host.publish_view_payload()
    assert kind2 == "d" and mask2 == 0 and values2 == ()


def test_consolidation_migrates_and_records():
    config = replace(SMALL, hosts=4, epochs=8)
    result = ClusterSimulation(config).run()
    assert result.migration_count > 0
    for record in result.migrations:
        assert record.source != record.destination
        assert record.resident_pages > 0
        assert record.rounds >= 1
        assert record.copied_pages >= record.resident_pages
        assert record.total_cycles > 0


def test_alignment_aware_beats_first_fit_on_aged_fleet():
    # The acceptance scenario: a THP fleet with a host-age fragmentation
    # gradient.  First-fit packs the aged hosts and collocates tenants on
    # shared coalescing budgets; alignment-aware spreads contention and
    # lands VMs where aligned backing is attainable.
    base = ClusterConfig(
        hosts=6,
        host_mib=768,
        epochs=10,
        seed=42,
        system="THP",
        fragment_host=0.9,
        consolidation=ConsolidationConfig(every=0),
    )
    first_fit = ClusterSimulation(replace(base, placement="first-fit")).run()
    aware = ClusterSimulation(replace(base, placement="alignment-aware")).run()
    assert aware.fleet_well_aligned_rate > first_fit.fleet_well_aligned_rate


def test_fleet_key_ignores_fast_path_flags():
    from repro.cluster.engine import EXECUTION_STRATEGY_FIELDS

    config = ClusterConfig(hosts=2, epochs=4)
    assert fleet_key(config) == fleet_key(replace(config, batch_faults=False))
    assert fleet_key(config) == fleet_key(
        replace(
            config,
            fused_epochs=False,
            view_deltas=False,
            spool_epochs=3,
            adaptive_parallel=False,
            wire_compression=False,
        )
    )
    for field in EXECUTION_STRATEGY_FIELDS:
        assert hasattr(config, field)
    assert fleet_key(config) != fleet_key(replace(config, seed=1))
    assert fleet_key(config) != fleet_key(replace(config, placement="best-fit"))


def test_run_cluster_caches_results(tmp_path):
    config = replace(SMALL, epochs=4)
    cache = ResultCache(tmp_path, expected=FleetResult)
    first = run_cluster(config, cache=cache)
    assert cache.stats.stores == 1
    second = run_cluster(config, cache=cache)
    assert cache.stats.hits == 1
    assert first == second


def test_to_dict_is_json_friendly():
    import json

    result = run_cluster(replace(SMALL, epochs=4), cache=None)
    payload = result.to_dict()
    assert json.dumps(payload)
    assert payload["hosts"] == SMALL.hosts
    assert "fleet_fmfi" in payload
