"""Tests for the placement policy registry and decision rules."""

import pytest

from repro.cluster.host import HostView
from repro.cluster.placement import (
    PLACEMENTS,
    AlignmentAwarePlacement,
    make_placement,
    placement_names,
)


def view(
    index,
    available=10_000,
    aligned_free=0,
    largest=0,
    misaligned=0,
    residents=(),
):
    return HostView(
        index=index,
        total_pages=131_072,
        free_pages=available,
        available_pages=available,
        aligned_free_pages=aligned_free,
        largest_free_region=largest,
        misaligned_huge=misaligned,
        residents=tuple(residents),
    )


def test_registry_names_and_factory():
    assert set(placement_names()) == {
        "first-fit",
        "best-fit",
        "worst-fit",
        "contiguity-fit",
        "alignment-aware",
    }
    for name in placement_names():
        assert make_placement(name).name == name
    assert PLACEMENTS["first-fit"]().name == "first-fit"


def test_unknown_placement_raises():
    with pytest.raises(ValueError, match="unknown placement"):
        make_placement("nope")


def test_infeasible_hosts_are_filtered():
    views = [view(0, available=100), view(1, available=5_000)]
    assert make_placement("first-fit").select(views, 1_000) == 1
    assert make_placement("first-fit").select(views, 50_000) is None


def test_exclusion_removes_source_host():
    views = [view(0), view(1)]
    policy = make_placement("first-fit")
    assert policy.select(views, 100, exclude=frozenset({0})) == 1
    assert policy.select(views, 100, exclude=frozenset({0, 1})) is None


def test_first_fit_prefers_lowest_index():
    views = [view(2), view(0), view(1)]
    assert make_placement("first-fit").select(views, 100) == 0


def test_best_and_worst_fit():
    views = [view(0, available=9_000), view(1, available=2_000), view(2, available=5_000)]
    assert make_placement("best-fit").select(views, 1_000) == 1
    assert make_placement("worst-fit").select(views, 1_000) == 0


def test_contiguity_fit_prefers_largest_hole():
    views = [view(0, largest=512), view(1, largest=4_096), view(2, largest=1_024)]
    assert make_placement("contiguity-fit").select(views, 100) == 1


def test_alignment_aware_spreads_contention_first():
    # Host 1 has more aligned capacity but already runs a tenant; the
    # per-host coalescing budgets make the empty host the better bet.
    views = [
        view(0, aligned_free=20_000),
        view(1, aligned_free=60_000, residents=((7, 512),)),
    ]
    assert make_placement("alignment-aware").select(views, 100) == 0


def test_alignment_aware_breaks_ties_by_aligned_capacity():
    views = [view(0, aligned_free=10_000), view(1, aligned_free=30_000)]
    assert make_placement("alignment-aware").select(views, 100) == 1


def test_alignment_aware_penalizes_standing_misalignment():
    penalty = AlignmentAwarePlacement.misaligned_penalty_pages
    views = [
        view(0, aligned_free=10_000, misaligned=0),
        view(1, aligned_free=10_000 + penalty, misaligned=2),
    ]
    assert make_placement("alignment-aware").select(views, 100) == 0


def test_ties_break_to_lowest_index():
    views = [view(1), view(0)]
    for name in placement_names():
        assert make_placement(name).select(views, 100) == 0
