"""Tests for the seeded VM churn trace generator."""

from dataclasses import replace

from repro.cluster.config import ChurnConfig, ClusterConfig
from repro.cluster.trace import build_trace
from repro.workloads import make_workload


def _config(**kwargs):
    kwargs.setdefault("epochs", 12)
    return ClusterConfig(hosts=4, host_mib=512, **kwargs)


def test_same_seed_same_trace():
    assert build_trace(_config(seed=9)) == build_trace(_config(seed=9))


def test_different_seed_different_trace():
    assert build_trace(_config(seed=9)) != build_trace(_config(seed=10))


def test_initial_vms_arrive_at_epoch_zero():
    config = _config()
    first = [e for e in build_trace(config) if e.epoch == 0]
    assert len(first) >= config.churn.initial_vms
    assert all(e.kind == "arrive" for e in first)


def test_ordinals_are_unique_and_arrive_first():
    trace = build_trace(_config())
    arrivals = [e.ordinal for e in trace if e.kind == "arrive"]
    assert len(arrivals) == len(set(arrivals))
    born = {}
    for event in trace:
        if event.kind == "arrive":
            born[event.ordinal] = event.epoch
        else:
            # Operations only target live VMs, never in the arrival epoch
            # (the grace epoch: a VM runs at least once before churn).
            assert event.ordinal in born
            assert event.epoch > born[event.ordinal]


def test_departed_vms_stay_gone():
    trace = build_trace(_config(epochs=20, seed=3))
    departed = set()
    for event in trace:
        assert event.ordinal not in departed
        if event.kind == "depart":
            departed.add(event.ordinal)
    assert departed, "departure rate should retire some VMs in 20 epochs"


def test_live_population_respects_max_vms():
    churn = ChurnConfig(initial_vms=8, arrivals_per_epoch=3.0, max_vms=10)
    config = _config(epochs=20, churn=churn)
    live = 0
    for event in build_trace(config):
        if event.kind == "arrive":
            live += 1
        elif event.kind == "depart":
            live -= 1
        assert live <= churn.max_vms


def test_guest_size_covers_workload_footprint():
    config = _config(epochs=16)
    for event in build_trace(config):
        if event.kind != "arrive":
            continue
        footprint = make_workload(event.workload).footprint_mib
        assert event.guest_mib >= 2 * int(footprint)


def test_resize_events_carry_fraction():
    churn = replace(ClusterConfig().churn, resize_rate=0.5)
    trace = build_trace(_config(epochs=16, churn=churn))
    resizes = [e for e in trace if e.kind == "resize"]
    assert resizes
    assert all(0.0 < e.delta_fraction for e in resizes)
