"""Integration tests: the paper's headline claims at reduced scale.

These are quick (seconds-scale) versions of the checks the benchmark
harness performs at full scale; each pins one structural claim of the
paper so a regression anywhere in the stack is caught by `pytest tests/`.
"""

import pytest

from repro.sim import Simulation, SimulationConfig
from repro.workloads import make_workload
from repro.workloads.microbench import RandomAccessMicrobench

FRAG = SimulationConfig(epochs=12, fragment_guest=0.8, fragment_host=0.8)


def run(workload_name, system, config=FRAG, primer=None):
    return Simulation(
        make_workload(workload_name), system=system, config=config, primer=primer
    ).run_single()


@pytest.fixture(scope="module")
def redis_results():
    systems = [
        "Host-B-VM-B", "Misalignment", "THP", "Ingens", "HawkEye",
        "Translation-Ranger", "Gemini",
    ]
    return {system: run("Redis", system) for system in systems}


def test_misaligned_huge_pages_barely_help(redis_results):
    """Section 2.2/2.3: huge pages in one layer only improve performance
    only incrementally over base pages."""
    base = redis_results["Host-B-VM-B"]
    misaligned = redis_results["Misalignment"]
    assert 1.0 < misaligned.throughput / base.throughput < 1.35
    # Misaligned huge pages do not reduce TLB misses.
    assert misaligned.tlb_misses == pytest.approx(base.tlb_misses, rel=0.05)


def test_gemini_best_throughput(redis_results):
    gemini = redis_results["Gemini"]
    for system, result in redis_results.items():
        if system != "Gemini":
            assert gemini.throughput >= result.throughput, system


def test_gemini_highest_alignment(redis_results):
    gemini = redis_results["Gemini"]
    assert gemini.well_aligned_rate > 0.5
    for system in ("THP", "Ingens", "HawkEye", "Translation-Ranger"):
        assert gemini.well_aligned_rate >= redis_results[system].well_aligned_rate


def test_gemini_fewest_tlb_misses(redis_results):
    gemini = redis_results["Gemini"]
    for system in ("Host-B-VM-B", "THP", "Ingens", "HawkEye"):
        assert redis_results[system].tlb_misses > 1.2 * gemini.tlb_misses, system


def test_ranger_migrations_negate_benefits(redis_results):
    """Section 6.2: Translation-Ranger's page migrations cost it all of
    its translation savings."""
    base = redis_results["Host-B-VM-B"]
    ranger = redis_results["Translation-Ranger"]
    assert ranger.throughput < 1.2 * base.throughput
    # Ranger ends below every other coalescing system.
    for system in ("THP", "Ingens", "HawkEye", "Gemini"):
        assert ranger.throughput <= redis_results[system].throughput, system
    # Yet it does create many huge pages.
    assert ranger.huge_pages > redis_results["THP"].huge_pages


def test_gemini_reduces_latency(redis_results):
    base = redis_results["Host-B-VM-B"]
    gemini = redis_results["Gemini"]
    assert gemini.mean_latency < 0.85 * base.mean_latency
    assert gemini.p99_latency < 0.95 * base.p99_latency


def test_microbench_alignment_effect():
    """Figure 2: only well-aligned huge pages cut TLB misses."""
    config = SimulationConfig(epochs=5, noise_rate=0.0)
    bench = {}
    for system in ("Host-B-VM-B", "Host-H-VM-H", "Host-B-VM-H"):
        result = Simulation(
            RandomAccessMicrobench(32.0), system=system, config=config
        ).run_single()
        bench[system] = result
    assert bench["Host-H-VM-H"].tlb_misses < 0.05 * bench["Host-B-VM-B"].tlb_misses
    assert bench["Host-B-VM-H"].tlb_misses == pytest.approx(
        bench["Host-B-VM-B"].tlb_misses, rel=0.05
    )


def test_reused_vm_bucket_advantage():
    """Section 6.3: after a big workload finishes in the VM, Gemini reuses
    its well-aligned huge pages; baselines splinter them."""
    config = SimulationConfig(epochs=12, fragment_guest=0.3, fragment_host=0.3)
    gemini = run("Masstree", "Gemini", config=config, primer=make_workload("SVM"))
    ingens = run("Masstree", "Ingens", config=config, primer=make_workload("SVM"))
    assert gemini.throughput > ingens.throughput
    assert gemini.well_aligned_rate > ingens.well_aligned_rate
    assert gemini.gemini_stats.get("bucket_reuse_rate", 0.0) > 0.3


def test_non_tlb_sensitive_overhead_negligible():
    """Section 6.5: Gemini introduces negligible overhead where there is
    nothing to gain."""
    base = run("Shore", "Host-B-VM-B")
    gemini = run("Shore", "Gemini")
    assert gemini.throughput == pytest.approx(base.throughput, rel=0.10)
