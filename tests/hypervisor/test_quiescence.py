"""Quiescent-epoch skipping: fingerprint recording and invalidation.

A ``touch_range`` replay that was fully covered by region-translated
skips records ``(start, npages) -> invalidation_gen`` in the platform's
quiescent cache; a later replay with a matching fingerprint returns
without consulting the index at all.  These tests pin the recording
conditions and prove that every event that can make a replay observable
again — guest unmap, EPT unmap, noise hooks, VM detach — either bumps
the generation or bypasses/clears the cache, forcing a full replay.
"""

import pytest

from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.policies.base import HugePagePolicy


class HostHugePolicy(HugePagePolicy):
    name = "host-huge-test"

    def wants_huge_fault(self, client, vregion):
        return True


def make_platform(host_regions=64, host_policy=None):
    return Platform(host_regions * PAGES_PER_HUGE, host_policy or HugePagePolicy())


def touched_vm(platform, regions=2):
    """A VM with a fully touched, region-aligned heap of *regions* regions."""
    vm = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
    vma = vm.mmap(regions * PAGES_PER_HUGE, "heap")
    platform.touch_range(vm, vma.start, vma.npages)
    return vm, vma


def arm_bomb(index):
    """Make any further index consultation explode."""

    def bomb(vregion):
        raise AssertionError("index consulted despite quiescent fingerprint")

    index.region_translated = bomb


def test_retouch_records_fingerprint_and_skips_index():
    platform = make_platform()
    vm, vma = touched_vm(platform)
    key = (vma.start, vma.npages)
    # The populating walk faulted, so nothing is recorded yet.
    assert key not in platform._quiescent.get(vm.id, {})
    platform.touch_range(vm, vma.start, vma.npages)
    index = platform.index_of(vm)
    assert platform._quiescent[vm.id][key] == index.invalidation_gen
    # A matching fingerprint short-circuits before any region query.
    arm_bomb(index)
    platform.touch_range(vm, vma.start, vma.npages)


def test_partially_faulted_walk_is_never_recorded():
    platform = make_platform()
    vm = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
    vma = vm.mmap(2 * PAGES_PER_HUGE, "heap")
    platform.touch_range(vm, vma.start, PAGES_PER_HUGE)
    # This walk skips the first region but faults the second: not quiescent.
    platform.touch_range(vm, vma.start, vma.npages)
    assert (vma.start, vma.npages) not in platform._quiescent.get(vm.id, {})


def test_guest_unmap_bumps_generation_and_forces_replay():
    platform = make_platform()
    vm, vma = touched_vm(platform)
    platform.touch_range(vm, vma.start, vma.npages)
    index = platform.index_of(vm)
    recorded = platform._quiescent[vm.id][(vma.start, vma.npages)]
    vm.munmap("heap")
    assert index.invalidation_gen != recorded
    # The replay after remapping must walk (and fault) again.
    vma2 = vm.mmap(2 * PAGES_PER_HUGE, "heap")
    before = vm.guest.ledger.count("base_fault")
    platform.touch_range(vm, vma2.start, vma2.npages)
    assert vm.guest.ledger.count("base_fault") == before + vma2.npages


def test_ept_unmap_bumps_generation_and_forces_replay():
    platform = make_platform()
    vm, vma = touched_vm(platform)
    platform.touch_range(vm, vma.start, vma.npages)
    index = platform.index_of(vm)
    recorded = platform._quiescent[vm.id][(vma.start, vma.npages)]
    gpn = vm.translate(vma.start)
    platform.host.unmap_range(vm.id, gpn, 1)
    assert index.invalidation_gen != recorded
    before = platform.host.ledger.count("base_fault")
    platform.touch_range(vm, vma.start, vma.npages)
    assert platform.host.ledger.count("base_fault") == before + 1
    assert platform.host.translate(vm.id, gpn) is not None
    # The repaired range becomes quiescent again under the new generation.
    platform.touch_range(vm, vma.start, vma.npages)
    assert (
        platform._quiescent[vm.id][(vma.start, vma.npages)]
        == index.invalidation_gen
    )


def test_host_demote_preserves_quiescence_and_correctness():
    fast = make_platform(host_policy=HostHugePolicy())
    reference = make_platform(host_policy=HostHugePolicy())
    reference.fast_kernels = False
    vms = {}
    for platform in (fast, reference):
        vm, vma = touched_vm(platform)
        platform.touch_range(vm, vma.start, vma.npages)
        gpregion = vm.translate(vma.start) // PAGES_PER_HUGE
        assert platform.ept(vm).is_huge(gpregion)
        platform.host.demote(vm.id, gpregion)
        platform.touch_range(vm, vma.start, vma.npages)
        vms[platform] = (vm, vma)
    # Demotion keeps every translation alive, so the cached skip stays
    # valid — and matches the reference platform's replay exactly.
    for (vm_f, _), (vm_r, _) in [(vms[fast], vms[reference])]:
        assert dict(vm_f.guest.ledger.sync) == dict(vm_r.guest.ledger.sync)
        assert dict(fast.host.ledger.sync) == dict(reference.host.ledger.sync)
        for vpn in range(vms[fast][1].start, vms[fast][1].start + 4):
            gpn_f, gpn_r = vm_f.translate(vpn), vm_r.translate(vpn)
            assert (gpn_f is None) == (gpn_r is None)
            assert fast.host.translate(vm_f.id, gpn_f) is not None


def test_noise_hook_without_horizon_bypasses_cache():
    platform = make_platform()
    vm, vma = touched_vm(platform)
    platform.touch_range(vm, vma.start, vma.npages)
    assert platform._quiescent[vm.id]
    calls = []
    platform.fault_hook = lambda victim: calls.append(victim)
    # A foreign fault hook with no act horizon forces the per-page path:
    # the cache must be neither consulted nor extended.
    index = platform.index_of(vm)
    arm = index.region_translated
    index.region_translated = lambda vregion: arm(vregion)
    vma2 = vm.mmap(8, "noise-probe")
    platform.touch_range(vm, vma2.start, vma2.npages)
    assert calls  # the hook really ran on the faults
    assert (vma2.start, vma2.npages) not in platform._quiescent[vm.id]


def test_detach_vm_clears_cache():
    platform = make_platform()
    vm, vma = touched_vm(platform)
    platform.touch_range(vm, vma.start, vma.npages)
    assert vm.id in platform._quiescent
    platform.detach_vm(vm)
    assert vm.id not in platform._quiescent


def test_fast_kernels_off_disables_cache():
    platform = make_platform()
    platform.fast_kernels = False
    vm, vma = touched_vm(platform)
    platform.touch_range(vm, vma.start, vma.npages)
    assert platform._quiescent == {}
    # Flipping off mid-flight clears any recorded fingerprints.
    platform.fast_kernels = True
    platform.touch_range(vm, vma.start, vma.npages)
    assert platform._quiescent[vm.id]
    platform.fast_kernels = False
    assert platform._quiescent == {}
