"""Unit tests for VM and Platform (nested fault path)."""

import pytest

from repro.hypervisor.platform import Platform
from repro.hypervisor.vm import PROCESS
from repro.mem.layout import PAGES_PER_HUGE
from repro.policies.base import HugePagePolicy


class HostHugePolicy(HugePagePolicy):
    name = "host-huge-test"

    def wants_huge_fault(self, client, vregion):
        return True


def make_platform(host_regions=64, host_policy=None):
    return Platform(host_regions * PAGES_PER_HUGE, host_policy or HugePagePolicy())


def test_create_vm_assigns_ids_and_probe():
    platform = make_platform()
    vm1 = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
    vm2 = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy(), name="web")
    assert vm1.id == 0
    assert vm2.id == 1
    assert vm2.name == "web"
    assert vm1.guest.alignment_probe is not None
    assert vm1.guest.alignment_probe.__self__ is platform.ept(vm1)
    assert list(platform.iter_vms()) == [vm1, vm2]


def test_touch_faults_both_layers():
    platform = make_platform()
    vm = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
    vma = vm.mmap(100, "heap")
    hpn = platform.touch(vm, vma.start)
    gpn = vm.translate(vma.start)
    assert gpn is not None
    assert platform.ept(vm).translate(gpn) == hpn
    assert vm.guest.ledger.count("base_fault") == 1
    assert platform.host.ledger.count("base_fault") == 1


def test_touch_unmapped_raises():
    platform = make_platform()
    vm = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
    with pytest.raises(ValueError):
        platform.touch(vm, 12345)


def test_touch_is_idempotent():
    platform = make_platform()
    vm = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
    vma = vm.mmap(10, "heap")
    first = platform.touch(vm, vma.start)
    second = platform.touch(vm, vma.start)
    assert first == second
    assert vm.guest.ledger.count("base_fault") == 1


def test_touch_vma_touches_slice():
    platform = make_platform()
    vm = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
    vma = vm.mmap(100, "heap")
    platform.touch_vma(vm, vma, start=10, npages=20)
    table = vm.table()
    assert table.base_count == 20
    assert table.translate(vma.start + 10) is not None
    assert table.translate(vma.start + 9) is None


def test_host_huge_backing_aligned_with_guest_huge():
    """When both layers huge-fault from pristine memory the result is a
    well-aligned huge page (the Host-H-VM-H scenario of Figure 2)."""

    class GuestHuge(HugePagePolicy):
        name = "guest-huge-test"

        def wants_huge_fault(self, client, vregion):
            return True

    platform = make_platform(host_policy=HostHugePolicy())
    vm = platform.create_vm(8 * PAGES_PER_HUGE, GuestHuge())
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    platform.touch(vm, vma.start)
    gvregion = vma.start // PAGES_PER_HUGE
    assert vm.table().is_huge(gvregion)
    gpregion = vm.table().huge_target(gvregion)
    assert platform.ept(vm).is_huge(gpregion)


def test_munmap_frees_guest_but_not_host():
    platform = make_platform()
    vm = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
    vma = vm.mmap(50, "heap")
    platform.touch_vma(vm, vma)
    host_free_before = platform.memory.free_pages
    guest_free_before = vm.gpa_space.free_pages
    vm.munmap("heap")
    # Guest frames returned; host frames and EPT mappings untouched.
    assert vm.gpa_space.free_pages == guest_free_before + 50
    assert platform.memory.free_pages == host_free_before
    assert platform.ept(vm).base_count == 50
    assert vm.table().base_count == 0


def test_two_vms_are_isolated():
    platform = make_platform()
    vm1 = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
    vm2 = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
    vma1 = vm1.mmap(10, "a")
    vma2 = vm2.mmap(10, "a")
    h1 = platform.touch(vm1, vma1.start)
    h2 = platform.touch(vm2, vma2.start)
    assert h1 != h2  # distinct host frames
    assert platform.ept(vm1) is not platform.ept(vm2)


def test_with_mib_constructors():
    platform = Platform.with_mib(16, HugePagePolicy())
    assert platform.host_pages == 16 * 256
    vm = platform.create_vm_mib(4, HugePagePolicy())
    assert vm.guest_pages == 4 * 256


def test_vm_process_constant():
    assert PROCESS == 0
