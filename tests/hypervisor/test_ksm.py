"""Unit tests for the KSM daemon (Section 8 future-work extension)."""

import pytest

from repro.hypervisor.ksm import KsmDaemon
from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.policies.base import HugePagePolicy


class HostHuge(HugePagePolicy):
    name = "host-huge"

    def wants_huge_fault(self, client, vregion):
        return True


def make_setup(host_policy=None, vms=2):
    platform = Platform(128 * PAGES_PER_HUGE, host_policy or HugePagePolicy())
    out = []
    for _ in range(vms):
        vm = platform.create_vm(16 * PAGES_PER_HUGE, HugePagePolicy())
        vma = vm.mmap(2 * PAGES_PER_HUGE, "heap")
        platform.touch_vma(vm, vma)
        out.append(vm)
    return platform, out


def test_validation():
    platform, _ = make_setup()
    with pytest.raises(ValueError):
        KsmDaemon(platform, mergeable_fraction=1.5)


def test_merging_frees_host_frames():
    platform, _vms = make_setup()
    daemon = KsmDaemon(platform, mergeable_fraction=0.3)
    free_before = platform.memory.free_pages
    merged = daemon.scan()
    assert merged > 0
    assert platform.memory.free_pages == free_before + merged
    assert daemon.pages_saved == merged


def test_merged_pages_share_frames():
    platform, vms = make_setup()
    daemon = KsmDaemon(platform, mergeable_fraction=0.5)
    daemon.scan()
    # Some frame must now back more than one gpn (across the two VMs).
    backing: dict[int, int] = {}
    for vm in vms:
        for _gpn, hpn in platform.ept(vm.id).base_mappings():
            backing[hpn] = backing.get(hpn, 0) + 1
    assert max(backing.values()) >= 2


def test_zero_fraction_merges_nothing():
    platform, _ = make_setup()
    daemon = KsmDaemon(platform, mergeable_fraction=0.0)
    assert daemon.scan() == 0


def test_huge_pages_protect_subpages_without_break_huge():
    platform, _vms = make_setup(host_policy=HostHuge())
    assert platform.host.huge_mapping_count() > 0
    daemon = KsmDaemon(platform, mergeable_fraction=0.5, break_huge=False)
    daemon.scan()
    assert daemon.demoted_huge_pages == 0
    # Huge-mapped regions were never touched.
    assert platform.host.huge_mapping_count() > 0


def test_break_huge_demotes_then_merges():
    platform, _vms = make_setup(host_policy=HostHuge())
    huge_before = platform.host.huge_mapping_count()
    daemon = KsmDaemon(
        platform, mergeable_fraction=0.5, break_huge=True, spare_aligned=False
    )
    daemon.scan()
    assert daemon.demoted_huge_pages > 0
    assert platform.host.huge_mapping_count() < huge_before
    assert daemon.merged_pages > 0


def test_spare_aligned_keeps_well_aligned_pairs():
    platform, vms = make_setup(host_policy=HostHuge())
    vm = vms[0]
    # Mark one pair well-aligned: a guest huge page over a host-huge region.
    gpregion, _ = next(iter(platform.ept(vm.id).huge_mappings()))
    vm.gpa_space.alloc_range(8 * PAGES_PER_HUGE, PAGES_PER_HUGE)
    vm.guest.table(PROCESS).map_huge(8, gpregion)
    daemon = KsmDaemon(
        platform, mergeable_fraction=0.9, break_huge=True, spare_aligned=True
    )
    daemon.scan()
    assert platform.ept(vm.id).is_huge(gpregion)  # the aligned pair survived


def _merged_gpns(platform, vms, seed):
    """Scan with a fresh daemon; returns the set of (vm, gpn) pairs that
    were remapped onto shared frames."""
    before = {
        (vm.id, gpn): hpn
        for vm in vms
        for gpn, hpn in platform.ept(vm.id).base_mappings()
    }
    daemon = KsmDaemon(platform, mergeable_fraction=0.3, seed=seed)
    assert daemon.scan() > 0
    after = {
        (vm.id, gpn): hpn
        for vm in vms
        for gpn, hpn in platform.ept(vm.id).base_mappings()
    }
    return {key for key, hpn in before.items() if after[key] != hpn}


def test_seed_selects_the_content_population():
    # Regression: the daemon's seed used to be dead — content hashes came
    # from a fresh unseeded RNG, so every seed merged the same pages.
    merged_by_seed = {}
    for seed in (0, 1, 2):
        platform, vms = make_setup()
        merged_by_seed[seed] = _merged_gpns(platform, vms, seed)
    assert merged_by_seed[0] != merged_by_seed[1]
    assert merged_by_seed[1] != merged_by_seed[2]


def test_seed_zero_is_deterministic():
    populations = []
    for _ in range(2):
        platform, vms = make_setup()
        populations.append(_merged_gpns(platform, vms, 0))
    assert populations[0] == populations[1]


def test_scan_emits_obs_counters():
    from repro import obs

    platform, _vms = make_setup()
    daemon = KsmDaemon(platform, mergeable_fraction=0.3)
    obs.enable()
    try:
        merged = daemon.scan()
        counters = obs.get().counters
        assert counters["ksm.merged_pages"] == merged > 0
    finally:
        obs.disable()
        obs.clear_context()
