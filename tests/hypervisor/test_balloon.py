"""Unit tests for the balloon driver (Section 8 future-work extension)."""

import pytest

from repro.hypervisor.balloon import BalloonDriver
from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.policies.base import HugePagePolicy


class HostHuge(HugePagePolicy):
    name = "host-huge"

    def wants_huge_fault(self, client, vregion):
        return True


def make_setup(host_policy=None):
    platform = Platform(64 * PAGES_PER_HUGE, host_policy or HugePagePolicy())
    vm = platform.create_vm(16 * PAGES_PER_HUGE, HugePagePolicy())
    return platform, vm


def test_inflate_reclaims_host_frames():
    platform, vm = make_setup()
    vma = vm.mmap(100, "heap")
    platform.touch_vma(vm, vma)
    vm.munmap("heap")  # guest frees; host backing persists
    host_free_before = platform.memory.free_pages
    balloon = BalloonDriver(platform, vm, alignment_aware=False)
    reclaimed = balloon.inflate(100)
    assert reclaimed == 100
    assert platform.memory.free_pages == host_free_before + 100
    assert balloon.inflated_pages == 100


def test_inflate_untouched_pages_reclaims_nothing():
    platform, vm = make_setup()
    balloon = BalloonDriver(platform, vm, alignment_aware=False)
    reclaimed = balloon.inflate(10)
    assert reclaimed == 0  # the pages were never host-backed
    assert balloon.inflated_pages == 10


def test_ballooned_pages_unavailable_to_guest():
    platform, vm = make_setup()
    balloon = BalloonDriver(platform, vm, alignment_aware=False)
    free_before = vm.gpa_space.free_pages
    balloon.inflate(50)
    assert vm.gpa_space.free_pages == free_before - 50
    balloon.deflate()
    assert vm.gpa_space.free_pages == free_before
    assert balloon.inflated_pages == 0


def test_naive_balloon_demotes_huge_host_pages():
    platform, vm = make_setup(host_policy=HostHuge())
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    platform.touch_vma(vm, vma)
    vm.munmap("arr")
    ept = platform.ept(vm.id)
    assert ept.huge_count >= 1
    balloon = BalloonDriver(platform, vm, alignment_aware=False)
    balloon.inflate(2 * PAGES_PER_HUGE)
    assert balloon.demoted_huge_pages >= 1


def _aligned_pair_setup():
    """A well-aligned pair over gpa region 0 whose guest memory is free
    (as the bucket's custody would leave it), plus base-backed free guest
    memory elsewhere."""
    platform, vm = make_setup(host_policy=HostHuge())
    platform.host.fault(vm.id, 0, full_region=True)
    assert platform.ept(vm.id).is_huge(0)
    vm.gpa_space.alloc_range(2 * PAGES_PER_HUGE, PAGES_PER_HUGE)
    vm.guest.table(PROCESS).map_huge(2, 0)  # guest huge over gpa region 0
    for gpn in range(4 * PAGES_PER_HUGE, 5 * PAGES_PER_HUGE):
        platform.host.fault(vm.id, gpn, full_region=False)
    return platform, vm


def test_alignment_aware_balloon_spares_aligned_pages():
    """Gemini's pressure rule: with enough mis-aligned/base-backed free
    memory, well-aligned huge pages are not demoted."""
    platform, vm = _aligned_pair_setup()
    aware = BalloonDriver(platform, vm, alignment_aware=True)
    reclaimed = aware.inflate(PAGES_PER_HUGE // 2)
    assert aware.demoted_aligned_huge_pages == 0
    assert reclaimed > 0  # it still reclaimed (base-backed) memory

    # The naive policy, ballooning the lowest free pages, hits region 0
    # (fresh setup so the aware run's allocations don't mask the effect).
    platform, vm = _aligned_pair_setup()
    naive = BalloonDriver(platform, vm, alignment_aware=False)
    naive.inflate(2 * PAGES_PER_HUGE)  # enough to reach region 0's block
    assert naive.demoted_huge_pages >= 1


def test_deflated_pages_refault_on_touch():
    platform, vm = make_setup()
    vma = vm.mmap(20, "heap")
    platform.touch_vma(vm, vma)
    gpn = vm.translate(vma.start)
    vm.munmap("heap")
    balloon = BalloonDriver(platform, vm, alignment_aware=False)
    balloon.inflate(20)
    balloon.deflate()
    ept = platform.ept(vm.id)
    assert ept.translate(gpn) is None
    # The guest can reuse the memory; the host re-backs on fault.
    vma2 = vm.mmap(20, "heap2")
    platform.touch_vma(vm, vma2)
    assert vm.translate(vma2.start) is not None


def test_inflate_and_deflate_emit_obs_counters():
    from repro import obs

    platform, vm = make_setup(host_policy=HostHuge())
    vma = vm.mmap(PAGES_PER_HUGE, "arr")
    platform.touch_vma(vm, vma)
    vm.munmap("arr")
    balloon = BalloonDriver(platform, vm, alignment_aware=False)
    obs.enable()
    try:
        reclaimed = balloon.inflate(PAGES_PER_HUGE)
        counters = obs.get().counters
        assert counters["balloon.inflated_pages"] == PAGES_PER_HUGE
        assert counters["balloon.reclaimed_pages"] == reclaimed > 0
        assert counters["balloon.demoted_huge_pages"] >= 1
        released = balloon.deflate()
        assert obs.get().counters["balloon.deflated_pages"] == released > 0
    finally:
        obs.disable()
        obs.clear_context()
