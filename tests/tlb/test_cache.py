"""Unit tests for the trace-driven set-associative TLB."""

import pytest

from repro.mem.layout import PAGES_PER_HUGE
from repro.tlb.cache import SetAssociativeTLB


def test_construction_validation():
    with pytest.raises(ValueError):
        SetAssociativeTLB(entries=0)
    with pytest.raises(ValueError):
        SetAssociativeTLB(entries=16, ways=0)
    with pytest.raises(ValueError):
        SetAssociativeTLB(entries=10, ways=3)


def test_first_access_misses_then_hits():
    tlb = SetAssociativeTLB(entries=64, ways=4)
    assert tlb.access(5) is False
    assert tlb.access(5) is True
    assert tlb.stats.hits == 1
    assert tlb.stats.misses == 1
    assert tlb.stats.miss_rate == 0.5


def test_huge_entry_covers_whole_region():
    tlb = SetAssociativeTLB(entries=64, ways=4)
    tlb.access(0, huge=True)
    # Any VPN in the same 2 MiB region hits the same entry.
    assert tlb.access(511, huge=True) is True
    assert tlb.access(PAGES_PER_HUGE, huge=True) is False


def test_base_and_huge_entries_are_distinct():
    tlb = SetAssociativeTLB(entries=64, ways=4)
    tlb.access(0, huge=True)
    # A base lookup of vpn 0 is a different key and misses.
    assert tlb.access(0, huge=False) is False


def test_lru_eviction_within_set():
    tlb = SetAssociativeTLB(entries=4, ways=2)  # 2 sets of 2 ways
    # VPNs 0, 2, 4 all map to set 0.
    tlb.access(0)
    tlb.access(2)
    tlb.access(4)  # evicts 0 (LRU)
    assert tlb.access(2) is True
    assert tlb.access(0) is False


def test_lru_updated_on_hit():
    tlb = SetAssociativeTLB(entries=4, ways=2)
    tlb.access(0)
    tlb.access(2)
    tlb.access(0)  # refresh 0; now 2 is LRU
    tlb.access(4)  # evicts 2
    assert tlb.access(0) is True
    assert tlb.access(2) is False


def test_flush_invalidates_everything():
    tlb = SetAssociativeTLB(entries=64, ways=4)
    for vpn in range(16):
        tlb.access(vpn)
    assert tlb.occupancy == 16
    tlb.flush()
    assert tlb.occupancy == 0
    assert tlb.access(0) is False


def test_working_set_within_capacity_has_no_steady_state_misses():
    tlb = SetAssociativeTLB(entries=64, ways=64)  # fully associative
    for _ in range(3):
        for vpn in range(64):
            tlb.access(vpn)
    # 64 compulsory misses, everything else hits.
    assert tlb.stats.misses == 64
    assert tlb.stats.hits == 2 * 64


def test_working_set_exceeding_capacity_thrashes_under_lru():
    tlb = SetAssociativeTLB(entries=64, ways=64)
    for _ in range(3):
        for vpn in range(65):  # one more than capacity: LRU worst case
            tlb.access(vpn)
    assert tlb.stats.hits == 0


def test_reset_stats_keeps_contents():
    tlb = SetAssociativeTLB(entries=64, ways=4)
    tlb.access(1)
    tlb.reset_stats()
    assert tlb.stats.accesses == 0
    assert tlb.access(1) is True
