"""Unit tests for the analytic TLB capacity model."""

import pytest

from repro.tlb.model import TLBConfig, TLBModel, TranslationSegment


def segment(entries, accesses, walk=100.0, label=""):
    return TranslationSegment(
        entries=entries, accesses=accesses, walk_cycles=walk, label=label
    )


def test_config_validation():
    with pytest.raises(ValueError):
        TLBConfig(entries=0)
    with pytest.raises(ValueError):
        TLBConfig(utilization=0.0)
    with pytest.raises(ValueError):
        TLBConfig(utilization=1.5)


def test_segment_validation():
    with pytest.raises(ValueError):
        segment(-1, 10)
    with pytest.raises(ValueError):
        segment(1, -10)


def test_fits_in_tlb_only_compulsory_misses():
    model = TLBModel(TLBConfig(entries=1000, utilization=1.0))
    stats = model.evaluate([segment(entries=100, accesses=100_000)])
    assert stats.misses == pytest.approx(100)  # one per entry
    assert stats.miss_rate < 0.01


def test_oversubscribed_tlb_misses_scale_with_overflow():
    model = TLBModel(TLBConfig(entries=100, utilization=1.0))
    stats = model.evaluate([segment(entries=1000, accesses=100_000)])
    # 10% resident: ~90% of accesses miss.
    assert stats.miss_rate == pytest.approx(0.9, abs=0.01)


def test_hot_segment_gets_residency_first():
    model = TLBModel(TLBConfig(entries=100, utilization=1.0))
    hot = segment(entries=100, accesses=100_000, label="hot")
    cold = segment(entries=1000, accesses=1_000, label="cold")
    stats = model.evaluate([hot, cold])
    by_label = {r.segment.label: r for r in stats.segments}
    assert by_label["hot"].resident_entries == pytest.approx(100)
    assert by_label["cold"].resident_entries == 0
    assert by_label["cold"].misses == pytest.approx(1_000)


def test_walk_cycles_weighted_by_segment_cost():
    model = TLBModel(TLBConfig(entries=1, utilization=1.0))
    cheap = segment(entries=1000, accesses=1000, walk=10.0)
    stats = model.evaluate([cheap])
    assert stats.walk_cycles == pytest.approx(stats.misses * 10.0)


def test_alignment_shrinks_entry_demand():
    """The paper's core mechanism: a well-aligned huge region needs 512x
    fewer entries, so alignment slashes misses at equal footprint."""
    model = TLBModel(TLBConfig(entries=256, utilization=1.0))
    # Same 32 MiB of hot data: 8192 base entries vs 16 huge entries.
    splintered = model.evaluate([segment(entries=8192, accesses=1_000_000)])
    aligned = model.evaluate([segment(entries=16, accesses=1_000_000)])
    assert aligned.misses < 0.01 * splintered.misses


def test_misses_never_exceed_accesses():
    model = TLBModel(TLBConfig(entries=10, utilization=1.0))
    stats = model.evaluate([segment(entries=100_000, accesses=50)])
    assert stats.misses <= stats.accesses


def test_zero_access_segments_reported_but_free():
    model = TLBModel()
    stats = model.evaluate([segment(entries=100, accesses=0, label="idle")])
    assert stats.accesses == 0
    assert stats.misses == 0
    assert len(stats.segments) == 1


def test_translation_cycles_combines_hits_and_walks():
    model = TLBModel(TLBConfig(entries=100, utilization=1.0, hit_cycles=1.0))
    stats = model.evaluate([segment(entries=50, accesses=1000, walk=100.0)])
    expected = stats.hits * 1.0 + stats.walk_cycles
    assert stats.translation_cycles(1.0) == pytest.approx(expected)


def test_empty_evaluation():
    stats = TLBModel().evaluate([])
    assert stats.accesses == 0
    assert stats.miss_rate == 0.0
    assert stats.translation_cycles() == 0.0
