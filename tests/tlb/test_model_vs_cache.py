"""Cross-validation: the analytic capacity model must agree with the
trace-driven set-associative TLB on simple uniform-random workloads."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tlb.cache import SetAssociativeTLB
from repro.tlb.model import TLBConfig, TLBModel, TranslationSegment


def trace_miss_rate(n_pages, n_accesses, entries, seed=0):
    rng = random.Random(seed)
    tlb = SetAssociativeTLB(entries=entries, ways=entries)  # fully assoc.
    for _ in range(n_accesses):
        tlb.access(rng.randrange(n_pages))
    return tlb.stats.miss_rate


def model_miss_rate(n_pages, n_accesses, entries):
    model = TLBModel(TLBConfig(entries=entries, utilization=1.0))
    stats = model.evaluate(
        [TranslationSegment(entries=n_pages, accesses=n_accesses, walk_cycles=1.0)]
    )
    return stats.miss_rate


@pytest.mark.parametrize(
    "n_pages,entries",
    [(64, 128), (256, 128), (1024, 128), (4096, 128)],
)
def test_model_tracks_trace_for_uniform_random(n_pages, entries):
    accesses = 60_000
    traced = trace_miss_rate(n_pages, accesses, entries)
    modelled = model_miss_rate(n_pages, accesses, entries)
    assert modelled == pytest.approx(traced, abs=0.08)


@settings(max_examples=15, deadline=None)
@given(
    n_pages=st.integers(min_value=32, max_value=2048),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_model_within_tolerance_across_sizes(n_pages, seed):
    entries = 128
    accesses = 30_000
    traced = trace_miss_rate(n_pages, accesses, entries, seed=seed)
    modelled = model_miss_rate(n_pages, accesses, entries)
    assert abs(modelled - traced) < 0.1
