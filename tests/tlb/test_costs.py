"""Sanity tests for the cycle-cost constants: the paper's ratios must hold
regardless of absolute calibration."""

from repro.paging.walker import native_walk_cost, nested_walk_cost
from repro.tlb import costs


def test_all_costs_positive():
    for name in dir(costs):
        if name.isupper():
            value = getattr(costs, name)
            assert value > 0, name


def test_nested_walk_much_costlier_than_native():
    # Section 1: nested walk cost can be ~6x a native walk.
    native = native_walk_cost(huge=False).cycles
    nested = nested_walk_cost(False, False).cycles
    assert 3.0 <= nested / native <= 8.0


def test_huge_fault_costlier_than_base_fault():
    # Zeroing 2 MiB vs 4 KiB: a huge fault is much dearer per event but
    # far cheaper than 512 base faults.
    assert costs.HUGE_FAULT_CYCLES > 10 * costs.BASE_FAULT_CYCLES
    assert costs.HUGE_FAULT_CYCLES < 512 * costs.BASE_FAULT_CYCLES


def test_virtualized_shootdowns_amplified():
    # Section 6.2: shoot-downs are costlier in VMs (vCPU preemption).
    assert costs.VIRT_SHOOTDOWN_FACTOR > 1.0


def test_inplace_promotion_much_cheaper_than_migration():
    # Migration-based promotion copies 512 pages; in-place does not.
    migration = 512 * costs.PAGE_COPY_CYCLES
    assert costs.INPLACE_PROMOTION_CYCLES < 0.05 * migration


def test_background_work_discounted():
    assert 0.0 < costs.BACKGROUND_DISCOUNT < 1.0


def test_translation_hit_is_cheap():
    assert costs.TLB_HIT_CYCLES < costs.BASE_ACCESS_CYCLES
