"""Unit tests for the parameter sweeps."""

from repro.experiments.sweeps import (
    format_sweep,
    run_fragmentation_sweep,
    run_tlb_sweep,
)


def test_fragmentation_sweep_structure():
    points = run_fragmentation_sweep(
        "Shore", levels=[0.0, 0.5], systems=["Host-B-VM-B", "Gemini"], epochs=4
    )
    assert len(points) == 4
    assert {p.parameter for p in points} == {0.0, 0.5}
    text = format_sweep(points, "Frag sweep")
    assert "Frag sweep" in text
    assert "Gemini" in text


def test_severe_fragmentation_shrinks_gains():
    points = run_fragmentation_sweep(
        "Masstree", levels=[0.0, 0.9], systems=["Host-B-VM-B", "Gemini"], epochs=8
    )
    by_key = {(p.parameter, p.system): p for p in points}

    def gain(level):
        return (
            by_key[(level, "Gemini")].throughput
            / by_key[(level, "Host-B-VM-B")].throughput
        )

    assert gain(0.9) < gain(0.0)
    assert gain(0.0) > 1.3


def test_large_tlb_makes_huge_pages_moot():
    points = run_tlb_sweep(
        "Masstree",
        entries=[384, 24576],
        systems=["Host-B-VM-B", "Gemini"],
        epochs=8,
    )
    by_key = {(p.parameter, p.system): p for p in points}

    def gain(entries):
        return (
            by_key[(float(entries), "Gemini")].throughput
            / by_key[(float(entries), "Host-B-VM-B")].throughput
        )

    # With an ample TLB even base pages fit: the crossover where huge
    # pages stop paying off.
    assert gain(24576) < gain(384)
    assert gain(24576) < 1.1
