"""Unit tests for the experiment infrastructure."""

import pytest

from repro.experiments.common import (
    BASELINE,
    FRAGMENTED,
    UNFRAGMENTED,
    format_table,
    normalize,
    run_matrix,
)


@pytest.fixture(scope="module")
def tiny_matrix():
    return run_matrix(["Shore"], systems=["Host-B-VM-B", "THP"], epochs=4)


def test_standard_configs():
    assert FRAGMENTED.fragment_guest > UNFRAGMENTED.fragment_guest
    assert FRAGMENTED.fragment_host > UNFRAGMENTED.fragment_host
    assert BASELINE == "Host-B-VM-B"


def test_run_matrix_shape(tiny_matrix):
    assert set(tiny_matrix) == {"Shore"}
    assert set(tiny_matrix["Shore"]) == {"Host-B-VM-B", "THP"}
    for result in tiny_matrix["Shore"].values():
        assert len(result.epochs) == 4


def test_normalize(tiny_matrix):
    table = normalize(tiny_matrix, "throughput")
    assert table["Shore"]["Host-B-VM-B"] == pytest.approx(1.0)
    assert table["Shore"]["THP"] > 0


def test_normalize_other_baseline(tiny_matrix):
    table = normalize(tiny_matrix, "throughput", baseline="THP")
    assert table["Shore"]["THP"] == pytest.approx(1.0)


def test_format_table(tiny_matrix):
    table = normalize(tiny_matrix, "throughput")
    text = format_table(table, title="Test table")
    assert "Test table" in text
    assert "Shore" in text
    assert "average" in text
    assert "1.00" in text


def test_format_table_empty():
    assert format_table({}, title="nothing") == "nothing"
