"""Unit tests for the Section 8 interplay experiments."""

from repro.experiments.interplay import (
    format_balloon,
    format_ksm,
    run_balloon_interplay,
    run_ksm_interplay,
)


def test_balloon_interplay_structure():
    outcomes = run_balloon_interplay("Shore", epochs=6, inflate_regions=1)
    assert [o.variant for o in outcomes] == ["alignment-aware", "naive"]
    for outcome in outcomes:
        assert outcome.result.throughput > 0
        assert outcome.aligned_demotions >= 0
    text = format_balloon(outcomes)
    assert "alignment-aware" in text


def test_balloon_aware_never_worse_on_aligned_demotions():
    outcomes = run_balloon_interplay("Masstree", epochs=8, inflate_regions=2)
    aware, naive = outcomes
    assert aware.aligned_demotions <= naive.aligned_demotions


def test_ksm_interplay_structure():
    outcomes = run_ksm_interplay("Shore", epochs=6)
    variants = [o.variant for o in outcomes]
    assert variants == ["no break-huge", "break, spare aligned", "break everything"]
    text = format_ksm(outcomes)
    assert "KSM interplay" in text


def test_ksm_break_everything_merges_most():
    outcomes = run_ksm_interplay("Specjbb", epochs=8)
    by_variant = {o.variant: o for o in outcomes}
    assert (
        by_variant["break everything"].merged_pages
        >= by_variant["no break-huge"].merged_pages
    )
    assert (
        by_variant["break everything"].result.well_aligned_rate
        <= by_variant["no break-huge"].result.well_aligned_rate
    )
