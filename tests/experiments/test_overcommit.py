"""Unit tests for the overcommit interplay experiment."""

import pytest

from repro.experiments.overcommit import (
    OVERCOMMIT_CONFIG,
    VICTIM_POLICIES,
    format_overcommit,
    overcommit_table,
    run_overcommit,
)


@pytest.fixture(scope="module")
def results():
    return run_overcommit(epochs=3)


def test_overcommit_grid_structure(results):
    assert set(results) == {
        f"{policy} ({label})"
        for policy in VICTIM_POLICIES
        for label in ("clean", "aged")
    }
    table = overcommit_table(results)
    assert "aligned huge retained" in table
    assert "swap-out Kpages" in table
    for metrics in table.values():
        assert set(metrics) == set(results)
    for column, result in results.items():
        # Every cell really ran overcommitted and under pressure.
        assert result.fleet_swap_out_pages > 0, column
        assert result.fleet_aligned_huge > 0, column
    text = format_overcommit(results)
    assert "Overcommit interplay" in text
    assert "alignment-aware (aged)" in text


def test_aware_policy_preserves_alignment_in_the_grid(results):
    for label in ("clean", "aged"):
        aware = results[f"alignment-aware ({label})"]
        lru = results[f"lru-cold ({label})"]
        assert (
            aware.fleet_pressure_aligned_demotions
            <= lru.fleet_pressure_aligned_demotions
        )
        assert aware.fleet_aligned_huge >= lru.fleet_aligned_huge
    # On clean hosts the contrast is strict even at three epochs.
    assert (
        results["alignment-aware (clean)"].fleet_aligned_huge
        > results["lru-cold (clean)"].fleet_aligned_huge
    )


def test_default_config_is_overcommitted_gemini():
    assert OVERCOMMIT_CONFIG.system == "Gemini"
    assert OVERCOMMIT_CONFIG.overcommit_ratio > 1.0
    assert OVERCOMMIT_CONFIG.pressure.enabled
