"""Unit tests for the TLB-model validation experiment."""

from repro.experiments.validation import (
    ValidationPoint,
    format_validation,
    run_validation,
)


def test_validation_points_structure():
    points = run_validation(
        workloads=["Shore"],
        systems=["Host-B-VM-B", "Gemini"],
        epochs=4,
        trace_accesses=10_000,
    )
    assert len(points) == 2
    for point in points:
        assert 0.0 <= point.analytic_miss_rate <= 1.0
        assert 0.0 <= point.traced_miss_rate <= 1.0
        assert point.error == abs(
            point.analytic_miss_rate - point.traced_miss_rate
        )


def test_validation_model_agreement():
    points = run_validation(
        workloads=["Masstree"],
        systems=["Host-B-VM-B", "THP"],
        epochs=5,
        trace_accesses=30_000,
    )
    for point in points:
        assert point.error < 0.10, f"{point.system}: {point.error:.3f}"


def test_format_validation():
    points = [
        ValidationPoint("w", "s", analytic_miss_rate=0.5, traced_miss_rate=0.45)
    ]
    text = format_validation(points)
    assert "0.500" in text
    assert "max |error| = 0.050" in text
