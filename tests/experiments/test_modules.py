"""Smoke tests for each experiment module at miniature scale."""

import pytest

from repro.experiments import (
    ablations,
    breakdown,
    clean_slate,
    collocation,
    fig02_microbench,
    fig03_motivation,
    reused_vm,
)

SMALL_SYSTEMS = ["Host-B-VM-B", "Ingens", "Gemini"]


def test_fig02_points_and_formatting():
    points = fig02_microbench.run_fig02(sizes=[2.0, 16.0], epochs=3)
    assert len(points) == 2 * len(fig02_microbench.FIG2_SYSTEMS)
    text = fig02_microbench.format_fig02(points)
    assert "Host-H-VM-H" in text
    assert "TLB miss rates" in text


def test_fig03_motivation_tables():
    results = fig03_motivation.run_fig03(epochs=4, workloads=["Canneal"])
    table1 = fig03_motivation.table1_alignment(results)
    assert "Canneal" in table1
    assert "Gemini" in table1["Canneal"]
    text = fig03_motivation.format_fig03(results)
    assert "Table 1" in text


@pytest.fixture(scope="module")
def mini_clean():
    return clean_slate.run_clean_slate(
        workloads=["Masstree"], systems=SMALL_SYSTEMS, epochs=4
    )


def test_clean_slate_figures(mini_clean):
    assert set(clean_slate.fig08_throughput(mini_clean)) == {"Masstree"}
    assert set(clean_slate.fig09_mean_latency(mini_clean)) == {"Masstree"}
    tlb = clean_slate.fig11_tlb_misses(mini_clean)
    assert tlb["Masstree"]["Gemini"] == pytest.approx(1.0)
    text = clean_slate.format_clean_slate(mini_clean)
    assert "Figure 8" in text
    assert "Table 3" in text


def test_clean_slate_latency_figures_filter_suite(mini_clean):
    # Masstree reports latency; a non-latency workload would be filtered.
    results = clean_slate.run_clean_slate(
        workloads=["Canneal"], systems=SMALL_SYSTEMS, epochs=4
    )
    assert clean_slate.fig09_mean_latency(results) == {}


def test_reused_vm_runs_primer():
    results = reused_vm.run_reused_vm(
        workloads=["Shore"], systems=["Host-B-VM-B", "Gemini"], epochs=4
    )
    assert "Shore" in results
    text = reused_vm.format_reused_vm(results)
    assert "Figure 12" in text
    assert "Table 4" in text


def test_breakdown_variants():
    results = breakdown.run_breakdown(workloads=["Shore"], epochs=4)
    row = results["Shore"]
    assert set(row) == {"Gemini", "EMA/HB only", "Bucket only", "baseline"}
    table = breakdown.contributions(results)
    shares = table["Shore"]
    assert 0.0 <= shares["EMA/HB"] <= 1.0
    assert shares["EMA/HB"] + shares["Huge bucket"] == pytest.approx(1.0, abs=1e-6)


def test_collocation_pairs():
    results = collocation.run_collocation(
        pairs=[("Shore", "SP.D")], systems=["Host-B-VM-B", "Gemini"], epochs=4
    )
    assert set(results) == {"Shore+SP.D/Shore", "Shore+SP.D/SP.D"}
    overhead = collocation.gemini_overhead(results)
    assert set(overhead) == {"Shore+SP.D/Shore", "Shore+SP.D/SP.D"}
    text = collocation.format_collocation(results)
    assert "Figure 17" in text


def test_ablation_runners():
    timeout = ablations.run_timeout_ablation(workloads=["Shore"], epochs=4)
    assert set(timeout["Shore"]) == {
        "adaptive (Alg. 1)", "fixed short (1)", "fixed long (32)",
    }
    text = ablations.format_ablation(timeout, "Timeout")
    assert "Timeout" in text
    prealloc = ablations.run_prealloc_sweep("Shore", thresholds=[256], epochs=3)
    assert "threshold=256" in prealloc["Shore"]
    hold = ablations.run_bucket_hold_sweep("Shore", holds=[4.0], epochs=3)
    assert "hold=4" in hold["Shore"]
