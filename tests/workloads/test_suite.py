"""Unit tests for the Table 2 application suite."""

import pytest

from repro.workloads.families import DynamicChurnWorkload, StaticArrayWorkload
from repro.workloads.microbench import RandomAccessMicrobench
from repro.workloads.suite import (
    LATENCY_SUITE,
    MOTIVATION_SUITE,
    NON_TLB_SENSITIVE,
    TLB_SENSITIVE_SUITE,
    make_workload,
    workload_names,
)


def test_all_workloads_instantiate():
    for name in workload_names():
        workload = make_workload(name)
        assert workload.name == name
        assert workload.description
        assert 0.0 < workload.tlb_sensitivity <= 1.0


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        make_workload("nosuchapp")


def test_suite_membership():
    assert len(TLB_SENSITIVE_SUITE) == 16
    assert set(MOTIVATION_SUITE) <= set(TLB_SENSITIVE_SUITE)
    assert set(LATENCY_SUITE) <= set(TLB_SENSITIVE_SUITE)
    for name in NON_TLB_SENSITIVE:
        assert name not in TLB_SENSITIVE_SUITE


def test_fresh_instance_per_call():
    a = make_workload("Redis")
    b = make_workload("Redis")
    assert a is not b


def test_latency_suite_reports_latency():
    for name in LATENCY_SUITE:
        assert make_workload(name).reports_latency, name


def test_non_tlb_sensitive_have_low_sensitivity():
    for name in NON_TLB_SENSITIVE:
        workload = make_workload(name)
        assert workload.tlb_sensitivity < 0.1, name
    for name in TLB_SENSITIVE_SUITE:
        workload = make_workload(name)
        assert workload.tlb_sensitivity > 0.2, name


def test_paper_characterisations_hold():
    # Section 6.2: Redis/RocksDB allocate large memory gradually with
    # dynamic structures; SVM/CG.D use large static arrays uniformly.
    for name in ("Redis", "RocksDB", "Memcached"):
        workload = make_workload(name)
        assert isinstance(workload, DynamicChurnWorkload), name
        assert workload.churn_segments >= 2, name
    for name in ("SVM", "CG.D"):
        workload = make_workload(name)
        assert isinstance(workload, StaticArrayWorkload), name
        assert workload.hot_fraction == 1.0, name
    # Section 6.2: Specjbb's zero pages are deduplicated by HawkEye.
    assert make_workload("Specjbb").zero_page_dedup_rate > 0
    assert make_workload("Redis").zero_page_dedup_rate == 0


def test_microbench():
    bench = RandomAccessMicrobench(8.0)
    assert "8" in bench.name
    assert bench.access_phases(0)[0].vma == "data"
    assert bench.access_phases(0)[0].hot_fraction == 1.0
