"""Unit tests for the workload interface and context."""

import pytest

from repro.hypervisor.platform import Platform
from repro.mem.layout import MIB, PAGE_SIZE, PAGES_PER_HUGE
from repro.policies.base import HugePagePolicy
from repro.workloads.base import AccessPhase, Workload, WorkloadContext


def make_context():
    platform = Platform(256 * PAGES_PER_HUGE, HugePagePolicy())
    vm = platform.create_vm(64 * PAGES_PER_HUGE, HugePagePolicy())
    return WorkloadContext(platform, vm, seed=1)


def test_access_phase_validation():
    with pytest.raises(ValueError):
        AccessPhase("x", weight=-1.0)
    with pytest.raises(ValueError):
        AccessPhase("x", hot_fraction=0.0)
    with pytest.raises(ValueError):
        AccessPhase("x", hot_fraction=1.5)
    phase = AccessPhase("x", weight=0.5, hot_fraction=0.2)
    assert phase.vma == "x"


def test_context_mmap_and_touch():
    ctx = make_context()
    vma = ctx.mmap("heap", 100)
    assert ctx.has("heap")
    assert ctx.vma("heap") is vma
    ctx.touch("heap", start=0, npages=10)
    assert ctx.vm.table().base_count == 10
    ctx.touch_all("heap")
    assert ctx.vm.table().base_count == 100


def test_context_mmap_mib():
    ctx = make_context()
    vma = ctx.mmap_mib("arr", 2.0)
    assert vma.npages == 2 * MIB // PAGE_SIZE


def test_context_munmap():
    ctx = make_context()
    ctx.mmap("heap", 100)
    ctx.touch_all("heap")
    ctx.munmap("heap")
    assert not ctx.has("heap")
    assert ctx.vm.table().base_count == 0


def test_context_vma_names():
    ctx = make_context()
    ctx.mmap("a", 10)
    ctx.mmap("b", 10)
    assert ctx.vma_names() == ["a", "b"]


def test_workload_defaults():
    workload = Workload()
    assert workload.access_phases(0) == []
    assert 0.0 < workload.tlb_sensitivity <= 1.0
    assert workload.accesses_per_epoch > 0
    assert workload.ops_per_epoch > 0
