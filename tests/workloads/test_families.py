"""Unit tests for the workload families."""

import pytest

from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.policies.base import HugePagePolicy
from repro.workloads.base import WorkloadContext
from repro.workloads.families import DynamicChurnWorkload, StaticArrayWorkload


def make_context():
    platform = Platform(512 * PAGES_PER_HUGE, HugePagePolicy())
    vm = platform.create_vm(160 * PAGES_PER_HUGE, HugePagePolicy())
    return WorkloadContext(platform, vm, seed=7)


def test_static_array_setup_touches_everything():
    ctx = make_context()
    workload = StaticArrayWorkload("test", footprint_mib=8, arrays=2)
    workload.setup(ctx)
    assert len(ctx.vm.address_space) == 2
    # Fully faulted up front.
    assert ctx.vm.table().mapped_pages == ctx.vm.address_space.mapped_pages


def test_static_array_access_phases_cover_all_arrays():
    workload = StaticArrayWorkload("test", footprint_mib=8, arrays=4, hot_fraction=0.5)
    phases = workload.access_phases(3)
    assert len(phases) == 4
    assert sum(p.weight for p in phases) == pytest.approx(1.0)
    assert all(p.hot_fraction == 0.5 for p in phases)


def test_static_array_run_epoch_is_stable():
    ctx = make_context()
    workload = StaticArrayWorkload("test", footprint_mib=8)
    workload.setup(ctx)
    mapped = ctx.vm.table().mapped_pages
    workload.run_epoch(ctx, 1)
    assert ctx.vm.table().mapped_pages == mapped


def test_dynamic_churn_validation():
    with pytest.raises(ValueError):
        DynamicChurnWorkload("x", segments=0)
    with pytest.raises(ValueError):
        DynamicChurnWorkload("x", grow_epochs=0)


def test_dynamic_churn_grows_then_churns():
    ctx = make_context()
    workload = DynamicChurnWorkload(
        "test", footprint_mib=16, segments=8, grow_epochs=4, churn_segments=2
    )
    workload.setup(ctx)
    initial = len(workload._live)
    assert initial >= 1
    epoch = 0
    while len(workload._live) < workload.segments:
        workload.run_epoch(ctx, epoch)
        epoch += 1
        assert epoch < 20, "growth did not terminate"
    assert len(workload._live) == 8
    # Steady state: churn keeps the live count constant but replaces names.
    before = set(workload._live)
    workload.run_epoch(ctx, epoch)
    after = set(workload._live)
    assert len(after) == 8
    assert before != after
    assert len(before - after) == 2


def test_dynamic_churn_frees_old_segments():
    ctx = make_context()
    workload = DynamicChurnWorkload(
        "test", footprint_mib=16, segments=4, grow_epochs=1, churn_segments=1
    )
    workload.setup(ctx)
    for epoch in range(8):
        workload.run_epoch(ctx, epoch)
    # Address space holds exactly the live segments.
    assert sorted(v.name for v in ctx.vm.address_space.vmas()) == sorted(workload._live)


def test_dynamic_churn_access_phases_weight_recent():
    ctx = make_context()
    workload = DynamicChurnWorkload(
        "test", footprint_mib=16, segments=4, grow_epochs=1, hot_recency_bias=4.0
    )
    workload.setup(ctx)
    for epoch in range(4):
        workload.run_epoch(ctx, epoch)
    phases = workload.access_phases(5)
    assert len(phases) == len(workload._live)
    weights = [p.weight for p in phases]
    assert sum(weights) == pytest.approx(1.0)
    # Later (newer) segments get more accesses.
    assert weights[-1] > weights[0]


def test_dynamic_churn_no_phases_before_setup():
    workload = DynamicChurnWorkload("test", footprint_mib=16, segments=4)
    assert workload.access_phases(0) == []
