"""Tests for the content-keyed result cache."""

from dataclasses import replace

import pytest

from repro.exec import Cell, ResultCache, cell_key, code_version
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult


CONFIG = SimulationConfig(epochs=2, guest_mib=64, host_mib=192)


def make_cell(**overrides) -> Cell:
    fields = dict(workload="Redis", system="THP", config=CONFIG)
    fields.update(overrides)
    return Cell(**fields)


def test_code_version_is_stable_within_process():
    assert code_version() == code_version()
    assert len(code_version()) == 16


def test_key_is_deterministic_and_content_sensitive():
    assert cell_key(make_cell()) == cell_key(make_cell())
    assert cell_key(make_cell()) != cell_key(make_cell(system="Gemini"))
    assert cell_key(make_cell()) != cell_key(make_cell(workload="SVM"))
    reseeded = make_cell(config=replace(CONFIG, seed=7))
    assert cell_key(make_cell()) != cell_key(reseeded)


def test_key_ignores_batch_faults():
    """Batched and per-page runs are bit-identical, so they share entries."""
    per_page = make_cell(config=replace(CONFIG, batch_faults=False))
    assert cell_key(make_cell()) == cell_key(per_page)


def test_key_distinguishes_primer():
    def factory():  # pragma: no cover - never called by cell_key
        raise AssertionError

    assert cell_key(make_cell()) != cell_key(make_cell(primer_factory=factory))


def test_roundtrip_and_stats(tmp_path):
    cache = ResultCache(tmp_path)
    key = cell_key(make_cell())
    assert cache.get(key) is None
    result = RunResult(system="THP", workload="Redis")
    cache.put(key, result)
    loaded = cache.get(key)
    assert loaded == result
    assert loaded is not result
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = cell_key(make_cell())
    cache.put(key, RunResult(system="THP", workload="Redis"))
    path = cache._path(key)
    path.write_bytes(b"not a pickle")
    assert cache.get(key) is None


def test_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert ResultCache.from_env() is None
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    assert ResultCache.from_env() is None
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = ResultCache.from_env()
    assert cache is not None
    assert cache.directory == tmp_path
