"""Tests for the parallel cell executor."""

from repro.exec import Cell, ResultCache, execute_cell, resolve_workers, run_cells
from repro.experiments.common import run_matrix
from repro.sim.config import SimulationConfig
from repro.workloads.suite import make_workload


CONFIG = SimulationConfig(epochs=2)
SMALL = SimulationConfig(epochs=3, fragment_guest=0.5, fragment_host=0.5)


def _svm_primer():
    return make_workload("SVM")


def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert resolve_workers(None) == 4
    assert resolve_workers(2) == 2
    monkeypatch.setenv("REPRO_WORKERS", "garbage")
    assert resolve_workers(None) == 1
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert resolve_workers(None) == 1


def test_serial_matches_execute_cell():
    cells = [Cell("Redis", "THP", CONFIG), Cell("SVM", "Host-B-VM-B", CONFIG)]
    assert run_cells(cells, workers=1, cache=None) == [
        execute_cell(cells[0]),
        execute_cell(cells[1]),
    ]


def test_parallel_matches_serial():
    cells = [
        Cell("Redis", "THP", CONFIG),
        Cell("Redis", "Host-B-VM-B", CONFIG),
        Cell("SVM", "THP", CONFIG),
    ]
    assert run_cells(cells, workers=2, cache=None) == run_cells(
        cells, workers=1, cache=None
    )


def test_unpicklable_cell_falls_back_to_serial():
    cells = [
        Cell("Redis", "THP", CONFIG, primer_factory=lambda: make_workload("SVM")),
        Cell("SVM", "THP", CONFIG),
    ]
    results = run_cells(cells, workers=4, cache=None)
    assert [r.workload for r in results] == ["Redis", "SVM"]


def test_cache_dedupes_within_and_across_calls(tmp_path):
    cache = ResultCache(tmp_path)
    cell = Cell("Redis", "THP", CONFIG)
    first, second = run_cells([cell, cell], workers=1, cache=cache)
    assert first == second
    assert first is not second  # no aliasing between deduplicated results
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1

    warm_cache = ResultCache(tmp_path)
    (warm,) = run_cells([cell], workers=1, cache=warm_cache)
    assert warm == first
    assert warm_cache.stats.hits == 1
    assert warm_cache.stats.misses == 0


def test_primed_cells_run_the_primer():
    plain = run_cells([Cell("Redis", "THP", CONFIG)], workers=1, cache=None)
    primed = run_cells(
        [Cell("Redis", "THP", CONFIG, primer_factory=_svm_primer)],
        workers=1,
        cache=None,
    )
    assert plain != primed


def test_run_matrix_workers_and_cache_equivalence(tmp_path):
    workloads = ["Redis", "SVM"]
    systems = ["Host-B-VM-B", "Gemini"]
    serial = run_matrix(workloads, systems, config=SMALL)
    parallel = run_matrix(workloads, systems, config=SMALL, workers=2)
    cache = ResultCache(tmp_path)
    cold = run_matrix(workloads, systems, config=SMALL, workers=2, cache=cache)
    warm = run_matrix(workloads, systems, config=SMALL, cache=ResultCache(tmp_path))
    for workload in workloads:
        for system in systems:
            assert serial[workload][system] == parallel[workload][system]
            assert serial[workload][system] == cold[workload][system]
            assert serial[workload][system] == warm[workload][system]
