"""Tests for the sticky-state actor pool."""

import pickle

import pytest

from repro.exec.actors import ActorPool


def bump(state, amount):
    state["n"] += amount
    return state["n"]


def read(state):
    return state["n"]


def boom(state):
    raise RuntimeError("worker exploded")


class PicklesButWontUnpickle(Exception):
    """Pickles fine (args survive) but explodes on unpickling: the
    reconstructing call ``cls(*args)`` is missing the second argument."""

    def __init__(self, message, extra):
        super().__init__(f"{message}:{extra}")


def boom_unpicklable(state):
    exc = RuntimeError("sneaky")
    exc.payload = lambda: None  # lambdas cannot pickle
    raise exc


def boom_wont_unpickle(state):
    raise PicklesButWontUnpickle("bad", "news")


def total(states, factor):
    return sum(state["n"] for state in states.values()) * factor


def blob_out(state, size):
    state["sent"] = True
    return bytes(size), state.get("n")


def blob_in(state, payload, tag):
    state["got"] = (len(payload), tag)
    return state["got"]


def _states(count=3):
    return [{"n": index * 10} for index in range(count)]


@pytest.mark.parametrize("workers", [1, 2])
def test_apply_mutates_sticky_state(workers):
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        assert pool.apply(bump, 0, 5) == 5
        assert pool.apply(bump, 0, 2) == 7  # state persisted across calls
        assert pool.apply(read, 2) == 20


@pytest.mark.parametrize("workers", [1, 2])
def test_map_returns_state_order(workers):
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        results = pool.map(bump, [(1,), (2,), (3,)])
        assert results == [1, 12, 23]


@pytest.mark.parametrize("workers", [1, 2])
def test_gather_returns_final_states(workers):
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        pool.map(bump, [(1,)] * 3)
        assert pool.gather() == [{"n": 1}, {"n": 11}, {"n": 21}]


@pytest.mark.parametrize("workers", [1, 2])
def test_worker_exception_propagates(workers):
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        with pytest.raises(RuntimeError, match="worker exploded"):
            pool.apply(boom, 1)


def test_serial_fallback_is_local():
    pool = ActorPool(1)
    pool.scatter(_states())
    assert pool.is_local
    pool.close()


def test_parallel_mode_forks_workers():
    pool = ActorPool(2)
    try:
        pool.scatter(_states())
        assert not pool.is_local
    finally:
        pool.close()


def test_unpicklable_state_falls_back_to_local():
    states = [{"n": 0, "fh": open(__file__)}]
    pool = ActorPool(2)
    try:
        pool.scatter(states)
        assert pool.is_local
    finally:
        states[0]["fh"].close()
        pool.close()


def test_close_is_idempotent():
    pool = ActorPool(2)
    pool.scatter(_states())
    pool.close()
    pool.close()


def test_scatter_only_once():
    with ActorPool(1) as pool:
        pool.scatter(_states())
        with pytest.raises(RuntimeError, match="once"):
            pool.scatter(_states())


def test_map_order_with_fewer_workers_than_states():
    with ActorPool(2) as pool:
        pool.scatter(_states(5))
        assert pool.map(bump, [(1,)] * 5) == [1, 11, 21, 31, 41]


@pytest.mark.parametrize("workers", [1, 3])
def test_submit_runs_multiple_ops_per_state_in_batch_order(workers):
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        pool.submit([
            (0, bump, (1,)),
            (1, bump, (1,)),
            (0, bump, (2,)),  # same state twice: must see the first op
            (2, read, ()),
        ])
        assert pool.drain() == [1, 11, 3, 20]


@pytest.mark.parametrize("workers", [1, 2])
def test_submit_requires_drain_between_batches(workers):
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        pool.submit([(0, read, ())])
        with pytest.raises(RuntimeError, match="undrained"):
            pool.submit([(1, read, ())])
        pool.drain()
        with pytest.raises(RuntimeError, match="without a pending"):
            pool.drain()


@pytest.mark.parametrize("workers", [1, 2])
def test_each_worker_epilogue_collects_extras(workers):
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        pool.submit([(1, bump, (5,))], each_worker=(total, (2,)))
        assert pool.drain() == [15]
        # Sum over every state (0 + 15 + 20) * 2, split across however
        # many workers own states.
        assert sum(pool.extras) == 70
        pool.submit([(0, read, ())])
        pool.drain()
        assert pool.extras == []  # no epilogue on this batch


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_transfer_moves_payload_and_returns_both_replies(workers):
    # workers=3 puts states 0 and 2 on different slots, workers=2 puts
    # them on the same slot; both must behave like the local pool.
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        out_reply, in_reply = pool.transfer(
            0, 2, blob_out, (4096,), blob_in, ("tag",)
        )
        assert out_reply == 0
        assert in_reply == (4096, "tag")
        states = pool.gather()
        assert states[0]["sent"] is True
        assert states[2]["got"] == (4096, "tag")


def test_transfer_counts_peer_bytes_off_the_parent_pipes():
    with ActorPool(3) as pool:
        pool.scatter(_states())
        if pool.is_local:  # pragma: no cover - forkless sandbox
            pytest.skip("sandbox cannot fork")
        before = pool.bytes_sent + pool.bytes_received
        pool.transfer(0, 1, blob_out, (1 << 20,), blob_in, ("big",))
        control = pool.bytes_sent + pool.bytes_received - before
        assert pool.peer_bytes > 0
        # The 1 MiB payload went worker-to-worker, not through the parent.
        assert control < 4096


def test_transfer_source_failure_does_not_hang_destination():
    with ActorPool(3) as pool:
        pool.scatter(_states())
        with pytest.raises(RuntimeError):
            pool.transfer(0, 1, boom, (), blob_in, ("tag",))
        # The protocol stays aligned for further calls.
        assert pool.apply(read, 1) == 10


def test_retract_pulls_states_home_and_continues_locally():
    with ActorPool(2) as pool:
        pool.scatter(_states())
        pool.apply(bump, 0, 5)
        pool.retract()
        assert pool.is_local
        assert pool.apply(bump, 0, 2) == 7  # worker-side mutation kept
        assert pool.gather() == [{"n": 7}, {"n": 10}, {"n": 20}]


def test_byte_counters_track_parallel_traffic_only():
    with ActorPool(1) as local:
        local.scatter(_states())
        local.map(bump, [(1,)] * 3)
        assert local.bytes_sent == 0 and local.bytes_received == 0
    with ActorPool(2) as pool:
        pool.scatter(_states())
        if pool.is_local:  # pragma: no cover - forkless sandbox
            pytest.skip("sandbox cannot fork")
        pool.map(bump, [(1,)] * 3)
        assert pool.bytes_sent > 0 and pool.bytes_received > 0


def test_wire_compression_shrinks_large_messages():
    compressible = bytes(1 << 20)  # a megabyte of zeros
    with ActorPool(2) as pool:
        pool.scatter(_states())
        if pool.is_local:  # pragma: no cover - forkless sandbox
            pytest.skip("sandbox cannot fork")
        pool.apply(bump, 0, 1)
        baseline = pool.bytes_sent
        pool.apply(blob_in, 0, compressible, "tag")
        raw = len(pickle.dumps(compressible, pickle.HIGHEST_PROTOCOL))
        assert pool.bytes_sent - baseline < raw / 10


def test_unpicklable_worker_exception_surfaces_instead_of_hanging():
    with ActorPool(2) as pool:
        pool.scatter(_states())
        if pool.is_local:  # pragma: no cover - forkless sandbox
            pytest.skip("sandbox cannot fork")
        with pytest.raises(RuntimeError, match="sneaky"):
            pool.apply(boom_unpicklable, 0)
        # The pool is still usable afterwards: pipes stayed aligned.
        assert pool.apply(read, 1) == 10


def test_exception_that_pickles_but_wont_unpickle_is_normalised():
    with ActorPool(2) as pool:
        pool.scatter(_states())
        if pool.is_local:  # pragma: no cover - forkless sandbox
            pytest.skip("sandbox cannot fork")
        with pytest.raises(RuntimeError, match="bad:news"):
            pool.apply(boom_wont_unpickle, 0)
        assert pool.apply(read, 2) == 20


def test_worker_exception_carries_traceback_note():
    with ActorPool(2) as pool:
        pool.scatter(_states())
        if pool.is_local:  # pragma: no cover - forkless sandbox
            pytest.skip("sandbox cannot fork")
        with pytest.raises(RuntimeError) as info:
            pool.apply(boom, 0)
        notes = getattr(info.value, "__notes__", [])
        assert any("worker traceback" in note for note in notes)


def boom_with_context(state):
    from repro import obs

    obs.set_context(host=1, epoch=7)
    exc = RuntimeError("located")
    exc.payload = lambda: None  # unpicklable: forces normalisation
    raise exc


def test_worker_exception_carries_host_epoch_context():
    # The obs (host, epoch) context is attached to the note even for
    # exceptions that had to be normalised, so a crash in a 40-host
    # fleet says which host and epoch it came from.
    with ActorPool(2) as pool:
        pool.scatter(_states())
        if pool.is_local:  # pragma: no cover - forkless sandbox
            pytest.skip("sandbox cannot fork")
        with pytest.raises(RuntimeError, match="located") as info:
            pool.apply(boom_with_context, 0)
        notes = getattr(info.value, "__notes__", [])
        assert any("host=1 epoch=7" in note for note in notes)
