"""Tests for the sticky-state actor pool."""

import pytest

from repro.exec.actors import ActorPool


def bump(state, amount):
    state["n"] += amount
    return state["n"]


def read(state):
    return state["n"]


def boom(state):
    raise RuntimeError("worker exploded")


def _states(count=3):
    return [{"n": index * 10} for index in range(count)]


@pytest.mark.parametrize("workers", [1, 2])
def test_apply_mutates_sticky_state(workers):
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        assert pool.apply(bump, 0, 5) == 5
        assert pool.apply(bump, 0, 2) == 7  # state persisted across calls
        assert pool.apply(read, 2) == 20


@pytest.mark.parametrize("workers", [1, 2])
def test_map_returns_state_order(workers):
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        results = pool.map(bump, [(1,), (2,), (3,)])
        assert results == [1, 12, 23]


@pytest.mark.parametrize("workers", [1, 2])
def test_gather_returns_final_states(workers):
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        pool.map(bump, [(1,)] * 3)
        assert pool.gather() == [{"n": 1}, {"n": 11}, {"n": 21}]


@pytest.mark.parametrize("workers", [1, 2])
def test_worker_exception_propagates(workers):
    with ActorPool(workers) as pool:
        pool.scatter(_states())
        with pytest.raises(RuntimeError, match="worker exploded"):
            pool.apply(boom, 1)


def test_serial_fallback_is_local():
    pool = ActorPool(1)
    pool.scatter(_states())
    assert pool.is_local
    pool.close()


def test_parallel_mode_forks_workers():
    pool = ActorPool(2)
    try:
        pool.scatter(_states())
        assert not pool.is_local
    finally:
        pool.close()


def test_unpicklable_state_falls_back_to_local():
    states = [{"n": 0, "fh": open(__file__)}]
    pool = ActorPool(2)
    try:
        pool.scatter(states)
        assert pool.is_local
    finally:
        states[0]["fh"].close()
        pool.close()


def test_close_is_idempotent():
    pool = ActorPool(2)
    pool.scatter(_states())
    pool.close()
    pool.close()
