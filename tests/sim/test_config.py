"""Unit tests for the simulation configuration."""

import pytest

from repro.core.runtime import GeminiConfig
from repro.sim.config import SimulationConfig


def test_defaults_are_sane():
    config = SimulationConfig()
    assert config.host_mib >= 2 * config.guest_mib
    assert config.epochs > 0
    assert 0.0 <= config.fragment_guest < 1.0
    assert isinstance(config.gemini, GeminiConfig)


def test_validation():
    with pytest.raises(ValueError):
        SimulationConfig(host_mib=0)
    with pytest.raises(ValueError):
        SimulationConfig(guest_mib=-1)
    with pytest.raises(ValueError):
        SimulationConfig(epochs=0)
    with pytest.raises(ValueError):
        SimulationConfig(fragment_guest=1.0)
    with pytest.raises(ValueError):
        SimulationConfig(fragment_host=-0.5)


def test_frozen():
    config = SimulationConfig()
    with pytest.raises(AttributeError):
        config.epochs = 5


def test_gemini_ablation_flags():
    config = SimulationConfig(gemini=GeminiConfig(enable_bucket=False))
    assert not config.gemini.enable_bucket
    assert config.gemini.enable_ema_hb
