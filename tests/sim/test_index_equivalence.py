"""Incremental translation-state index vs reference rescans: bit-identical.

With ``incremental_index=True`` the per-epoch pipeline reads event-maintained
summaries — O(1) ``promotable``, counter-backed alignment reports, the MHPS
live set, cached region classifications, owner-count promoter steering and
the fully-translated touch skip.  With ``False`` every one of those is the
original enumerate-everything path.  Both must produce deep-equal per-epoch
records on full simulations: noise on, fragmentation on, every policy
family, plus the heavy-noise and reused-VM variants.
"""

from dataclasses import replace

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.engine import run_workload
from repro.workloads.suite import make_workload

BASE = SimulationConfig(
    epochs=4,
    guest_mib=128,
    host_mib=384,
    fragment_guest=0.7,
    fragment_host=0.7,
)

#: One system per policy family: no coalescing, huge faults, utilization
#: gating, contiguity-aware placement, and the full cross-layer runtime.
SYSTEMS = ["Host-B-VM-B", "THP", "Ingens", "CA-paging", "Gemini"]


@pytest.mark.parametrize("system", SYSTEMS)
def test_index_equals_reference(system):
    indexed = run_workload(
        make_workload("Redis"), system, config=replace(BASE, incremental_index=True)
    )
    reference = run_workload(
        make_workload("Redis"), system, config=replace(BASE, incremental_index=False)
    )
    assert indexed == reference


def test_index_equals_reference_with_heavy_noise():
    """A high noise rate interleaves noise allocations with the touch
    stream, exercising the translated-region skip against per-page noise
    delivery windows."""
    config = replace(BASE, noise_rate=0.25, epochs=3)
    indexed = run_workload(make_workload("Masstree"), "Gemini", config=config)
    reference = run_workload(
        make_workload("Masstree"), "Gemini",
        config=replace(config, incremental_index=False),
    )
    assert indexed == reference


def test_index_equals_reference_with_primer():
    """The reused-VM path (primer + unmap + EPT retention) exercises index
    invalidation across a full tenant turnover."""
    config = replace(BASE, epochs=3)
    indexed = run_workload(
        make_workload("Redis"), "Gemini", config=config,
        primer=make_workload("SVM"),
    )
    reference = run_workload(
        make_workload("Redis"), "Gemini",
        config=replace(config, incremental_index=False),
        primer=make_workload("SVM"),
    )
    assert indexed == reference


def test_index_orthogonal_to_batching():
    """The two selectable fast paths compose: index on/off must also agree
    when the per-page fault path replaces the batched one."""
    config = replace(BASE, epochs=3, batch_faults=False)
    indexed = run_workload(make_workload("Redis"), "Gemini", config=config)
    reference = run_workload(
        make_workload("Redis"), "Gemini",
        config=replace(config, incremental_index=False),
    )
    assert indexed == reference
