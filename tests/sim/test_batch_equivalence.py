"""Batched fault path vs per-page reference path: bit-identical results.

The batched hot path (``Platform.touch_range`` -> ``MemoryLayer.fault_range``
-> buddy-backed batch placement) must make exactly the allocation decisions,
ledger charges and RNG draws of per-page faulting.  These tests run full
simulations both ways — noise on, fragmentation on, every policy family —
and require deep equality of the complete per-epoch records.
"""

from dataclasses import replace

import pytest

from repro.mem.layout import PAGES_PER_HUGE
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_workload
from repro.workloads.suite import make_workload

BASE = SimulationConfig(
    epochs=4,
    guest_mib=128,
    host_mib=384,
    fragment_guest=0.7,
    fragment_host=0.7,
)

#: One system per policy family: no coalescing, huge faults, utilization
#: gating, contiguity-aware placement, and the full cross-layer runtime.
SYSTEMS = ["Host-B-VM-B", "THP", "Ingens", "CA-paging", "Gemini"]


@pytest.mark.parametrize("system", SYSTEMS)
def test_batched_equals_per_page(system):
    batched = run_workload(
        make_workload("Redis"), system, config=replace(BASE, batch_faults=True)
    )
    per_page = run_workload(
        make_workload("Redis"), system, config=replace(BASE, batch_faults=False)
    )
    assert batched == per_page


def test_batched_equals_per_page_with_heavy_noise():
    """A high noise rate forces short act horizons, exercising the window
    split between batched runs and per-page noise delivery."""
    config = replace(BASE, noise_rate=0.25, epochs=3)
    batched = run_workload(make_workload("Masstree"), "Gemini", config=config)
    per_page = run_workload(
        make_workload("Masstree"), "Gemini",
        config=replace(config, batch_faults=False),
    )
    assert batched == per_page


def test_batched_equals_per_page_with_primer():
    """The reused-VM path (primer + unmap + EPT retention) batches too."""
    config = replace(BASE, epochs=3)
    batched = run_workload(
        make_workload("Redis"), "Gemini", config=config,
        primer=make_workload("SVM"),
    )
    per_page = run_workload(
        make_workload("Redis"), "Gemini",
        config=replace(config, batch_faults=False),
        primer=make_workload("SVM"),
    )
    assert batched == per_page


def test_touch_range_matches_touch_loop():
    """Platform-level check: touch_range over a fresh VMA leaves the exact
    mapping and allocator state of per-page touch, huge faults included."""
    from repro.sim.engine import Simulation

    def build(batch):
        sim = Simulation(
            make_workload("Redis"), system="THP",
            config=replace(BASE, batch_faults=batch, epochs=1, noise_rate=0.0),
        )
        vm = sim._vms[0]
        vma = vm.mmap(3 * PAGES_PER_HUGE + 17, "probe")
        if batch:
            sim.platform.touch_range(vm, vma.start, vma.npages)
        else:
            for vpn in range(vma.start, vma.end):
                sim.platform.touch(vm, vpn)
        guest = {
            vpn: vm.guest.translate(0, vpn) for vpn in range(vma.start, vma.end)
        }
        host_free = sim.platform.memory.free_regions()
        guest_free = vm.gpa_space.free_regions()
        return guest, host_free, guest_free

    assert build(True) == build(False)
