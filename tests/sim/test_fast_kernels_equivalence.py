"""Profile-guided fast kernels vs reference paths: bit-identical.

With ``fast_kernels=True`` the hot paths run batch kernels — span
fault/unmap operations over the buddy batch allocator, rmap bitset
scans in the promoter, quiescent-epoch replay skipping, memoized TLB
segment evaluation and incremental consolidation scoring.  With
``False`` every one of those is the original per-frame loop.  Both must
produce deep-equal results on full simulations across every policy
family, with noise, with the reused-VM primer, composed with the other
fast-path flags, and on whole-fleet cluster runs.
"""

from dataclasses import replace

import pytest

from repro.cluster import ClusterConfig, ClusterSimulation, fleet_key
from repro.cluster.config import MigrationConfig
from repro.exec.cells import Cell
from repro.exec.cache import cell_key
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_workload
from repro.workloads.suite import make_workload

BASE = SimulationConfig(
    epochs=4,
    guest_mib=128,
    host_mib=384,
    fragment_guest=0.7,
    fragment_host=0.7,
)

#: One system per policy family: no coalescing, huge faults, utilization
#: gating, contiguity-aware placement, and the full cross-layer runtime.
SYSTEMS = ["Host-B-VM-B", "THP", "Ingens", "CA-paging", "Gemini"]

SMALL_FLEET = ClusterConfig(
    hosts=3,
    host_mib=512,
    epochs=6,
    seed=7,
    migration=MigrationConfig(check_invariants=True),
)


@pytest.mark.parametrize("system", SYSTEMS)
def test_fast_kernels_equal_reference(system):
    fast = run_workload(
        make_workload("Redis"), system, config=replace(BASE, fast_kernels=True)
    )
    reference = run_workload(
        make_workload("Redis"), system, config=replace(BASE, fast_kernels=False)
    )
    assert fast == reference


def test_fast_kernels_equal_reference_with_heavy_noise():
    """Noise interleaves foreign allocations with the touch stream and
    forces the per-page fault windows, so the quiescent cache must stay
    invisible under it."""
    config = replace(BASE, noise_rate=0.25, epochs=3)
    fast = run_workload(make_workload("Masstree"), "Gemini", config=config)
    reference = run_workload(
        make_workload("Masstree"), "Gemini",
        config=replace(config, fast_kernels=False),
    )
    assert fast == reference


def test_fast_kernels_equal_reference_with_primer():
    """The reused-VM path (primer + unmap + EPT retention) exercises the
    release-client teardown kernel and fingerprint invalidation across a
    full tenant turnover."""
    config = replace(BASE, epochs=3)
    fast = run_workload(
        make_workload("Redis"), "Gemini", config=config,
        primer=make_workload("SVM"),
    )
    reference = run_workload(
        make_workload("Redis"), "Gemini",
        config=replace(config, fast_kernels=False),
        primer=make_workload("SVM"),
    )
    assert fast == reference


@pytest.mark.parametrize(
    "other",
    [{"batch_faults": False}, {"incremental_index": False}],
    ids=["per-page-faults", "no-index"],
)
def test_fast_kernels_orthogonal_to_other_flags(other):
    """The three selectable fast paths compose: kernels on/off must also
    agree when a sibling fast path is switched to its reference loop."""
    config = replace(BASE, epochs=3, **other)
    fast = run_workload(make_workload("Redis"), "Gemini", config=config)
    reference = run_workload(
        make_workload("Redis"), "Gemini",
        config=replace(config, fast_kernels=False),
    )
    assert fast == reference


def test_fleet_fast_kernels_equal_reference():
    fast = ClusterSimulation(SMALL_FLEET).run(workers=1)
    reference = ClusterSimulation(
        replace(SMALL_FLEET, fast_kernels=False)
    ).run(workers=1)
    assert fast == reference


def test_fleet_fast_kernels_parallel_identical(monkeypatch):
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    config = replace(SMALL_FLEET, adaptive_parallel=False)
    serial = ClusterSimulation(config).run(workers=1)
    parallel = ClusterSimulation(config).run(workers=2)
    assert serial == parallel


def test_fast_kernels_excluded_from_cache_keys():
    """Both result-cache keys treat the flag as a pure execution strategy."""
    assert fleet_key(SMALL_FLEET) == fleet_key(
        replace(SMALL_FLEET, fast_kernels=False)
    )
    fast = Cell("Redis", "Gemini", replace(BASE, fast_kernels=True))
    reference = Cell("Redis", "Gemini", replace(BASE, fast_kernels=False))
    assert cell_key(fast) == cell_key(reference)
