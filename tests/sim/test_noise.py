"""Unit tests for the OS allocation noise agent."""

import pytest

from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.policies.base import HugePagePolicy
from repro.sim.noise import NoiseAgent


def make_platform():
    platform = Platform(128 * PAGES_PER_HUGE, HugePagePolicy())
    vm = platform.create_vm(32 * PAGES_PER_HUGE, HugePagePolicy())
    return platform, vm


def test_validation():
    platform, _vm = make_platform()
    with pytest.raises(ValueError):
        NoiseAgent(platform, rate=1.5)
    with pytest.raises(ValueError):
        NoiseAgent(platform, free_fraction=-0.1)


def test_zero_rate_is_silent():
    platform, vm = make_platform()
    noise = NoiseAgent(platform, rate=0.0, seed=1)
    noise.install()
    vma = vm.mmap(200, "heap")
    platform.touch_vma(vm, vma)
    assert noise.allocations == 0
    assert noise.held_pages == 0


def test_noise_interleaves_with_faults():
    platform, vm = make_platform()
    noise = NoiseAgent(platform, rate=0.5, seed=1)
    noise.install()
    vma = vm.mmap(400, "heap")
    platform.touch_vma(vm, vma)
    assert noise.allocations > 50
    assert noise.held_pages > 0


def test_noise_clusters_in_pageblocks():
    """Unmovable noise stays grouped (migrate-type modelling): the number
    of guest regions containing noise frames is far below the number of
    noise allocations."""
    platform, vm = make_platform()
    noise = NoiseAgent(platform, rate=0.5, free_fraction=0.0, seed=1)
    noise.install()
    vma = vm.mmap(600, "heap")
    platform.touch_vma(vm, vma)
    held = noise._guest_held[vm.id]
    assert len(held) > 100
    regions = {frame // PAGES_PER_HUGE for frame in held}
    assert len(regions) <= 3


def test_transient_queue_is_bounded():
    platform, vm = make_platform()
    noise = NoiseAgent(platform, rate=1.0, seed=1)
    noise.install()
    vma = vm.mmap(400, "heap")
    platform.touch_vma(vm, vma)
    for fifo in noise._transient.values():
        assert len(fifo) <= noise.transient_hold


def test_noise_is_deterministic():
    counts = []
    for _ in range(2):
        platform, vm = make_platform()
        noise = NoiseAgent(platform, rate=0.3, seed=9)
        noise.install()
        vma = vm.mmap(300, "heap")
        platform.touch_vma(vm, vma)
        counts.append(noise.allocations)
    assert counts[0] == counts[1]


def test_act_horizon_predraw_matches_fresh_stream():
    """Pre-drawing gates through act_horizon then delivering faults must
    consume the exact RNG stream of undisturbed per-fault delivery."""
    platform_a, vm_a = make_platform()
    reference = NoiseAgent(platform_a, rate=0.2, seed=9)
    reference.install()
    platform_b, vm_b = make_platform()
    predrawn = NoiseAgent(platform_b, rate=0.2, seed=9)
    predrawn.install()

    horizon = predrawn.act_horizon(64)
    assert 0 <= horizon <= 64
    for _ in range(200):
        reference.on_fault(vm_a)
        predrawn.on_fault(vm_b)
    assert predrawn.allocations == reference.allocations
    assert predrawn.held_pages == reference.held_pages
    assert predrawn._rng.random() == reference._rng.random()


def test_act_horizon_counts_quiet_faults():
    """The returned horizon is exactly the number of leading faults that
    do not act; the next fault after the horizon acts (unless capped)."""
    platform, vm = make_platform()
    noise = NoiseAgent(platform, rate=0.3, seed=3)
    noise.install()
    horizon = noise.act_horizon(1 << 30)
    for index in range(horizon):
        before = noise.allocations
        noise.on_fault(vm)
        assert noise.allocations == before, f"fault {index} acted early"
    noise.on_fault(vm)
    assert noise.allocations == 1


def test_act_horizon_respects_limit():
    platform, _vm = make_platform()
    noise = NoiseAgent(platform, rate=0.0, seed=5)
    assert noise.act_horizon(7) == 7
    # rate 0 never acts: a second call keeps extending the quiet window.
    assert noise.act_horizon(12) == 12


def test_platform_hook_exposes_act_horizon():
    """install() publishes the agent itself, so the batched fault path can
    discover the horizon protocol on platform.fault_hook."""
    platform, vm = make_platform()
    noise = NoiseAgent(platform, rate=0.1, seed=2)
    noise.install()
    assert platform.fault_hook is noise
    assert callable(getattr(platform.fault_hook, "act_horizon"))
    platform.fault_hook(vm)  # __call__ delegates to on_fault
