"""Unit tests for the OS allocation noise agent."""

import pytest

from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.policies.base import HugePagePolicy
from repro.sim.noise import NoiseAgent


def make_platform():
    platform = Platform(128 * PAGES_PER_HUGE, HugePagePolicy())
    vm = platform.create_vm(32 * PAGES_PER_HUGE, HugePagePolicy())
    return platform, vm


def test_validation():
    platform, _vm = make_platform()
    with pytest.raises(ValueError):
        NoiseAgent(platform, rate=1.5)
    with pytest.raises(ValueError):
        NoiseAgent(platform, free_fraction=-0.1)


def test_zero_rate_is_silent():
    platform, vm = make_platform()
    noise = NoiseAgent(platform, rate=0.0, seed=1)
    noise.install()
    vma = vm.mmap(200, "heap")
    platform.touch_vma(vm, vma)
    assert noise.allocations == 0
    assert noise.held_pages == 0


def test_noise_interleaves_with_faults():
    platform, vm = make_platform()
    noise = NoiseAgent(platform, rate=0.5, seed=1)
    noise.install()
    vma = vm.mmap(400, "heap")
    platform.touch_vma(vm, vma)
    assert noise.allocations > 50
    assert noise.held_pages > 0


def test_noise_clusters_in_pageblocks():
    """Unmovable noise stays grouped (migrate-type modelling): the number
    of guest regions containing noise frames is far below the number of
    noise allocations."""
    platform, vm = make_platform()
    noise = NoiseAgent(platform, rate=0.5, free_fraction=0.0, seed=1)
    noise.install()
    vma = vm.mmap(600, "heap")
    platform.touch_vma(vm, vma)
    held = noise._guest_held[vm.id]
    assert len(held) > 100
    regions = {frame // PAGES_PER_HUGE for frame in held}
    assert len(regions) <= 3


def test_transient_queue_is_bounded():
    platform, vm = make_platform()
    noise = NoiseAgent(platform, rate=1.0, seed=1)
    noise.install()
    vma = vm.mmap(400, "heap")
    platform.touch_vma(vm, vma)
    for fifo in noise._transient.values():
        assert len(fifo) <= noise.transient_hold


def test_noise_is_deterministic():
    counts = []
    for _ in range(2):
        platform, vm = make_platform()
        noise = NoiseAgent(platform, rate=0.3, seed=9)
        noise.install()
        vma = vm.mmap(300, "heap")
        platform.touch_vma(vm, vma)
        counts.append(noise.allocations)
    assert counts[0] == counts[1]
