"""Integration tests for the simulation engine."""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation, run_workload
from repro.workloads.base import AccessPhase, Workload
from repro.workloads.suite import make_workload

FAST = SimulationConfig(epochs=6, host_mib=512, guest_mib=128)


class TinyWorkload(Workload):
    name = "tiny"
    tlb_sensitivity = 0.4
    accesses_per_epoch = 100_000.0
    ops_per_epoch = 1_000.0

    def setup(self, ctx):
        ctx.mmap_mib("data", 8)
        ctx.touch_all("data")

    def access_phases(self, epoch):
        return [AccessPhase("data")]


def test_run_produces_epoch_records():
    result = Simulation(TinyWorkload(), system="Host-B-VM-B", config=FAST).run_single()
    assert result.system == "Host-B-VM-B"
    assert result.workload == "tiny"
    assert len(result.epochs) == FAST.epochs
    assert result.throughput > 0
    assert result.tlb_misses > 0


def test_requires_at_least_one_workload():
    with pytest.raises(ValueError):
        Simulation([], system="THP", config=FAST)


def test_unknown_system_rejected():
    with pytest.raises(KeyError):
        Simulation(TinyWorkload(), system="NoSuchSystem", config=FAST)


def test_run_single_rejects_multi_workload():
    sim = Simulation([TinyWorkload(), make_workload("Shore")], system="THP", config=FAST)
    with pytest.raises(ValueError):
        sim.run_single()


def test_multi_vm_returns_result_per_workload():
    sim = Simulation(
        [make_workload("Shore"), make_workload("SP.D")], system="THP", config=FAST
    )
    results = sim.run()
    assert [r.workload for r in results] == ["Shore", "SP.D"]
    assert len(sim.platform.vms) == 2


def test_determinism_same_seed():
    a = run_workload(TinyWorkload(), "Ingens", config=FAST)
    b = run_workload(TinyWorkload(), "Ingens", config=FAST)
    assert a.throughput == b.throughput
    assert a.tlb_misses == b.tlb_misses
    assert a.well_aligned_rate == b.well_aligned_rate


def test_different_seeds_differ():
    import dataclasses

    # Enough epochs for the workload's churn (seed-dependent) to kick in.
    base = dataclasses.replace(FAST, guest_mib=256, epochs=14)
    a = run_workload(make_workload("Redis"), "THP", config=base)
    b = run_workload(
        make_workload("Redis"), "THP", config=dataclasses.replace(base, seed=99)
    )
    assert a.tlb_misses != b.tlb_misses


def test_fragmentation_is_applied():
    import dataclasses

    config = dataclasses.replace(FAST, fragment_guest=0.6, fragment_host=0.6)
    sim = Simulation(TinyWorkload(), system="Host-B-VM-B", config=config)
    result = sim.run_single()
    assert result.epochs[0].fmfi_host > 0.3


def test_gemini_runtime_attached_only_for_gemini():
    gemini = Simulation(TinyWorkload(), system="Gemini", config=FAST)
    assert gemini.runtime is not None
    other = Simulation(TinyWorkload(), system="THP", config=FAST)
    assert other.runtime is None
    result = gemini.run_single()
    assert result.gemini_stats  # runtime statistics collected


def test_primer_runs_and_unmaps():
    sim = Simulation(
        TinyWorkload(),
        system="THP",
        config=FAST,
        primer=make_workload("SVM"),
    )
    result = sim.run_single()
    vm = sim._vms[0]
    # Primer memory was unmapped: only the main workload's VMA remains.
    assert len(vm.address_space) == 1
    # But the EPT retains the primer's (stale) mappings: the host was never
    # told about the frees.
    assert sim.platform.ept(vm.id).mapped_pages > vm.table().mapped_pages
    assert result.throughput > 0


def test_hawkeye_dedup_charges_cow_on_specjbb():
    import dataclasses

    config = dataclasses.replace(FAST, guest_mib=256)
    sim = Simulation(make_workload("Specjbb"), system="HawkEye", config=config)
    sim.run_single()
    assert sim._vms[0].guest.ledger.count("cow_fault") > 0
    # Ingens does not deduplicate: no CoW charges.
    sim2 = Simulation(make_workload("Specjbb"), system="Ingens", config=config)
    sim2.run_single()
    assert sim2._vms[0].guest.ledger.count("cow_fault") == 0


def test_alignment_report_consistency():
    """The recorded alignment rate must be reproducible from the final
    page tables."""
    config = SimulationConfig(epochs=6, host_mib=512, guest_mib=128, noise_rate=0.0)
    sim = Simulation(TinyWorkload(), system="Host-H-VM-H", config=config)
    result = sim.run_single()
    # Static huge/huge configuration on pristine memory: everything aligned.
    assert result.well_aligned_rate == pytest.approx(1.0)
    last = result.epochs[-1].alignment
    assert last.guest_huge > 0
    assert last.aligned_guest == last.guest_huge


def test_anagram_workload_names_get_distinct_rng_streams():
    """The per-workload RNG salt must key on byte order, not a byte sum:
    anagram names (same bytes, different order) need different churn."""

    def context_stream(name):
        workload = make_workload("Redis")
        workload.name = name
        sim = Simulation(workload, system="Host-B-VM-B", config=FAST)
        return [sim._contexts[0].rng.random() for _ in range(8)]

    assert context_stream("listen") != context_stream("silent")
