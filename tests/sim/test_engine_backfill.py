"""Tests for the engine's host-backfill behaviour after guest migrations."""

from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.sim.results import RunResult
from repro.workloads.base import AccessPhase, Workload


class OneRegion(Workload):
    name = "one-region"
    tlb_sensitivity = 0.4
    accesses_per_epoch = 10_000.0
    ops_per_epoch = 100.0

    def setup(self, ctx):
        ctx.mmap("data", PAGES_PER_HUGE)
        ctx.touch_all("data")

    def access_phases(self, epoch):
        return [AccessPhase("data")]


def test_backfill_after_guest_migration():
    """When the guest migrates a region to fresh GPAs, the engine must
    fault the missing EPT backing before evaluating the epoch (real
    accesses would EPT-fault)."""
    config = SimulationConfig(epochs=2, host_mib=512, guest_mib=128, noise_rate=0.0)
    sim = Simulation(OneRegion(), system="Host-B-VM-B", config=config)
    results = [RunResult(system="Host-B-VM-B", workload="one-region")]
    sim._epoch(0, results)
    vm = sim._vms[0]
    vregion = vm.address_space.vma("data").start // PAGES_PER_HUGE
    # Migrate the region to a fresh gpa region behind the engine's back.
    assert vm.guest.promote_with_migration(PROCESS, vregion)
    new_gpregion = vm.table().huge_target(vregion)
    ept = sim.platform.ept(vm.id)
    assert not ept.is_huge(new_gpregion)
    populated_before = ept.region_population(new_gpregion)
    assert populated_before < PAGES_PER_HUGE
    sim._epoch(1, results)
    # The engine backfilled the whole region's host backing.
    assert (
        ept.region_population(new_gpregion) == PAGES_PER_HUGE
        or ept.is_huge(new_gpregion)
    )


def test_backfill_counts_as_host_faults():
    config = SimulationConfig(epochs=2, host_mib=512, guest_mib=128, noise_rate=0.0)
    sim = Simulation(OneRegion(), system="Host-B-VM-B", config=config)
    results = [RunResult(system="Host-B-VM-B", workload="one-region")]
    sim._epoch(0, results)
    vm = sim._vms[0]
    vregion = vm.address_space.vma("data").start // PAGES_PER_HUGE
    vm.guest.promote_with_migration(PROCESS, vregion)
    before = sim.platform.host.ledger.count("base_fault")
    sim._epoch(1, results)
    after = sim.platform.host.ledger.count("base_fault")
    assert after > before  # EPT violations were charged
