"""Unit tests for the result export helpers."""

import csv

import pytest

from repro.metrics.report import (
    format_bench_fleet,
    matrix_to_markdown,
    results_to_rows,
    series_to_csv,
    write_csv,
)
from repro.sim import Simulation, SimulationConfig
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def small_results():
    config = SimulationConfig(epochs=4, host_mib=512, guest_mib=128)
    results = {}
    for system in ("Host-B-VM-B", "THP"):
        results.setdefault("Shore", {})[system] = Simulation(
            make_workload("Shore"), system=system, config=config
        ).run_single()
    return results


def test_results_to_rows(small_results):
    rows = results_to_rows(small_results)
    assert len(rows) == 2
    assert {row["system"] for row in rows} == {"Host-B-VM-B", "THP"}
    assert all("throughput" in row for row in rows)
    assert all(row["workload"] == "Shore" for row in rows)


def test_write_csv_roundtrip(tmp_path, small_results):
    path = tmp_path / "out.csv"
    write_csv(small_results, str(path))
    with open(path) as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert float(rows[0]["throughput"]) > 0


def test_write_csv_empty_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_csv({}, str(tmp_path / "out.csv"))


def test_matrix_to_markdown():
    table = {"Redis": {"THP": 1.2, "Gemini": 1.8}}
    text = matrix_to_markdown(table, title="Throughput")
    assert "**Throughput**" in text
    assert "| Redis | 1.20 | 1.80 |" in text
    assert "**average**" in text


def test_matrix_to_markdown_empty():
    assert matrix_to_markdown({}, title="x") == "x"


def test_series_to_csv(small_results):
    result = small_results["Shore"]["THP"]
    text = series_to_csv(result)
    lines = text.strip().splitlines()
    assert lines[0].startswith("epoch,throughput")
    assert len(lines) == 1 + len(result.epochs)


def test_format_bench_fleet():
    bench = {
        "fleet": {
            "hosts": 8,
            "epochs": 12,
            "workers": 4,
            "cores": 4,
            "parallel_mode": "parallel",
            "serial_seconds": 10.9065,
            "parallel_seconds": 4.21,
            "speedup_parallel_vs_serial": 2.59,
            "ipc_bytes_per_epoch_legacy": 2612750.0,
            "ipc_bytes_per_epoch_fused": 2537.0,
            "ipc_reduction_factor": 1029.9,
            "ipc_peer_bytes_fused": 5227051,
        }
    }
    table = format_bench_fleet(bench)
    assert "8 hosts x 12 epochs" in table
    assert "| legacy per-event | 2,612,750 |" in table
    assert "| fused batches | 2,537 |" in table
    assert "1,029.9x" in table
    assert "5,227,051" in table
    assert "2.59x" in table


def test_format_bench_fleet_tolerates_old_reports():
    assert format_bench_fleet({}) == ""
    assert format_bench_fleet({"single_cell": {}}) == ""
