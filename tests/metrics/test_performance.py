"""Unit tests for the performance model."""

import pytest

from repro.metrics.performance import (
    EpochPerformance,
    REFERENCE_TRANSLATION_CYCLES,
    TAIL_STALL_CAP_CYCLES,
    compute_cycles_per_access,
    epoch_performance,
)
from repro.tlb.model import TLBConfig, TLBModel, TranslationSegment


def make_stats(entries=100, accesses=10_000, walk=100.0):
    model = TLBModel(TLBConfig(entries=50, utilization=1.0))
    return model.evaluate(
        [TranslationSegment(entries=entries, accesses=accesses, walk_cycles=walk)]
    )


def test_compute_cycles_validation():
    with pytest.raises(ValueError):
        compute_cycles_per_access(0.0)
    with pytest.raises(ValueError):
        compute_cycles_per_access(1.5)


def test_compute_cycles_scale_with_sensitivity():
    # sensitivity 0.5: compute equals the reference translation cost.
    assert compute_cycles_per_access(0.5) == pytest.approx(
        REFERENCE_TRANSLATION_CYCLES
    )
    # Low sensitivity: compute dominates.
    assert compute_cycles_per_access(0.04) > 20 * REFERENCE_TRANSLATION_CYCLES
    # Full sensitivity: no compute at all.
    assert compute_cycles_per_access(1.0) == 0.0


def test_epoch_performance_composition():
    stats = make_stats()
    perf = epoch_performance(
        tlb_sensitivity=0.5,
        ops=1_000,
        stats=stats,
        sync_mm_cycles=5_000.0,
        background_cycles=2_000.0,
    )
    assert perf.total_cycles == pytest.approx(
        perf.compute_cycles + perf.translation_cycles + 5_000.0 + 2_000.0
    )
    assert perf.throughput == pytest.approx(1_000 / perf.total_cycles)
    # Background work affects throughput but not request latency.
    inline = perf.compute_cycles + perf.translation_cycles + 5_000.0
    assert perf.mean_latency == pytest.approx(inline / 1_000)


def test_lower_misses_mean_higher_throughput():
    light = make_stats(entries=10)   # fits TLB
    heavy = make_stats(entries=10_000)
    perf_light = epoch_performance(0.5, 1_000, light, 0.0, 0.0)
    perf_heavy = epoch_performance(0.5, 1_000, heavy, 0.0, 0.0)
    assert perf_light.throughput > perf_heavy.throughput
    assert perf_light.mean_latency < perf_heavy.mean_latency


def test_insensitive_workload_barely_reacts():
    light = make_stats(entries=10)
    heavy = make_stats(entries=10_000)
    fast = epoch_performance(0.04, 1_000, light, 0.0, 0.0)
    slow = epoch_performance(0.04, 1_000, heavy, 0.0, 0.0)
    assert slow.throughput / fast.throughput > 0.9


def test_p99_includes_stall_tail():
    stats = make_stats()
    calm = epoch_performance(0.5, 1_000, stats, sync_mm_cycles=0.0, background_cycles=0.0)
    stalled = epoch_performance(
        0.5, 1_000, stats, sync_mm_cycles=200_000.0, background_cycles=0.0
    )
    assert stalled.p99_latency > calm.p99_latency
    assert calm.p99_latency == pytest.approx(2.0 * calm.mean_latency)


def test_p99_stall_capped():
    stats = make_stats()
    perf = epoch_performance(
        0.5, 1_000, stats, sync_mm_cycles=1e12, background_cycles=0.0
    )
    assert perf.p99_latency <= 2.0 * perf.mean_latency + TAIL_STALL_CAP_CYCLES


def test_zero_ops_degenerate():
    perf = EpochPerformance(
        ops=0, accesses=0, compute_cycles=0, translation_cycles=0,
        tlb_misses=0, sync_mm_cycles=0, background_cycles=0,
    )
    assert perf.throughput == 0.0
    assert perf.mean_latency == 0.0
    assert perf.p99_latency == 0.0
