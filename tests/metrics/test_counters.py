"""Unit tests for the cost ledger."""

import pytest

from repro.metrics.counters import CostLedger


def test_charge_accumulates():
    ledger = CostLedger("test")
    ledger.charge("fault", 100.0)
    ledger.charge("fault", 50.0, count=2)
    assert ledger.count("fault") == 3
    assert ledger.cycles("fault") == 150.0
    assert ledger.sync_cycles == 150.0
    assert ledger.background_cycles == 0.0


def test_background_bucket_separate():
    ledger = CostLedger()
    ledger.charge("scan", 10.0, sync=False)
    ledger.charge("scan", 5.0, sync=True)
    assert ledger.background_cycles == 10.0
    assert ledger.sync_cycles == 5.0
    assert ledger.count("scan") == 2
    assert ledger.cycles("scan") == 15.0


def test_negative_charge_rejected():
    ledger = CostLedger()
    with pytest.raises(ValueError):
        ledger.charge("x", -1.0)
    with pytest.raises(ValueError):
        ledger.charge("x", 1.0, count=-1)


def test_merge():
    a = CostLedger("a")
    b = CostLedger("b")
    a.charge("fault", 10.0)
    b.charge("fault", 20.0)
    b.charge("scan", 5.0, sync=False)
    a.merge(b)
    assert a.cycles("fault") == 30.0
    assert a.background_cycles == 5.0


def test_snapshot_and_delta():
    ledger = CostLedger()
    ledger.charge("fault", 10.0)
    snap = ledger.snapshot()
    ledger.charge("fault", 5.0)
    ledger.charge("promo", 7.0, sync=False)
    delta = ledger.delta_since(snap)
    assert delta.cycles("fault") == 5.0
    assert delta.count("fault") == 1
    assert delta.background_cycles == 7.0
    # Snapshot unaffected by later charges.
    assert snap.cycles("fault") == 10.0


def test_delta_empty_when_unchanged():
    ledger = CostLedger()
    ledger.charge("fault", 10.0)
    delta = ledger.delta_since(ledger.snapshot())
    assert delta.sync_cycles == 0.0
    assert not delta.sync
