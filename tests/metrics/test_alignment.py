"""Unit tests for alignment analysis and region classification."""

import pytest

from repro.mem.layout import PAGES_PER_HUGE
from repro.metrics.alignment import (
    RegionKind,
    alignment_report,
    classify_region,
)
from repro.paging.pagetable import PageTable
from repro.paging.walker import nested_walk_cost


def tables():
    return PageTable("guest"), PageTable("ept")


def test_aligned_huge_counts_both_sides():
    guest, ept = tables()
    guest.map_huge(0, 10)
    ept.map_huge(10, 20)
    report = alignment_report(guest, ept)
    assert report.guest_huge == 1
    assert report.host_huge == 1
    assert report.aligned_guest == 1
    assert report.aligned_host == 1
    assert report.well_aligned_rate == 1.0


def test_misaligned_guest_huge():
    guest, ept = tables()
    guest.map_huge(0, 10)  # host backs region 10 with base pages
    for offset in range(PAGES_PER_HUGE):
        ept.map_base(10 * PAGES_PER_HUGE + offset, offset)
    report = alignment_report(guest, ept)
    assert report.guest_huge == 1
    assert report.host_huge == 0
    assert report.aligned_total == 0
    assert report.well_aligned_rate == 0.0


def test_misaligned_host_huge():
    guest, ept = tables()
    # Guest maps region 0 with base pages onto gpa region 10's frames.
    for offset in range(PAGES_PER_HUGE):
        guest.map_base(offset, 10 * PAGES_PER_HUGE + offset)
    ept.map_huge(10, 3)
    report = alignment_report(guest, ept)
    assert report.host_huge == 1
    assert report.aligned_host == 0
    assert report.well_aligned_rate == 0.0


def test_mixed_alignment_rate():
    guest, ept = tables()
    guest.map_huge(0, 10)
    ept.map_huge(10, 20)  # aligned pair
    guest.map_huge(1, 11)  # guest-only huge
    ept.map_huge(12, 22)   # host-only huge
    report = alignment_report(guest, ept)
    assert report.total_huge == 4
    assert report.aligned_total == 2
    assert report.well_aligned_rate == 0.5


def test_empty_report():
    guest, ept = tables()
    report = alignment_report(guest, ept)
    assert report.well_aligned_rate == 0.0
    assert report.total_huge == 0


def test_report_merge():
    guest, ept = tables()
    guest.map_huge(0, 10)
    ept.map_huge(10, 20)
    a = alignment_report(guest, ept)
    b = alignment_report(guest, ept)
    a.merge(b)
    assert a.total_huge == 4
    assert a.well_aligned_rate == 1.0


def test_classify_aligned_region_needs_one_entry():
    guest, ept = tables()
    guest.map_huge(0, 10)
    ept.map_huge(10, 20)
    classes = classify_region(guest, ept, 0)
    assert len(classes) == 1
    cls = classes[0]
    assert cls.kind is RegionKind.ALIGNED_HUGE
    assert cls.entries == 1
    assert cls.pages == PAGES_PER_HUGE
    assert cls.walk_cycles == pytest.approx(nested_walk_cost(True, True).cycles)


def test_classify_guest_huge_only_splinters():
    guest, ept = tables()
    guest.map_huge(0, 10)
    classes = classify_region(guest, ept, 0)
    assert classes[0].kind is RegionKind.GUEST_HUGE_ONLY
    assert classes[0].entries == PAGES_PER_HUGE
    assert classes[0].walk_cycles == pytest.approx(nested_walk_cost(True, False).cycles)


def test_classify_base_region_mixed_backing():
    guest, ept = tables()
    # 3 pages backed by a host huge page, 2 by host base pages.
    ept.map_huge(10, 3)
    for offset in range(3):
        guest.map_base(offset, 10 * PAGES_PER_HUGE + offset)
    for offset in range(3, 5):
        guest.map_base(offset, 99 * PAGES_PER_HUGE + offset)
        ept.map_base(99 * PAGES_PER_HUGE + offset, 5000 + offset)
    classes = {c.kind: c for c in classify_region(guest, ept, 0)}
    assert classes[RegionKind.HOST_HUGE_ONLY].entries == 3
    assert classes[RegionKind.BASE_ONLY].entries == 2


def test_classify_empty_region():
    guest, ept = tables()
    assert classify_region(guest, ept, 0) == []


def test_walk_cost_ordering_by_kind():
    guest, ept = tables()
    guest.map_huge(0, 10)
    ept.map_huge(10, 20)
    aligned = classify_region(guest, ept, 0)[0]
    guest2, ept2 = tables()
    guest2.map_base(0, 5)
    ept2.map_base(5, 7)
    base = classify_region(guest2, ept2, 0)[0]
    assert aligned.walk_cycles < base.walk_cycles
