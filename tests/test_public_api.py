"""API-surface hygiene: the public package exports what the README
documents, and every module carries a docstring."""

import importlib
import pathlib
import pkgutil

import repro


def test_top_level_exports():
    for name in (
        "Simulation",
        "SimulationConfig",
        "RunResult",
        "Platform",
        "VM",
        "GeminiRuntime",
        "GeminiConfig",
        "make_workload",
        "workload_names",
        "system_spec",
        "alignment_report",
        "run_workload",
    ):
        assert hasattr(repro, name), name
    assert repro.__version__


def test_all_lists_are_accurate():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def _iter_modules():
    package_dir = pathlib.Path(repro.__file__).parent
    for info in pkgutil.walk_packages([str(package_dir)], prefix="repro."):
        yield info.name


def test_every_module_imports_and_has_docstring():
    for module_name in _iter_modules():
        if module_name.endswith("__main__"):
            continue
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"


def test_every_subpackage_reexports_consistently():
    for package_name in (
        "repro.mem",
        "repro.paging",
        "repro.tlb",
        "repro.os",
        "repro.hypervisor",
        "repro.policies",
        "repro.core",
        "repro.workloads",
        "repro.metrics",
        "repro.sim",
        "repro.pressure",
        "repro.experiments",
    ):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name}"


def test_paper_systems_have_workloads_to_run():
    # The advertised quickstart path works end to end for every system.
    from repro import PAPER_SYSTEMS, SYSTEMS, TLB_SENSITIVE_SUITE

    assert set(PAPER_SYSTEMS) <= set(SYSTEMS)
    assert len(TLB_SENSITIVE_SUITE) == 16
