"""Property-based tests for buddy allocator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.buddy import AllocationError, BuddyAllocator
from repro.mem.layout import MAX_ORDER

TOTAL = 2048


def free_space_invariants(buddy):
    """Free-list bookkeeping must agree with the free_pages counter, blocks
    must be aligned, in range, and pairwise disjoint."""
    seen = set()
    total = 0
    for start, order in buddy.free_blocks():
        size = 1 << order
        assert start % size == 0
        assert buddy.base <= start
        assert start + size <= buddy.base + buddy.total_pages
        frames = set(range(start, start + size))
        assert not frames & seen, "overlapping free blocks"
        seen |= frames
        total += size
    assert total == buddy.free_pages


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=MAX_ORDER)),
        min_size=1,
        max_size=60,
    )
)
def test_random_alloc_free_preserves_invariants(ops):
    """Random interleavings of alloc/free keep the allocator consistent."""
    buddy = BuddyAllocator(TOTAL)
    live = []
    for is_alloc, order in ops:
        if is_alloc or not live:
            try:
                frame = buddy.alloc(order)
            except AllocationError:
                continue
            live.append((frame, order))
        else:
            frame, forder = live.pop()
            buddy.free(frame, forder)
    free_space_invariants(buddy)
    allocated = sum(1 << o for _, o in live)
    assert buddy.free_pages == TOTAL - allocated


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=MAX_ORDER), min_size=1, max_size=40
    )
)
def test_alloc_everything_then_free_restores_full_memory(orders):
    buddy = BuddyAllocator(TOTAL)
    live = []
    for order in orders:
        try:
            live.append((buddy.alloc(order), order))
        except AllocationError:
            pass
    for frame, order in live:
        buddy.free(frame, order)
    assert buddy.free_pages == TOTAL
    assert buddy.largest_free_order() == MAX_ORDER
    free_space_invariants(buddy)


@settings(max_examples=60, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=TOTAL - 1),
    npages=st.integers(min_value=1, max_value=TOTAL),
)
def test_alloc_range_free_range_roundtrip(start, npages):
    buddy = BuddyAllocator(TOTAL)
    if start + npages > TOTAL:
        with pytest.raises(AllocationError):
            buddy.alloc_range(start, npages)
        assert buddy.free_pages == TOTAL
        return
    buddy.alloc_range(start, npages)
    assert buddy.free_pages == TOTAL - npages
    for probe in (start, start + npages - 1):
        assert not buddy.is_free(probe)
    free_space_invariants(buddy)
    buddy.free_range(start, npages)
    assert buddy.free_pages == TOTAL
    free_space_invariants(buddy)


@settings(max_examples=40, deadline=None)
@given(
    pins=st.lists(
        st.integers(min_value=0, max_value=TOTAL - 1),
        min_size=1,
        max_size=30,
        unique=True,
    )
)
def test_free_regions_match_pinned_holes(pins):
    """free_regions must be exactly the complement of pinned frames."""
    buddy = BuddyAllocator(TOTAL)
    for pin in pins:
        buddy.alloc_at(pin, 0)
    regions = buddy.free_regions()
    free_frames = set()
    for rstart, rpages in regions:
        free_frames |= set(range(rstart, rstart + rpages))
    assert free_frames == set(range(TOTAL)) - set(pins)
    # Regions are sorted and maximal (separated by at least one pin).
    for (s1, n1), (s2, _) in zip(regions, regions[1:]):
        assert s1 + n1 < s2


def canonical_blocks(buddy):
    """The free-block decomposition, as a sorted list of (start, order)."""
    return sorted(buddy.free_blocks())


@settings(max_examples=60, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=TOTAL - 1),
    npages=st.integers(min_value=1, max_value=256),
)
def test_alloc_range_equals_per_frame_alloc_at(start, npages):
    """alloc_range must leave the exact free-block decomposition that
    claiming the same frames one at a time with alloc_at leaves: eager
    buddy merging makes the decomposition a pure function of the free set."""
    if start + npages > TOTAL:
        npages = TOTAL - start
    batched = BuddyAllocator(TOTAL)
    batched.alloc_range(start, npages)
    stepped = BuddyAllocator(TOTAL)
    for frame in range(start, start + npages):
        stepped.alloc_at(frame, 0)
    assert canonical_blocks(batched) == canonical_blocks(stepped)
    assert batched.free_pages == stepped.free_pages == TOTAL - npages


@settings(max_examples=60, deadline=None)
@given(
    ranges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=TOTAL - 1),
            st.integers(min_value=1, max_value=128),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_free_range_merge_restores_canonical_decomposition(ranges):
    """Freeing everything that was claimed — in any order, range by range —
    must merge buddies all the way back to the initial decomposition."""
    buddy = BuddyAllocator(TOTAL)
    initial = canonical_blocks(buddy)
    claimed = []
    owned = set()
    for start, npages in ranges:
        npages = min(npages, TOTAL - start)
        if owned & set(range(start, start + npages)):
            continue
        try:
            buddy.alloc_range(start, npages)
        except AllocationError:
            continue
        claimed.append((start, npages))
        owned |= set(range(start, start + npages))
    for start, npages in reversed(claimed):
        buddy.free_range(start, npages)
    assert buddy.free_pages == TOTAL
    assert canonical_blocks(buddy) == initial
    free_space_invariants(buddy)


@settings(max_examples=40, deadline=None)
@given(
    pins=st.lists(
        st.integers(min_value=0, max_value=TOTAL - 1),
        min_size=0,
        max_size=24,
        unique=True,
    ),
    allocs=st.integers(min_value=1, max_value=16),
)
def test_alloc_order0_is_lowest_address_within_best_order(pins, allocs):
    """Order-0 allocation is deterministic: it serves the lowest-address
    block of the smallest free order (best fit, then address order)."""
    buddy = BuddyAllocator(TOTAL)
    for pin in pins:
        buddy.alloc_at(pin, 0)
    for _ in range(allocs):
        blocks = sorted(buddy.free_blocks())
        if not blocks:
            break
        best_order = min(order for _, order in blocks)
        expected = min(start for start, order in blocks if order == best_order)
        assert buddy.alloc(0) == expected


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),
            st.integers(min_value=0, max_value=TOTAL - 1),
            st.integers(min_value=1, max_value=96),
        ),
        min_size=1,
        max_size=24,
    )
)
def test_region_index_consistent_with_free_blocks(ops):
    """The incremental region index (free_regions, large regions, run
    lengths, max region) must agree with a view recomputed from the raw
    free-block list after arbitrary range traffic."""
    from repro.mem.buddy import LARGE_REGION_PAGES

    buddy = BuddyAllocator(TOTAL)
    owned = set()
    for is_alloc, start, npages in ops:
        npages = min(npages, TOTAL - start)
        span = set(range(start, start + npages))
        if is_alloc:
            if span & owned:
                continue
            try:
                buddy.alloc_range(start, npages)
            except AllocationError:
                continue
            owned |= span
        else:
            if not span or not span <= owned:
                continue
            buddy.free_range(start, npages)
            owned -= span

    # Recompute merged free regions from the ground-truth free set.
    free = sorted(set(range(TOTAL)) - owned)
    expected = []
    for frame in free:
        if expected and expected[-1][0] + expected[-1][1] == frame:
            expected[-1] = (expected[-1][0], expected[-1][1] + 1)
        else:
            expected.append((frame, 1))

    assert buddy.free_regions() == expected
    assert buddy.large_free_regions() == [
        r for r in expected if r[1] >= LARGE_REGION_PAGES
    ]
    expected_max = max(expected, key=lambda r: r[1], default=None)
    assert buddy.max_free_region() == expected_max
    for rstart, rpages in expected[:8]:
        assert buddy.free_run_length(rstart, TOTAL) == rpages
        mid = rstart + rpages // 2
        assert buddy.free_run_length(mid, TOTAL) == rpages - rpages // 2
    for frame in list(owned)[:8]:
        assert buddy.free_run_length(frame, TOTAL) == 0
