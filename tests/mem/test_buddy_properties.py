"""Property-based tests for buddy allocator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.buddy import AllocationError, BuddyAllocator
from repro.mem.layout import MAX_ORDER

TOTAL = 2048


def free_space_invariants(buddy):
    """Free-list bookkeeping must agree with the free_pages counter, blocks
    must be aligned, in range, and pairwise disjoint."""
    seen = set()
    total = 0
    for start, order in buddy.free_blocks():
        size = 1 << order
        assert start % size == 0
        assert buddy.base <= start
        assert start + size <= buddy.base + buddy.total_pages
        frames = set(range(start, start + size))
        assert not frames & seen, "overlapping free blocks"
        seen |= frames
        total += size
    assert total == buddy.free_pages


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=MAX_ORDER)),
        min_size=1,
        max_size=60,
    )
)
def test_random_alloc_free_preserves_invariants(ops):
    """Random interleavings of alloc/free keep the allocator consistent."""
    buddy = BuddyAllocator(TOTAL)
    live = []
    for is_alloc, order in ops:
        if is_alloc or not live:
            try:
                frame = buddy.alloc(order)
            except AllocationError:
                continue
            live.append((frame, order))
        else:
            frame, forder = live.pop()
            buddy.free(frame, forder)
    free_space_invariants(buddy)
    allocated = sum(1 << o for _, o in live)
    assert buddy.free_pages == TOTAL - allocated


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=MAX_ORDER), min_size=1, max_size=40
    )
)
def test_alloc_everything_then_free_restores_full_memory(orders):
    buddy = BuddyAllocator(TOTAL)
    live = []
    for order in orders:
        try:
            live.append((buddy.alloc(order), order))
        except AllocationError:
            pass
    for frame, order in live:
        buddy.free(frame, order)
    assert buddy.free_pages == TOTAL
    assert buddy.largest_free_order() == MAX_ORDER
    free_space_invariants(buddy)


@settings(max_examples=60, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=TOTAL - 1),
    npages=st.integers(min_value=1, max_value=TOTAL),
)
def test_alloc_range_free_range_roundtrip(start, npages):
    buddy = BuddyAllocator(TOTAL)
    if start + npages > TOTAL:
        with pytest.raises(AllocationError):
            buddy.alloc_range(start, npages)
        assert buddy.free_pages == TOTAL
        return
    buddy.alloc_range(start, npages)
    assert buddy.free_pages == TOTAL - npages
    for probe in (start, start + npages - 1):
        assert not buddy.is_free(probe)
    free_space_invariants(buddy)
    buddy.free_range(start, npages)
    assert buddy.free_pages == TOTAL
    free_space_invariants(buddy)


@settings(max_examples=40, deadline=None)
@given(
    pins=st.lists(
        st.integers(min_value=0, max_value=TOTAL - 1),
        min_size=1,
        max_size=30,
        unique=True,
    )
)
def test_free_regions_match_pinned_holes(pins):
    """free_regions must be exactly the complement of pinned frames."""
    buddy = BuddyAllocator(TOTAL)
    for pin in pins:
        buddy.alloc_at(pin, 0)
    regions = buddy.free_regions()
    free_frames = set()
    for rstart, rpages in regions:
        free_frames |= set(range(rstart, rstart + rpages))
    assert free_frames == set(range(TOTAL)) - set(pins)
    # Regions are sorted and maximal (separated by at least one pin).
    for (s1, n1), (s2, _) in zip(regions, regions[1:]):
        assert s1 + n1 < s2
