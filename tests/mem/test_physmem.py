"""Unit tests for NUMA-aware physical memory."""

import pytest

from repro.mem.buddy import AllocationError
from repro.mem.physmem import PhysicalMemory


def test_single_node_basic_alloc_free():
    memory = PhysicalMemory(1024)
    frame = memory.alloc(0)
    assert frame == 0
    assert memory.free_pages == 1023
    memory.free(frame, 0)
    assert memory.free_pages == 1024


def test_construction_validation():
    with pytest.raises(ValueError):
        PhysicalMemory(100, nodes=0)
    with pytest.raises(ValueError):
        PhysicalMemory(1, nodes=2)


def test_two_nodes_split_evenly():
    memory = PhysicalMemory(2048, nodes=2)
    assert len(memory.nodes) == 2
    assert memory.nodes[0].base == 0
    assert memory.nodes[0].total_pages == 1024
    assert memory.nodes[1].base == 1024
    assert memory.nodes[1].total_pages == 1024


def test_uneven_split_gives_remainder_to_last_node():
    memory = PhysicalMemory(1001, nodes=2)
    assert memory.nodes[0].total_pages == 500
    assert memory.nodes[1].total_pages == 501
    assert memory.free_pages == 1001


def test_node_preference_and_fallback():
    memory = PhysicalMemory(2048, nodes=2)
    frame = memory.alloc(0, node=1)
    assert memory.node_index_of(frame) == 1
    # Exhaust node 1; allocation with node=1 falls back to node 0.
    while memory.nodes[1].free_pages:
        memory.nodes[1].alloc(0)
    fallback = memory.alloc(0, node=1)
    assert memory.node_index_of(fallback) == 0


def test_alloc_invalid_node_rejected():
    memory = PhysicalMemory(2048, nodes=2)
    with pytest.raises(ValueError):
        memory.alloc(0, node=2)


def test_exhaustion_raises_allocation_error():
    memory = PhysicalMemory(4, nodes=2)
    for _ in range(4):
        memory.alloc(0)
    with pytest.raises(AllocationError):
        memory.alloc(0)


def test_node_of_and_out_of_range():
    memory = PhysicalMemory(2048, nodes=2)
    assert memory.node_of(0) is memory.nodes[0]
    assert memory.node_of(1024) is memory.nodes[1]
    with pytest.raises(ValueError):
        memory.node_of(2048)
    with pytest.raises(ValueError):
        memory.node_index_of(-1)


def test_alloc_at_routes_to_owning_node():
    memory = PhysicalMemory(2048, nodes=2)
    memory.alloc_at(1536, 9)
    assert not memory.is_free(1536)
    assert memory.nodes[1].free_pages == 512


def test_range_is_free_handles_out_of_range():
    memory = PhysicalMemory(1024)
    assert memory.range_is_free(0, 1024)
    assert not memory.range_is_free(5000, 2)


def test_free_regions_sorted_across_nodes():
    memory = PhysicalMemory(2048, nodes=2)
    memory.alloc_at(100, 0)
    memory.alloc_at(1100, 0)
    regions = memory.free_regions()
    assert regions == sorted(regions)
    total = sum(npages for _, npages in regions)
    assert total == memory.free_pages


def test_free_pages_at_or_above_aggregates_nodes():
    memory = PhysicalMemory(2048, nodes=2)
    assert memory.free_pages_at_or_above(9) == 2048
    memory.alloc_at(256, 0)
    memory.alloc_at(1024 + 256, 0)
    assert memory.free_pages_at_or_above(9) == 1024
