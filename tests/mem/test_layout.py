"""Unit tests for address layout constants and helpers."""

import pytest

from repro.mem import layout


def test_page_constants_are_x86_64():
    assert layout.PAGE_SIZE == 4096
    assert layout.HUGE_PAGE_SIZE == 2 * 1024 * 1024
    assert layout.PAGES_PER_HUGE == 512
    assert layout.MAX_ORDER == 11
    assert layout.HUGE_ORDER == 9
    assert layout.order_pages(layout.HUGE_ORDER) == layout.PAGES_PER_HUGE


def test_bytes_to_pages_rounds_up():
    assert layout.bytes_to_pages(0) == 0
    assert layout.bytes_to_pages(1) == 1
    assert layout.bytes_to_pages(4096) == 1
    assert layout.bytes_to_pages(4097) == 2
    assert layout.bytes_to_pages(layout.MIB) == 256


def test_bytes_to_pages_rejects_negative():
    with pytest.raises(ValueError):
        layout.bytes_to_pages(-1)


def test_pages_to_bytes_roundtrip():
    assert layout.pages_to_bytes(3) == 3 * 4096
    assert layout.bytes_to_pages(layout.pages_to_bytes(77)) == 77


def test_huge_alignment_predicates():
    assert layout.is_huge_aligned(0)
    assert layout.is_huge_aligned(512)
    assert not layout.is_huge_aligned(511)
    assert not layout.is_huge_aligned(513)


def test_huge_align_down_and_up():
    assert layout.huge_align_down(0) == 0
    assert layout.huge_align_down(511) == 0
    assert layout.huge_align_down(512) == 512
    assert layout.huge_align_down(1023) == 512
    assert layout.huge_align_up(0) == 0
    assert layout.huge_align_up(1) == 512
    assert layout.huge_align_up(512) == 512
    assert layout.huge_align_up(513) == 1024


def test_huge_region_index_and_frames():
    assert layout.huge_region_index(0) == 0
    assert layout.huge_region_index(511) == 0
    assert layout.huge_region_index(512) == 1
    frames = layout.huge_region_frames(2)
    assert frames.start == 1024
    assert frames.stop == 1536
    assert len(frames) == 512


def test_order_pages_bounds():
    assert layout.order_pages(0) == 1
    assert layout.order_pages(11) == 2048
    with pytest.raises(ValueError):
        layout.order_pages(12)
    with pytest.raises(ValueError):
        layout.order_pages(-1)


def test_order_for_pages():
    assert layout.order_for_pages(1) == 0
    assert layout.order_for_pages(2) == 1
    assert layout.order_for_pages(3) == 2
    assert layout.order_for_pages(512) == 9
    assert layout.order_for_pages(513) == 10
    with pytest.raises(ValueError):
        layout.order_for_pages(0)
    with pytest.raises(ValueError):
        layout.order_for_pages(4097)
