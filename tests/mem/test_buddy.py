"""Unit tests for the binary buddy allocator."""

import pytest

from repro.mem.buddy import AllocationError, BuddyAllocator, _decompose
from repro.mem.layout import MAX_ORDER


def make(pages=4096, base=0):
    return BuddyAllocator(pages, base=base)


def test_initial_state_all_free():
    buddy = make(4096)
    assert buddy.free_pages == 4096
    assert buddy.largest_free_order() == MAX_ORDER
    assert buddy.free_block_counts()[MAX_ORDER] == 2


def test_rejects_bad_construction():
    with pytest.raises(ValueError):
        BuddyAllocator(0)
    with pytest.raises(ValueError):
        BuddyAllocator(16, base=-1)


def test_alloc_order0_returns_lowest_frame():
    buddy = make()
    assert buddy.alloc(0) == 0
    assert buddy.alloc(0) == 1
    assert buddy.free_pages == 4094


def test_alloc_returns_aligned_blocks():
    buddy = make()
    for order in range(MAX_ORDER + 1):
        frame = buddy.alloc(order)
        assert frame % (1 << order) == 0


def test_alloc_exhaustion_raises():
    buddy = make(16)
    for _ in range(16):
        buddy.alloc(0)
    with pytest.raises(AllocationError):
        buddy.alloc(0)


def test_alloc_too_large_order_rejected():
    buddy = make(16)
    with pytest.raises(ValueError):
        buddy.alloc(MAX_ORDER + 1)


def test_free_merges_buddies_back_to_max_order():
    buddy = make(2048)
    frames = [buddy.alloc(0) for _ in range(2048)]
    assert buddy.free_pages == 0
    for frame in frames:
        buddy.free(frame, 0)
    assert buddy.free_pages == 2048
    assert buddy.largest_free_order() == MAX_ORDER
    assert buddy.free_block_counts()[MAX_ORDER] == 1


def test_free_does_not_merge_across_unallocated_hole():
    buddy = make(4)
    a = buddy.alloc(0)  # frame 0
    b = buddy.alloc(0)  # frame 1
    buddy.alloc(0)      # frame 2 stays allocated
    buddy.free(a, 0)
    buddy.free(b, 0)
    # frames 0-1 merge to order 1, frame 3 stays order 0.
    counts = buddy.free_block_counts()
    assert counts[1] == 1
    assert counts[0] == 1


def test_double_free_detected():
    buddy = make(16)
    frame = buddy.alloc(0)
    buddy.free(frame, 0)
    with pytest.raises(ValueError):
        buddy.free(frame, 0)


def test_free_out_of_range_rejected():
    buddy = make(16)
    with pytest.raises(ValueError):
        buddy.free(16, 0)


def test_free_misaligned_rejected():
    buddy = make(16)
    with pytest.raises(ValueError):
        buddy.free(1, 1)


def test_alloc_at_claims_specific_block():
    buddy = make(2048)
    buddy.alloc_at(512, 9)
    assert not buddy.is_free(512)
    assert not buddy.is_free(1023)
    assert buddy.is_free(511)
    assert buddy.is_free(1024)
    assert buddy.free_pages == 2048 - 512


def test_alloc_at_conflict_raises():
    buddy = make(2048)
    buddy.alloc_at(512, 0)
    with pytest.raises(AllocationError):
        buddy.alloc_at(512, 9)
    # Nothing extra was allocated by the failed attempt.
    assert buddy.free_pages == 2047


def test_alloc_at_misaligned_rejected():
    buddy = make(2048)
    with pytest.raises(ValueError):
        buddy.alloc_at(3, 1)


def test_alloc_range_and_free_range_roundtrip():
    buddy = make(4096)
    buddy.alloc_range(100, 300)
    assert buddy.free_pages == 4096 - 300
    assert not buddy.is_free(100)
    assert not buddy.is_free(399)
    assert buddy.is_free(99)
    assert buddy.is_free(400)
    buddy.free_range(100, 300)
    assert buddy.free_pages == 4096
    assert buddy.largest_free_order() == MAX_ORDER


def test_alloc_range_partial_conflict_is_atomic():
    buddy = make(4096)
    buddy.alloc_at(200, 0)
    with pytest.raises(AllocationError):
        buddy.alloc_range(100, 300)
    # The failed call must not leak partial allocations.
    assert buddy.free_pages == 4095


def test_range_is_free():
    buddy = make(1024)
    assert buddy.range_is_free(0, 1024)
    assert not buddy.range_is_free(0, 1025)
    assert not buddy.range_is_free(0, 0)
    buddy.alloc_at(17, 0)
    assert not buddy.range_is_free(0, 32)
    assert buddy.range_is_free(0, 17)
    assert buddy.range_is_free(18, 100)


def test_free_regions_merges_adjacent_blocks():
    buddy = make(2048)
    # Pin one page in the middle: free space is two regions.
    buddy.alloc_at(1000, 0)
    regions = buddy.free_regions()
    assert regions == [(0, 1000), (1001, 1047)]


def test_free_pages_at_or_above():
    buddy = make(1024)
    assert buddy.free_pages_at_or_above(9) == 1024
    buddy.alloc_at(256, 0)  # destroys first order-9/10 structure
    assert buddy.free_pages_at_or_above(9) == 512
    assert buddy.free_pages_at_or_above(0) == 1023


def test_nonzero_base_allocations():
    buddy = make(1024, base=4096)
    frame = buddy.alloc(0)
    assert frame == 4096
    buddy.free(frame, 0)
    assert buddy.free_pages == 1024
    with pytest.raises(ValueError):
        buddy.free(0, 0)


def test_unaligned_total_seeds_maximal_blocks():
    buddy = BuddyAllocator(1000)
    assert buddy.free_pages == 1000
    # 1000 = 512 + 256 + 128 + 64 + 32 + 8
    sizes = sorted(1 << o for _, o in buddy.free_blocks())
    assert sum(sizes) == 1000


def test_decompose_covers_exact_range():
    blocks = list(_decompose(100, 300))
    covered = []
    for start, order in blocks:
        assert start % (1 << order) == 0
        covered.extend(range(start, start + (1 << order)))
    assert covered == list(range(100, 400))


def test_largest_free_order_exhausted():
    buddy = make(1)
    assert buddy.largest_free_order() == 0
    buddy.alloc(0)
    assert buddy.largest_free_order() == -1
