"""Unit tests for FMFI and the fragmenter tool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.fragmentation import Fragmenter, fmfi
from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory


def test_fmfi_zero_when_defragmented():
    memory = PhysicalMemory(8 * PAGES_PER_HUGE)
    assert fmfi(memory) == 0.0


def test_fmfi_zero_when_fully_allocated():
    memory = PhysicalMemory(PAGES_PER_HUGE)
    memory.alloc_range(0, PAGES_PER_HUGE)
    assert fmfi(memory) == 0.0


def test_fmfi_one_when_all_huge_blocks_destroyed():
    memory = PhysicalMemory(2 * PAGES_PER_HUGE)
    # Pin the middle page of each huge region.
    memory.alloc_at(256, 0)
    memory.alloc_at(512 + 256, 0)
    assert fmfi(memory) == 1.0


def test_fmfi_partial():
    memory = PhysicalMemory(4 * PAGES_PER_HUGE)
    memory.alloc_at(256, 0)  # destroy huge blocks in region 0 only
    value = fmfi(memory)
    assert 0.0 < value < 0.5
    # 511 unusable free pages out of 2047 total free.
    assert value == pytest.approx(511 / 2047)


def test_fragmenter_reaches_target():
    memory = PhysicalMemory(64 * PAGES_PER_HUGE)
    fragmenter = Fragmenter(memory, seed=42)
    achieved = fragmenter.fragment(0.9)
    assert achieved >= 0.9
    assert fmfi(memory) >= 0.9
    # Pinning overhead is tiny: at most one page per huge region.
    assert fragmenter.pinned_pages <= 64


def test_fragmenter_release_restores_memory():
    memory = PhysicalMemory(32 * PAGES_PER_HUGE)
    fragmenter = Fragmenter(memory, seed=1)
    fragmenter.fragment(0.8)
    assert fmfi(memory) >= 0.8
    fragmenter.release()
    assert fmfi(memory) == 0.0
    assert memory.free_pages == 32 * PAGES_PER_HUGE
    assert fragmenter.pinned_pages == 0


def test_fragmenter_zero_target_is_noop():
    memory = PhysicalMemory(8 * PAGES_PER_HUGE)
    fragmenter = Fragmenter(memory)
    assert fragmenter.fragment(0.0) == 0.0
    assert fragmenter.pinned_pages == 0


def test_fragmenter_rejects_bad_target():
    memory = PhysicalMemory(8 * PAGES_PER_HUGE)
    fragmenter = Fragmenter(memory)
    with pytest.raises(ValueError):
        fragmenter.fragment(1.0)
    with pytest.raises(ValueError):
        fragmenter.fragment(-0.1)


def test_fragmenter_deterministic_for_seed():
    results = []
    for _ in range(2):
        memory = PhysicalMemory(32 * PAGES_PER_HUGE)
        fragmenter = Fragmenter(memory, seed=7)
        fragmenter.fragment(0.5)
        results.append(sorted(fragmenter._pinned))
    assert results[0] == results[1]


@settings(max_examples=20, deadline=None)
@given(target=st.floats(min_value=0.0, max_value=0.95))
def test_fragmenter_always_meets_or_exceeds_target(target):
    memory = PhysicalMemory(64 * PAGES_PER_HUGE)
    fragmenter = Fragmenter(memory, seed=3)
    achieved = fragmenter.fragment(target)
    assert achieved >= target
    assert 0.0 <= achieved <= 1.0
