"""Hypothesis proofs for the batch allocator kernels.

``alloc_frames``/``free_frames`` serve the fault and teardown hot paths in
O(blocks) instead of O(frames); these properties pin them to the sequential
``alloc(0)``/``free(f, 0)`` reference loops frame by frame: same frames
returned, same free-block decomposition left behind, same failures.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.buddy import AllocationError, BuddyAllocator
from repro.mem.physmem import PhysicalMemory

TOTAL = 2048


def canonical_blocks(buddy):
    return sorted(buddy.free_blocks())


def fragmented(pins, total=TOTAL, base=0):
    buddy = BuddyAllocator(total, base=base)
    for pin in pins:
        buddy.alloc_at(base + pin, 0)
    return buddy


pin_lists = st.lists(
    st.integers(min_value=0, max_value=TOTAL - 1),
    max_size=80,
    unique=True,
)


@settings(max_examples=60, deadline=None)
@given(pins=pin_lists, count=st.integers(min_value=0, max_value=TOTAL))
def test_alloc_frames_equals_sequential_allocs(pins, count):
    batched = fragmented(pins)
    stepped = fragmented(pins)
    count = min(count, batched.free_pages)
    frames = batched.alloc_frames(count)
    assert frames == [stepped.alloc(0) for _ in range(count)]
    assert canonical_blocks(batched) == canonical_blocks(stepped)
    assert batched.free_pages == stepped.free_pages


@settings(max_examples=40, deadline=None)
@given(pins=pin_lists, extra=st.integers(min_value=1, max_value=64))
def test_alloc_frames_exhaustion_matches_sequential(pins, extra):
    """Requesting past exhaustion fails exactly where the loop fails,
    leaving the identical partially-drained state behind."""
    batched = fragmented(pins)
    stepped = fragmented(pins)
    count = batched.free_pages + extra
    with pytest.raises(AllocationError):
        batched.alloc_frames(count)
    for _ in range(stepped.free_pages):
        stepped.alloc(0)
    with pytest.raises(AllocationError):
        stepped.alloc(0)
    assert canonical_blocks(batched) == canonical_blocks(stepped)


@settings(max_examples=60, deadline=None)
@given(
    pins=st.lists(
        st.integers(min_value=0, max_value=TOTAL - 1),
        min_size=1,
        max_size=80,
        unique=True,
    ),
    data=st.data(),
)
def test_free_frames_equals_sequential_frees(pins, data):
    subset = data.draw(st.sets(st.sampled_from(sorted(pins))))
    batched = fragmented(pins)
    stepped = fragmented(pins)
    batched.free_frames(sorted(subset))
    for frame in sorted(subset):
        stepped.free(frame, 0)
    assert canonical_blocks(batched) == canonical_blocks(stepped)
    assert batched.free_pages == stepped.free_pages


def test_free_frames_rejects_double_free():
    buddy = BuddyAllocator(TOTAL)
    buddy.alloc_at(5, 0)
    with pytest.raises(ValueError):
        buddy.free_frames([5, 5])
    buddy.alloc_at(6, 0)
    buddy.free_frames([5, 6])
    with pytest.raises(ValueError):
        buddy.free_frames([6])


@settings(max_examples=40, deadline=None)
@given(
    pins=st.lists(
        st.integers(min_value=0, max_value=2 * TOTAL - 1),
        max_size=100,
        unique=True,
    ),
    count=st.integers(min_value=0, max_value=2 * TOTAL),
)
def test_physmem_batch_matches_sequential_across_nodes(pins, count):
    """Two NUMA nodes: the batch kernels must drain and refill the nodes
    in exactly the per-frame preference order, splitting frame batches at
    node boundaries."""
    batched = PhysicalMemory(2 * TOTAL, nodes=2)
    stepped = PhysicalMemory(2 * TOTAL, nodes=2)
    for pin in pins:
        batched.alloc_at(pin, 0)
        stepped.alloc_at(pin, 0)
    count = min(count, batched.free_pages)
    frames = batched.alloc_frames(count)
    assert frames == [stepped.alloc(0) for _ in range(count)]
    batched.free_frames(frames)
    for frame in frames:
        stepped.free(frame, 0)
    for node_b, node_s in zip(batched.nodes, stepped.nodes):
        assert canonical_blocks(node_b) == canonical_blocks(node_s)
    assert batched.free_pages == stepped.free_pages
