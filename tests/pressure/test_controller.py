"""Unit tests for the pressure controller's escalation ladder.

The harness builds a small host whose EPT backing shape is controlled
directly: a host-huge policy makes every fault a huge mapping, and the
guest policy decides whether a guest huge page sits on top (well-aligned)
or not (misaligned).  Pressure comes from touching guest VMAs until host
free memory sits between the watermarks.
"""

import pytest

from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.policies.base import HugePagePolicy
from repro.pressure import PressureConfig, PressureController
from repro.tlb import costs


class Huge(HugePagePolicy):
    name = "always-huge"

    def wants_huge_fault(self, client, vregion):
        return True


def make_config(**overrides):
    """Swap-only ladder by default: balloon and KSM rungs off so each
    test isolates the rung it cares about; zero jitter for exact costs."""
    base = dict(
        enabled=True,
        balloon_cap=0.0,
        ksm_budget=0,
        swap_jitter=0.0,
        seed=3,
    )
    base.update(overrides)
    return PressureConfig(**base)


def make_host(host_regions=16, guests=(True, True), host_huge=True):
    """A host with one VM per entry of *guests* (True = guest-huge, so
    its backing is well-aligned; False = guest-base, so misaligned)."""
    host_policy = Huge() if host_huge else HugePagePolicy()
    platform = Platform(host_regions * PAGES_PER_HUGE, host_policy)
    vms = []
    for guest_huge in guests:
        guest_policy = Huge() if guest_huge else HugePagePolicy()
        vms.append(platform.create_vm(8 * PAGES_PER_HUGE, guest_policy))
    return platform, vms


def touch(platform, vm, regions):
    vma = vm.mmap(regions * PAGES_PER_HUGE, "heap")
    platform.touch_vma(vm, vma)
    return vma


def pressured_host(config=None):
    """16-region host at 512 free pages (6.25% — between the default
    critical and low watermarks) with all backing well-aligned."""
    platform, (vm_a, vm_b) = make_host()
    controller = PressureController(platform, config or make_config())
    vma_a = touch(platform, vm_a, 7)
    touch(platform, vm_b, 8)
    assert platform.memory.free_pages == PAGES_PER_HUGE
    return platform, controller, (vm_a, vm_b), vma_a


def test_disabled_controller_is_inert():
    platform, _ = make_host()
    controller = PressureController(platform, PressureConfig())
    controller.run(0)
    assert controller.pressured_epochs == 0
    assert controller._emergency_reclaim(512) == 0
    assert controller.device.pages_out == 0


def test_no_action_above_low_watermark():
    platform, (vm_a, _) = make_host()
    controller = PressureController(platform, make_config())
    touch(platform, vm_a, 4)  # 12 of 16 regions free
    controller.run(0)
    assert controller.pressured_epochs == 0
    assert controller.device.pages_out == 0


def test_ladder_engages_below_low_watermark():
    platform, controller, _, _ = pressured_host()
    target = int(controller.config.watermark_high * platform.memory.total_pages)
    controller.run(0)
    assert controller.pressured_epochs == 1
    assert controller.device.pages_out > 0
    assert platform.memory.free_pages >= target
    # Swapping well-aligned regions demotes their huge EPT entries.
    assert controller.swap_demotions > 0
    assert controller.swap_aligned_demotions == controller.swap_demotions
    # Swap-outs are background host work, priced exactly at zero jitter.
    charge = platform.host.ledger.background["swap_out"]
    assert charge.count == controller.device.pages_out
    assert charge.cycles == pytest.approx(
        charge.count * costs.SWAP_OUT_CYCLES
    )


def test_swapped_pages_leave_the_ept():
    platform, controller, (vm_a, vm_b), _ = pressured_host()
    controller.run(0)
    for vm in (vm_a, vm_b):
        ept = platform.ept(vm.id)
        for gpn in controller.device.swapped(vm.id):
            assert ept.translate(gpn) is None


def test_demand_swap_in_charged_to_tenant():
    platform, controller, (vm_a, _), vma_a = pressured_host()
    controller.run(0)
    swapped = controller.device.swapped(vm_a.id)
    assert swapped, "the lowest vm id should be evicted first"
    # The guest re-touches its VMA: swapped pages demand-fault back in.
    platform.touch_vma(vm_a, vma_a)
    controller.run(1)
    assert controller.device.pages_in >= len(swapped)
    charge = vm_a.guest.ledger.sync["swap_in"]
    assert charge.count == controller.device.pages_in
    assert charge.cycles == pytest.approx(
        charge.count * costs.SWAP_IN_CYCLES
    )


def test_page_conservation_across_out_and_in():
    platform, controller, (vm_a, vm_b), vma_a = pressured_host()
    for epoch in range(4):
        platform.touch_vma(vm_a, vma_a)
        controller.run(epoch)
    device = controller.device
    # After each epoch's reconcile pass, no page is simultaneously
    # EPT-resident and on the device, and the device's slot population
    # matches its traffic history exactly.
    for vm in (vm_a, vm_b):
        ept = platform.ept(vm.id)
        for gpn in device.swapped(vm.id):
            assert ept.translate(gpn) is None
    assert device.pages_out - device.pages_in == device.total_swapped


def test_alignment_aware_spares_aligned_lru_does_not():
    outcomes = {}
    for policy in ("lru-cold", "alignment-aware"):
        # vm_a's backing is well-aligned, vm_b's is misaligned; identical
        # cold heat, identical deficit.
        platform, (vm_a, vm_b) = make_host(guests=(True, False))
        controller = PressureController(
            platform, make_config(victim_policy=policy)
        )
        touch(platform, vm_a, 8)
        touch(platform, vm_b, 7)
        assert platform.memory.free_pages == PAGES_PER_HUGE
        controller.run(0)
        outcomes[policy] = (controller, vm_a.id, vm_b.id)
    aware, aware_a, aware_b = outcomes["alignment-aware"]
    lru, lru_a, _ = outcomes["lru-cold"]
    # Both reclaimed past the watermark...
    assert aware.device.pages_out == lru.device.pages_out > 0
    # ...but lru-cold ate the well-aligned VM (lowest id at equal heat)
    # while the paper's rule evicted the misaligned backing instead.
    assert lru.swap_aligned_demotions > 0
    assert lru.device.swapped(lru_a)
    assert aware.swap_aligned_demotions == 0
    assert aware.device.swapped(aware_a) == []
    assert aware.device.swapped(aware_b)


def test_hot_aligned_backing_withheld_until_critical():
    def run_once(config):
        platform, controller, (vm_a, vm_b), _ = pressured_host(config)
        for vm in (vm_a, vm_b):
            regions = {
                gpregion
                for gpregion, _ in platform.ept(vm.id).huge_mappings()
            }
            controller.wse.log_dirty_regions(vm.id, regions, epoch=0)
        controller.run(0)
        return controller

    # 6.25% free is above the default critical watermark: every candidate
    # is well-aligned and hot, so the aware policy refuses to swap.
    withheld = run_once(make_config())
    assert withheld.pressured_epochs == 1
    assert withheld.device.pages_out == 0
    # Raising the critical watermark above 6.25% makes the same state
    # critical; the last-resort rung engages and demotes hot aligned.
    critical = run_once(make_config(watermark_critical=0.10))
    assert critical.device.pages_out > 0
    assert critical.swap_aligned_demotions > 0


def test_emergency_reclaim_rescues_failing_allocation():
    platform, (vm_a, vm_b) = make_host(
        guests=(False, False), host_huge=False
    )
    controller = PressureController(platform, make_config())
    touch(platform, vm_a, 8)
    touch(platform, vm_b, 8)
    assert platform.memory.free_pages == 0
    # A third tenant faults in with zero free memory: without the
    # emergency hook this raises OutOfMemory.
    vm_c = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
    touch(platform, vm_c, 2)
    assert controller.emergency_reclaims >= 1
    assert controller.device.pages_out >= 2 * PAGES_PER_HUGE
    # The new tenant is fully resident; victims came from the old ones.
    ept = platform.ept(vm_c.id)
    assert sum(1 for _ in ept.base_mappings()) == 2 * PAGES_PER_HUGE
    assert controller.device.swapped(vm_c.id) == []


def test_forget_vm_drops_swap_and_heat_state():
    platform, controller, (vm_a, _), _ = pressured_host()
    controller.run(0)
    assert controller.device.swapped(vm_a.id)
    controller.forget_vm(vm_a.id)
    assert controller.device.swapped(vm_a.id) == []
    assert controller.wse.heat(vm_a.id, 0, 0) == 0.0
    platform.detach_vm(vm_a.id)
    controller.run(1)  # must not trip over the departed VM


def test_balloon_rung_inflates_then_deflates():
    config = make_config(balloon_cap=0.25, balloon_step=512, swap_batch=0)
    platform, (vm_a, vm_b) = make_host()
    controller = PressureController(platform, config)
    touch(platform, vm_a, 7)  # guest keeps 1 region free to balloon
    touch(platform, vm_b, 8)
    controller.run(0)
    assert controller.ballooned_pages > 0
    assert controller.device.pages_out == 0  # swap rung was off
    # Pressure lifts (a tenant departs): the controller hands the
    # ballooned pages back above the high watermark.
    controller.forget_vm(vm_b.id)
    platform.detach_vm(vm_b.id)
    controller.run(1)
    assert controller.ballooned_pages == 0


def test_pressure_signal_tracks_watermarks():
    platform, (vm_a, vm_b) = make_host()
    controller = PressureController(platform, make_config())
    assert controller.pressure_signal() == 0.0
    touch(platform, vm_a, 7)
    touch(platform, vm_b, 8)  # 6.25% free, between critical and low
    assert 0.0 < controller.pressure_signal() < 1.0
    assert controller.pressure_signal() == pytest.approx(
        (0.12 - 0.0625) / (0.12 - 0.04)
    )
