"""Overcommitted fleets under pressure: the determinism contract must
survive the whole escalation ladder (ballooning, KSM, swap), pressure
telemetry must merge identically across processes, and the paper's
Section 8 victim rule must measurably protect well-aligned huge pages.
"""

from collections import defaultdict
from dataclasses import replace

import pytest

from repro import obs
from repro.cluster import ClusterConfig, ClusterSimulation, run_cluster
from repro.cluster.config import ChurnConfig, MigrationConfig
from repro.obs import Clock, Telemetry
from repro.pressure import PressureConfig

#: Two small Gemini hosts admitting 2.5x their memory in commitments:
#: every epoch of the run is spent below the watermark, swapping.
PRESSURED = ClusterConfig(
    hosts=2,
    host_mib=128,
    epochs=5,
    seed=7,
    system="Gemini",
    overcommit_ratio=2.5,
    placement_headroom=1.0,
    churn=ChurnConfig(
        initial_vms=8,
        arrivals_per_epoch=0.5,
        departure_rate=0.03,
        max_vms=14,
        guest_mib_choices=(48, 64),
        workload_pool=("Shore", "SP.D", "Sphinx", "Moses"),
    ),
    pressure=PressureConfig(enabled=True),
    migration=MigrationConfig(check_invariants=True),
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.clear_context()
    yield
    obs.disable()
    obs.clear_context()


def test_pressure_actually_engages():
    result = ClusterSimulation(PRESSURED).run()
    assert result.fleet_swap_out_pages > 0
    assert result.fleet_swap_in_pages > 0
    assert result.fleet_swapped_pages > 0
    assert result.mean_throughput > 0.0
    # The host records expose the pressure signal and swap residency.
    finals = [
        record
        for record in result.host_epochs
        if record.epoch == result.epochs - 1
    ]
    assert any(record.pressure > 0.0 for record in finals)
    assert any(record.swapped_pages > 0 for record in finals)
    for record in result.host_epochs:
        assert 0.0 <= record.pressure <= 1.0
        assert record.swap_out_pages >= 0


def test_overcommit_admits_beyond_physical_memory():
    base = ClusterSimulation(replace(PRESSURED, overcommit_ratio=1.0))
    over = ClusterSimulation(PRESSURED)
    base_result = base.run()
    over_result = over.run()
    placed_base = len({r.ordinal for r in base_result.tenant_epochs})
    placed_over = len({r.ordinal for r in over_result.tenant_epochs})
    assert placed_over > placed_base
    assert over_result.placement_failures < base_result.placement_failures


def test_serial_and_parallel_pressured_runs_are_identical(monkeypatch):
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    config = replace(PRESSURED, adaptive_parallel=False)
    serial = ClusterSimulation(config).run(workers=1)
    sim = ClusterSimulation(config)
    parallel = sim.run(workers=2)
    if len(sim.ipc_bytes_epochs) != config.epochs:  # pragma: no cover
        pytest.skip("sandbox cannot fork")
    assert serial == parallel
    assert serial.fleet_swap_out_pages > 0


def test_fused_matches_reference_protocol_under_pressure():
    reference = ClusterSimulation(
        replace(PRESSURED, fused_epochs=False, view_deltas=False)
    ).run(workers=1)
    fused = ClusterSimulation(PRESSURED).run(workers=1)
    assert reference == fused


def _run_traced(config, workers):
    obs.enable(Telemetry(sample=1.0, clock=Clock(wall=lambda: 0.0)))
    sim = ClusterSimulation(config)
    result = sim.run(workers=workers)
    events = obs.get().events()
    obs.disable()
    obs.clear_context()
    forked = len(sim.ipc_bytes_epochs) == config.epochs and workers > 1
    return result, events, forked


def _by_host(events):
    streams = defaultdict(list)
    for event in events:
        streams[event.host].append(event.identity())
    return dict(streams)


def test_pressure_telemetry_is_neutral_and_merges(monkeypatch):
    monkeypatch.setenv("REPRO_MIN_PARALLEL", "1")
    config = replace(PRESSURED, adaptive_parallel=False)
    untraced = ClusterSimulation(config).run(workers=1)
    serial_result, serial_events, _ = _run_traced(config, workers=1)
    parallel_result, parallel_events, forked = _run_traced(config, workers=2)
    # Tracing changes nothing, serial or parallel.
    assert serial_result == untraced
    assert parallel_result == untraced
    kinds = {event.kind for event in serial_events}
    assert "pressure.watermark" in kinds
    assert "swap.out" in kinds
    assert "swap.in" in kinds
    if not forked:  # pragma: no cover
        pytest.skip("sandbox cannot fork")
    assert _by_host(parallel_events) == _by_host(serial_events)


def test_alignment_aware_retains_more_aligned_huge_pages():
    """The acceptance contrast: under an identical overcommitted Gemini
    pressure trace, the paper's Section 8 victim rule keeps strictly
    more well-aligned huge pages alive than pure working-set eviction,
    by destroying strictly fewer of them."""
    squeezed = replace(PRESSURED, host_mib=80, epochs=6)
    squeezed = replace(
        squeezed, churn=replace(squeezed.churn, initial_vms=10, max_vms=16)
    )
    results = {}
    for policy in ("lru-cold", "alignment-aware"):
        config = replace(
            squeezed,
            pressure=replace(squeezed.pressure, victim_policy=policy),
        )
        results[policy] = run_cluster(config)
    aware = results["alignment-aware"]
    lru = results["lru-cold"]
    assert lru.fleet_pressure_aligned_demotions > 0, (
        "the squeeze must be hard enough that lru-cold eats aligned pages"
    )
    assert aware.fleet_aligned_huge > lru.fleet_aligned_huge
    assert (
        aware.fleet_pressure_aligned_demotions
        < lru.fleet_pressure_aligned_demotions
    )


def test_pressure_config_is_not_an_execution_strategy():
    """Changing the victim policy must change the cache key: pressure
    settings are physics, not execution strategy."""
    from repro.cluster import fleet_key

    aware = fleet_key(PRESSURED)
    lru = replace(
        PRESSURED, pressure=replace(PRESSURED.pressure, victim_policy="lru-cold")
    )
    assert fleet_key(lru) != aware
    off = replace(PRESSURED, pressure=PressureConfig())
    assert fleet_key(off) != aware
    # Worker count / wire-protocol toggles still do not change the key.
    assert fleet_key(replace(PRESSURED, fused_epochs=False)) == aware
