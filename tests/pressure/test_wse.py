"""Unit tests for the PML-driven working-set estimator."""

import pytest

from repro.mem.layout import PAGES_PER_HUGE
from repro.pressure import WorkingSetEstimator


def test_validation():
    with pytest.raises(ValueError):
        WorkingSetEstimator(decay=0.0)
    with pytest.raises(ValueError):
        WorkingSetEstimator(decay=1.0)
    with pytest.raises(ValueError):
        WorkingSetEstimator(hot_threshold=0.0)


def test_never_dirty_is_cold():
    wse = WorkingSetEstimator()
    assert wse.heat(0, 5, 10) == 0.0
    assert not wse.is_hot(0, 5, 10)


def test_single_dirty_epoch_decays():
    wse = WorkingSetEstimator(decay=0.5, hot_threshold=0.5)
    wse.log_dirty_regions(1, [4], epoch=0)
    assert wse.heat(1, 4, 0) == 1.0
    assert wse.heat(1, 4, 1) == 0.5
    assert wse.heat(1, 4, 3) == 0.125
    assert wse.is_hot(1, 4, 1)
    assert not wse.is_hot(1, 4, 2)


def test_heat_accumulates_across_dirty_epochs():
    wse = WorkingSetEstimator(decay=0.5)
    wse.log_dirty_regions(1, [0], epoch=0)
    wse.log_dirty_regions(1, [0], epoch=1)
    assert wse.heat(1, 0, 1) == pytest.approx(1.5)
    wse.log_dirty_regions(1, [0], epoch=2)
    assert wse.heat(1, 0, 2) == pytest.approx(1.75)


def test_every_epoch_dirty_stays_hot():
    wse = WorkingSetEstimator(decay=0.5, hot_threshold=0.5)
    for epoch in range(10):
        wse.log_dirty_regions(2, [7], epoch)
        assert wse.is_hot(2, 7, epoch)


def test_gpn_folding_to_regions():
    wse = WorkingSetEstimator()
    wse.log_dirty(3, [0, 1, 2, PAGES_PER_HUGE, PAGES_PER_HUGE + 5], epoch=0)
    # Three dirty pages in region 0 still count as one dirty epoch.
    assert wse.heat(3, 0, 0) == 1.0
    assert wse.heat(3, 1, 0) == 1.0
    assert wse.heat(3, 2, 0) == 0.0
    assert wse.page_heat(3, PAGES_PER_HUGE + 100, 0) == 1.0


def test_forget_vm_is_scoped():
    wse = WorkingSetEstimator()
    wse.log_dirty_regions(1, [0], epoch=0)
    wse.log_dirty_regions(2, [0], epoch=0)
    wse.forget_vm(1)
    assert wse.heat(1, 0, 0) == 0.0
    assert wse.heat(2, 0, 0) == 1.0
    wse.forget_vm(1)  # idempotent
