"""Unit tests for swap victim-selection policies."""

import pytest

from repro.pressure import (
    BACKING_ALIGNED_HUGE,
    BACKING_BASE,
    BACKING_MISALIGNED_HUGE,
    AlignmentAwareVictims,
    LruColdVictims,
    VictimCandidate,
    make_victim_policy,
    victim_names,
)


def _candidate(vm_id, gpregion, backing, heat):
    return VictimCandidate(
        vm_id=vm_id,
        gpregion=gpregion,
        backing=backing,
        heat=heat,
        hot=heat >= 0.5,
        backed_pages=512,
    )


BASE_COLD = _candidate(0, 0, BACKING_BASE, 0.1)
BASE_HOT = _candidate(0, 1, BACKING_BASE, 2.0)
MIS_COLD = _candidate(1, 0, BACKING_MISALIGNED_HUGE, 0.0)
MIS_HOT = _candidate(1, 1, BACKING_MISALIGNED_HUGE, 1.5)
ALIGNED_COLD = _candidate(2, 0, BACKING_ALIGNED_HUGE, 0.05)
ALIGNED_HOT = _candidate(2, 1, BACKING_ALIGNED_HUGE, 1.9)

ALL = [ALIGNED_HOT, BASE_HOT, MIS_COLD, ALIGNED_COLD, BASE_COLD, MIS_HOT]


def test_registry():
    assert victim_names() == ["lru-cold", "alignment-aware"]
    assert isinstance(make_victim_policy("lru-cold"), LruColdVictims)
    assert isinstance(
        make_victim_policy("alignment-aware"), AlignmentAwareVictims
    )
    with pytest.raises(ValueError):
        make_victim_policy("nope")


def test_lru_cold_orders_purely_by_heat():
    order = LruColdVictims().order(ALL, critical=False)
    assert order == [
        MIS_COLD, ALIGNED_COLD, BASE_COLD, MIS_HOT, ALIGNED_HOT, BASE_HOT
    ]
    # lru-cold never filters anything, critical or not.
    assert LruColdVictims().order(ALL, critical=True) == order


def test_alignment_aware_tiers_before_heat():
    order = AlignmentAwareVictims().order(ALL, critical=False)
    # Base first (coldest first within the tier), then misaligned huge,
    # then well-aligned-but-cold; well-aligned hot is withheld.
    assert order == [BASE_COLD, BASE_HOT, MIS_COLD, MIS_HOT, ALIGNED_COLD]
    assert ALIGNED_HOT not in order


def test_alignment_aware_releases_hot_aligned_only_when_critical():
    order = AlignmentAwareVictims().order(ALL, critical=True)
    assert order[-1] is ALIGNED_HOT
    assert order[:-1] == AlignmentAwareVictims().order(ALL, critical=False)


def test_ties_break_deterministically():
    twins = [
        _candidate(1, 5, BACKING_BASE, 0.2),
        _candidate(0, 9, BACKING_BASE, 0.2),
        _candidate(0, 3, BACKING_BASE, 0.2),
    ]
    for policy in (LruColdVictims(), AlignmentAwareVictims()):
        order = policy.order(twins, critical=False)
        assert [(c.vm_id, c.gpregion) for c in order] == [
            (0, 3), (0, 9), (1, 5)
        ]
