"""Property-based tests for the pressure subsystem: swap-device page
conservation under arbitrary transfer sequences, working-set heat
monotonicity, and whole-host page conservation through the ladder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypervisor.platform import Platform
from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.swap import SwapDevice
from repro.policies.base import HugePagePolicy
from repro.pressure import (
    PressureConfig,
    PressureController,
    WorkingSetEstimator,
)

# ----------------------------------------------------------------------
# Swap device: page conservation
# ----------------------------------------------------------------------

OPS = st.lists(
    st.tuples(
        st.sampled_from(["out", "in", "drop"]),
        st.integers(0, 2),
        st.integers(0, 15),
    ),
    max_size=60,
)


@settings(max_examples=100, deadline=None)
@given(OPS)
def test_device_conserves_pages(ops):
    """No sequence of transfers loses or duplicates a page: the slot map
    always equals out-traffic minus in-traffic minus dropped slots, and a
    page is never double-swapped or read back twice."""
    device = SwapDevice(seed=1)
    model: dict[int, set[int]] = {}
    dropped = 0
    for op, vm, gpn in ops:
        slots = model.setdefault(vm, set())
        if op == "out":
            if gpn in slots:
                with pytest.raises(ValueError):
                    device.swap_out(vm, gpn)
            else:
                device.swap_out(vm, gpn)
                slots.add(gpn)
        elif op == "in":
            if gpn in slots:
                device.swap_in(vm, gpn)
                slots.remove(gpn)
            else:
                with pytest.raises(ValueError):
                    device.swap_in(vm, gpn)
        else:
            dropped += len(slots)
            assert device.drop_vm(vm) == len(slots)
            slots.clear()
        assert device.total_swapped == sum(len(s) for s in model.values())
        assert (
            device.pages_out - device.pages_in - dropped
            == device.total_swapped
        )
    for vm, slots in model.items():
        assert device.swapped(vm) == sorted(slots)


# ----------------------------------------------------------------------
# Working-set estimator: heat closed form and monotonicity
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.booleans(), min_size=1, max_size=30),
    st.floats(min_value=0.1, max_value=0.9),
)
def test_heat_matches_closed_form(schedule, decay):
    """Lazy decay must equal the eager fold: heat at epoch e is the sum
    of decay^(e - d) over all dirty epochs d <= e."""
    wse = WorkingSetEstimator(decay=decay)
    expected = 0.0
    for epoch, dirty in enumerate(schedule):
        expected *= decay
        if dirty:
            wse.log_dirty_regions(0, [3], epoch)
            expected += 1.0
        assert wse.heat(0, 3, epoch) == pytest.approx(expected)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=30))
def test_heat_is_monotone_in_the_dirty_schedule(schedule):
    """A region dirtied every epoch dominates any sub-schedule, stays hot
    at every epoch, and a never-dirtied region stays exactly cold."""
    wse = WorkingSetEstimator(decay=0.5, hot_threshold=0.5)
    for epoch, dirty in enumerate(schedule):
        wse.log_dirty_regions(1, [0], epoch)  # region 0: every epoch
        if dirty:
            wse.log_dirty_regions(1, [1], epoch)  # region 1: sub-schedule
        assert wse.is_hot(1, 0, epoch)
        assert wse.heat(1, 1, epoch) <= wse.heat(1, 0, epoch)
        assert wse.heat(1, 2, epoch) == 0.0
        assert not wse.is_hot(1, 2, epoch)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10), st.integers(1, 12))
def test_quiet_heat_only_decays(last_dirty, gap):
    wse = WorkingSetEstimator(decay=0.5)
    for epoch in range(last_dirty + 1):
        wse.log_dirty_regions(0, [0], epoch)
    previous = wse.heat(0, 0, last_dirty)
    for epoch in range(last_dirty + 1, last_dirty + 1 + gap):
        current = wse.heat(0, 0, epoch)
        assert current < previous
        previous = current


# ----------------------------------------------------------------------
# Whole host: the ladder never loses a guest page
# ----------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    st.lists(st.integers(1, 8), min_size=2, max_size=4),
    st.integers(0, 3),
)
def test_ladder_conserves_guest_pages(regions_per_vm, extra_epochs):
    """Fill a host exactly (the last touches go through emergency
    reclaim), run the ladder, and check every touched guest page is
    either EPT-resident or on swap — never both, never neither."""
    platform = Platform(
        sum(regions_per_vm) * PAGES_PER_HUGE, HugePagePolicy()
    )
    config = PressureConfig(
        enabled=True, balloon_cap=0.0, ksm_budget=0, seed=5
    )
    controller = PressureController(platform, config)
    vms = []
    for regions in regions_per_vm:
        vm = platform.create_vm(8 * PAGES_PER_HUGE, HugePagePolicy())
        vma = vm.mmap(regions * PAGES_PER_HUGE, "heap")
        platform.touch_vma(vm, vma)
        vms.append((vm, regions))
    for epoch in range(extra_epochs + 1):
        controller.run(epoch)
    device = controller.device
    for vm, regions in vms:
        ept = platform.ept(vm.id)
        swapped = set(device.swapped(vm.id))
        for gpn in range(regions * PAGES_PER_HUGE):
            resident = ept.translate(gpn) is not None
            assert resident != (gpn in swapped), (vm.id, gpn)
    assert device.pages_out - device.pages_in == device.total_swapped
