"""Unit tests for the hypervisor swap device model."""

import pytest

from repro.mem.swap import SwapDevice
from repro.tlb import costs


def test_jitter_validation():
    with pytest.raises(ValueError):
        SwapDevice(jitter=1.0)
    with pytest.raises(ValueError):
        SwapDevice(jitter=-0.1)


def test_out_then_in_roundtrip():
    device = SwapDevice(seed=1)
    cost_out = device.swap_out(3, 42)
    assert device.contains(3, 42)
    assert device.swapped(3) == [42]
    assert device.total_swapped == 1
    assert device.pages_out == 1
    assert cost_out > 0
    cost_in = device.swap_in(3, 42)
    assert not device.contains(3, 42)
    assert device.total_swapped == 0
    assert device.pages_in == 1
    assert cost_in > cost_out  # demand faults are the expensive direction


def test_double_swap_out_rejected():
    device = SwapDevice()
    device.swap_out(1, 7)
    with pytest.raises(ValueError):
        device.swap_out(1, 7)


def test_swap_in_of_resident_page_rejected():
    device = SwapDevice()
    with pytest.raises(ValueError):
        device.swap_in(1, 7)


def test_swapped_listing_is_sorted():
    device = SwapDevice()
    for gpn in (9, 3, 27, 1):
        device.swap_out(0, gpn)
    assert device.swapped(0) == [1, 3, 9, 27]
    assert device.swapped(99) == []


def test_costs_jittered_around_means():
    device = SwapDevice(seed=9, jitter=0.2)
    for gpn in range(200):
        out = device.swap_out(0, gpn)
        assert 0.8 * costs.SWAP_OUT_CYCLES <= out <= 1.2 * costs.SWAP_OUT_CYCLES
    for gpn in range(200):
        back = device.swap_in(0, gpn)
        assert 0.8 * costs.SWAP_IN_CYCLES <= back <= 1.2 * costs.SWAP_IN_CYCLES


def test_zero_jitter_is_exact():
    device = SwapDevice(jitter=0.0)
    assert device.swap_out(0, 0) == costs.SWAP_OUT_CYCLES
    assert device.swap_in(0, 0) == costs.SWAP_IN_CYCLES


def test_seed_determinism():
    def draws(seed):
        device = SwapDevice(seed=seed)
        return [device.swap_out(0, gpn) for gpn in range(8)]

    assert draws(5) == draws(5)
    assert draws(5) != draws(6)


def test_drop_vm_releases_slots():
    device = SwapDevice()
    for gpn in range(4):
        device.swap_out(2, gpn)
    device.swap_out(3, 0)
    assert device.drop_vm(2) == 4
    assert device.swapped(2) == []
    assert device.total_swapped == 1
    assert device.drop_vm(2) == 0
    # Traffic counters record history, not residency.
    assert device.pages_out == 5
    assert device.pages_in == 0
