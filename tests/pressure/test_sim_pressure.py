"""Single-host simulations under pressure: the sim engine drives the
same ladder the cluster hosts use, so a host smaller than the workload's
footprint swaps instead of dying, and the subsystem is a strict no-op
when disabled."""

import pytest

from repro.os.mm import OutOfMemory
from repro.pressure import PressureConfig
from repro.sim import Simulation, SimulationConfig
from repro.workloads import make_workload


def small_host(enabled, host_mib=56, epochs=6, **pressure_overrides):
    pressure = PressureConfig(enabled=enabled, **pressure_overrides)
    return SimulationConfig(
        host_mib=host_mib,
        guest_mib=256,
        epochs=epochs,
        seed=11,
        pressure=pressure,
    )


def test_pressure_lets_an_undersized_host_survive():
    workload = make_workload("Redis")  # 80 MiB footprint on a 56 MiB host
    sim = Simulation(workload, system="Gemini", config=small_host(True))
    result = sim.run_single()
    assert result.throughput > 0.0
    controller = sim.pressure
    assert controller is not None
    assert controller.pressured_epochs > 0
    assert controller.device.pages_out > 0
    # The guest re-touches swapped pages: demand swap-ins were charged.
    assert controller.device.pages_in > 0
    vm = sim.platform.vms[min(sim.platform.vms)]
    assert vm.guest.ledger.sync["swap_in"].count > 0


def test_disabled_pressure_keeps_the_engine_untouched():
    config = small_host(False, host_mib=768)
    sim = Simulation(make_workload("Redis"), system="Gemini", config=config)
    assert sim.pressure is None
    result = sim.run_single()
    assert result.throughput > 0.0


def test_disabled_pressure_is_bit_identical_to_the_seed_behavior():
    # enabled=False must leave results untouched: same run, pressure
    # field present vs an explicitly-disabled config.
    workload = make_workload("Shore")
    base = SimulationConfig(epochs=4, seed=3)
    explicit = SimulationConfig(epochs=4, seed=3, pressure=PressureConfig())
    first = Simulation(workload, system="Gemini", config=base).run_single()
    second = Simulation(
        workload, system="Gemini", config=explicit
    ).run_single()
    assert first.throughput == second.throughput
    assert first.well_aligned_rate == second.well_aligned_rate
    assert first.tlb_misses == second.tlb_misses


def test_without_pressure_an_undersized_host_dies():
    sim = Simulation(
        make_workload("Redis"), system="Gemini", config=small_host(False)
    )
    with pytest.raises(OutOfMemory):
        sim.run_single()
