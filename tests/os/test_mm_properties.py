"""Property-based tests: frame conservation across MemoryLayer operations.

The invariant every memory manager must keep: each physical frame is in
exactly one state — free in the buddy, mapped by exactly one translation,
or explicitly held (never leaked, never double-owned).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.os.mm import OutOfMemory, PROCESS, MemoryLayer
from repro.policies.base import HugePagePolicy

REGIONS = 12
TOTAL = REGIONS * PAGES_PER_HUGE


def frame_conservation(layer: MemoryLayer) -> None:
    """free + base-mapped + huge-mapped regions == total pages, with all
    rmap entries consistent with the page tables."""
    mapped_base = 0
    mapped_huge = 0
    for client in layer.clients():
        table = layer.table(client)
        mapped_base += table.base_count
        mapped_huge += table.huge_count * PAGES_PER_HUGE
        for vpn, pfn in table.base_mappings():
            assert layer.owner_of_frame(pfn) == (client, vpn)
        for vregion, pregion in table.huge_mappings():
            assert layer.owner_of_region(pregion) == (client, vregion)
    assert layer.memory.free_pages + mapped_base + mapped_huge == TOTAL


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(
                ["fault", "unmap", "promote_mig", "promote_inplace", "demote", "compact"]
            ),
            st.integers(min_value=0, max_value=5),  # region operand
            st.integers(min_value=0, max_value=PAGES_PER_HUGE - 1),
        ),
        max_size=40,
    )
)
def test_frame_conservation_under_random_operations(ops):
    layer = MemoryLayer("prop", PhysicalMemory(TOTAL), HugePagePolicy())
    for op, region, offset in ops:
        vpn = region * PAGES_PER_HUGE + offset
        try:
            if op == "fault":
                layer.fault(PROCESS, vpn)
            elif op == "unmap":
                layer.unmap_range(PROCESS, region * PAGES_PER_HUGE, PAGES_PER_HUGE)
            elif op == "promote_mig":
                layer.promote_with_migration(PROCESS, region)
            elif op == "promote_inplace":
                layer.try_promote_in_place(PROCESS, region)
            elif op == "demote":
                if layer.table(PROCESS).is_huge(region):
                    layer.demote(PROCESS, region)
            elif op == "compact":
                layer.compact_region(PROCESS, region, (region + 3) % REGIONS)
        except OutOfMemory:
            pass
        frame_conservation(layer)


@settings(max_examples=25, deadline=None)
@given(
    touched=st.integers(min_value=1, max_value=PAGES_PER_HUGE),
    steal=st.booleans(),
)
def test_migration_promotion_conserves_frames(touched, steal):
    layer = MemoryLayer("prop", PhysicalMemory(TOTAL), HugePagePolicy())
    if steal:
        layer.memory.alloc_at(0, 0)  # shift placement off alignment
    for vpn in range(touched):
        layer.fault(PROCESS, vpn)
    layer.promote_with_migration(PROCESS, 0)
    mapped = sum(t.mapped_pages for t in layer._tables.values())
    held = 1 if steal else 0
    assert layer.memory.free_pages + mapped + held == TOTAL
