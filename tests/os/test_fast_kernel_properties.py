"""Hypothesis proofs for the MemoryLayer fast kernels.

Two layers run the same random operation stream — one with
``fast_kernels`` on (span map/unmap batches, batch frees, rmap bitsets),
one forced onto the per-page reference paths — and must stay in lockstep:
identical page tables, identical reverse maps, identical buddy free sets.
The occupancy bitsets the promoter iterates are additionally pinned to
the ground truth recomputed from the reverse map after every operation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.promoter import _iter_set_bits
from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.os.mm import OutOfMemory, PROCESS, MemoryLayer
from repro.policies.base import HugePagePolicy

REGIONS = 8
TOTAL = REGIONS * PAGES_PER_HUGE


def make_layer(fast: bool) -> MemoryLayer:
    layer = MemoryLayer("prop", PhysicalMemory(TOTAL), HugePagePolicy())
    layer.fast_kernels = fast
    layer.enable_owner_index()
    return layer


def observable_state(layer: MemoryLayer):
    tables = {}
    for client in layer.clients():
        table = layer.table(client)
        tables[client] = (
            sorted(table.base_mappings()),
            sorted(table.huge_mappings()),
        )
    return (
        tables,
        layer.memory.free_regions(),
        layer.memory.free_pages,
        dict(layer._rmap_base),
        dict(layer._rmap_huge),
        dict(layer._frame_refs),
    )


def check_bitsets(layer: MemoryLayer) -> None:
    """rmap_bits must be exactly the per-region occupancy of _rmap_base,
    and iterating its set bits must visit exactly the owned frames in
    ascending order (the promoter's snapshot-walk contract)."""
    expected: dict[int, int] = {}
    for pfn in layer._rmap_base:
        region = pfn // PAGES_PER_HUGE
        expected[region] = expected.get(region, 0) | (
            1 << (pfn % PAGES_PER_HUGE)
        )
    for pregion in range(REGIONS):
        bits = layer.rmap_bits(pregion)
        assert bits == expected.get(pregion, 0)
        start = pregion * PAGES_PER_HUGE
        assert list(_iter_set_bits(start, bits)) == [
            frame
            for frame in range(start, start + PAGES_PER_HUGE)
            if layer.owner_of_frame(frame) is not None
        ]


def apply_op(layer: MemoryLayer, op: str, region: int, offset: int, span: int):
    vpn = region * PAGES_PER_HUGE + offset
    try:
        if op == "fault":
            layer.fault(PROCESS, vpn)
        elif op == "fault_range":
            layer.fault_range(PROCESS, vpn, span)
        elif op == "promote_mig":
            layer.promote_with_migration(PROCESS, region)
        elif op == "promote_inplace":
            layer.try_promote_in_place(PROCESS, region)
        elif op == "demote":
            if layer.table(PROCESS).is_huge(region):
                layer.demote(PROCESS, region)
        elif op == "unmap_region":
            layer.unmap_range(
                PROCESS, region * PAGES_PER_HUGE, PAGES_PER_HUGE
            )
        elif op == "unmap_partial":
            layer.unmap_range(PROCESS, vpn, span)
        elif op == "share":
            owned = [
                pfn
                for pfn in sorted(layer._rmap_base)
                if pfn // PAGES_PER_HUGE == region
            ]
            if owned:
                layer.add_frame_ref(owned[0])
        elif op == "release_client":
            layer.release_client(PROCESS)
    except OutOfMemory:
        pass


OPS = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "fault",
                "fault_range",
                "promote_mig",
                "promote_inplace",
                "demote",
                "unmap_region",
                "unmap_partial",
                "share",
                "release_client",
            ]
        ),
        st.integers(min_value=0, max_value=REGIONS - 3),
        st.integers(min_value=0, max_value=PAGES_PER_HUGE - 1),
        st.integers(min_value=1, max_value=2 * PAGES_PER_HUGE),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=25, deadline=None)
@given(ops=OPS)
def test_fast_kernels_match_reference_paths(ops):
    fast = make_layer(True)
    reference = make_layer(False)
    for op, region, offset, span in ops:
        apply_op(fast, op, region, offset, span)
        apply_op(reference, op, region, offset, span)
        assert observable_state(fast) == observable_state(reference)
        check_bitsets(fast)
