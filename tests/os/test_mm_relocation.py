"""Unit tests for page and huge-mapping relocation primitives."""

import pytest

from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.os.mm import PROCESS, MemoryLayer
from repro.policies.base import HugePagePolicy


def make_layer(regions=8):
    return MemoryLayer(
        "test", PhysicalMemory(regions * PAGES_PER_HUGE), HugePagePolicy()
    )


def test_relocate_page_moves_one_mapping():
    layer = make_layer()
    layer.fault(PROCESS, 0)
    layer.fault(PROCESS, 1)
    old = layer.translate(PROCESS, 0)
    assert layer.relocate_page(PROCESS, 0)
    new = layer.translate(PROCESS, 0)
    assert new != old
    assert layer.memory.is_free(old)
    assert layer.owner_of_frame(new) == (PROCESS, 0)
    assert layer.owner_of_frame(old) is None
    # The neighbour is untouched.
    assert layer.translate(PROCESS, 1) is not None


def test_relocate_page_to_specific_destination():
    layer = make_layer()
    layer.fault(PROCESS, 0)
    dst = 3 * PAGES_PER_HUGE + 7
    assert layer.relocate_page(PROCESS, 0, dst=dst)
    assert layer.translate(PROCESS, 0) == dst


def test_relocate_page_unmapped_or_busy_destination():
    layer = make_layer()
    assert not layer.relocate_page(PROCESS, 0)  # nothing mapped
    layer.fault(PROCESS, 0)
    busy = layer.memory.alloc(0)
    assert not layer.relocate_page(PROCESS, 0, dst=busy)


def test_relocate_huge_moves_whole_mapping():
    layer = make_layer()
    for vpn in range(PAGES_PER_HUGE):
        layer.fault(PROCESS, vpn)
    layer.try_promote_in_place(PROCESS, 0)
    old = layer.table(PROCESS).huge_target(0)
    assert layer.relocate_huge(PROCESS, 0)
    new = layer.table(PROCESS).huge_target(0)
    assert new != old
    assert layer.owner_of_region(new) == (PROCESS, 0)
    assert layer.owner_of_region(old) is None
    assert layer.memory.range_is_free(old * PAGES_PER_HUGE, PAGES_PER_HUGE)
    assert layer.ledger.count("huge_relocation") == 1


def test_relocate_huge_requires_huge_mapping_and_space():
    layer = make_layer()
    assert not layer.relocate_huge(PROCESS, 0)
    tiny = make_layer(regions=1)
    for vpn in range(PAGES_PER_HUGE):
        tiny.fault(PROCESS, vpn)
    tiny.try_promote_in_place(PROCESS, 0)
    # No free region to move to.
    assert not tiny.relocate_huge(PROCESS, 0)
    assert tiny.table(PROCESS).is_huge(0)


def test_map_prealloc():
    layer = make_layer()
    assert layer.map_prealloc(PROCESS, 5, 100)
    assert layer.translate(PROCESS, 5) == 100
    assert layer.owner_of_frame(100) == (PROCESS, 5)
    # Already mapped or busy frame: refused.
    assert not layer.map_prealloc(PROCESS, 5, 101)
    busy = layer.memory.alloc(0)
    assert not layer.map_prealloc(PROCESS, 6, busy)
    # Charged as background work.
    assert layer.ledger.background[
        "prealloc_fault"
    ].count == 1
