"""Unit tests for the MemoryLayer mechanism."""

import pytest

from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.os.mm import MemoryLayer, OutOfMemory
from repro.policies.base import HugePagePolicy


class HugeFaultPolicy(HugePagePolicy):
    """Always serves faults with huge pages when possible."""

    name = "huge-always-test"

    def wants_huge_fault(self, client, vregion):
        return True


class BucketPolicy(HugePagePolicy):
    """Claims freed huge regions like Gemini's bucket."""

    name = "bucket-test"

    def __init__(self):
        super().__init__()
        self.claimed = []

    def on_region_freed(self, client, pregion, aligned):
        self.claimed.append((pregion, aligned))
        return True


class ReclaimPolicy(HugePagePolicy):
    """Releases one hoarded page under pressure."""

    name = "reclaim-test"

    def __init__(self):
        super().__init__()
        self.hoard = []

    def on_pressure(self):
        if not self.hoard:
            return 0
        self.layer.memory.free(self.hoard.pop(), 0)
        return 1


def make_layer(pages=8 * PAGES_PER_HUGE, policy=None):
    memory = PhysicalMemory(pages)
    return MemoryLayer("test", memory, policy or HugePagePolicy())


def test_base_fault_maps_and_charges():
    layer = make_layer()
    pfn = layer.fault(0, 1000)
    assert layer.translate(0, 1000) == pfn
    assert layer.owner_of_frame(pfn) == (0, 1000)
    assert layer.ledger.count("base_fault") == 1
    # Second fault on the same vpn is a no-op returning the same frame.
    assert layer.fault(0, 1000) == pfn
    assert layer.ledger.count("base_fault") == 1


def test_huge_fault_maps_whole_region():
    layer = make_layer(policy=HugeFaultPolicy())
    pfn = layer.fault(0, PAGES_PER_HUGE + 5)
    table = layer.table(0)
    assert table.is_huge(1)
    assert pfn == table.translate(PAGES_PER_HUGE + 5)
    assert layer.ledger.count("huge_fault") == 1
    pregion = table.huge_target(1)
    assert layer.owner_of_region(pregion) == (0, 1)


def test_huge_fault_suppressed_outside_full_region():
    layer = make_layer(policy=HugeFaultPolicy())
    layer.fault(0, 5, full_region=False)
    assert not layer.table(0).is_huge(0)


def test_huge_fault_suppressed_with_existing_population():
    layer = make_layer(policy=HugeFaultPolicy())
    layer.fault(0, 5, full_region=False)
    layer.fault(0, 6, full_region=True)
    assert not layer.table(0).is_huge(0)
    assert layer.table(0).region_population(0) == 2


def test_fault_out_of_memory():
    layer = make_layer(pages=2)
    layer.fault(0, 0)
    layer.fault(0, 1)
    with pytest.raises(OutOfMemory):
        layer.fault(0, 2)


def test_pressure_reclaim_allows_fault():
    policy = ReclaimPolicy()
    memory = PhysicalMemory(2)
    layer = MemoryLayer("test", memory, policy)
    policy.hoard.append(memory.alloc(0))
    layer.fault(0, 0)
    # Memory now exhausted except the hoarded page.
    pfn = layer.fault(0, 1)
    assert layer.translate(0, 1) == pfn


def test_in_place_promotion():
    layer = make_layer()
    # Fault the whole region; default allocation is sequential from frame 0
    # so the region is contiguous and aligned.
    for vpn in range(PAGES_PER_HUGE):
        layer.fault(0, vpn)
    assert layer.try_promote_in_place(0, 0)
    table = layer.table(0)
    assert table.is_huge(0)
    assert layer.owner_of_region(0) == (0, 0)
    assert layer.owner_of_frame(0) is None
    assert layer.ledger.count("inplace_promotion") == 1
    assert layer.ledger.count("tlb_shootdown") == 1


def test_in_place_promotion_fails_on_scattered_frames():
    layer = make_layer()
    layer.memory.alloc_at(0, 0)  # steal frame 0 so mappings are offset
    for vpn in range(PAGES_PER_HUGE):
        layer.fault(0, vpn)
    assert not layer.try_promote_in_place(0, 0)


def test_migration_promotion_copies_and_bloats():
    layer = make_layer()
    layer.memory.alloc_at(0, 0)  # force unaligned placement
    for vpn in range(300):
        layer.fault(0, vpn)
    assert layer.promote_with_migration(0, 0)
    table = layer.table(0)
    assert table.is_huge(0)
    assert layer.bloat_pages == PAGES_PER_HUGE - 300
    assert layer.ledger.sync["pages_copied"].count == 300
    assert layer.ledger.count("migration_promotion") == 1


def test_migration_promotion_noops():
    layer = make_layer()
    assert not layer.promote_with_migration(0, 0)  # nothing mapped
    layer.fault(0, 0)
    tiny = make_layer(pages=PAGES_PER_HUGE)  # no free huge region available
    tiny.memory.alloc_at(256, 0)
    tiny.fault(0, 0)
    assert not tiny.promote_with_migration(0, 0)


def test_compact_region_into_target():
    layer = make_layer()
    # Scatter 10 pages of region 0, then compact them into pregion 4.
    layer.memory.alloc_at(0, 0)
    for vpn in range(10):
        layer.fault(0, vpn)
    assert layer.compact_region(0, 0, 4)
    table = layer.table(0)
    base = 4 * PAGES_PER_HUGE
    for vpn in range(10):
        assert table.translate(vpn) == base + vpn
        assert layer.owner_of_frame(base + vpn) == (0, vpn)
    assert layer.ledger.count("compaction_moves") == 1


def test_compact_region_refuses_occupied_target():
    layer = make_layer()
    for vpn in range(10):
        layer.fault(0, vpn)
    # Occupy the precise frame vpn 3 would need in pregion 4.
    layer.memory.alloc_at(4 * PAGES_PER_HUGE + 3, 0)
    before = layer.table(0).region_mappings(0)
    assert not layer.compact_region(0, 0, 4)
    assert layer.table(0).region_mappings(0) == before


def test_compact_then_promote_in_place():
    layer = make_layer()
    layer.memory.alloc_at(0, 0)
    for vpn in range(PAGES_PER_HUGE):
        layer.fault(0, vpn)
    assert layer.compact_region(0, 0, 5)
    assert layer.try_promote_in_place(0, 0)
    assert layer.table(0).huge_target(0) == 5


def test_demote_restores_rmap():
    layer = make_layer(policy=HugeFaultPolicy())
    layer.fault(0, 0)
    pregion = layer.table(0).huge_target(0)
    layer.demote(0, 0)
    assert not layer.table(0).is_huge(0)
    assert layer.owner_of_region(pregion) is None
    assert layer.owner_of_frame(pregion * PAGES_PER_HUGE) == (0, 0)
    assert layer.ledger.count("demotion") == 1


def test_unmap_range_frees_base_frames():
    layer = make_layer()
    for vpn in range(10):
        layer.fault(0, vpn)
    free_before = layer.memory.free_pages
    layer.unmap_range(0, 0, 10)
    assert layer.memory.free_pages == free_before + 10
    assert layer.table(0).region_population(0) == 0


def test_unmap_full_huge_region_frees_whole_region():
    layer = make_layer(policy=HugeFaultPolicy())
    layer.fault(0, 0)
    free_before = layer.memory.free_pages
    layer.unmap_range(0, 0, PAGES_PER_HUGE)
    assert layer.memory.free_pages == free_before + PAGES_PER_HUGE
    assert not layer.table(0).is_huge(0)


def test_unmap_partial_huge_region_demotes():
    layer = make_layer(policy=HugeFaultPolicy())
    layer.fault(0, 0)
    layer.unmap_range(0, 0, 10)
    table = layer.table(0)
    assert not table.is_huge(0)
    assert table.region_population(0) == PAGES_PER_HUGE - 10
    assert layer.ledger.count("demotion") == 1


def test_policy_bucket_intercepts_freed_region():
    policy = BucketPolicy()
    memory = PhysicalMemory(8 * PAGES_PER_HUGE)
    layer = MemoryLayer("test", memory, policy)
    layer.alignment_probe = lambda pregion: True
    pregion = layer.alloc_huge_region()
    layer.table(0).map_huge(0, pregion)
    layer._rmap_huge[pregion] = (0, 0)
    free_before = memory.free_pages
    layer.unmap_range(0, 0, PAGES_PER_HUGE)
    # The policy kept the region: it was not freed to the buddy.
    assert memory.free_pages == free_before
    assert policy.claimed == [(pregion, True)]


def test_alloc_huge_region_returns_none_when_fragmented():
    layer = make_layer(pages=PAGES_PER_HUGE)
    layer.memory.alloc_at(256, 0)
    assert layer.alloc_huge_region() is None


def test_charge_scan_is_background():
    layer = make_layer()
    layer.charge_scan(100)
    assert layer.ledger.background_cycles > 0
    assert layer.ledger.sync_cycles == 0
