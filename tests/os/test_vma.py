"""Unit tests for VMAs and address spaces."""

import pytest

from repro.mem.layout import PAGES_PER_HUGE
from repro.os.vma import VMA, AddressSpace


def test_vma_validation():
    with pytest.raises(ValueError):
        VMA(start=-1, npages=10)
    with pytest.raises(ValueError):
        VMA(start=0, npages=0)


def test_vma_bounds_and_contains():
    vma = VMA(start=512, npages=100, name="heap")
    assert vma.end == 612
    assert 512 in vma
    assert 611 in vma
    assert 612 not in vma
    assert 511 not in vma


def test_vma_regions():
    vma = VMA(start=512, npages=PAGES_PER_HUGE * 2, name="x")
    assert list(vma.regions()) == [1, 2]
    small = VMA(start=100, npages=10)
    assert list(small.regions()) == [0]


def test_region_span_and_coverage():
    vma = VMA(start=256, npages=PAGES_PER_HUGE, name="x")  # covers half of r0, half of r1
    lo, n = vma.region_span(0)
    assert (lo, n) == (256, 256)
    lo, n = vma.region_span(1)
    assert (lo, n) == (512, 256)
    assert not vma.covers_full_region(0)
    assert not vma.covers_full_region(1)
    with pytest.raises(ValueError):
        vma.region_span(2)
    full = VMA(start=512, npages=PAGES_PER_HUGE)
    assert full.covers_full_region(1)


def test_address_space_mmap_alignment_and_gaps():
    space = AddressSpace()
    a = space.mmap(100, "a")
    b = space.mmap(100, "b")
    assert a.start % PAGES_PER_HUGE == 0
    assert b.start % PAGES_PER_HUGE == 0
    # Guard gap: VMAs never share a huge region.
    assert b.start >= a.end + PAGES_PER_HUGE


def test_address_space_unique_names():
    space = AddressSpace()
    space.mmap(10, "a")
    with pytest.raises(ValueError):
        space.mmap(10, "a")


def test_address_space_find_and_munmap():
    space = AddressSpace()
    a = space.mmap(100, "a")
    assert space.find(a.start) is a
    assert space.find(a.end) is None
    assert "a" in space
    assert space.mapped_pages == 100
    removed = space.munmap("a")
    assert removed is a
    assert "a" not in space
    assert len(space) == 0
    with pytest.raises(KeyError):
        space.munmap("a")


def test_address_space_vma_lookup():
    space = AddressSpace()
    space.mmap(10, "a")
    assert space.vma("a").name == "a"
    assert list(space.vmas())[0].name == "a"
