"""Property-based tests for page-table invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.layout import PAGES_PER_HUGE
from repro.paging.pagetable import MappingError, PageTable


def table_invariants(pt: PageTable) -> None:
    """No vpn may be covered twice; counters must match contents."""
    base = dict(pt.base_mappings())
    huge = dict(pt.huge_mappings())
    assert len(base) == pt.base_count
    assert len(huge) == pt.huge_count
    for vpn in base:
        assert vpn // PAGES_PER_HUGE not in huge
    assert pt.mapped_pages == len(base) + PAGES_PER_HUGE * len(huge)
    # translate() agrees with the raw mappings.
    for vpn, pfn in base.items():
        assert pt.translate(vpn) == pfn
    for vregion, pregion in huge.items():
        assert pt.translate(vregion * PAGES_PER_HUGE) == pregion * PAGES_PER_HUGE


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["map_base", "map_huge", "unmap", "demote"]),
            st.integers(min_value=0, max_value=5 * PAGES_PER_HUGE - 1),
        ),
        max_size=80,
    )
)
def test_random_operations_preserve_invariants(ops):
    pt = PageTable()
    next_pfn = [10 * PAGES_PER_HUGE]
    for op, vpn in ops:
        vregion = vpn // PAGES_PER_HUGE
        try:
            if op == "map_base":
                pt.map_base(vpn, next_pfn[0])
                next_pfn[0] += 1
            elif op == "map_huge":
                pt.map_huge(vregion, next_pfn[0] // PAGES_PER_HUGE + 100)
                next_pfn[0] += PAGES_PER_HUGE
            elif op == "unmap":
                if pt.is_huge(vregion):
                    pt.unmap_huge(vregion)
                else:
                    pt.unmap_base(vpn)
            elif op == "demote":
                pt.demote(vregion)
        except MappingError:
            pass
        table_invariants(pt)


@settings(max_examples=30, deadline=None)
@given(
    pregion=st.integers(min_value=0, max_value=100),
    vregion=st.integers(min_value=0, max_value=100),
)
def test_promote_demote_roundtrip(pregion, vregion):
    """demote(promote(x)) restores exactly the original base mappings."""
    pt = PageTable()
    first_vpn = vregion * PAGES_PER_HUGE
    first_pfn = pregion * PAGES_PER_HUGE
    for offset in range(PAGES_PER_HUGE):
        pt.map_base(first_vpn + offset, first_pfn + offset)
    original = dict(pt.base_mappings())
    assert pt.promotable(vregion) == pregion
    pt.promote_in_place(vregion)
    table_invariants(pt)
    pt.demote(vregion)
    assert dict(pt.base_mappings()) == original
    table_invariants(pt)
