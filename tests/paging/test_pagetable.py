"""Unit tests for the two-granularity page table."""

import pytest

from repro.mem.layout import PAGES_PER_HUGE
from repro.paging.pagetable import MappingError, PageTable


def test_map_and_translate_base():
    pt = PageTable()
    pt.map_base(10, 77)
    assert pt.translate(10) == 77
    assert pt.translate(11) is None
    assert pt.is_mapped(10)
    assert not pt.is_mapped(11)


def test_map_base_conflict_rejected():
    pt = PageTable()
    pt.map_base(10, 77)
    with pytest.raises(MappingError):
        pt.map_base(10, 88)


def test_map_and_translate_huge():
    pt = PageTable()
    pt.map_huge(2, 5)
    vpn = 2 * PAGES_PER_HUGE + 17
    assert pt.translate(vpn) == 5 * PAGES_PER_HUGE + 17
    assert pt.is_huge(2)
    assert pt.huge_target(2) == 5
    assert pt.huge_target(3) is None


def test_huge_over_base_conflict_rejected():
    pt = PageTable()
    pt.map_base(2 * PAGES_PER_HUGE, 0)
    with pytest.raises(MappingError):
        pt.map_huge(2, 5)


def test_base_under_huge_conflict_rejected():
    pt = PageTable()
    pt.map_huge(2, 5)
    with pytest.raises(MappingError):
        pt.map_base(2 * PAGES_PER_HUGE + 1, 99)


def test_unmap_base_returns_frame():
    pt = PageTable()
    pt.map_base(10, 77)
    assert pt.unmap_base(10) == 77
    assert not pt.is_mapped(10)
    with pytest.raises(MappingError):
        pt.unmap_base(10)


def test_unmap_huge_returns_region():
    pt = PageTable()
    pt.map_huge(4, 9)
    assert pt.unmap_huge(4) == 9
    assert not pt.is_huge(4)
    with pytest.raises(MappingError):
        pt.unmap_huge(4)


def test_region_population_counts():
    pt = PageTable()
    assert pt.region_population(0) == 0
    pt.map_base(0, 100)
    pt.map_base(1, 101)
    pt.map_base(PAGES_PER_HUGE, 500)
    assert pt.region_population(0) == 2
    assert pt.region_population(1) == 1


def populate_promotable(pt, vregion=0, pregion=3):
    first_vpn = vregion * PAGES_PER_HUGE
    first_pfn = pregion * PAGES_PER_HUGE
    for offset in range(PAGES_PER_HUGE):
        pt.map_base(first_vpn + offset, first_pfn + offset)


def test_promotable_detects_contiguous_aligned_region():
    pt = PageTable()
    populate_promotable(pt, vregion=1, pregion=3)
    assert pt.promotable(1) == 3


def test_promotable_rejects_partial_population():
    pt = PageTable()
    for offset in range(PAGES_PER_HUGE - 1):
        pt.map_base(offset, 3 * PAGES_PER_HUGE + offset)
    assert pt.promotable(0) is None


def test_promotable_rejects_unaligned_frames():
    pt = PageTable()
    # Fully populated and contiguous, but starting one frame off alignment.
    for offset in range(PAGES_PER_HUGE):
        pt.map_base(offset, 3 * PAGES_PER_HUGE + 1 + offset)
    assert pt.promotable(0) is None


def test_promotable_rejects_non_contiguous_frames():
    pt = PageTable()
    for offset in range(PAGES_PER_HUGE):
        pfn = 3 * PAGES_PER_HUGE + offset
        if offset == 100:
            pfn = 10 * PAGES_PER_HUGE  # one stray frame
        pt.map_base(offset, pfn)
    assert pt.promotable(0) is None


def test_promote_in_place():
    pt = PageTable()
    populate_promotable(pt, vregion=0, pregion=3)
    assert pt.promote_in_place(0) == 3
    assert pt.is_huge(0)
    assert pt.base_count == 0
    assert pt.translate(17) == 3 * PAGES_PER_HUGE + 17


def test_promote_in_place_rejects_unpromotable():
    pt = PageTable()
    pt.map_base(0, 7)
    with pytest.raises(MappingError):
        pt.promote_in_place(0)


def test_demote_restores_base_mappings():
    pt = PageTable()
    pt.map_huge(0, 3)
    pt.demote(0)
    assert not pt.is_huge(0)
    assert pt.base_count == PAGES_PER_HUGE
    assert pt.translate(0) == 3 * PAGES_PER_HUGE
    assert pt.translate(511) == 3 * PAGES_PER_HUGE + 511
    # Demoted region is immediately re-promotable (round trip).
    assert pt.promotable(0) == 3
    pt.promote_in_place(0)
    assert pt.is_huge(0)


def test_demote_unmapped_rejected():
    pt = PageTable()
    with pytest.raises(MappingError):
        pt.demote(0)


def test_remap_region_migration():
    pt = PageTable()
    pt.map_base(0, 100)
    pt.map_base(1, 200)
    old = pt.remap_region(0, {0: 512, 1: 513})
    assert old == {0: 100, 1: 200}
    assert pt.translate(0) == 512
    assert pt.translate(1) == 513


def test_remap_region_must_cover_exact_vpns():
    pt = PageTable()
    pt.map_base(0, 100)
    with pytest.raises(MappingError):
        pt.remap_region(0, {0: 512, 1: 513})
    with pytest.raises(MappingError):
        pt.remap_region(1, {})


def test_counters_and_iterators():
    pt = PageTable()
    pt.map_base(0, 100)
    pt.map_huge(5, 9)
    assert pt.base_count == 1
    assert pt.huge_count == 1
    assert pt.mapped_pages == 1 + PAGES_PER_HUGE
    assert dict(pt.huge_mappings()) == {5: 9}
    assert dict(pt.base_mappings()) == {0: 100}
    assert list(pt.populated_regions()) == [0]
