"""Unit tests for the page-walk cost model."""

from repro.paging import walker


def test_native_walk_refs_match_x86():
    assert walker.native_walk_refs(huge=False) == 4
    assert walker.native_walk_refs(huge=True) == 3


def test_nested_walk_refs_match_paper():
    # Section 2.1: up to 24 memory accesses with nested paging.
    assert walker.nested_walk_refs(False, False) == 24
    assert walker.nested_walk_refs(True, False) == 19
    assert walker.nested_walk_refs(False, True) == 19
    assert walker.nested_walk_refs(True, True) == 15


def test_nested_walk_is_much_costlier_than_native():
    # Section 1: nested walk cost can be ~6x the native cost.
    native = walker.native_walk_cost(huge=False)
    nested = walker.nested_walk_cost(False, False)
    assert nested.refs == 6 * native.refs
    assert nested.cycles > 3 * native.cycles


def test_huge_pages_shorten_walks_monotonically():
    both_base = walker.nested_walk_cost(False, False)
    guest_huge = walker.nested_walk_cost(True, False)
    host_huge = walker.nested_walk_cost(False, True)
    both_huge = walker.nested_walk_cost(True, True)
    assert both_huge.cycles < guest_huge.cycles < both_base.cycles
    assert both_huge.cycles < host_huge.cycles < both_base.cycles
    assert both_huge.refs < guest_huge.refs < both_base.refs


def test_native_huge_walk_cheaper():
    base = walker.native_walk_cost(huge=False)
    huge = walker.native_walk_cost(huge=True)
    assert huge.cycles < base.cycles
    assert huge.refs < base.refs


def test_pwc_absorbs_most_huge_walk_cost():
    # Huge-page walks only touch well-cached high-level directories
    # (Section 2.2), so their expected cycles are far below refs * ref_cost.
    huge = walker.nested_walk_cost(True, True)
    assert huge.cycles < 0.4 * huge.refs * walker.WALK_REF_CYCLES


def test_costs_positive():
    for guest_huge in (False, True):
        for host_huge in (False, True):
            cost = walker.nested_walk_cost(guest_huge, host_huge)
            assert cost.cycles > 0
            assert cost.refs > 0
