"""Property-based tests for the incremental translation-state index.

Every incrementally-maintained summary must stay equal to a recompute from
scratch after arbitrary sequences of map/unmap/promote/demote/remap events
on both tables:

* the page table's per-region placement-delta multiset, and the O(1)
  ``promotable`` answer it backs;
* the :class:`VMTranslationIndex` alignment counters, live-region set,
  classification cache and fully-translated set;
* the :class:`MemoryLayer` per-region owner counts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.metrics.alignment import alignment_report, classify_region
from repro.os.mm import OutOfMemory, PROCESS, MemoryLayer
from repro.paging.index import VMTranslationIndex
from repro.paging.pagetable import MappingError, PageTable
from repro.policies.base import HugePagePolicy

V_REGIONS = 6    # guest-virtual regions exercised
GP_REGIONS = 6   # guest-physical regions exercised
HP_REGIONS = 6   # host-physical regions exercised


def reference_promotable(table: PageTable, vregion: int) -> int | None:
    """The reference scan, via the table's own non-index code path."""
    saved = table.use_index
    table.use_index = False
    try:
        return table.promotable(vregion)
    finally:
        table.use_index = saved


def reference_deltas(table: PageTable) -> dict[int, dict[int, int]]:
    expected: dict[int, dict[int, int]] = {}
    for region, bucket in table._region_base.items():
        deltas: dict[int, int] = {}
        for vpn, pfn in bucket.items():
            deltas[pfn - vpn] = deltas.get(pfn - vpn, 0) + 1
        expected[region] = deltas
    return expected


def reference_live_set(guest: PageTable) -> set[int]:
    live = {gpregion for _, gpregion in guest.huge_mappings()}
    for _, gpn in guest.base_mappings():
        live.add(gpn // PAGES_PER_HUGE)
    return live


def reference_translated(guest: PageTable, ept: PageTable, vregion: int) -> bool:
    start = vregion * PAGES_PER_HUGE
    for vpn in range(start, start + PAGES_PER_HUGE):
        gpn = guest.translate(vpn)
        if gpn is None or ept.translate(gpn) is None:
            return False
    return True


def check_index(guest: PageTable, ept: PageTable, index: VMTranslationIndex) -> None:
    assert guest._region_delta == reference_deltas(guest)
    assert ept._region_delta == reference_deltas(ept)
    for vregion in range(V_REGIONS):
        assert guest.promotable(vregion) == reference_promotable(guest, vregion)
    for gpregion in range(GP_REGIONS):
        assert ept.promotable(gpregion) == reference_promotable(ept, gpregion)
    assert index.report() == alignment_report(guest, ept)
    assert index.live_set() == reference_live_set(guest)
    # Surviving cache entries must still describe the current tables.
    for vregion, cached in index._classes.items():
        assert cached == classify_region(guest, ept, vregion)
    for vregion in index._translated:
        assert reference_translated(guest, ept, vregion)


#: One event: (layer, kind, region, offset/target, aux target).
EVENTS = st.lists(
    st.tuples(
        st.sampled_from(["guest", "ept"]),
        st.sampled_from(
            [
                "map_base", "unmap_base", "map_huge", "unmap_huge",
                "promote", "demote", "remap", "fill_region",
                "query_translated", "query_classes",
            ]
        ),
        st.integers(min_value=0, max_value=V_REGIONS - 1),
        st.integers(min_value=0, max_value=PAGES_PER_HUGE - 1),
        st.integers(min_value=0, max_value=GP_REGIONS - 1),
    ),
    max_size=50,
)


def apply_event(guest, ept, index, layer, kind, region, offset, target):
    table = guest if layer == "guest" else ept
    limit = GP_REGIONS if layer == "guest" else HP_REGIONS
    target %= limit
    vpn = region * PAGES_PER_HUGE + offset
    try:
        if kind == "map_base":
            table.map_base(vpn, target * PAGES_PER_HUGE + offset)
        elif kind == "unmap_base":
            table.unmap_base(vpn)
        elif kind == "map_huge":
            table.map_huge(region, target)
        elif kind == "unmap_huge":
            table.unmap_huge(region)
        elif kind == "promote":
            table.promote_in_place(region)
        elif kind == "demote":
            table.demote(region)
        elif kind == "remap":
            bucket = table.region_mappings(region)
            if bucket:
                # Shift every frame into the aux target region, keeping
                # per-page offsets: a migration-style remap.
                new = {
                    v: target * PAGES_PER_HUGE + (p % PAGES_PER_HUGE)
                    for v, p in bucket.items()
                }
                table.remap_region(region, new)
        elif kind == "fill_region":
            # Densely map the whole region at one aligned offset so
            # promote/translated paths are reachable from random data.
            for o in range(PAGES_PER_HUGE):
                v = region * PAGES_PER_HUGE + o
                if table.translate(v) is None and not table.is_huge(region):
                    try:
                        table.map_base(v, target * PAGES_PER_HUGE + o)
                    except MappingError:
                        pass
        elif kind == "query_translated":
            got = index.region_translated(region)
            assert got == reference_translated(guest, ept, region)
        elif kind == "query_classes":
            cached = index.cached_classes(region)
            fresh = classify_region(guest, ept, region)
            if cached is None:
                index.store_classes(region, fresh)
            else:
                assert cached == fresh
    except MappingError:
        pass


@settings(max_examples=60, deadline=None)
@given(events=EVENTS)
def test_index_summaries_match_recompute(events):
    """After every event the incremental summaries equal a recompute."""
    guest = PageTable("guest")
    ept = PageTable("ept")
    guest.enable_index()
    ept.enable_index()
    index = VMTranslationIndex(guest, ept)
    for layer, kind, region, offset, target in events:
        apply_event(guest, ept, index, layer, kind, region, offset, target)
        check_index(guest, ept, index)


@settings(max_examples=30, deadline=None)
@given(events=EVENTS)
def test_index_bootstrap_matches_live_maintenance(events):
    """Attaching an index to a populated table equals having watched the
    mutations from the start."""
    guest = PageTable("guest")
    ept = PageTable("ept")
    guest.enable_index()
    ept.enable_index()
    live = VMTranslationIndex(guest, ept)
    for layer, kind, region, offset, target in events:
        if kind in ("query_translated", "query_classes"):
            continue
        apply_event(guest, ept, live, layer, kind, region, offset, target)
    late = VMTranslationIndex(guest, ept)
    assert late.report() == live.report()
    assert late.live_set() == live.live_set()
    assert late._targets == live._targets
    assert late._live_base == live._live_base


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(
                ["fault", "unmap", "promote_mig", "promote_inplace",
                 "demote", "compact", "relocate"]
            ),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=PAGES_PER_HUGE - 1),
        ),
        max_size=40,
    )
)
def test_owner_counts_match_rmap_recompute(ops):
    """The per-region owner counts equal a recompute from the raw reverse
    map after arbitrary MemoryLayer traffic."""
    total = 12 * PAGES_PER_HUGE
    layer = MemoryLayer("prop", PhysicalMemory(total), HugePagePolicy())
    layer.enable_owner_index()
    for op, region, offset in ops:
        vpn = region * PAGES_PER_HUGE + offset
        try:
            if op == "fault":
                layer.fault(PROCESS, vpn)
            elif op == "unmap":
                layer.unmap_range(PROCESS, region * PAGES_PER_HUGE, PAGES_PER_HUGE)
            elif op == "promote_mig":
                layer.promote_with_migration(PROCESS, region)
            elif op == "promote_inplace":
                layer.try_promote_in_place(PROCESS, region)
            elif op == "demote":
                if layer.table(PROCESS).is_huge(region):
                    layer.demote(PROCESS, region)
            elif op == "compact":
                layer.compact_region(PROCESS, region, (region + 3) % 12)
            elif op == "relocate":
                layer.relocate_page(PROCESS, vpn)
        except OutOfMemory:
            pass
        expected: dict[int, dict[tuple[int, int], int]] = {}
        for pfn, (client, owner_vpn) in layer._rmap_base.items():
            bucket = expected.setdefault(pfn // PAGES_PER_HUGE, {})
            key = (client, owner_vpn // PAGES_PER_HUGE)
            bucket[key] = bucket.get(key, 0) + 1
        assert layer._owner_counts == expected
        for pregion in range(12):
            assert layer.base_owned_in_region(pregion) == sum(
                expected.get(pregion, {}).values()
            )
