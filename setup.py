"""Compatibility shim for environments without the ``wheel`` package.

``pip install -e .`` builds a PEP 660 editable wheel, which requires
``wheel`` on older setuptools.  On fully-offline machines without it, use::

    python setup.py develop

which installs the same editable link through the legacy path.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
