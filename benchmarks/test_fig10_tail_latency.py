"""Benchmark: Figure 10 — clean-slate 99th-percentile latencies."""

from conftest import average, write_result

from repro.experiments.clean_slate import fig10_tail_latency
from repro.experiments.common import format_table


def test_fig10_tail_latency(benchmark, clean_fragmented):
    table = benchmark.pedantic(
        lambda: fig10_tail_latency(clean_fragmented), rounds=1, iterations=1
    )
    write_result(
        "fig10_tail_latency",
        format_table(table, "Figure 10: p99 latency vs Host-B-VM-B"),
    )
    # Gemini reduces tail latency much more than the other systems
    # (paper: 60% vs 14% on average).
    gemini = average(table, "Gemini")
    assert gemini < 0.9
    others = [
        average(table, s)
        for s in ("THP", "Ingens", "HawkEye", "CA-paging", "Translation-Ranger")
    ]
    assert gemini < min(others)
    # Ranger's continuous migrations give it the worst tail of the
    # huge-page systems.
    ranger = average(table, "Translation-Ranger")
    assert ranger >= max(
        average(table, s) for s in ("THP", "Ingens", "HawkEye")
    ) - 0.05
