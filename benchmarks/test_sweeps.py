"""Benchmark: environment sweeps — where the paper's effect lives.

Fragmentation shrinks every system's gains while Gemini's alignment lead
persists; an ample TLB removes the translation bottleneck entirely (the
crossover where huge pages stop paying off).
"""

from conftest import write_result

from repro.experiments.sweeps import (
    format_sweep,
    run_fragmentation_sweep,
    run_tlb_sweep,
)


def test_sweeps(benchmark):
    def run_both():
        frag = run_fragmentation_sweep(
            "Masstree", levels=[0.0, 0.6, 0.9], epochs=10
        )
        tlb = run_tlb_sweep("Masstree", entries=[96, 384, 6144], epochs=10)
        return frag, tlb

    frag, tlb = benchmark.pedantic(run_both, rounds=1, iterations=1)
    write_result(
        "sweeps",
        format_sweep(frag, "Fragmentation sweep (Masstree)")
        + "\n\n"
        + format_sweep(tlb, "TLB capacity sweep (Masstree)"),
    )

    frag_by = {(p.parameter, p.system): p for p in frag}
    # Gemini leads at every fragmentation level...
    for level in (0.0, 0.6, 0.9):
        assert (
            frag_by[(level, "Gemini")].throughput
            >= frag_by[(level, "Ingens")].throughput
        )
        assert (
            frag_by[(level, "Gemini")].well_aligned_rate
            >= frag_by[(level, "Ingens")].well_aligned_rate - 0.05
        )
    # ...but severe fragmentation compresses everyone's gains.
    base = frag_by[(0.0, "Host-B-VM-B")].throughput
    severe_base = frag_by[(0.9, "Host-B-VM-B")].throughput
    assert (
        frag_by[(0.9, "Gemini")].throughput / severe_base
        < frag_by[(0.0, "Gemini")].throughput / base
    )

    tlb_by = {(p.parameter, p.system): p for p in tlb}
    small = tlb_by[(96.0, "Gemini")].throughput / tlb_by[(96.0, "Host-B-VM-B")].throughput
    big = tlb_by[(6144.0, "Gemini")].throughput / tlb_by[(6144.0, "Host-B-VM-B")].throughput
    assert big < small  # crossover: huge pages matter less with a big TLB
