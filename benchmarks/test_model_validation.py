"""Benchmark: TLB model validation — the analytic capacity model must
agree with the trace-driven set-associative TLB on real simulator states
(the foundation every figure rests on)."""

from conftest import write_result

from repro.experiments.validation import format_validation, run_validation


def test_model_validation(benchmark):
    points = benchmark.pedantic(
        lambda: run_validation(
            workloads=["Masstree", "SVM"],
            systems=["Host-B-VM-B", "THP", "Gemini"],
            epochs=6,
            trace_accesses=40_000,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("model_validation", format_validation(points))
    assert points
    for point in points:
        assert point.error < 0.08, f"{point.workload}/{point.system}: {point.error:.3f}"
    # The structure must be preserved: Gemini's traced miss rate is far
    # below the baseline's.
    traced = {(p.workload, p.system): p.traced_miss_rate for p in points}
    for workload in ("Masstree", "SVM"):
        assert traced[(workload, "Gemini")] < 0.5 * traced[(workload, "Host-B-VM-B")]
