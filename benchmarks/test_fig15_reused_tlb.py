"""Benchmark: Figure 15 — reused-VM TLB misses, normalised to Gemini."""

from conftest import average, write_result

from repro.experiments.common import format_table
from repro.experiments.reused_vm import fig15_tlb_misses


def test_fig15_reused_tlb(benchmark, reused_results):
    table = benchmark.pedantic(
        lambda: fig15_tlb_misses(reused_results), rounds=1, iterations=1
    )
    write_result(
        "fig15_reused_tlb",
        format_table(table, "Figure 15: reused-VM TLB misses (norm. to Gemini)", fmt="{:.1f}"),
    )
    # Other systems suffer far more misses than Gemini in the reused VM
    # (the paper reports 4.6x on average: splintered stale huge pages).
    for system in ("Host-B-VM-B", "THP", "Ingens", "HawkEye"):
        assert average(table, system) > 1.5, system
