"""Benchmark: KSM interplay (Section 8 future-work extension).

Host-level same-page merging against a Gemini-managed VM: without
break-huge the merger finds almost nothing (Gemini's pages are huge);
breaking everything reclaims memory but destroys alignment and throughput;
the spare-aligned rule is the compromise the paper sketches.
"""

from conftest import write_result

from repro.experiments.interplay import format_ksm, run_ksm_interplay


def test_ablation_ksm(benchmark):
    outcomes = benchmark.pedantic(
        lambda: run_ksm_interplay("Specjbb", epochs=10), rounds=1, iterations=1
    )
    write_result("ablation_ksm", format_ksm(outcomes))
    by_variant = {o.variant: o for o in outcomes}
    gentle = by_variant["no break-huge"]
    spare = by_variant["break, spare aligned"]
    brutal = by_variant["break everything"]

    # Breaking huge pages unlocks merging...
    assert brutal.merged_pages >= spare.merged_pages >= gentle.merged_pages
    # ...at the cost of alignment and throughput.
    assert brutal.result.well_aligned_rate < gentle.result.well_aligned_rate
    assert brutal.result.throughput < gentle.result.throughput
    # The spare-aligned rule keeps Gemini's alignment near-intact.
    assert (
        spare.result.well_aligned_rate
        >= gentle.result.well_aligned_rate - 0.1
    )
