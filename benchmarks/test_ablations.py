"""Benchmark: ablations of Gemini's design choices (beyond the paper's
figures — booking-timeout adaptation, preallocation threshold, bucket
hold time), plus a raw engine-speed benchmark."""

from conftest import write_result

from repro.experiments.ablations import (
    format_ablation,
    run_bucket_hold_sweep,
    run_prealloc_sweep,
    run_timeout_ablation,
)
from repro.sim import Simulation, SimulationConfig
from repro.workloads import make_workload


def test_ablation_timeout(benchmark):
    results = benchmark.pedantic(
        lambda: run_timeout_ablation(workloads=["Redis"], epochs=12),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_timeout", format_ablation(results, "Booking timeout (Algorithm 1)")
    )
    row = results["Redis"]
    adaptive = row["adaptive (Alg. 1)"]
    # The adaptive timeout performs at least on par with the worse of the
    # two fixed settings (it cannot be dominated by both).
    fixed = [row["fixed short (1)"], row["fixed long (32)"]]
    assert adaptive.throughput >= min(f.throughput for f in fixed) * 0.95


def test_ablation_prealloc_threshold(benchmark):
    results = benchmark.pedantic(
        lambda: run_prealloc_sweep("Redis", epochs=12), rounds=1, iterations=1
    )
    write_result(
        "ablation_prealloc", format_ablation(results, "Huge preallocation threshold")
    )
    row = results["Redis"]
    assert all(r.throughput > 0 for r in row.values())


def test_ablation_bucket_hold(benchmark):
    results = benchmark.pedantic(
        lambda: run_bucket_hold_sweep("Redis", epochs=12), rounds=1, iterations=1
    )
    write_result("ablation_bucket_hold", format_ablation(results, "Bucket hold time"))
    row = results["Redis"]
    # Holding freed aligned pages longer must not hurt alignment.
    short = row["hold=1"].well_aligned_rate
    long = row["hold=16"].well_aligned_rate
    assert long >= short - 0.1


def test_engine_speed(benchmark):
    """Raw simulator speed: one full Gemini run of a churny workload."""

    def run():
        config = SimulationConfig(
            epochs=8, fragment_guest=0.5, fragment_host=0.5
        )
        return Simulation(
            make_workload("Masstree"), system="Gemini", config=config
        ).run_single()

    result = benchmark(run)
    assert result.throughput > 0
