"""Shared fixtures for the benchmark harness.

The expensive simulation matrices are computed once per session and shared
by the per-figure benchmarks.  Workload subsets and epoch counts are
reduced relative to the full experiment API (`repro.experiments`) to keep
``pytest benchmarks/ --benchmark-only`` in the minutes range; every
workload family (latency server, K/V churn, static arrays) stays
represented.  Formatted tables are written to ``benchmarks/results/``.

The matrix fixtures run through the shared executor
(:mod:`repro.exec`): set ``REPRO_WORKERS`` to fan cells across processes,
and a session-wide result cache under ``benchmarks/.result_cache``
deduplicates cells shared between fixtures and serves unchanged cells
instantly on repeat runs (the cache key includes a code-version tag, so
simulator edits invalidate it).  Set ``REPRO_CACHE_DIR`` to relocate the
cache, or ``REPRO_CACHE_DIR=""`` to disable it.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import clean_slate, collocation, fig02_microbench, fig03_motivation
from repro.experiments import breakdown as breakdown_mod
from repro.experiments import reused_vm as reused_mod

#: Session-wide result cache for the matrix fixtures (overridable, and
#: disabled entirely with REPRO_CACHE_DIR="").
os.environ.setdefault(
    "REPRO_CACHE_DIR", str(pathlib.Path(__file__).parent / ".result_cache")
)

#: Representative subset of Table 2 used by the benches (one per family).
BENCH_SUITE = [
    "Img-dnn",
    "Specjbb",
    "Masstree",
    "Redis",
    "RocksDB",
    "Canneal",
    "CG.D",
    "SVM",
]
BENCH_LATENCY = ["Img-dnn", "Specjbb", "Masstree", "Redis", "RocksDB"]
BENCH_EPOCHS = 12

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def clean_fragmented():
    return clean_slate.run_clean_slate(
        fragmented=True, workloads=BENCH_SUITE, epochs=BENCH_EPOCHS
    )


@pytest.fixture(scope="session")
def clean_unfragmented():
    return clean_slate.run_clean_slate(
        fragmented=False, workloads=BENCH_SUITE, epochs=BENCH_EPOCHS
    )


@pytest.fixture(scope="session")
def reused_results():
    return reused_mod.run_reused_vm(
        workloads=["Redis", "RocksDB", "Masstree", "Specjbb", "SVM"],
        epochs=BENCH_EPOCHS,
    )


@pytest.fixture(scope="session")
def motivation_results():
    return fig03_motivation.run_fig03(epochs=BENCH_EPOCHS)


@pytest.fixture(scope="session")
def breakdown_results():
    return breakdown_mod.run_breakdown(
        workloads=["Redis", "RocksDB", "CG.D", "SVM"], epochs=BENCH_EPOCHS
    )


@pytest.fixture(scope="session")
def collocation_results():
    return collocation.run_collocation(
        pairs=[("Masstree", "Shore"), ("CG.D", "SP.D")], epochs=10
    )


@pytest.fixture(scope="session")
def fig02_points():
    return fig02_microbench.run_fig02(sizes=[1.0, 4.0, 16.0, 64.0], epochs=5)


def average(table: dict[str, dict[str, float]], system: str) -> float:
    """Mean of one system's column across workloads."""
    values = [row[system] for row in table.values() if system in row]
    return sum(values) / len(values) if values else 0.0
