"""Benchmark: Figure 9 — clean-slate mean latencies."""

from conftest import BENCH_LATENCY, average, write_result

from repro.experiments.clean_slate import fig09_mean_latency
from repro.experiments.common import format_table


def test_fig09_mean_latency(benchmark, clean_fragmented):
    table = benchmark.pedantic(
        lambda: fig09_mean_latency(clean_fragmented), rounds=1, iterations=1
    )
    write_result(
        "fig09_mean_latency",
        format_table(table, "Figure 9: mean latency vs Host-B-VM-B"),
    )
    assert set(table) == set(BENCH_LATENCY)
    # Gemini cuts mean latency the most (paper: 57% reduction on average
    # vs Host-B-VM-B; baselines around 24%).
    gemini = average(table, "Gemini")
    assert gemini < 0.85
    for system in table[next(iter(table))]:
        assert gemini <= average(table, system) + 1e-9, system
