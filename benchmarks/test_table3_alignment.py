"""Benchmark: Table 3 — clean-slate rates of well-aligned huge pages."""

from conftest import average, write_result

from repro.experiments.clean_slate import table3_alignment
from repro.experiments.common import format_table


def test_table3_alignment(benchmark, clean_fragmented):
    table = benchmark.pedantic(
        lambda: table3_alignment(clean_fragmented), rounds=1, iterations=1
    )
    write_result(
        "table3_alignment",
        format_table(table, "Table 3: well-aligned huge page rates", fmt="{:.0%}"),
    )
    # Gemini forms the largest rate of well-aligned huge pages (paper:
    # 50-81%, 66% on average; baselines up to ~46%).  Per-workload, a
    # small tolerance absorbs simulator noise on the static workloads.
    for workload, row in table.items():
        gemini = row["Gemini"]
        assert gemini >= 0.5, f"{workload}: {gemini:.0%}"
        for system, value in row.items():
            if system != "Gemini":
                assert gemini >= value - 0.05, f"{workload}/{system}"
    gemini_avg = average(table, "Gemini")
    assert gemini_avg >= 0.6
    for system in table[next(iter(table))]:
        if system != "Gemini":
            assert gemini_avg > average(table, system), system
    # Translation-Ranger's constant migration keeps its rate the lowest of
    # the coalescing systems on average.
    ranger = average(table, "Translation-Ranger")
    assert ranger <= average(table, "Ingens")
    assert ranger <= average(table, "HawkEye")
