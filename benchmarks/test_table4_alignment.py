"""Benchmark: Table 4 — reused-VM rates of well-aligned huge pages, plus
the huge-bucket reuse statistic of Section 6.3."""

from conftest import average, write_result

from repro.experiments.common import format_table
from repro.experiments.reused_vm import bucket_reuse_rates, table4_alignment


def test_table4_alignment(benchmark, reused_results):
    table = benchmark.pedantic(
        lambda: table4_alignment(reused_results), rounds=1, iterations=1
    )
    write_result(
        "table4_alignment",
        format_table(table, "Table 4: reused-VM well-aligned rates", fmt="{:.0%}"),
    )
    # Reuse raises everyone's rates vs the clean slate (Table 4 vs 3), but
    # Gemini still leads on every workload (paper: 75-99%).
    for workload, row in table.items():
        gemini = row["Gemini"]
        assert gemini >= 0.6, f"{workload}: {gemini:.0%}"
        for system, value in row.items():
            if system != "Gemini":
                assert gemini >= value, f"{workload}/{system}"
    assert average(table, "Gemini") >= 0.7


def test_bucket_reuse_rate(benchmark, reused_results):
    rates = benchmark.pedantic(
        lambda: bucket_reuse_rates(reused_results), rounds=1, iterations=1
    )
    lines = ["Gemini huge-bucket reuse rates (Section 6.3):"]
    lines += [f"  {w}: {v:.0%}" for w, v in rates.items()]
    write_result("bucket_reuse", "\n".join(lines))
    # The bucket recycles the majority of freed well-aligned huge pages
    # (the paper reports 88% on average).
    assert rates, "no Gemini bucket statistics collected"
    avg = sum(rates.values()) / len(rates)
    assert avg > 0.5
