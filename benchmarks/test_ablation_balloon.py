"""Benchmark: ballooning interplay (Section 8 future-work extension).

Runs a workload in a VM whose balloon periodically inflates under host
memory pressure, comparing naive victim selection with Gemini's
alignment-aware rule (only mis-aligned / idle huge pages may be demoted).
"""

from conftest import write_result

from repro.hypervisor.balloon import BalloonDriver
from repro.mem.layout import PAGES_PER_HUGE
from repro.sim import Simulation, SimulationConfig
from repro.sim.results import RunResult
from repro.workloads import make_workload


def run_with_balloon(alignment_aware: bool):
    config = SimulationConfig(epochs=12, fragment_guest=0.3, fragment_host=0.3)
    sim = Simulation(make_workload("Masstree"), system="Gemini", config=config)
    vm = sim._vms[0]
    balloon = BalloonDriver(sim.platform, vm, alignment_aware=alignment_aware)

    # Drive the run epoch by epoch, inflating/deflating between epochs.
    results = [RunResult(system="Gemini", workload="Masstree")]
    for epoch in range(config.epochs):
        sim._epoch(epoch, results)
        if epoch % 3 == 1:
            balloon.inflate(2 * PAGES_PER_HUGE)
        if epoch % 3 == 2:
            balloon.deflate()
    return results[0], balloon


def test_ablation_balloon(benchmark):
    def run_both():
        return run_with_balloon(True), run_with_balloon(False)

    (aware, aware_balloon), (naive, naive_balloon) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    lines = [
        "Ballooning interplay (Masstree under Gemini, periodic inflation):",
        f"  alignment-aware: thr={aware.throughput:.3e} "
        f"aligned={aware.well_aligned_rate:.0%} "
        f"aligned huge pages demoted={aware_balloon.demoted_aligned_huge_pages}",
        f"  naive:           thr={naive.throughput:.3e} "
        f"aligned={naive.well_aligned_rate:.0%} "
        f"aligned huge pages demoted={naive_balloon.demoted_aligned_huge_pages}",
    ]
    write_result("ablation_balloon", "\n".join(lines))
    # The alignment-aware rule demotes no more well-aligned huge pages
    # than the naive policy and performs at least as well.
    assert (
        aware_balloon.demoted_aligned_huge_pages
        <= naive_balloon.demoted_aligned_huge_pages
    )
    assert aware.throughput >= 0.95 * naive.throughput
