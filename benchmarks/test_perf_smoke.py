"""Perf smoke test: batched fault hot path and executor/cache matrix.

Times the two optimisations this repository's performance work rests on
and records the numbers in ``BENCH_perf.json`` at the repository root so
the bench trajectory is populated from run to run:

* **Single cell** — one fragmented 8-epoch Redis/Gemini simulation, the
  profile workload for the fault hot path.  Run batched
  (``Platform.touch_range`` -> ``MemoryLayer.fault_range`` -> buddy range
  claims) and per-page (``batch_faults=False``), plus compared against
  the recorded pre-optimisation baseline of the same cell (per-page
  faulting with linear free-list scans, measured before the region index
  and batch path landed).
* **Scan-heavy cell** — a long (many-epoch, low-churn) fragmented
  SVM/Gemini run whose epochs re-touch a large mapped footprint and
  re-derive per-epoch translation state, the profile workload for the
  incremental translation-state index.  Run with the index
  (``incremental_index=True``) and with the reference rescan path.
* **Kernels** — the profile-guided hot-path kernels
  (``fast_kernels``): bitset frame scans, quiescent-epoch replay
  skipping, memoized TLB evaluation and incremental consolidation
  scoring.  Both the fleet cell and the scan-heavy cell run with the
  kernels and with the per-frame reference loops; results must be
  bit-identical, and a pair of traced fleet runs receipts the span-level
  claim — the ``host.workloads`` + ``gemini.host`` hot path that PR 7's
  telemetry flagged must shed at least 40% of its self time (measured
  ~58% on the profiling box).
* **Matrix** — a 6-cell workload x system matrix, serial and cold versus
  4 workers with a warm result cache, the configuration experiment
  sweeps actually run in.  Small batches must not regress against serial
  (the pool falls back to serial below ``MIN_PARALLEL_CELLS``).
* **Fleet** — an 8-host x 12-epoch cluster simulation, serial versus
  4 workers on the sticky-state actor pool (hosts live on their worker
  for the whole run).  Two measurements: wall clock with the default
  adaptive pool (which must never lose to serial — it retracts to the
  in-process path when the cores are not there), and controller IPC
  bytes per epoch under the legacy per-event blocking protocol versus
  the fused protocol (one batched round-trip per worker per epoch,
  bitmask view deltas, spooled records, peer-pipe migration payloads).
  Results must be identical in every mode; the fused protocol must cut
  controller traffic by >= 5x.
* **Telemetry** — the cost of ``repro.obs``: disabled helpers priced per
  call (the estimated drag on an uninstrumented fleet run must stay
  under 3%), and one fully-traced serial fleet run that must match the
  plain run's results bit-for-bit, cover every host in the merged event
  log, and finish within 1.5x.  The Chrome trace and event log land in
  ``BENCH_trace.json`` / ``BENCH_events.jsonl`` for CI artifact upload.

The assertions are deliberately machine-independent where possible
(batched must not lose to per-page; the index must be >= 2x on the
scan-heavy cell; a warm cache must be >= 3x) and use the recorded
baseline only where the win is large enough (>= 6x here) to absorb slow
CI hardware.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import replace

from repro import obs
from repro.cluster import ClusterConfig, ClusterSimulation
from repro.cluster.config import ChurnConfig
from repro.exec import Cell, ResultCache, run_cells
from repro.obs.bench import append_history
from repro.obs.export import chrome_trace, events_to_jsonl
from repro.pressure import PressureConfig
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_workload
from repro.workloads.suite import make_workload

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_perf.json"

#: The paper's fragmented-memory setting; the profiling configuration the
#: batched fault path was built against.
SINGLE = SimulationConfig(epochs=8, fragment_guest=0.8, fragment_host=0.8)

#: Wall-clock of the identical Redis/Gemini cell measured on this
#: codebase immediately before the batched fault path and the buddy
#: region index landed (per-page touch + linear free-region scans).
PRE_OPT_SINGLE_CELL_SECONDS = 1.98

#: Scan-heavy: a static-array workload whose epochs re-touch the whole
#: mapped footprint, run long enough that per-epoch scan work dominates
#: the one-time setup faults.  This is where the incremental index pays:
#: the reference path re-walks both page tables every epoch.
SCAN_HEAVY = SimulationConfig(epochs=144, fragment_guest=0.8, fragment_host=0.8)

MATRIX_CONFIG = SimulationConfig(epochs=6, fragment_guest=0.8, fragment_host=0.8)
MATRIX_WORKLOADS = ["Redis", "SVM"]
MATRIX_SYSTEMS = ["Host-B-VM-B", "THP", "Gemini"]

#: The fleet cell: enough hosts that per-host stepping dominates the
#: controller's (serial) placement/consolidation work.
FLEET_CONFIG = ClusterConfig(hosts=8, host_mib=768, epochs=12, seed=42)
FLEET_WORKERS = 4

#: The overcommit cell: two squeezed Gemini hosts admitting 2.5x their
#: memory, so the whole run sits below the pressure watermark and the
#: escalation ladder (balloon, KSM, swap) carries the load.  Small on
#: purpose — the cell receipts swap traffic and the Section 8 victim
#: rule's alignment savings, not wall-clock.
OVERCOMMIT_FLEET = ClusterConfig(
    hosts=2,
    host_mib=80,
    epochs=6,
    seed=7,
    system="Gemini",
    overcommit_ratio=2.5,
    placement_headroom=1.0,
    churn=ChurnConfig(
        initial_vms=10,
        arrivals_per_epoch=0.5,
        departure_rate=0.03,
        max_vms=16,
        guest_mib_choices=(48, 64),
        workload_pool=("Shore", "SP.D", "Sphinx", "Moses"),
    ),
    pressure=PressureConfig(enabled=True),
)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_perf_smoke(tmp_path):
    # --- single cell: batched vs per-page reference path -----------------
    batched, batched_s = _timed(
        lambda: run_workload(make_workload("Redis"), "Gemini", config=SINGLE)
    )
    per_page, per_page_s = _timed(
        lambda: run_workload(
            make_workload("Redis"), "Gemini",
            config=replace(SINGLE, batch_faults=False),
        )
    )
    assert batched == per_page, "batched fault path diverged from per-page"

    # --- scan-heavy cell: incremental index vs reference rescans ---------
    indexed, indexed_s = _timed(
        lambda: run_workload(make_workload("SVM"), "Gemini", config=SCAN_HEAVY)
    )
    rescan, rescan_s = _timed(
        lambda: run_workload(
            make_workload("SVM"), "Gemini",
            config=replace(SCAN_HEAVY, incremental_index=False),
        )
    )
    assert indexed == rescan, "incremental index diverged from reference"

    # --- scan-heavy cell: fast kernels vs per-frame reference loops ------
    scan_kernels_ref, scan_kernels_ref_s = _timed(
        lambda: run_workload(
            make_workload("SVM"), "Gemini",
            config=replace(SCAN_HEAVY, fast_kernels=False),
        )
    )
    assert scan_kernels_ref == indexed, "fast kernels diverged from reference"

    # --- matrix: serial cold vs 4 workers + warm cache -------------------
    cells = [
        Cell(w, s, MATRIX_CONFIG)
        for w in MATRIX_WORKLOADS
        for s in MATRIX_SYSTEMS
    ]
    # Both cold legs write a fresh cache, so serial vs parallel isolates
    # the executor (pool startup vs serial fallback), not cache stores.
    serial, serial_s = _timed(
        lambda: run_cells(cells, workers=1, cache=ResultCache(tmp_path / "serial"))
    )

    cache_dir = tmp_path / "cache"
    _, cold_s = _timed(
        lambda: run_cells(cells, workers=4, cache=ResultCache(cache_dir))
    )
    warm_cache = ResultCache(cache_dir)
    warm, warm_s = _timed(lambda: run_cells(cells, workers=4, cache=warm_cache))
    assert warm == serial, "cached results diverged from serial execution"
    assert warm_cache.stats.hits == len(cells)

    # --- fleet: serial vs adaptive parallel wall clock -------------------
    fleet_serial, fleet_serial_s = _timed(
        lambda: ClusterSimulation(FLEET_CONFIG).run(workers=1)
    )
    adaptive_sim = ClusterSimulation(FLEET_CONFIG)
    fleet_parallel, fleet_parallel_s = _timed(
        lambda: adaptive_sim.run(workers=FLEET_WORKERS)
    )
    assert fleet_serial == fleet_parallel, "parallel fleet diverged from serial"

    # --- fleet: fast kernels vs per-frame reference loops ----------------
    fleet_kernels_ref, fleet_kernels_ref_s = _timed(
        lambda: ClusterSimulation(
            replace(FLEET_CONFIG, fast_kernels=False)
        ).run(workers=1)
    )
    assert fleet_kernels_ref == fleet_serial, (
        "fast kernels diverged from reference on the fleet"
    )

    # --- fleet: controller IPC, legacy per-event vs fused protocol -------
    # Force the pool on (adaptive off) so the wire actually carries the
    # epochs; the counters are zero when fork is unavailable and the pool
    # fell back to the in-process path.
    legacy_sim = ClusterSimulation(
        replace(
            FLEET_CONFIG,
            fused_epochs=False,
            view_deltas=False,
            wire_compression=False,
            adaptive_parallel=False,
        )
    )
    fleet_legacy = legacy_sim.run(workers=FLEET_WORKERS)
    fused_sim = ClusterSimulation(replace(FLEET_CONFIG, adaptive_parallel=False))
    fleet_fused = fused_sim.run(workers=FLEET_WORKERS)
    assert fleet_legacy == fleet_serial, "legacy protocol diverged from serial"
    assert fleet_fused == fleet_serial, "fused protocol diverged from serial"
    legacy_ipc = legacy_sim.ipc_bytes_per_epoch
    fused_ipc = fused_sim.ipc_bytes_per_epoch

    # --- telemetry: disabled cost and enabled overhead -------------------
    # Disabled helpers are one global check and out; price them per call
    # so the "off by default costs nothing" claim is measured, not
    # asserted by fiat.
    assert not obs.enabled()
    loops = 200_000

    def _disabled_loop():
        for _ in range(loops):
            with obs.span("bench"):
                pass
            obs.emit("bench")

    _, disabled_loop_s = _timed(_disabled_loop)
    disabled_call_s = disabled_loop_s / (2 * loops)

    try:
        telemetry = obs.enable(obs.Telemetry())
        fleet_traced, fleet_traced_s = _timed(
            lambda: ClusterSimulation(FLEET_CONFIG).run(workers=1)
        )
        events = telemetry.events()
        spans = telemetry.span_stats()
        obs_stats = telemetry.stats()
        trace = chrome_trace(telemetry)
        events_jsonl = events_to_jsonl(events)
    finally:
        obs.disable()
        obs.clear_context()
    assert fleet_traced == fleet_serial, "telemetry changed fleet results"
    # The merged event log covers every host plus the controller.
    hosts_seen = {event.host for event in events}
    assert set(range(FLEET_CONFIG.hosts)) <= hosts_seen
    assert None in hosts_seen

    # A second traced run on the reference loops receipts the span-level
    # kernel claim: where did the wall clock actually go.  The hot path
    # PR 7's profile flagged is workload replay self time plus the whole
    # gemini.host subtree (its former self time now lives in the
    # gemini.host.scan/promote child spans, so the subtree total is the
    # comparable quantity).  Span self times are the most
    # noise-sensitive numbers in this file, so a pair that lands under
    # the floor is re-measured once before it can fail the run.
    def _traced_spans(config):
        try:
            telemetry_run = obs.enable(obs.Telemetry())
            traced_result = ClusterSimulation(config).run(workers=1)
            return traced_result, telemetry_run.span_stats()
        finally:
            obs.disable()
            obs.clear_context()

    def _hot_self(span_stats):
        return (
            span_stats["host.workloads"]["self_s"]
            + span_stats["gemini.host"]["total_s"]
        )

    spans_fast = spans
    for attempt in range(2):
        fleet_traced_ref, spans_ref = _traced_spans(
            replace(FLEET_CONFIG, fast_kernels=False)
        )
        assert fleet_traced_ref == fleet_serial, "telemetry changed fleet results"
        hot_fast, hot_ref = _hot_self(spans_fast), _hot_self(spans_ref)
        hot_path_reduction = 1.0 - hot_fast / hot_ref
        if hot_path_reduction >= 0.40 or attempt:
            break
        fleet_traced_retry, spans_fast = _traced_spans(FLEET_CONFIG)
        assert fleet_traced_retry == fleet_serial

    # --- overcommit fleet: pressure ladder cost and alignment savings ----
    # The same squeezed trace per victim policy; serial vs parallel must
    # stay bit-identical with the whole ladder (balloon, KSM, swap) on.
    pressure_results = {}
    pressure_seconds = {}
    for policy in ("lru-cold", "alignment-aware"):
        policy_config = replace(
            OVERCOMMIT_FLEET,
            pressure=replace(OVERCOMMIT_FLEET.pressure, victim_policy=policy),
        )
        pressure_results[policy], pressure_seconds[policy] = _timed(
            lambda cfg=policy_config: ClusterSimulation(cfg).run(workers=1)
        )
    aware_fleet = pressure_results["alignment-aware"]
    lru_fleet = pressure_results["lru-cold"]
    pressure_parallel = ClusterSimulation(
        replace(OVERCOMMIT_FLEET, adaptive_parallel=False)
    ).run(workers=2)
    assert pressure_parallel == ClusterSimulation(
        replace(OVERCOMMIT_FLEET, adaptive_parallel=False)
    ).run(workers=1), "pressured fleet diverged across worker counts"

    # What the instrumentation costs the tier-1 suite with telemetry
    # off: the emissions this run made, priced at the disabled rate.
    obs_calls = obs_stats["events_emitted"] + 2 * obs_stats["spans_closed"]
    disabled_fraction = obs_calls * disabled_call_s / fleet_serial_s

    # CI uploads these next to BENCH_perf.json as perf-smoke artifacts.
    (BENCH_JSON.parent / "BENCH_trace.json").write_text(json.dumps(trace))
    (BENCH_JSON.parent / "BENCH_events.jsonl").write_text(events_jsonl)

    single_speedup = PRE_OPT_SINGLE_CELL_SECONDS / batched_s
    matrix_speedup = serial_s / warm_s
    cores = os.cpu_count() or 1
    # Honesty gate for the fleet parallel claim: the adaptive pool may
    # retract to the serial path (too few cores, fork unavailable), and
    # then "parallel beats serial" is not a claim this box can test.
    parallel_engaged = adaptive_sim.ipc_bytes_per_epoch > 0
    if not parallel_engaged:
        parallel_assertion = "skipped (adaptive gate retracted to serial)"
    elif cores < FLEET_WORKERS:
        parallel_assertion = f"skipped (only {cores} cores for {FLEET_WORKERS} workers)"
    else:
        parallel_assertion = "enforced"
    report = {
        "single_cell": {
            "workload": "Redis",
            "system": "Gemini",
            "epochs": SINGLE.epochs,
            "batched_seconds": round(batched_s, 4),
            "per_page_seconds": round(per_page_s, 4),
            "speedup_vs_per_page": round(per_page_s / batched_s, 2),
            "pre_opt_baseline_seconds": PRE_OPT_SINGLE_CELL_SECONDS,
            "speedup_vs_pre_opt_baseline": round(single_speedup, 2),
        },
        "scan_heavy_cell": {
            "workload": "SVM",
            "system": "Gemini",
            "epochs": SCAN_HEAVY.epochs,
            "indexed_seconds": round(indexed_s, 4),
            "rescan_seconds": round(rescan_s, 4),
            "speedup_vs_rescan": round(rescan_s / indexed_s, 2),
        },
        "matrix": {
            "cells": len(cells),
            "workloads": MATRIX_WORKLOADS,
            "systems": MATRIX_SYSTEMS,
            "epochs": MATRIX_CONFIG.epochs,
            "serial_cold_seconds": round(serial_s, 4),
            "serial_cells_per_sec": round(len(cells) / serial_s, 2),
            "parallel_cold_seconds": round(cold_s, 4),
            "warm_cache_seconds": round(warm_s, 4),
            "warm_cells_per_sec": round(len(cells) / warm_s, 2),
            "workers": 4,
            "speedup_warm_vs_serial": round(matrix_speedup, 2),
        },
        "fleet": {
            "hosts": FLEET_CONFIG.hosts,
            "epochs": FLEET_CONFIG.epochs,
            "host_mib": FLEET_CONFIG.host_mib,
            "serial_seconds": round(fleet_serial_s, 4),
            "parallel_seconds": round(fleet_parallel_s, 4),
            "workers": FLEET_WORKERS,
            "cores": cores,
            "speedup_parallel_vs_serial": round(
                fleet_serial_s / fleet_parallel_s, 2
            ),
            "parallel_mode": "parallel" if parallel_engaged else "serial-fallback",
            "parallel_speedup_assertion": parallel_assertion,
            "ipc_bytes_per_epoch_legacy": round(legacy_ipc, 1),
            "ipc_bytes_per_epoch_fused": round(fused_ipc, 1),
            "ipc_reduction_factor": round(
                legacy_ipc / fused_ipc if fused_ipc > 0 else 0.0, 1
            ),
            "ipc_peer_bytes_fused": fused_sim.ipc_peer_bytes,
            "migrations": fleet_serial.migration_count,
            "fleet_fmfi": round(fleet_serial.fleet_fmfi, 4),
        },
        "kernels": {
            "fleet": {
                "hosts": FLEET_CONFIG.hosts,
                "epochs": FLEET_CONFIG.epochs,
                "fast_seconds": round(fleet_serial_s, 4),
                "reference_seconds": round(fleet_kernels_ref_s, 4),
                "speedup": round(fleet_kernels_ref_s / fleet_serial_s, 2),
            },
            "scan_heavy_cell": {
                "workload": "SVM",
                "system": "Gemini",
                "epochs": SCAN_HEAVY.epochs,
                "fast_seconds": round(indexed_s, 4),
                "reference_seconds": round(scan_kernels_ref_s, 4),
                "speedup": round(scan_kernels_ref_s / indexed_s, 2),
            },
            "span_self_time": {
                "host_workloads_self_reference_s": round(
                    spans_ref["host.workloads"]["self_s"], 4
                ),
                "host_workloads_self_fast_s": round(
                    spans_fast["host.workloads"]["self_s"], 4
                ),
                "gemini_host_total_reference_s": round(
                    spans_ref["gemini.host"]["total_s"], 4
                ),
                "gemini_host_total_fast_s": round(
                    spans_fast["gemini.host"]["total_s"], 4
                ),
                "combined_reference_s": round(hot_ref, 4),
                "combined_fast_s": round(hot_fast, 4),
                "reduction": round(hot_path_reduction, 3),
            },
        },
        "overcommit_fleet": {
            "hosts": OVERCOMMIT_FLEET.hosts,
            "host_mib": OVERCOMMIT_FLEET.host_mib,
            "epochs": OVERCOMMIT_FLEET.epochs,
            "overcommit_ratio": OVERCOMMIT_FLEET.overcommit_ratio,
            "seconds": {
                policy: round(seconds, 4)
                for policy, seconds in pressure_seconds.items()
            },
            "swap_out_pages": {
                policy: result.fleet_swap_out_pages
                for policy, result in pressure_results.items()
            },
            "swap_in_pages": {
                policy: result.fleet_swap_in_pages
                for policy, result in pressure_results.items()
            },
            "swapped_pages": {
                policy: result.fleet_swapped_pages
                for policy, result in pressure_results.items()
            },
            "aligned_huge_retained": {
                policy: result.fleet_aligned_huge
                for policy, result in pressure_results.items()
            },
            "aligned_demotions": {
                policy: result.fleet_pressure_aligned_demotions
                for policy, result in pressure_results.items()
            },
            "aligned_pages_saved_by_victim_rule": (
                aware_fleet.fleet_aligned_huge - lru_fleet.fleet_aligned_huge
            ),
        },
        "telemetry": {
            "disabled_call_ns": round(disabled_call_s * 1e9, 1),
            "disabled_overhead_fraction": round(disabled_fraction, 5),
            "traced_fleet_seconds": round(fleet_traced_s, 4),
            "traced_vs_plain": round(fleet_traced_s / fleet_serial_s, 2),
            "events_emitted": obs_stats["events_emitted"],
            "events_buffered": obs_stats["events_buffered"],
            "spans_closed": obs_stats["spans_closed"],
            "spans": spans,
            "spans_reference_kernels": spans_ref,
        },
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    append_history(
        report,
        BENCH_JSON.parent / "BENCH_history.jsonl",
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        rev=os.environ.get("GITHUB_SHA"),
    )

    # Machine-independent: batching strictly removes per-page Python work.
    assert batched_s <= per_page_s * 1.10
    # >= 2x single-cell win over the recorded pre-optimisation baseline
    # (measured ~6.6x on the profiling box; slack for slower CI runners).
    assert single_speedup >= 2.0
    # >= 2x on the scan-heavy cell: the index replaces per-epoch rescans
    # and re-touch translate work (measured ~2.9x on the profiling box).
    assert rescan_s / indexed_s >= 2.0
    # A 6-cell batch is below MIN_PARALLEL_CELLS, so the cold "parallel"
    # run must take the serial path instead of paying ~1 s pool startup.
    assert cold_s <= serial_s * 1.25
    # >= 3x matrix win with 4 workers and a warm cache: serving six
    # simulations from the cache is milliseconds against seconds.
    assert matrix_speedup >= 3.0
    # The fused protocol must collapse controller traffic: one batched
    # round-trip per worker per epoch against the legacy path's
    # O(events + hosts) blocking calls (measured ~1000x on the default
    # consolidating config, where migration payloads move to peer pipes).
    # Zero fused bytes means fork is unavailable and both runs degraded
    # to the in-process pool — nothing to compare.
    if fused_ipc > 0:
        assert legacy_ipc / fused_ipc >= 5.0
    # Parallel per-host stepping must beat serial where the pool really
    # engaged and the cores exist to overlap it; when the adaptive gate
    # retracted (or the cores are not there) the claim is untestable on
    # this box — note it in the JSON and only require staying within
    # noise of serial.
    if parallel_assertion == "enforced":
        assert fleet_parallel_s < fleet_serial_s
    else:
        # Retracted pool: two serial runs of the same fleet, compared
        # under whatever load made the gate retract — allow real noise.
        assert fleet_parallel_s <= fleet_serial_s * 1.25
    # The fast kernels replace the three telemetry-identified per-frame
    # hot paths; >= 1.5x on the fleet cell and >= 1.2x on the scan-heavy
    # cell (measured ~2.3x / ~1.8x on the profiling box).
    assert fleet_kernels_ref_s / fleet_serial_s >= 1.5
    assert scan_kernels_ref_s / indexed_s >= 1.2
    # The span receipt: the flagged host.workloads + gemini.host hot
    # path must shed >= 40% of its self time (measured ~58%).
    assert hot_path_reduction >= 0.40
    # The child spans that attribute the remaining time must be present
    # in the trace (they feed the format_top_spans job summary).
    for name in ("gemini.host.scan", "gemini.host.promote", "consolidate.score"):
        assert name in spans, f"missing child span {name}"
    if fleet_serial.migration_count:
        assert "consolidate.evict" in spans
    # Telemetry off must be free: the instrumentation this fleet run
    # would emit, priced at the measured disabled per-call cost, has to
    # stay under 3% of the run's wall clock.
    assert disabled_fraction < 0.03
    # Telemetry on is allowed to cost something, but collecting a full
    # fleet trace must stay within 1.5x of the plain run.
    assert fleet_traced_s <= fleet_serial_s * 1.5
    # The overcommit cell must really run under pressure, and the paper's
    # Section 8 victim rule must pay: strictly more well-aligned huge
    # pages survive than under pure working-set eviction, at similar
    # swap traffic (both runs chase the same watermark deficit).
    assert lru_fleet.fleet_swap_out_pages > 0
    assert lru_fleet.fleet_pressure_aligned_demotions > 0
    assert aware_fleet.fleet_aligned_huge > lru_fleet.fleet_aligned_huge
    assert (
        aware_fleet.fleet_pressure_aligned_demotions
        < lru_fleet.fleet_pressure_aligned_demotions
    )
