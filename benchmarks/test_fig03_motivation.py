"""Benchmark: Figure 3 / Table 1 — the huge page misalignment problem
(motivation study: 4 workloads x 8 systems, fragmented memory)."""

from conftest import average, write_result

from repro.experiments.fig03_motivation import format_fig03, table1_alignment
from repro.experiments.common import normalize


def test_fig03_and_table1(benchmark, motivation_results):
    results = motivation_results
    text = benchmark.pedantic(lambda: format_fig03(results), rounds=1, iterations=1)
    write_result("fig03_table1_motivation", text)

    throughput = normalize(results, "throughput")
    alignment = table1_alignment(results)

    # Gemini achieves the highest well-aligned rate (Table 1: >= 50%
    # everywhere, above every baseline on average; a small per-workload
    # tolerance absorbs simulator noise).
    for workload, row in alignment.items():
        gemini = row["Gemini"]
        assert gemini >= 0.5, f"{workload}: Gemini aligned only {gemini:.0%}"
        for system, value in row.items():
            if system != "Gemini":
                assert gemini >= value - 0.05, f"{workload}: {system} out-aligned Gemini"
    gemini_avg = average(alignment, "Gemini")
    for system in alignment[next(iter(alignment))]:
        if system != "Gemini":
            assert gemini_avg > average(alignment, system), system

    # Performance: Gemini beats Ingens and HawkEye on average (Section 2.3
    # reports >20% higher throughput).
    gemini_avg = average(throughput, "Gemini")
    assert gemini_avg > average(throughput, "Ingens")
    assert gemini_avg > average(throughput, "HawkEye")
    # Misaligned huge pages improve performance only incrementally.
    assert average(throughput, "Misalignment") < 1.3
