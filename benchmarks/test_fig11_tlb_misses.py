"""Benchmark: Figure 11 — clean-slate TLB misses, normalised to Gemini."""

from conftest import average, write_result

from repro.experiments.clean_slate import fig11_tlb_misses
from repro.experiments.common import format_table


def test_fig11_tlb_misses(benchmark, clean_fragmented):
    table = benchmark.pedantic(
        lambda: fig11_tlb_misses(clean_fragmented), rounds=1, iterations=1
    )
    write_result(
        "fig11_tlb_misses",
        format_table(table, "Figure 11: TLB misses (normalised to Gemini)", fmt="{:.1f}"),
    )
    # Every other system suffers substantially more TLB misses than Gemini
    # (the paper reports 2.39x on average across the suite).
    for system in ("Host-B-VM-B", "Misalignment", "THP", "Ingens", "HawkEye"):
        assert average(table, system) > 1.5, system
    # The base-page systems miss the most.
    assert average(table, "Host-B-VM-B") >= average(table, "Ingens")
