"""Benchmark: Figure 8 — clean-slate throughput, fragmented and
unfragmented memory."""

from conftest import average, write_result

from repro.experiments.clean_slate import fig08_throughput
from repro.experiments.common import format_table


def test_fig08_fragmented(benchmark, clean_fragmented):
    table = benchmark.pedantic(
        lambda: fig08_throughput(clean_fragmented), rounds=1, iterations=1
    )
    write_result(
        "fig08_throughput_fragmented",
        format_table(table, "Figure 8 (fragmented): throughput vs Host-B-VM-B"),
    )
    gemini = average(table, "Gemini")
    # Gemini delivers the best average throughput, well above baseline...
    assert gemini > 1.2
    for system in table[next(iter(table))]:
        if system not in ("Gemini",):
            assert gemini >= average(table, system), system
    # ...and Translation-Ranger is the weakest huge-page system (the paper
    # measures it below the base-page baseline on average).
    ranger = average(table, "Translation-Ranger")
    for system in ("THP", "Ingens", "HawkEye", "Gemini"):
        assert ranger <= average(table, system) + 0.05, system


def test_fig08_unfragmented(benchmark, clean_unfragmented):
    table = benchmark.pedantic(
        lambda: fig08_throughput(clean_unfragmented), rounds=1, iterations=1
    )
    write_result(
        "fig08_throughput_unfragmented",
        format_table(table, "Figure 8 (unfragmented): throughput vs Host-B-VM-B"),
    )
    gemini = average(table, "Gemini")
    assert gemini > 1.3
    for system in table[next(iter(table))]:
        assert gemini >= average(table, system), system
