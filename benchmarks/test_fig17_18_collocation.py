"""Benchmark: Figures 17-18 — applicability and overhead with collocated
VMs (TLB-sensitive paired with non-TLB-sensitive)."""

from conftest import write_result

from repro.experiments.collocation import (
    fig17_throughput,
    fig18_mean_latency,
    format_collocation,
    gemini_overhead,
)


def test_fig17_18_collocation(benchmark, collocation_results):
    def analyse():
        return (
            fig17_throughput(collocation_results),
            fig18_mean_latency(collocation_results),
        )

    throughput, latency = benchmark.pedantic(analyse, rounds=1, iterations=1)
    write_result("fig17_18_collocation", format_collocation(collocation_results))

    # Gemini performs best on the TLB-sensitive halves of each pair.
    for key, row in throughput.items():
        workload = key.split("/")[-1]
        if workload in ("Shore", "SP.D"):
            continue
        gemini = row["Gemini"]
        for system, value in row.items():
            assert gemini >= value - 0.05, f"{key}/{system}"

    # On non-TLB-sensitive workloads Gemini's overhead is negligible
    # (paper: performance change within a few percent).
    for key, delta in gemini_overhead(collocation_results).items():
        assert abs(delta) < 0.10, f"{key}: {delta:+.1%}"
