"""Benchmark: Figure 2 — misaligned huge pages cannot reduce translation
overhead (random-access microbenchmark under four static configurations)."""

from conftest import write_result

from repro.experiments.fig02_microbench import format_fig02


def test_fig02_microbench(benchmark, fig02_points):
    points = fig02_points
    table = benchmark.pedantic(
        lambda: format_fig02(points), rounds=1, iterations=1
    )
    write_result("fig02_microbench", table)

    by_key = {(p.dataset_mib, p.system): p for p in points}
    small, large = 1.0, 64.0
    # Small data sets: all four configurations perform alike.
    small_values = [by_key[(small, s)].throughput for s in
                    ("Host-B-VM-B", "Host-H-VM-H", "Host-B-VM-H", "Host-H-VM-B")]
    assert max(small_values) / min(small_values) < 1.1
    # Large data sets: only well-aligned huge pages cut misses...
    aligned = by_key[(large, "Host-H-VM-H")]
    base = by_key[(large, "Host-B-VM-B")]
    assert aligned.miss_rate < 0.05
    assert base.miss_rate > 0.5
    assert aligned.throughput > 1.5 * base.throughput
    # ...while the misaligned configurations splinter: same miss rate as
    # base pages, only the cheaper walk helps a little.
    for system in ("Host-B-VM-H", "Host-H-VM-B"):
        misaligned = by_key[(large, system)]
        assert abs(misaligned.miss_rate - base.miss_rate) < 0.02
        assert base.throughput < misaligned.throughput < 1.4 * base.throughput
