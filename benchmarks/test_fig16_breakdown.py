"""Benchmark: Figure 16 — Gemini performance breakdown (EMA/HB vs huge
bucket ablations)."""

from conftest import write_result

from repro.experiments.breakdown import contributions, format_breakdown


def test_fig16_breakdown(benchmark, breakdown_results):
    table = benchmark.pedantic(
        lambda: contributions(breakdown_results), rounds=1, iterations=1
    )
    write_result("fig16_breakdown", format_breakdown(breakdown_results))

    # Both mechanisms contribute on every workload; EMA/HB dominates on
    # average (the paper reports a 66%/34% split), and especially for the
    # allocate-once static workloads (CG.D, SVM).
    ema_shares = [row["EMA/HB"] for row in table.values()]
    assert all(0.0 < share < 1.0 for share in ema_shares)
    avg_ema = sum(ema_shares) / len(ema_shares)
    assert avg_ema > 0.5
    for static in ("CG.D", "SVM"):
        if static in table:
            assert table[static]["EMA/HB"] >= avg_ema - 0.15
    # Each ablated variant must not beat full Gemini (sanity of ablation).
    for workload, row in breakdown_results.items():
        full = row["Gemini"].throughput
        assert row["EMA/HB only"].throughput <= full * 1.15
        assert row["Bucket only"].throughput <= full * 1.1
