"""Benchmark: Figures 12-14 — throughput and latencies in a reused VM."""

from conftest import average, write_result

from repro.experiments.common import format_table
from repro.experiments.reused_vm import (
    fig12_throughput,
    fig13_mean_latency,
    fig14_tail_latency,
)


def test_fig12_throughput(benchmark, reused_results):
    table = benchmark.pedantic(
        lambda: fig12_throughput(reused_results), rounds=1, iterations=1
    )
    write_result(
        "fig12_reused_throughput",
        format_table(table, "Figure 12: reused-VM throughput vs Host-B-VM-B"),
    )
    gemini = average(table, "Gemini")
    assert gemini > 1.2
    for system in table[next(iter(table))]:
        assert gemini >= average(table, system), system
    # Translation-Ranger remains the worst huge-page system.
    ranger = average(table, "Translation-Ranger")
    assert ranger <= min(
        average(table, s) for s in ("Ingens", "HawkEye", "Gemini")
    )


def test_fig13_fig14_latencies(benchmark, reused_results):
    def both():
        return fig13_mean_latency(reused_results), fig14_tail_latency(reused_results)

    mean_table, tail_table = benchmark.pedantic(both, rounds=1, iterations=1)
    write_result(
        "fig13_reused_mean_latency",
        format_table(mean_table, "Figure 13: reused-VM mean latency vs Host-B-VM-B"),
    )
    write_result(
        "fig14_reused_tail_latency",
        format_table(tail_table, "Figure 14: reused-VM p99 latency vs Host-B-VM-B"),
    )
    # Gemini reduces both mean and tail latency vs the baseline and at
    # least matches every other system on average.
    assert average(mean_table, "Gemini") < 0.9
    assert average(tail_table, "Gemini") < 0.95
    for system in mean_table[next(iter(mean_table))]:
        assert average(mean_table, "Gemini") <= average(mean_table, system) + 1e-9
