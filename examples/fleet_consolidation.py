#!/usr/bin/env python3
"""Scenario: a fleet of aging hosts — does placement policy matter?

The paper's Section 6.3 lifecycle model, scaled out: a cluster of hosts
with a fragmentation age gradient (host 0 has served tenants the longest,
the last host is freshly racked) runs a seeded stream of VM arrivals,
resizes, consolidation-driven live migrations and departures.  The same
churn is replayed once per placement policy:

* ``first-fit`` packs the oldest, most fragmented hosts first and
  collocates tenants on the same per-host coalescing budgets;
* ``alignment-aware`` reads each host's aligned-free buddy summary and
  translation-index misalignment reports, spreading tenants where
  well-aligned huge-page backing is actually attainable.

The hosts run THP, where the placement gap is widest (its slow,
budget-capped promotion cannot repair a bad landing); rerun with
``--system Gemini`` to watch fast coalescing shrink the gap.

Usage::

    python examples/fleet_consolidation.py [--system SYSTEM]
"""

import argparse
import os
from dataclasses import replace

from repro import ClusterConfig, run_cluster
from repro.metrics.report import format_fleet_summary

#: CI smoke mode (REPRO_SMOKE=1): shrink the run so every example is fast.
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--system", default="THP",
                        help="coalescing policy on every host (default THP)")
    args = parser.parse_args()

    config = ClusterConfig(
        hosts=4 if SMOKE else 8,
        host_mib=768,
        epochs=5 if SMOKE else 16,
        seed=42,
        system=args.system,
        fragment_host=0.9,
    )

    for placement in ("first-fit", "alignment-aware"):
        result = run_cluster(replace(config, placement=placement))
        print(format_fleet_summary(result))
        print()

    print("first-fit lands tenants by index: the aged, fragmented hosts")
    print("fill up first.  alignment-aware spreads coalescing contention")
    print("and follows the aligned free contiguity instead.")


if __name__ == "__main__":
    main()
