#!/usr/bin/env python3
"""Scenario: VM reuse — the lifecycle the paper studies in Section 6.3.

Cloud VMs are long-lived and run workload after workload.  Freed guest
memory is *not* returned to the host, so the EPT keeps whatever huge pages
the previous tenant formed.  This example runs an AI training job (the SVM
model with a large working set) to completion inside a VM, then starts a
web-search workload (Xapian) in the same VM, and compares systems:

* baselines let small allocations splinter the inherited well-aligned huge
  pages;
* Gemini's huge bucket holds them intact and hands them to the new
  workload wholesale.

Usage::

    python examples/vm_reuse_lifecycle.py
"""

import os

from repro import Simulation, SimulationConfig, make_workload

#: CI smoke mode (REPRO_SMOKE=1): shrink the run so every example is fast.
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def run(system: str, reused: bool):
    config = SimulationConfig(
        epochs=4 if SMOKE else 16, fragment_guest=0.3, fragment_host=0.3
    )
    primer = make_workload("SVM") if reused else None
    return Simulation(
        make_workload("Xapian"), system=system, config=config, primer=primer
    ).run_single()


def main() -> None:
    systems = ["Host-B-VM-B", "THP", "Ingens", "HawkEye", "Gemini"]

    print("Xapian in a clean-slate VM vs. a VM that just ran a 'training job'")
    print()
    header = (
        f"{'system':<12s} {'clean thr':>10s} {'reused thr':>11s} "
        f"{'clean aligned':>14s} {'reused aligned':>15s}"
    )
    print(header)
    print("-" * len(header))

    base_clean = base_reused = None
    for system in systems:
        clean = run(system, reused=False)
        reused = run(system, reused=True)
        if base_clean is None:
            base_clean, base_reused = clean, reused
        print(
            f"{system:<12s} "
            f"{clean.throughput / base_clean.throughput:>9.2f}x "
            f"{reused.throughput / base_reused.throughput:>10.2f}x "
            f"{clean.well_aligned_rate:>13.0%} "
            f"{reused.well_aligned_rate:>14.0%}"
        )
        if system == "Gemini" and reused.gemini_stats:
            reuse_rate = reused.gemini_stats.get("bucket_reuse_rate", 0.0)
            print(f"{'':12s} (huge bucket recycled {reuse_rate:.0%} of the "
                  "well-aligned pages the training job freed)")

    print()
    print("Reading: the inherited memory state is a hazard — the previous")
    print("tenant's well-aligned huge pages get splintered by the new")
    print("workload's small allocations (the baselines' aligned rates drop")
    print("sharply).  Gemini's huge bucket holds the freed aligned pages")
    print("together and re-issues them whole, so it degrades the least and")
    print("keeps the best throughput (the paper's Section 6.3).")


if __name__ == "__main__":
    main()
