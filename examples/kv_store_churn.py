#!/usr/bin/env python3
"""Scenario: a key-value store with heavy allocation churn.

The paper's introduction motivates Gemini with cloud K/V stores (Redis,
RocksDB, Memcached): they grow large heaps gradually, continuously free and
reallocate temporary structures, and are latency-sensitive.  This example
follows one such workload epoch by epoch under every evaluated system and
shows how the *rate of well-aligned huge pages* evolves — the paper's core
diagnostic (Tables 1/3) — alongside p99 latency.

Usage::

    python examples/kv_store_churn.py
"""

import os

from repro import PAPER_SYSTEMS, Simulation, SimulationConfig, make_workload

#: CI smoke mode (REPRO_SMOKE=1): shrink the run so every example is fast.
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main() -> None:
    config = SimulationConfig(
        epochs=6 if SMOKE else 18, fragment_guest=0.6, fragment_host=0.6
    )

    print("Key-value store under churn: alignment rate per epoch")
    print()
    runs = {}
    for system in PAPER_SYSTEMS:
        result = Simulation(
            make_workload("Memcached"), system=system, config=config
        ).run_single()
        runs[system] = result

    epochs = range(0, config.epochs, 3)
    header = f"{'system':<20s}" + "".join(f"  ep{e:<4d}" for e in epochs) + "  p99 vs base"
    print(header)
    print("-" * len(header))
    baseline = runs["Host-B-VM-B"]
    for system, result in runs.items():
        cells = []
        for epoch in epochs:
            record = result.epochs[epoch]
            rate = record.alignment.well_aligned_rate
            cells.append(f"  {rate:>5.0%}")
        p99 = result.p99_latency / baseline.p99_latency
        print(f"{system:<20s}" + "".join(cells) + f"  {p99:>8.2f}x")

    print()
    gemini = runs["Gemini"]
    stats = gemini.gemini_stats
    print("Gemini component activity over the run:")
    print(f"  bookings taken:        {stats['bookings']:.0f}")
    print(f"  bucket pages offered:  {stats['bucket_offered']:.0f}")
    print(f"  bucket pages reused:   {stats['bucket_reused']:.0f} "
          f"({stats['bucket_reuse_rate']:.0%})")
    print(f"  targeted promotions:   {stats['promotions']:.0f}")
    print(f"  pre-allocated pages:   {stats['preallocated_pages']:.0f}")


if __name__ == "__main__":
    main()
