#!/usr/bin/env python3
"""Scenario: consolidated cloud server — two VMs, two NUMA nodes.

The applicability study of Section 6.5: a TLB-sensitive in-memory store is
collocated with a non-TLB-sensitive on-disk database on the same host.
Two questions:

1. does Gemini still win for the TLB-sensitive tenant under contention?
2. does it cost the tenant that has nothing to gain anything?

Usage::

    python examples/cloud_consolidation.py
"""

import os

from repro import Simulation, SimulationConfig, make_workload

#: CI smoke mode (REPRO_SMOKE=1): shrink the run so every example is fast.
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main() -> None:
    config = SimulationConfig(
        epochs=4 if SMOKE else 16,
        host_mib=1024,
        guest_mib=256,
        nodes=2,
        fragment_guest=0.5,
        fragment_host=0.5,
    )
    pair = ("Masstree", "Shore")
    systems = ["Host-B-VM-B", "THP", "Ingens", "HawkEye", "Gemini"]

    print(f"Collocated VMs: {pair[0]} (TLB-sensitive) + {pair[1]} (not)")
    print()
    header = (
        f"{'system':<12s} {pair[0] + ' thr':>14s} {pair[0] + ' p99':>14s} "
        f"{pair[1] + ' thr':>12s}"
    )
    print(header)
    print("-" * len(header))

    baselines = None
    for system in systems:
        workloads = [make_workload(pair[0]), make_workload(pair[1])]
        sensitive, insensitive = Simulation(
            workloads, system=system, config=config
        ).run()
        if baselines is None:
            baselines = (sensitive, insensitive)
        print(
            f"{system:<12s} "
            f"{sensitive.throughput / baselines[0].throughput:>13.2f}x "
            f"{sensitive.p99_latency / baselines[0].p99_latency:>13.2f}x "
            f"{insensitive.throughput / baselines[1].throughput:>11.3f}x"
        )

    print()
    print(f"Reading: {pair[0]} gains from every huge-page system and most")
    print(f"from Gemini; {pair[1]}'s column stays within a few percent of 1.0")
    print("under Gemini — the cross-layer machinery idles when address")
    print("translation is not the bottleneck (negligible overhead).")


if __name__ == "__main__":
    main()
