#!/usr/bin/env python3
"""Quickstart: compare Gemini against Linux THP on one workload.

Runs the Redis workload model in a VM with fragmented memory (the common
state of multi-tenant clouds) under three systems and prints the metrics
the paper is built around: throughput, latency, TLB misses, and the rate
of well-aligned huge pages.

Usage::

    python examples/quickstart.py [workload]
"""

import os
import sys

from repro import Simulation, SimulationConfig, make_workload

#: CI smoke mode (REPRO_SMOKE=1): shrink the run so every example is fast.
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "Redis"
    config = SimulationConfig(
        epochs=4 if SMOKE else 16,
        fragment_guest=0.8,   # the fragmenter drives both layers to a
        fragment_host=0.8,    # high FMFI before the workload starts
    )

    print(f"Workload: {workload_name}  (guest {config.guest_mib} MiB, "
          f"host {config.host_mib} MiB, FMFI {config.fragment_guest})")
    print()
    header = (
        f"{'system':<14s} {'throughput':>10s} {'mean lat':>9s} {'p99 lat':>9s} "
        f"{'TLB misses':>11s} {'aligned':>8s} {'huge pages':>10s}"
    )
    print(header)
    print("-" * len(header))

    baseline = None
    for system in ("Host-B-VM-B", "THP", "Gemini"):
        result = Simulation(
            make_workload(workload_name), system=system, config=config
        ).run_single()
        if baseline is None:
            baseline = result
        print(
            f"{system:<14s} "
            f"{result.throughput / baseline.throughput:>9.2f}x "
            f"{result.mean_latency / baseline.mean_latency:>8.2f}x "
            f"{result.p99_latency / baseline.p99_latency:>8.2f}x "
            f"{result.tlb_misses:>11.2e} "
            f"{result.well_aligned_rate:>7.0%} "
            f"{result.huge_pages:>10.0f}"
        )

    print()
    print("Reading: THP forms huge pages at both layers, but uncoordinated --")
    print("most end up mis-aligned and cannot be cached in the TLB.  Gemini")
    print("aligns the layers (booking + EMA + bucket + promoter), cutting TLB")
    print("misses and both latency percentiles.")


if __name__ == "__main__":
    main()
