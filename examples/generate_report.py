#!/usr/bin/env python3
"""Scenario: generate a shareable evaluation report.

Runs a compact clean-slate matrix and emits, into ``report_out/``:

* ``summary.md`` — Markdown tables (throughput, alignment) ready for a
  README or PR description;
* ``results.csv`` — the flat per-(workload, system) metrics for
  spreadsheets;
* ``gemini_redis_timeline.csv`` — one run's per-epoch time series
  (throughput, misses, alignment, FMFI) for plotting.

Usage::

    python examples/generate_report.py [output_dir]
"""

import os
import pathlib
import sys

from repro.experiments.clean_slate import run_clean_slate, table3_alignment
from repro.experiments.common import normalize
from repro.metrics.report import matrix_to_markdown, series_to_csv, write_csv

#: CI smoke mode (REPRO_SMOKE=1): shrink the run so every example is fast.
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "report_out")
    out_dir.mkdir(exist_ok=True)

    workloads = ["Redis"] if SMOKE else ["Masstree", "Redis", "SVM"]
    systems = ["Host-B-VM-B", "THP", "Ingens", "HawkEye", "Gemini"]
    print(f"Running {len(workloads)}x{len(systems)} fragmented clean-slate matrix...")
    results = run_clean_slate(
        workloads=workloads, systems=systems, epochs=3 if SMOKE else 12
    )

    summary = "\n\n".join(
        [
            matrix_to_markdown(
                normalize(results, "throughput"),
                "Throughput (normalised to Host-B-VM-B)",
            ),
            matrix_to_markdown(
                table3_alignment(results),
                "Well-aligned huge page rates",
                fmt="{:.0%}",
            ),
            matrix_to_markdown(
                normalize(results, "tlb_misses", baseline="Gemini"),
                "TLB misses (normalised to Gemini)",
                fmt="{:.1f}",
            ),
        ]
    )
    (out_dir / "summary.md").write_text(summary + "\n")
    write_csv(results, str(out_dir / "results.csv"))
    (out_dir / "gemini_redis_timeline.csv").write_text(
        series_to_csv(results["Redis"]["Gemini"])
    )

    print(f"Wrote {out_dir}/summary.md, results.csv, gemini_redis_timeline.csv")
    print()
    print(summary)


if __name__ == "__main__":
    main()
