#!/usr/bin/env python3
"""Scenario: an overcommitted Gemini fleet under memory pressure.

Three small hosts admit 2.5x their physical memory in commitments; the
tenants fault their working sets in and the hosts spend most epochs below
the free-memory watermark, reclaiming through the full escalation ladder
(balloon, KSM, swap).  The question is the paper's Section 8 rule: when
the swap rung must demote huge pages, does alignment-aware victim
selection actually preserve the well-aligned huge pages Gemini spent
faults building — and what does that cost in swap traffic?

The same churn and pressure trace runs under both victim policies:

* ``lru-cold``    — evict purely by working-set coldness;
* ``alignment-aware`` — base pages and misaligned huge pages first,
  well-aligned ones last (paper Section 8).

Usage::

    python examples/overcommit_pressure.py
"""

import os
from dataclasses import replace

from repro.cluster import run_cluster
from repro.experiments.overcommit import (
    OVERCOMMIT_CONFIG,
    format_overcommit,
    run_overcommit,
)

#: CI smoke mode (REPRO_SMOKE=1): shrink the run so every example is fast.
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main() -> None:
    config = OVERCOMMIT_CONFIG
    print(
        f"Overcommitted fleet: {config.hosts} hosts x {config.host_mib} MiB, "
        f"{config.overcommit_ratio:.1f}x committed, system={config.system}"
    )
    print()

    # One annotated run first: watch the ladder engage.
    if SMOKE:
        config = replace(config, epochs=3)
    result = run_cluster(config)
    final_epoch = max(record.epoch for record in result.host_epochs)
    print("Per-host pressure after the last epoch:")
    for record in sorted(result.host_epochs, key=lambda r: r.host):
        if record.epoch != final_epoch:
            continue
        print(
            f"  host{record.host}: pressure={record.pressure:4.2f} "
            f"swapped={record.swapped_pages:6d} pages "
            f"(out {record.swap_out_pages}, in {record.swap_in_pages}) "
            f"demoted={record.pressure_demotions} huge "
            f"({record.pressure_aligned_demotions} well-aligned)"
        )
    print()

    # The victim-policy contrast on identical traces, clean + aged hosts.
    results = run_overcommit(epochs=3 if SMOKE else None)
    print(format_overcommit(results))
    print()
    aware = results["alignment-aware (clean)"]
    lru = results["lru-cold (clean)"]
    saved = aware.fleet_aligned_huge - lru.fleet_aligned_huge
    print(
        f"alignment-aware kept {saved} more well-aligned huge pages alive "
        f"on clean hosts ({aware.fleet_aligned_huge} vs "
        f"{lru.fleet_aligned_huge}) while destroying "
        f"{aware.fleet_pressure_aligned_demotions} vs "
        f"{lru.fleet_pressure_aligned_demotions}."
    )


if __name__ == "__main__":
    main()
