#!/usr/bin/env python3
"""Scenario: a microscope on the misalignment mechanism itself.

Reproduces Figure 2 interactively: a random-access microbenchmark sweeps
its data-set size under the four static page-size configurations, printing
normalised performance and TLB miss rates, then drills into one large
configuration to show the translation-unit accounting (how many TLB
entries each configuration needs for the same data).

Usage::

    python examples/alignment_microscope.py
"""

import os

from repro.experiments.fig02_microbench import FIG2_SYSTEMS, format_fig02, run_fig02
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.sim import Simulation, SimulationConfig
from repro.workloads.microbench import RandomAccessMicrobench

#: CI smoke mode (REPRO_SMOKE=1): shrink the run so every example is fast.
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main() -> None:
    sizes = [1.0, 16.0] if SMOKE else [1.0, 4.0, 16.0, 64.0]
    points = run_fig02(sizes=sizes, epochs=3 if SMOKE else 5)
    print(format_fig02(points))
    print()

    # Drill-down: translation units needed for a 64 MiB data set.
    print("Why (64 MiB data set):")
    config = SimulationConfig(epochs=3, noise_rate=0.0)
    for system in FIG2_SYSTEMS:
        sim = Simulation(RandomAccessMicrobench(64.0), system=system, config=config)
        sim.run_single()
        vm = sim._vms[0]
        guest = vm.guest.table(PROCESS)
        ept = sim.platform.ept(vm.id)
        aligned = sum(1 for _, gp in guest.huge_mappings() if ept.is_huge(gp))
        # Entries a TLB would need: one per aligned huge region, one per
        # base page otherwise.
        entries = aligned + (guest.mapped_pages - aligned * PAGES_PER_HUGE)
        print(
            f"  {system:<12s} guest huge={guest.huge_count:4d} "
            f"host huge={ept.huge_count:4d} aligned={aligned:4d} "
            f"-> TLB entries needed ~{entries}"
        )
    print()
    print("One well-aligned huge page covers 512 base translations with a")
    print("single TLB entry; a mis-aligned one still needs all 512.")


if __name__ == "__main__":
    main()
