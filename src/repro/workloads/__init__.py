"""Workload models: the interface, generic families, the Table 2 suite,
and the Figure 2 microbenchmark."""

from repro.workloads.base import AccessPhase, Workload, WorkloadContext
from repro.workloads.families import DynamicChurnWorkload, StaticArrayWorkload
from repro.workloads.microbench import RandomAccessMicrobench
from repro.workloads.suite import (
    LATENCY_SUITE,
    MOTIVATION_SUITE,
    NON_TLB_SENSITIVE,
    TLB_SENSITIVE_SUITE,
    make_workload,
    workload_names,
)

__all__ = [
    "AccessPhase",
    "DynamicChurnWorkload",
    "LATENCY_SUITE",
    "MOTIVATION_SUITE",
    "NON_TLB_SENSITIVE",
    "RandomAccessMicrobench",
    "StaticArrayWorkload",
    "TLB_SENSITIVE_SUITE",
    "Workload",
    "WorkloadContext",
    "make_workload",
    "workload_names",
]
