"""Workload model interface.

Trace-level reproduction of the paper's applications is impossible (no
binaries, no 30 GiB working sets), so each application in Table 2 is
modelled by its *memory behaviour* as the paper characterises it:
footprint, allocation dynamics (large static arrays vs. gradually-grown
dynamic structures with churn), access skew, latency reporting, and TLB
sensitivity.  A workload acts on its VM through a
:class:`WorkloadContext` (mmap / touch / munmap) and describes each
epoch's accesses with :class:`AccessPhase` records that the engine turns
into TLB-model segments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.mem.layout import MIB, PAGE_SIZE
from repro.os.vma import VMA

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.platform import Platform
    from repro.hypervisor.vm import VM

__all__ = ["AccessPhase", "WorkloadContext", "Workload"]


@dataclass(frozen=True)
class AccessPhase:
    """One epoch's accesses to one VMA.

    *weight* is the share of the epoch's accesses going to this VMA;
    *hot_fraction* concentrates them on a prefix of the VMA (a simple skew
    model: `hot_fraction=0.2` means the accesses spread over the first 20%
    of the VMA's pages).
    """

    vma: str
    weight: float = 1.0
    hot_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"negative access weight: {self.weight}")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction out of (0, 1]: {self.hot_fraction}")


class WorkloadContext:
    """The memory API a workload drives its VM through."""

    def __init__(self, platform: "Platform", vm: "VM", seed: int = 0) -> None:
        self.platform = platform
        self.vm = vm
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def mmap(self, name: str, npages: int) -> VMA:
        return self.vm.mmap(npages, name)

    def mmap_mib(self, name: str, mib: float) -> VMA:
        return self.mmap(name, max(1, int(mib * MIB / PAGE_SIZE)))

    def munmap(self, name: str) -> None:
        self.vm.munmap(name)

    def has(self, name: str) -> bool:
        return name in self.vm.address_space

    def vma(self, name: str) -> VMA:
        return self.vm.address_space.vma(name)

    def vma_names(self) -> list[str]:
        return [vma.name for vma in self.vm.address_space.vmas()]

    # ------------------------------------------------------------------
    # Touching (demand faulting)
    # ------------------------------------------------------------------

    def touch(self, name: str, start: int = 0, npages: int | None = None) -> None:
        """First-touch a slice of the named VMA (offsets VMA-relative)."""
        vma = self.vma(name)
        self.platform.touch_vma(self.vm, vma, start=start, npages=npages)

    def touch_all(self, name: str) -> None:
        self.touch(name)


class Workload:
    """Base class for application models.

    Subclasses override :meth:`setup`, :meth:`run_epoch` and
    :meth:`access_phases`.  Class attributes describe the performance-model
    characteristics:

    * ``tlb_sensitivity`` — the fraction of baseline runtime spent on
      address translation; the performance model derives the per-access
      compute cost from it (lower sensitivity => translation matters less);
    * ``reports_latency`` — whether the application reports request
      latencies (TailBench-style servers do, PARSEC/NPB jobs do not);
    * ``zero_page_dedup_rate`` — copy-on-write faults per operation when
      running under a policy that deduplicates zero pages (HawkEye);
    * ``dirty_fraction`` — the share of the resident set written per
      pre-copy round; live migration's round count derives from it (a
      write-heavy workload re-dirties more pages between copy rounds).
    """

    name = "workload"
    description = ""
    tlb_sensitivity = 0.35
    reports_latency = False
    zero_page_dedup_rate = 0.0
    accesses_per_epoch = 2_000_000.0
    ops_per_epoch = 20_000.0
    default_epochs = 16
    footprint_mib = 64.0
    dirty_fraction = 0.2

    def setup(self, ctx: WorkloadContext) -> None:
        """Initial allocations, before the first epoch."""

    def run_epoch(self, ctx: WorkloadContext, epoch: int) -> None:
        """Allocation/free/touch activity of one epoch."""

    def access_phases(self, epoch: int) -> list[AccessPhase]:
        """Where this epoch's accesses go."""
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
