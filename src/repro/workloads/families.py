"""Generic workload families.

Two memory-behaviour archetypes cover the paper's application suite
(Section 6.2 explains the split):

* :class:`StaticArrayWorkload` — "allocate large memory regions with
  static arrays and use them uniformly" (SVM, CG.D, 429.mcf, PARSEC
  kernels): a few big VMAs faulted in up front, dense uniform access,
  no churn.
* :class:`DynamicChurnWorkload` — "allocate large memory gradually and
  use dynamic data structures to save temporary data" (Redis, RocksDB,
  the TailBench servers): the footprint grows segment by segment, old
  segments are freed and replaced continuously, and accesses skew to a
  hot subset.
"""

from __future__ import annotations

from repro.mem.layout import MIB, PAGE_SIZE
from repro.workloads.base import AccessPhase, Workload, WorkloadContext

__all__ = ["StaticArrayWorkload", "DynamicChurnWorkload"]


def _mib_to_pages(mib: float) -> int:
    return max(1, int(mib * MIB / PAGE_SIZE))


class StaticArrayWorkload(Workload):
    """Big static arrays, faulted up front, accessed uniformly."""

    #: Read-mostly dense scans: little of the resident set is re-dirtied
    #: between pre-copy rounds, so such VMs migrate in few rounds.
    dirty_fraction = 0.05

    def __init__(
        self,
        name: str,
        footprint_mib: float = 64.0,
        arrays: int = 2,
        hot_fraction: float = 1.0,
        tlb_sensitivity: float = 0.35,
        reports_latency: bool = False,
        description: str = "",
    ) -> None:
        self.name = name
        self.description = description
        self.footprint_mib = footprint_mib
        self.arrays = arrays
        self.hot_fraction = hot_fraction
        self.tlb_sensitivity = tlb_sensitivity
        self.reports_latency = reports_latency

    def setup(self, ctx: WorkloadContext) -> None:
        pages_per_array = _mib_to_pages(self.footprint_mib) // self.arrays
        for index in range(self.arrays):
            name = f"array{index}"
            ctx.mmap(name, pages_per_array)
            ctx.touch_all(name)

    def access_phases(self, epoch: int) -> list[AccessPhase]:
        share = 1.0 / self.arrays
        return [
            AccessPhase(f"array{i}", weight=share, hot_fraction=self.hot_fraction)
            for i in range(self.arrays)
        ]


class DynamicChurnWorkload(Workload):
    """Gradually-grown footprint with continuous free/reallocate churn."""

    #: Store-heavy dynamic structures keep re-dirtying their hot set, so
    #: pre-copy converges slowly and migration costs more.
    dirty_fraction = 0.35

    def __init__(
        self,
        name: str,
        footprint_mib: float = 64.0,
        segments: int = 16,
        grow_epochs: int = 8,
        churn_segments: int = 1,
        hot_fraction: float = 0.35,
        hot_recency_bias: float = 3.0,
        tlb_sensitivity: float = 0.35,
        reports_latency: bool = True,
        zero_page_dedup_rate: float = 0.0,
        description: str = "",
    ) -> None:
        if segments <= 0 or grow_epochs <= 0:
            raise ValueError("segments and grow_epochs must be positive")
        self.name = name
        self.description = description
        self.footprint_mib = footprint_mib
        self.segments = segments
        self.grow_epochs = grow_epochs
        self.churn_segments = churn_segments
        self.hot_fraction = hot_fraction
        self.hot_recency_bias = hot_recency_bias
        self.tlb_sensitivity = tlb_sensitivity
        self.reports_latency = reports_latency
        self.zero_page_dedup_rate = zero_page_dedup_rate
        self._segment_pages = _mib_to_pages(footprint_mib) // segments
        self._live: list[str] = []
        self._next_id = 0

    # ------------------------------------------------------------------

    def _allocate_segment(self, ctx: WorkloadContext) -> None:
        name = f"seg{self._next_id}"
        self._next_id += 1
        ctx.mmap(name, self._segment_pages)
        ctx.touch_all(name)
        self._live.append(name)

    def setup(self, ctx: WorkloadContext) -> None:
        self._live = []
        self._next_id = 0
        per_epoch = max(1, self.segments // self.grow_epochs)
        for _ in range(per_epoch):
            self._allocate_segment(ctx)

    def run_epoch(self, ctx: WorkloadContext, epoch: int) -> None:
        per_epoch = max(1, self.segments // self.grow_epochs)
        # Growth phase: keep allocating until the footprint is reached.
        if len(self._live) < self.segments:
            for _ in range(per_epoch):
                if len(self._live) >= self.segments:
                    break
                self._allocate_segment(ctx)
            return
        # Steady state: churn — free random old segments, allocate fresh
        # replacements (temporary data of dynamic structures).
        for _ in range(self.churn_segments):
            victim_index = ctx.rng.randrange(len(self._live))
            victim = self._live.pop(victim_index)
            ctx.munmap(victim)
            self._allocate_segment(ctx)

    def access_phases(self, epoch: int) -> list[AccessPhase]:
        if not self._live:
            return []
        # Recency bias: newer segments are hotter (temporary data is hot).
        weights = [
            self.hot_recency_bias ** (index / max(1, len(self._live) - 1))
            for index in range(len(self._live))
        ]
        total = sum(weights)
        return [
            AccessPhase(name, weight=w / total, hot_fraction=self.hot_fraction)
            for name, w in zip(self._live, weights)
        ]
