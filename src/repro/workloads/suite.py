"""The paper's application suite (Table 2), as workload models.

Footprints are scaled from the paper's tens-of-GiB working sets down to
tens of MiB; the simulator's TLB capacity is scaled by the same factor
(see :mod:`repro.sim.config`), so each workload's working-set :
TLB-reach ratio stays in the paper's regime.  The per-workload behaviour
follows the paper's own characterisation:

* Redis / RocksDB / Memcached "allocate large memory (more than 10GB)
  gradually and use dynamic data structures to save temporary data"
  (Section 6.2) — large dynamic footprints, heavy churn;
* SVM / CG.D "allocate large memory regions with static arrays and use
  them uniformly" — static arrays, dense uniform access;
* Shore and NPB SP.D are the two non-TLB-sensitive applications used in
  the applicability study (Sections 6.1 and 6.5);
* Specjbb's in-use zero pages are deduplicated by HawkEye, adding CoW
  faults (Section 6.2) — modelled by ``zero_page_dedup_rate``.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.families import DynamicChurnWorkload, StaticArrayWorkload

__all__ = [
    "make_workload",
    "workload_names",
    "TLB_SENSITIVE_SUITE",
    "LATENCY_SUITE",
    "MOTIVATION_SUITE",
    "NON_TLB_SENSITIVE",
]


def _img_dnn() -> Workload:
    return DynamicChurnWorkload(
        "Img-dnn", footprint_mib=48, segments=12, churn_segments=2,
        hot_fraction=0.4, tlb_sensitivity=0.40, reports_latency=True,
        description="Handwriting recognition (OpenCV); TailBench",
    )


def _sphinx() -> Workload:
    return DynamicChurnWorkload(
        "Sphinx", footprint_mib=40, segments=10, churn_segments=1,
        hot_fraction=0.35, tlb_sensitivity=0.35, reports_latency=True,
        description="Speech recognition; TailBench",
    )


def _moses() -> Workload:
    return DynamicChurnWorkload(
        "Moses", footprint_mib=40, segments=10, churn_segments=1,
        hot_fraction=0.45, tlb_sensitivity=0.33, reports_latency=True,
        description="Statistical machine translation; TailBench",
    )


def _xapian() -> Workload:
    return DynamicChurnWorkload(
        "Xapian", footprint_mib=44, segments=22, churn_segments=3,
        hot_fraction=0.35, tlb_sensitivity=0.36, reports_latency=True,
        description="Search engine; TailBench (many small allocations)",
    )


def _masstree() -> Workload:
    return DynamicChurnWorkload(
        "Masstree", footprint_mib=64, segments=16, churn_segments=2,
        hot_fraction=0.30, tlb_sensitivity=0.45, reports_latency=True,
        description="In-memory K/V store, 50% GET / 50% PUT",
    )


def _specjbb() -> Workload:
    return DynamicChurnWorkload(
        "Specjbb", footprint_mib=64, segments=16, churn_segments=2,
        hot_fraction=0.35, tlb_sensitivity=0.45, reports_latency=True,
        zero_page_dedup_rate=0.3,
        description="Java middleware benchmark (zero-page heavy heap)",
    )


def _silo() -> Workload:
    return DynamicChurnWorkload(
        "Silo", footprint_mib=56, segments=14, churn_segments=2,
        hot_fraction=0.30, tlb_sensitivity=0.38, reports_latency=True,
        description="In-memory transactional database, TPC-C",
    )


def _shore() -> Workload:
    return DynamicChurnWorkload(
        "Shore", footprint_mib=24, segments=6, churn_segments=1,
        hot_fraction=0.5, tlb_sensitivity=0.04, reports_latency=True,
        description="On-disk transactional database (non-TLB-sensitive)",
    )


def _rocksdb() -> Workload:
    return DynamicChurnWorkload(
        "RocksDB", footprint_mib=80, segments=20, churn_segments=4,
        hot_fraction=0.30, tlb_sensitivity=0.42, reports_latency=True,
        description="LSM K/V store, random keys, 50% SET / 50% GET",
    )


def _redis() -> Workload:
    return DynamicChurnWorkload(
        "Redis", footprint_mib=80, segments=20, churn_segments=4,
        hot_fraction=0.30, tlb_sensitivity=0.40, reports_latency=True,
        description="In-memory K/V database, random keys, 50% SET / 50% GET",
    )


def _memcached() -> Workload:
    return DynamicChurnWorkload(
        "Memcached", footprint_mib=72, segments=18, churn_segments=3,
        hot_fraction=0.30, tlb_sensitivity=0.44, reports_latency=True,
        description="Slab-allocated K/V cache, random keys",
    )


def _canneal() -> Workload:
    return StaticArrayWorkload(
        "Canneal", footprint_mib=64, arrays=2, hot_fraction=0.8,
        tlb_sensitivity=0.38,
        description="PARSEC simulated annealing (pointer-chasing)",
    )


def _streamcluster() -> Workload:
    return StaticArrayWorkload(
        "Streamcluster", footprint_mib=56, arrays=2, hot_fraction=0.9,
        tlb_sensitivity=0.34,
        description="PARSEC online clustering (streaming)",
    )


def _dedup() -> Workload:
    return DynamicChurnWorkload(
        "dedup", footprint_mib=48, segments=12, churn_segments=3,
        hot_fraction=0.45, tlb_sensitivity=0.32, reports_latency=False,
        description="PARSEC pipelined compression",
    )


def _cg_d() -> Workload:
    return StaticArrayWorkload(
        "CG.D", footprint_mib=88, arrays=3, hot_fraction=1.0,
        tlb_sensitivity=0.50,
        description="NPB conjugate gradient (large static arrays, uniform)",
    )


def _sp_d() -> Workload:
    return StaticArrayWorkload(
        "SP.D", footprint_mib=24, arrays=2, hot_fraction=0.5,
        tlb_sensitivity=0.04,
        description="NPB scalar penta-diagonal (non-TLB-sensitive)",
    )


def _mcf() -> Workload:
    return StaticArrayWorkload(
        "429.mcf", footprint_mib=64, arrays=2, hot_fraction=0.9,
        tlb_sensitivity=0.46,
        description="SPEC CPU2006 network simplex (pointer-heavy)",
    )


def _svm() -> Workload:
    return StaticArrayWorkload(
        "SVM", footprint_mib=96, arrays=2, hot_fraction=1.0,
        tlb_sensitivity=0.48,
        description="Large-scale linear rankSVM (dense static arrays)",
    )


_FACTORIES = {
    "Img-dnn": _img_dnn,
    "Sphinx": _sphinx,
    "Moses": _moses,
    "Xapian": _xapian,
    "Masstree": _masstree,
    "Specjbb": _specjbb,
    "Silo": _silo,
    "Shore": _shore,
    "RocksDB": _rocksdb,
    "Redis": _redis,
    "Memcached": _memcached,
    "Canneal": _canneal,
    "Streamcluster": _streamcluster,
    "dedup": _dedup,
    "CG.D": _cg_d,
    "SP.D": _sp_d,
    "429.mcf": _mcf,
    "SVM": _svm,
}

#: The 16 TLB-sensitive workloads of Tables 3/4 and Figures 8-15.
TLB_SENSITIVE_SUITE = [
    "Img-dnn", "Sphinx", "Moses", "Xapian", "Masstree", "Specjbb", "Silo",
    "RocksDB", "Redis", "Memcached", "Canneal", "Streamcluster", "dedup",
    "CG.D", "429.mcf", "SVM",
]

#: Workloads that report request latencies (Figures 9/10/13/14).
LATENCY_SUITE = [
    "Img-dnn", "Sphinx", "Moses", "Xapian", "Masstree", "Specjbb", "Silo",
    "RocksDB", "Redis", "Memcached",
]

#: The four workloads of the motivation study (Figure 3 / Table 1).
MOTIVATION_SUITE = ["Canneal", "Streamcluster", "Img-dnn", "Specjbb"]

#: Non-TLB-sensitive applications for the applicability study (Fig. 17/18).
NON_TLB_SENSITIVE = ["Shore", "SP.D"]


def make_workload(name: str) -> Workload:
    """Instantiate a fresh workload model by its Table 2 name."""
    if name not in _FACTORIES:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown workload {name!r}; known: {known}")
    return _FACTORIES[name]()


def workload_names() -> list[str]:
    return list(_FACTORIES)
