"""The Figure 2 microbenchmark: random accesses over a data set of varying
size, under the four static page-size configurations (Host-{B,H} x VM-{B,H}).

One VMA holds the data set; every epoch accesses it uniformly at random.
Swept over data-set sizes, the expected shape (Section 2.2):

* small data sets fit the TLB in every configuration — similar performance;
* large data sets: only Host-H-VM-H (well-aligned huge pages) keeps TLB
  misses low; the two mis-aligned configurations splinter into base-page
  translations and track Host-B-VM-B, except for their slightly cheaper
  page walks.
"""

from __future__ import annotations

from repro.workloads.base import AccessPhase, Workload, WorkloadContext

__all__ = ["RandomAccessMicrobench"]


class RandomAccessMicrobench(Workload):
    """Uniform random access over one array of a configurable size."""

    reports_latency = False
    tlb_sensitivity = 0.5
    default_epochs = 6

    def __init__(self, dataset_mib: float) -> None:
        self.name = f"microbench-{dataset_mib:g}MiB"
        self.description = "random-access microbenchmark (Figure 2)"
        self.dataset_mib = dataset_mib

    def setup(self, ctx: WorkloadContext) -> None:
        ctx.mmap_mib("data", self.dataset_mib)
        ctx.touch_all("data")

    def access_phases(self, epoch: int) -> list[AccessPhase]:
        return [AccessPhase("data", weight=1.0, hot_fraction=1.0)]
