"""Figure 2: misaligned huge pages cannot reduce address translation
overhead.

A microbenchmark randomly accesses a data set of varying size inside a VM
under the four static configurations: Host-B-VM-B, Host-H-VM-H (well
aligned), Host-B-VM-H and Host-H-VM-B (mis-aligned).  Expected shape:

* small data sets: all four perform alike (everything fits the TLB);
* large data sets: Host-H-VM-H wins decisively; the two mis-aligned
  configurations splinter to 4 KiB TLB entries and barely beat
  Host-B-VM-B (their only advantage is the shorter nested walk).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.workloads.microbench import RandomAccessMicrobench

__all__ = ["FIG2_SYSTEMS", "Fig2Point", "run_fig02", "format_fig02"]

FIG2_SYSTEMS = ["Host-B-VM-B", "Host-H-VM-H", "Host-B-VM-H", "Host-H-VM-B"]

#: Data-set sizes swept (MiB).
DEFAULT_SIZES = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]


@dataclass
class Fig2Point:
    """One (size, system) measurement."""

    dataset_mib: float
    system: str
    throughput: float
    miss_rate: float


def run_fig02(
    sizes: list[float] | None = None,
    epochs: int = 6,
    seed: int = 42,
) -> list[Fig2Point]:
    """Run the sweep; returns one point per (size, system)."""
    sizes = sizes or DEFAULT_SIZES
    config = SimulationConfig(
        epochs=epochs,
        seed=seed,
        # Pristine memory and no noise: Figure 2 isolates the pure
        # alignment effect with static page-size configurations.
        noise_rate=0.0,
        fragment_guest=0.0,
        fragment_host=0.0,
    )
    points: list[Fig2Point] = []
    for size in sizes:
        for system in FIG2_SYSTEMS:
            workload = RandomAccessMicrobench(size)
            result = Simulation(workload, system=system, config=config).run_single()
            steady = result.epochs[len(result.epochs) // 2 :]
            accesses = sum(r.performance.accesses for r in steady)
            misses = sum(r.performance.tlb_misses for r in steady)
            points.append(
                Fig2Point(
                    dataset_mib=size,
                    system=system,
                    throughput=result.throughput,
                    miss_rate=misses / accesses if accesses else 0.0,
                )
            )
    return points


def format_fig02(points: list[Fig2Point]) -> str:
    """Render the sweep as normalized-performance series (like Figure 2)."""
    sizes = sorted({p.dataset_mib for p in points})
    by_key = {(p.dataset_mib, p.system): p for p in points}
    lines = ["Figure 2: random-access microbenchmark (throughput vs Host-B-VM-B)"]
    header = f"{'size':>8s}  " + "  ".join(f"{s:>12s}" for s in FIG2_SYSTEMS)
    lines.append(header)
    for size in sizes:
        base = by_key[(size, "Host-B-VM-B")].throughput
        cells = []
        for system in FIG2_SYSTEMS:
            value = by_key[(size, system)].throughput
            cells.append(f"{value / base if base else 0.0:>12.2f}")
        lines.append(f"{size:>6.0f}MB  " + "  ".join(cells))
    lines.append("")
    lines.append("TLB miss rates:")
    for size in sizes:
        cells = [
            f"{by_key[(size, system)].miss_rate:>12.3f}" for system in FIG2_SYSTEMS
        ]
        lines.append(f"{size:>6.0f}MB  " + "  ".join(cells))
    return "\n".join(lines)
