"""Clean-slate VM experiments: Figures 8-11 and Table 3 (Section 6.2).

The full TLB-sensitive suite runs in a fresh VM under all eight systems,
with and without memory fragmentation:

* Figure 8 — throughput, normalised to Host-B-VM-B;
* Figure 9 — mean latency (latency-reporting workloads);
* Figure 10 — 99th-percentile latency;
* Figure 11 — TLB misses, normalised to Gemini;
* Table 3 — rates of well-aligned huge pages (fragmented memory).
"""

from __future__ import annotations

from repro.experiments.common import (
    FRAGMENTED,
    PAPER_SYSTEMS,
    UNFRAGMENTED,
    format_table,
    normalize,
    run_matrix,
)
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.workloads.suite import LATENCY_SUITE, TLB_SENSITIVE_SUITE

__all__ = [
    "run_clean_slate",
    "fig08_throughput",
    "fig09_mean_latency",
    "fig10_tail_latency",
    "fig11_tlb_misses",
    "table3_alignment",
    "format_clean_slate",
]

#: Tables 3/4 report alignment for the coalescing systems only.
ALIGNMENT_SYSTEMS = ["THP", "CA-paging", "Translation-Ranger", "HawkEye", "Ingens", "Gemini"]


def run_clean_slate(
    fragmented: bool = True,
    workloads: list[str] | None = None,
    systems: list[str] | None = None,
    epochs: int | None = None,
    config: SimulationConfig | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Run the clean-slate matrix (suite x systems) for one memory state."""
    if config is None:
        config = FRAGMENTED if fragmented else UNFRAGMENTED
    return run_matrix(
        workloads or TLB_SENSITIVE_SUITE,
        systems=systems or PAPER_SYSTEMS,
        config=config,
        epochs=epochs,
    )


def fig08_throughput(results: dict[str, dict[str, RunResult]]) -> dict[str, dict[str, float]]:
    """Figure 8: throughput normalised to Host-B-VM-B."""
    return normalize(results, "throughput")


def _latency_rows(results: dict[str, dict[str, RunResult]]) -> dict[str, dict[str, RunResult]]:
    return {w: row for w, row in results.items() if w in LATENCY_SUITE}


def fig09_mean_latency(results: dict[str, dict[str, RunResult]]) -> dict[str, dict[str, float]]:
    """Figure 9: mean latency normalised to Host-B-VM-B (lower is better)."""
    return normalize(_latency_rows(results), "mean_latency")


def fig10_tail_latency(results: dict[str, dict[str, RunResult]]) -> dict[str, dict[str, float]]:
    """Figure 10: p99 latency normalised to Host-B-VM-B (lower is better)."""
    return normalize(_latency_rows(results), "p99_latency")


def fig11_tlb_misses(results: dict[str, dict[str, RunResult]]) -> dict[str, dict[str, float]]:
    """Figure 11: TLB misses normalised to Gemini (higher = worse)."""
    return normalize(results, "tlb_misses", baseline="Gemini")


def table3_alignment(results: dict[str, dict[str, RunResult]]) -> dict[str, dict[str, float]]:
    """Table 3: rates of well-aligned huge pages."""
    return {
        workload: {
            system: row[system].well_aligned_rate
            for system in ALIGNMENT_SYSTEMS
            if system in row
        }
        for workload, row in results.items()
    }


def format_clean_slate(results: dict[str, dict[str, RunResult]], label: str = "") -> str:
    parts = [
        format_table(fig08_throughput(results), f"Figure 8{label}: throughput (norm. to Host-B-VM-B)"),
        "",
        format_table(fig09_mean_latency(results), f"Figure 9{label}: mean latency (norm. to Host-B-VM-B)"),
        "",
        format_table(fig10_tail_latency(results), f"Figure 10{label}: p99 latency (norm. to Host-B-VM-B)"),
        "",
        format_table(fig11_tlb_misses(results), f"Figure 11{label}: TLB misses (norm. to Gemini)", fmt="{:.1f}"),
        "",
        format_table(table3_alignment(results), f"Table 3{label}: well-aligned huge page rates", fmt="{:.0%}"),
    ]
    return "\n".join(parts)
