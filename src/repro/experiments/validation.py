"""Model validation: analytic TLB capacity model vs. trace-driven TLB.

The epoch-level results rest on the analytic capacity model of
:mod:`repro.tlb.model`.  This experiment cross-checks it against the
trace-driven set-associative TLB on *actual simulator page-table states*:
a workload runs normally, then for one epoch its access phases are both

1. classified into translation segments and evaluated analytically, and
2. expanded into a concrete random access trace replayed through
   :class:`repro.tlb.cache.SetAssociativeTLB`, looking up the composed
   guest+host mapping of every access the way the hardware would.

The two miss rates should agree within a few points across systems (the
alignment structure — 1 entry per well-aligned huge region vs. 512
splintered entries — is what both must capture).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.tlb.cache import SetAssociativeTLB
from repro.workloads.suite import make_workload

__all__ = ["ValidationPoint", "run_validation", "format_validation"]


@dataclass
class ValidationPoint:
    """Analytic vs. traced miss rate for one (workload, system) pair."""

    workload: str
    system: str
    analytic_miss_rate: float
    traced_miss_rate: float

    @property
    def error(self) -> float:
        return abs(self.analytic_miss_rate - self.traced_miss_rate)


def _trace_epoch(sim: Simulation, vm, workload, accesses: int, seed: int) -> float:
    """Replay one epoch's accesses through the trace-driven TLB."""
    rng = random.Random(seed)
    tlb = SetAssociativeTLB(
        entries=sim.config.tlb.entries,
        ways=max(1, sim.config.tlb.entries // 128),
    )
    guest_table = vm.guest.table(PROCESS)
    ept = sim.platform.ept(vm.id)

    phases = workload.access_phases(sim.config.epochs - 1)
    choices: list[tuple[int, int, float]] = []  # (vpn_lo, vpn_hi, weight)
    for phase in phases:
        if phase.vma not in vm.address_space:
            continue
        vma = vm.address_space.vma(phase.vma)
        hot = max(1, int(vma.npages * phase.hot_fraction))
        choices.append((vma.start, vma.start + hot, phase.weight))
    if not choices:
        return 0.0
    weights = [c[2] for c in choices]

    warmup = accesses // 4
    for index in range(accesses + warmup):
        lo, hi, _ = rng.choices(choices, weights=weights)[0]
        vpn = rng.randrange(lo, hi)
        gpn = guest_table.translate(vpn)
        if gpn is None:
            continue
        # The hardware can cache one entry per well-aligned huge page;
        # everything else splinters to 4 KiB entries.
        aligned = guest_table.is_huge(vpn // PAGES_PER_HUGE) and ept.is_huge(
            gpn // PAGES_PER_HUGE
        )
        if index == warmup:
            tlb.reset_stats()
        tlb.access(vpn, huge=aligned)
    return tlb.stats.miss_rate


def run_validation(
    workloads: list[str] | None = None,
    systems: list[str] | None = None,
    epochs: int = 8,
    trace_accesses: int = 60_000,
    seed: int = 42,
) -> list[ValidationPoint]:
    """Cross-validate the analytic model on final simulator states."""
    workloads = workloads or ["Masstree", "SVM"]
    systems = systems or ["Host-B-VM-B", "THP", "Gemini"]
    config = SimulationConfig(epochs=epochs, seed=seed)
    points = []
    for workload_name in workloads:
        for system in systems:
            workload = make_workload(workload_name)
            sim = Simulation(workload, system=system, config=config)
            sim.run_single()
            vm = sim._vms[0]
            # Evaluate both models against the *final* page-table state
            # (the run's last recorded epoch predates the final daemon
            # pass, which would skew the comparison).
            segments = sim._build_segments(workload, vm, config.epochs - 1)
            stats = sim.tlb_model.evaluate(segments)
            analytic = stats.miss_rate
            traced = _trace_epoch(sim, vm, workload, trace_accesses, seed)
            points.append(
                ValidationPoint(
                    workload=workload_name,
                    system=system,
                    analytic_miss_rate=analytic,
                    traced_miss_rate=traced,
                )
            )
    return points


def format_validation(points: list[ValidationPoint]) -> str:
    lines = [
        "TLB model validation: analytic capacity model vs trace-driven TLB",
        f"{'workload':<12s} {'system':<14s} {'analytic':>9s} {'traced':>8s} {'error':>7s}",
    ]
    for point in points:
        lines.append(
            f"{point.workload:<12s} {point.system:<14s} "
            f"{point.analytic_miss_rate:>8.3f} {point.traced_miss_rate:>8.3f} "
            f"{point.error:>7.3f}"
        )
    worst = max(point.error for point in points) if points else 0.0
    lines.append(f"max |error| = {worst:.3f}")
    return "\n".join(lines)
