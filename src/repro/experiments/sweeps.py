"""Parameter sweeps: sensitivity of the paper's results to the environment.

Two sweeps characterise *where* the paper's effect lives:

* :func:`run_fragmentation_sweep` — FMFI from pristine to severe.  Huge
  pages get scarcer for every system; Gemini's relative lead over the best
  uncoordinated baseline persists while all absolute gains shrink.
* :func:`run_tlb_sweep` — TLB capacity from starved to ample.  With a huge
  TLB even base pages fit, translation stops mattering, and all systems
  converge to the baseline (the crossover where huge pages stop paying).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.tlb.model import TLBConfig
from repro.workloads.suite import make_workload

__all__ = [
    "SweepPoint",
    "run_fragmentation_sweep",
    "run_tlb_sweep",
    "format_sweep",
]

_BASE = SimulationConfig(epochs=12)


@dataclass
class SweepPoint:
    """One (parameter value, system) measurement, normalised in-format."""

    parameter: float
    system: str
    throughput: float
    well_aligned_rate: float


def _run_point(workload_name, system, config) -> float:
    return Simulation(make_workload(workload_name), system=system, config=config)


def run_fragmentation_sweep(
    workload_name: str = "Masstree",
    levels: list[float] | None = None,
    systems: list[str] | None = None,
    config: SimulationConfig = _BASE,
    epochs: int | None = None,
) -> list[SweepPoint]:
    """Sweep the fragmenter's FMFI target at both layers."""
    levels = levels if levels is not None else [0.0, 0.3, 0.6, 0.9]
    systems = systems or ["Host-B-VM-B", "Ingens", "Gemini"]
    if epochs is not None:
        config = replace(config, epochs=epochs)
    points = []
    for level in levels:
        level_config = replace(config, fragment_guest=level, fragment_host=level)
        for system in systems:
            result = Simulation(
                make_workload(workload_name), system=system, config=level_config
            ).run_single()
            points.append(
                SweepPoint(
                    parameter=level,
                    system=system,
                    throughput=result.throughput,
                    well_aligned_rate=result.well_aligned_rate,
                )
            )
    return points


def run_tlb_sweep(
    workload_name: str = "Masstree",
    entries: list[int] | None = None,
    systems: list[str] | None = None,
    config: SimulationConfig = _BASE,
    epochs: int | None = None,
) -> list[SweepPoint]:
    """Sweep the modelled TLB capacity."""
    entries = entries if entries is not None else [96, 384, 1536, 6144, 24576]
    systems = systems or ["Host-B-VM-B", "Ingens", "Gemini"]
    if epochs is not None:
        config = replace(config, epochs=epochs)
    points = []
    for capacity in entries:
        tlb_config = replace(
            config, tlb=TLBConfig(entries=capacity, utilization=0.85)
        )
        for system in systems:
            result = Simulation(
                make_workload(workload_name), system=system, config=tlb_config
            ).run_single()
            points.append(
                SweepPoint(
                    parameter=float(capacity),
                    system=system,
                    throughput=result.throughput,
                    well_aligned_rate=result.well_aligned_rate,
                )
            )
    return points


def format_sweep(
    points: list[SweepPoint], title: str, baseline: str = "Host-B-VM-B"
) -> str:
    """Render a sweep with throughput normalised to *baseline* per level."""
    systems = list(dict.fromkeys(point.system for point in points))
    levels = sorted({point.parameter for point in points})
    by_key = {(p.parameter, p.system): p for p in points}
    lines = [title]
    lines.append(
        f"{'param':>8s}  "
        + "  ".join(f"{s:>12s}" for s in systems)
        + "   (throughput vs baseline | aligned rate)"
    )
    for level in levels:
        base = by_key[(level, baseline)].throughput
        cells = []
        for system in systems:
            point = by_key[(level, system)]
            ratio = point.throughput / base if base else 0.0
            cells.append(f"{ratio:5.2f}/{point.well_aligned_rate:4.0%}")
        lines.append(f"{level:>8g}  " + "  ".join(f"{c:>12s}" for c in cells))
    return "\n".join(lines)
