"""Figure 16: Gemini performance breakdown (Section 6.4).

Gemini is re-run with each major mechanism ablated:

* **EMA/HB only** — the huge bucket disabled;
* **huge bucket only** — booking and the EMA disabled.

The paper reports EMA/HB contributing ~66% of Gemini's throughput and the
huge bucket ~34% on average (under fragmentation), with EMA/HB dominating
for allocate-once workloads (CG.D, SVM) and the two splitting evenly for
workloads that free and reuse memory continuously (Redis, RocksDB).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.runtime import GeminiConfig
from repro.experiments.common import FRAGMENTED, format_table
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.sim.results import RunResult
from repro.workloads.suite import TLB_SENSITIVE_SUITE, make_workload

__all__ = ["VARIANTS", "run_breakdown", "contributions", "format_breakdown"]

VARIANTS = {
    "Gemini": GeminiConfig(),
    "EMA/HB only": GeminiConfig(enable_bucket=False),
    "Bucket only": GeminiConfig(enable_ema_hb=False),
}


def run_breakdown(
    workloads: list[str] | None = None,
    config: SimulationConfig = FRAGMENTED,
    epochs: int | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Run Gemini and its two ablations; results[workload][variant]."""
    workloads = workloads or TLB_SENSITIVE_SUITE
    if epochs is not None:
        config = replace(config, epochs=epochs)
    results: dict[str, dict[str, RunResult]] = {}
    for workload_name in workloads:
        row: dict[str, RunResult] = {}
        for variant, gemini_config in VARIANTS.items():
            variant_config = replace(config, gemini=gemini_config)
            simulation = Simulation(
                make_workload(workload_name), system="Gemini", config=variant_config
            )
            row[variant] = simulation.run_single()
        # Reference for gain attribution.
        row["baseline"] = Simulation(
            make_workload(workload_name), system="Host-B-VM-B", config=config
        ).run_single()
        results[workload_name] = row
    return results


def contributions(results: dict[str, dict[str, RunResult]]) -> dict[str, dict[str, float]]:
    """Per-mechanism contribution to Gemini's throughput (Figure 16).

    Contribution of a mechanism = the throughput *gain over Host-B-VM-B*
    its single-mechanism variant retains, as a share of the two variants'
    combined gain; the "vs full" columns report each variant's absolute
    throughput relative to complete Gemini.
    """
    table: dict[str, dict[str, float]] = {}
    for workload, row in results.items():
        total = row["Gemini"].throughput
        base = row["baseline"].throughput if "baseline" in row else 0.0
        if total <= 0:
            continue
        ema_gain = max(row["EMA/HB only"].throughput - base, 0.0)
        bucket_gain = max(row["Bucket only"].throughput - base, 0.0)
        gains = ema_gain + bucket_gain
        table[workload] = {
            "EMA/HB": ema_gain / gains if gains else 0.0,
            "Huge bucket": bucket_gain / gains if gains else 0.0,
            "EMA/HB vs full": row["EMA/HB only"].throughput / total,
            "Bucket vs full": row["Bucket only"].throughput / total,
        }
    return table


def format_breakdown(results: dict[str, dict[str, RunResult]]) -> str:
    return format_table(
        contributions(results),
        "Figure 16: Gemini performance breakdown (mechanism shares)",
        fmt="{:.0%}",
    )
