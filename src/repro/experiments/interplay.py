"""Future-work interplay studies (Section 8): ballooning and KSM.

The paper's conclusion flags deduplication, ballooning and swapping as
mechanisms that may demote Gemini's huge pages under memory pressure, and
describes the current rule — only mis-aligned and infrequently used huge
pages may be demoted.  These experiments quantify the interplay:

* :func:`run_balloon_interplay` — periodic balloon inflation with naive
  vs. alignment-aware victim selection;
* :func:`run_ksm_interplay` — host-level same-page merging with
  ``break_huge`` off / on / on-but-sparing-aligned-pages, measuring the
  memory saved against the well-aligned huge pages destroyed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hypervisor.balloon import BalloonDriver
from repro.hypervisor.ksm import KsmDaemon
from repro.mem.layout import PAGES_PER_HUGE
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.sim.results import RunResult
from repro.workloads.suite import make_workload

__all__ = [
    "BalloonOutcome",
    "KsmOutcome",
    "run_balloon_interplay",
    "run_ksm_interplay",
    "format_balloon",
    "format_ksm",
]

_DEFAULT = SimulationConfig(epochs=12, fragment_guest=0.3, fragment_host=0.3)


@dataclass
class BalloonOutcome:
    variant: str
    result: RunResult
    aligned_demotions: int
    reclaimed_pages: int


def _run_with_balloon(
    workload_name: str,
    alignment_aware: bool,
    config: SimulationConfig,
    inflate_regions: int,
) -> BalloonOutcome:
    sim = Simulation(make_workload(workload_name), system="Gemini", config=config)
    vm = sim._vms[0]
    balloon = BalloonDriver(sim.platform, vm, alignment_aware=alignment_aware)
    results = [RunResult(system="Gemini", workload=workload_name)]
    reclaimed = 0
    for epoch in range(config.epochs):
        sim._epoch(epoch, results)
        if epoch % 3 == 1:
            reclaimed += balloon.inflate(inflate_regions * PAGES_PER_HUGE)
        elif epoch % 3 == 2:
            balloon.deflate()
    return BalloonOutcome(
        variant="alignment-aware" if alignment_aware else "naive",
        result=results[0],
        aligned_demotions=balloon.demoted_aligned_huge_pages,
        reclaimed_pages=reclaimed,
    )


def run_balloon_interplay(
    workload_name: str = "Masstree",
    config: SimulationConfig = _DEFAULT,
    inflate_regions: int = 2,
    epochs: int | None = None,
) -> list[BalloonOutcome]:
    if epochs is not None:
        config = replace(config, epochs=epochs)
    return [
        _run_with_balloon(workload_name, True, config, inflate_regions),
        _run_with_balloon(workload_name, False, config, inflate_regions),
    ]


def format_balloon(outcomes: list[BalloonOutcome]) -> str:
    lines = ["Ballooning interplay (Gemini, periodic inflation):"]
    for outcome in outcomes:
        lines.append(
            f"  {outcome.variant:<16s} thr={outcome.result.throughput:.3e} "
            f"aligned={outcome.result.well_aligned_rate:.0%} "
            f"aligned-demotions={outcome.aligned_demotions} "
            f"reclaimed={outcome.reclaimed_pages}p"
        )
    return "\n".join(lines)


@dataclass
class KsmOutcome:
    variant: str
    result: RunResult
    merged_pages: int
    demoted_huge_pages: int


def _run_with_ksm(
    workload_name: str,
    config: SimulationConfig,
    mergeable: float,
    break_huge: bool,
    spare_aligned: bool,
    variant: str,
) -> KsmOutcome:
    sim = Simulation(make_workload(workload_name), system="Gemini", config=config)
    daemon = KsmDaemon(
        sim.platform,
        mergeable_fraction=mergeable,
        break_huge=break_huge,
        spare_aligned=spare_aligned,
        seed=config.seed,
    )
    results = [RunResult(system="Gemini", workload=workload_name)]
    for epoch in range(config.epochs):
        sim._epoch(epoch, results)
        daemon.scan()
    return KsmOutcome(
        variant=variant,
        result=results[0],
        merged_pages=daemon.merged_pages,
        demoted_huge_pages=daemon.demoted_huge_pages,
    )


def run_ksm_interplay(
    workload_name: str = "Specjbb",
    config: SimulationConfig = _DEFAULT,
    mergeable: float = 0.15,
    epochs: int | None = None,
) -> list[KsmOutcome]:
    if epochs is not None:
        config = replace(config, epochs=epochs)
    return [
        _run_with_ksm(workload_name, config, mergeable, False, True, "no break-huge"),
        _run_with_ksm(
            workload_name, config, mergeable, True, True, "break, spare aligned"
        ),
        _run_with_ksm(
            workload_name, config, mergeable, True, False, "break everything"
        ),
    ]


def format_ksm(outcomes: list[KsmOutcome]) -> str:
    lines = ["KSM interplay (Gemini, host-level same-page merging):"]
    for outcome in outcomes:
        lines.append(
            f"  {outcome.variant:<22s} thr={outcome.result.throughput:.3e} "
            f"aligned={outcome.result.well_aligned_rate:.0%} "
            f"merged={outcome.merged_pages}p "
            f"huge-demotions={outcome.demoted_huge_pages}"
        )
    return "\n".join(lines)
