"""Reused-VM experiments: Figures 12-15 and Table 4 (Section 6.3).

Each workload runs after another workload — SVM, with a large working set —
has executed to completion in the *same* VM.  Because VMs do not return
freed memory to the host, the EPT (and the host frames behind it) still
hold the mappings SVM created, including any huge pages.  Gemini's huge
bucket keeps freed well-aligned huge pages intact for reuse, where baseline
systems let small allocations splinter them.
"""

from __future__ import annotations

from repro.experiments.clean_slate import (
    ALIGNMENT_SYSTEMS,
    fig08_throughput,
    fig09_mean_latency,
    fig10_tail_latency,
    fig11_tlb_misses,
)
from repro.experiments.common import (
    PAPER_SYSTEMS,
    UNFRAGMENTED,
    format_table,
    normalize,
    run_matrix,
)
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.workloads.suite import TLB_SENSITIVE_SUITE, make_workload

__all__ = [
    "run_reused_vm",
    "fig12_throughput",
    "fig13_mean_latency",
    "fig14_tail_latency",
    "fig15_tlb_misses",
    "table4_alignment",
    "format_reused_vm",
]


def _svm_primer():
    """The ~30 GB-working-set primer of Section 6.3 (scaled)."""
    return make_workload("SVM")


def run_reused_vm(
    workloads: list[str] | None = None,
    systems: list[str] | None = None,
    epochs: int | None = None,
    config: SimulationConfig = UNFRAGMENTED,
) -> dict[str, dict[str, RunResult]]:
    """Run the reused-VM matrix: each workload primed by a full SVM run."""
    return run_matrix(
        workloads or TLB_SENSITIVE_SUITE,
        systems=systems or PAPER_SYSTEMS,
        config=config,
        primer_factory=_svm_primer,
        epochs=epochs,
    )


# The reused-VM figures are the same statistics as the clean-slate ones.
fig12_throughput = fig08_throughput
fig13_mean_latency = fig09_mean_latency
fig14_tail_latency = fig10_tail_latency
fig15_tlb_misses = fig11_tlb_misses


def table4_alignment(results: dict[str, dict[str, RunResult]]) -> dict[str, dict[str, float]]:
    """Table 4: rates of well-aligned huge pages in the reused VM."""
    return {
        workload: {
            system: row[system].well_aligned_rate
            for system in ALIGNMENT_SYSTEMS
            if system in row
        }
        for workload, row in results.items()
    }


def bucket_reuse_rates(results: dict[str, dict[str, RunResult]]) -> dict[str, float]:
    """Gemini's huge-bucket reuse rate per workload (Section 6.3 reports
    88% on average)."""
    rates = {}
    for workload, row in results.items():
        gemini = row.get("Gemini")
        if gemini is not None and gemini.gemini_stats:
            rates[workload] = gemini.gemini_stats.get("bucket_reuse_rate", 0.0)
    return rates


def format_reused_vm(results: dict[str, dict[str, RunResult]]) -> str:
    parts = [
        format_table(fig12_throughput(results), "Figure 12: reused-VM throughput (norm. to Host-B-VM-B)"),
        "",
        format_table(fig13_mean_latency(results), "Figure 13: reused-VM mean latency (norm. to Host-B-VM-B)"),
        "",
        format_table(fig14_tail_latency(results), "Figure 14: reused-VM p99 latency (norm. to Host-B-VM-B)"),
        "",
        format_table(fig15_tlb_misses(results), "Figure 15: reused-VM TLB misses (norm. to Gemini)", fmt="{:.1f}"),
        "",
        format_table(table4_alignment(results), "Table 4: reused-VM well-aligned huge page rates", fmt="{:.0%}"),
    ]
    reuse = bucket_reuse_rates(results)
    if reuse:
        avg = sum(reuse.values()) / len(reuse)
        parts.append("")
        parts.append(f"Gemini huge-bucket reuse rate: {avg:.0%} on average")
    return "\n".join(parts)
