"""Fleet consolidation study: placement policy vs fleet-wide alignment.

The paper measures one host; this experiment asks the question its
Section 6.3 lifecycle model raises at cloud scale.  A fleet of hosts with
a fragmentation gradient (host 0 has aged the longest, the highest-index
hosts are freshly racked) runs the same seeded churn trace — VMs arrive,
resize, migrate under consolidation pressure and depart — once per
placement policy.  Because guest ``munmap`` never returns host frames,
every decision about *where* a VM lands decides which host's contiguity
it consumes; landing tenants on fragmented hosts yields huge pages that
can never be well-aligned, no matter what the coalescing policy does
afterwards.

Expected shape: ``alignment-aware`` placement (which reads each host's
aligned-free buddy summary and translation-index misalignment reports)
holds a higher fleet well-aligned rate than ``first-fit`` (which packs
the oldest, most fragmented hosts first), with ``contiguity-fit``
in between.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster import ClusterConfig, FleetResult, run_cluster
from repro.experiments.common import format_table
from repro.metrics.report import fleet_to_markdown

__all__ = [
    "DEFAULT_PLACEMENTS",
    "FLEET_CONFIG",
    "run_fleet_consolidation",
    "placement_table",
    "format_fleet_consolidation",
]

#: Placement policies compared, packing baseline first.
DEFAULT_PLACEMENTS = ["first-fit", "best-fit", "contiguity-fit", "alignment-aware"]

#: Eight THP hosts with a fragmentation gradient: host 0 carries
#: ``fragment_host`` worth of aged free-list damage, the last host is
#: clean.  THP is the system where placement matters most — its per-host
#: fault/scan budgets make collocated tenants starve for huge backing —
#: so it is the default here; rerun with ``system="Gemini"`` to watch
#: fast coalescing shrink the placement gap.
FLEET_CONFIG = ClusterConfig(
    hosts=8,
    host_mib=768,
    epochs=16,
    seed=42,
    system="THP",
    fragment_host=0.9,
)


def run_fleet_consolidation(
    placements: list[str] | None = None,
    config: ClusterConfig = FLEET_CONFIG,
    epochs: int | None = None,
    hosts: int | None = None,
    workers: int | None = None,
) -> dict[str, FleetResult]:
    """Run the same churned fleet once per placement policy."""
    placements = placements or DEFAULT_PLACEMENTS
    if epochs is not None:
        config = replace(config, epochs=epochs)
    if hosts is not None:
        config = replace(config, hosts=hosts)
    return {
        placement: run_cluster(
            replace(config, placement=placement), workers=workers
        )
        for placement in placements
    }


def placement_table(
    results: dict[str, FleetResult],
) -> dict[str, dict[str, float]]:
    """Fleet metrics (rows) per placement policy (columns)."""
    metrics: dict[str, dict[str, float]] = {
        "well-aligned rate": {},
        "fleet FMFI": {},
        "throughput (ops/Gcycle)": {},
        "migrations": {},
        "migration Mpages": {},
        "placement failures": {},
    }
    for placement, result in results.items():
        metrics["well-aligned rate"][placement] = result.fleet_well_aligned_rate
        metrics["fleet FMFI"][placement] = result.fleet_fmfi
        metrics["throughput (ops/Gcycle)"][placement] = (
            result.mean_throughput * 1e9
        )
        metrics["migrations"][placement] = float(result.migration_count)
        metrics["migration Mpages"][placement] = result.migration_pages / 1e6
        metrics["placement failures"][placement] = float(
            result.placement_failures
        )
    return metrics


def format_fleet_consolidation(results: dict[str, FleetResult]) -> str:
    """The comparison table plus each policy's per-host breakdown."""
    sections = [
        format_table(
            placement_table(results),
            "Fleet consolidation: placement policy comparison "
            "(final epoch, fragmentation gradient)",
            fmt="{:.3f}",
        )
    ]
    for placement, result in results.items():
        sections.append("")
        sections.append(fleet_to_markdown(result, f"placement: {placement}"))
    return "\n".join(sections)
