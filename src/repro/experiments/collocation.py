"""Figures 17-18: applicability and overhead with collocated VMs
(Section 6.5).

Two VMs share the server (two NUMA nodes); one runs a TLB-sensitive
application, the other a non-TLB-sensitive one (NPB SP.D or Shore).
Expected shape: Gemini still performs best overall, and for the
non-TLB-sensitive workloads — where there is nothing to gain — its
overhead is negligible (a few percent at most).
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import BASELINE, PAPER_SYSTEMS, format_table
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.sim.results import RunResult
from repro.workloads.suite import make_workload

__all__ = ["DEFAULT_PAIRS", "run_collocation", "fig17_throughput", "fig18_mean_latency", "format_collocation"]

#: (TLB-sensitive, non-TLB-sensitive) pairs collocated on the server.
DEFAULT_PAIRS = [
    ("Masstree", "Shore"),
    ("Redis", "SP.D"),
    ("CG.D", "Shore"),
    ("Xapian", "SP.D"),
]

COLLOCATION_CONFIG = SimulationConfig(
    epochs=16,
    host_mib=1024,
    guest_mib=256,
    nodes=2,
    fragment_guest=0.5,
    fragment_host=0.5,
)


def run_collocation(
    pairs: list[tuple[str, str]] | None = None,
    systems: list[str] | None = None,
    config: SimulationConfig = COLLOCATION_CONFIG,
    epochs: int | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Run each VM pair under each system; results keyed per workload
    instance ("Masstree+Shore/Masstree" etc.)."""
    pairs = pairs or DEFAULT_PAIRS
    systems = systems or PAPER_SYSTEMS
    if epochs is not None:
        config = replace(config, epochs=epochs)
    results: dict[str, dict[str, RunResult]] = {}
    for sensitive, insensitive in pairs:
        pair_label = f"{sensitive}+{insensitive}"
        for system in systems:
            workloads = [make_workload(sensitive), make_workload(insensitive)]
            pair_results = Simulation(workloads, system=system, config=config).run()
            for workload, result in zip((sensitive, insensitive), pair_results):
                key = f"{pair_label}/{workload}"
                results.setdefault(key, {})[system] = result
    return results


def _normalized(results, metric):
    table = {}
    for key, row in results.items():
        base = getattr(row[BASELINE], metric)
        table[key] = {
            system: (getattr(r, metric) / base if base else 0.0)
            for system, r in row.items()
        }
    return table


def fig17_throughput(results: dict[str, dict[str, RunResult]]) -> dict[str, dict[str, float]]:
    """Figure 17: collocated throughput normalised to Host-B-VM-B."""
    return _normalized(results, "throughput")


def fig18_mean_latency(results: dict[str, dict[str, RunResult]]) -> dict[str, dict[str, float]]:
    """Figure 18: collocated mean latency normalised to Host-B-VM-B."""
    return _normalized(results, "mean_latency")


def gemini_overhead(results: dict[str, dict[str, RunResult]]) -> dict[str, float]:
    """Gemini's throughput change on the non-TLB-sensitive workloads
    (Section 6.5: at most a few percent)."""
    overhead = {}
    for key, row in results.items():
        workload = key.split("/")[-1]
        if workload in ("Shore", "SP.D") and "Gemini" in row:
            base = row[BASELINE].throughput
            overhead[key] = row["Gemini"].throughput / base - 1.0 if base else 0.0
    return overhead


def format_collocation(results: dict[str, dict[str, RunResult]]) -> str:
    parts = [
        format_table(fig17_throughput(results), "Figure 17: collocated throughput (norm. to Host-B-VM-B)"),
        "",
        format_table(fig18_mean_latency(results), "Figure 18: collocated mean latency (norm. to Host-B-VM-B)"),
    ]
    overhead = gemini_overhead(results)
    if overhead:
        parts.append("")
        parts.append("Gemini throughput delta on non-TLB-sensitive workloads:")
        for key, value in overhead.items():
            parts.append(f"  {key}: {value:+.1%}")
    return "\n".join(parts)
