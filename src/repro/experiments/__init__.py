"""Experiment harness: one module per paper table/figure (see DESIGN.md's
per-experiment index) plus ablations of Gemini's design choices."""

from repro.experiments import (
    ablations,
    interplay,
    breakdown,
    clean_slate,
    collocation,
    fig02_microbench,
    fig03_motivation,
    fleet_consolidation,
    overcommit,
    reused_vm,
    sweeps,
    validation,
)
from repro.experiments.common import (
    BASELINE,
    FRAGMENTED,
    PAPER_SYSTEMS,
    UNFRAGMENTED,
    format_table,
    normalize,
    run_matrix,
)

__all__ = [
    "BASELINE",
    "FRAGMENTED",
    "PAPER_SYSTEMS",
    "UNFRAGMENTED",
    "ablations",
    "breakdown",
    "clean_slate",
    "collocation",
    "fig02_microbench",
    "fig03_motivation",
    "fleet_consolidation",
    "format_table",
    "interplay",
    "normalize",
    "overcommit",
    "reused_vm",
    "run_matrix",
    "sweeps",
    "validation",
]
