"""Ablation studies beyond the paper's figures.

These cover the design choices DESIGN.md calls out:

* **booking timeout adaptation** (Algorithm 1) on vs. off (fixed timeouts);
* **huge preallocation threshold** sweep (the paper selected 256
  experimentally, Section 4.2);
* **bucket hold time** sweep (how long freed well-aligned huge pages are
  retained, Section 5).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.runtime import GeminiConfig
from repro.experiments.common import FRAGMENTED, format_table
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.sim.results import RunResult
from repro.workloads.suite import make_workload

__all__ = [
    "run_timeout_ablation",
    "run_prealloc_sweep",
    "run_bucket_hold_sweep",
    "format_ablation",
]


def _run_gemini(workload_name: str, gemini: GeminiConfig, config: SimulationConfig, epochs=None) -> RunResult:
    if epochs is not None:
        config = replace(config, epochs=epochs)
    config = replace(config, gemini=gemini)
    return Simulation(
        make_workload(workload_name), system="Gemini", config=config
    ).run_single()


def run_timeout_ablation(
    workloads: list[str] | None = None,
    config: SimulationConfig = FRAGMENTED,
    epochs: int | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Adaptive timeout (Algorithm 1) vs. fixed short/long timeouts.

    A fixed long timeout hoards reserved memory (fragmentation pressure);
    a fixed short one gives up bookings before the EMA can fill them.
    Algorithm 1 adapts between them.  Fixed variants are modelled by
    pinning the initial value with an effectively infinite adjustment
    period.
    """
    workloads = workloads or ["Redis", "SVM"]
    variants = {
        "adaptive (Alg. 1)": GeminiConfig(),
        "fixed short (1)": GeminiConfig(initial_timeout=1.0, adjust_period=10**6),
        "fixed long (32)": GeminiConfig(initial_timeout=32.0, adjust_period=10**6),
    }
    results: dict[str, dict[str, RunResult]] = {}
    for workload_name in workloads:
        results[workload_name] = {
            variant: _run_gemini(workload_name, gemini, config, epochs)
            for variant, gemini in variants.items()
        }
    return results


def run_prealloc_sweep(
    workload_name: str = "Redis",
    thresholds: list[int] | None = None,
    config: SimulationConfig = FRAGMENTED,
    epochs: int | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Sweep EMA huge-preallocation threshold (paper default: 256)."""
    thresholds = thresholds or [128, 256, 384, 496]
    results = {
        workload_name: {
            f"threshold={value}": _run_gemini(
                workload_name,
                GeminiConfig(prealloc_threshold=value),
                config,
                epochs,
            )
            for value in thresholds
        }
    }
    return results


def run_bucket_hold_sweep(
    workload_name: str = "Redis",
    holds: list[float] | None = None,
    config: SimulationConfig = FRAGMENTED,
    epochs: int | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Sweep how long the huge bucket retains freed well-aligned pages."""
    holds = holds or [1.0, 4.0, 8.0, 16.0]
    results = {
        workload_name: {
            f"hold={value:g}": _run_gemini(
                workload_name, GeminiConfig(bucket_hold=value), config, epochs
            )
            for value in holds
        }
    }
    return results


def format_ablation(results: dict[str, dict[str, RunResult]], title: str) -> str:
    table = {
        workload: {variant: r.throughput for variant, r in row.items()}
        for workload, row in results.items()
    }
    # Normalise each row to its first variant for readability.
    for workload, row in table.items():
        first = next(iter(row.values()))
        if first:
            table[workload] = {k: v / first for k, v in row.items()}
    align = {
        workload: {variant: r.well_aligned_rate for variant, r in row.items()}
        for workload, row in results.items()
    }
    return "\n".join(
        [
            format_table(table, f"{title}: relative throughput"),
            "",
            format_table(align, f"{title}: well-aligned rate", fmt="{:.0%}"),
        ]
    )
