"""Shared experiment infrastructure: standard configurations, run matrices
and table formatting.

The paper evaluates every system under two memory states (Section 6.1):
*fragmented* (both guest and host memory driven to a high FMFI by the
fragmenter program — the primary setting, since memory fragments quickly in
multi-tenant clouds) and *without fragmentation*.  A physical machine is
never perfectly pristine — boot-time and service allocations leave residual
entropy — so the "unfragmented" configuration uses a light FMFI instead of
zero (see DESIGN.md's substitution log).
"""

from __future__ import annotations

from dataclasses import replace

from repro.exec import Cell, ResultCache, run_cells
from repro.policies.registry import PAPER_SYSTEMS
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult

__all__ = [
    "FRAGMENTED",
    "UNFRAGMENTED",
    "BASELINE",
    "PAPER_SYSTEMS",
    "run_matrix",
    "normalize",
    "format_table",
]

#: The two memory states of Section 6.1.
FRAGMENTED = SimulationConfig(epochs=16, fragment_guest=0.8, fragment_host=0.8)
UNFRAGMENTED = SimulationConfig(epochs=16, fragment_guest=0.3, fragment_host=0.3)

#: Figures normalise to this system.
BASELINE = "Host-B-VM-B"


def run_matrix(
    workloads: list[str],
    systems: list[str] | None = None,
    config: SimulationConfig = FRAGMENTED,
    primer_factory=None,
    epochs: int | None = None,
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Run every (workload, system) pair; returns results[workload][system].

    *primer_factory*, if given, builds a fresh primer workload per run (the
    reused-VM scenario).  *epochs* overrides the config's epoch count (used
    by the benchmarks to keep runtimes short).

    Cells are independent simulations, so they fan out across a process
    pool — *workers* (or the ``REPRO_WORKERS`` environment variable)
    controls the width, defaulting to serial — and completed cells are
    served from *cache* (or ``REPRO_CACHE_DIR``) when available.  The
    result matrix is identical in every mode.
    """
    systems = systems or PAPER_SYSTEMS
    if epochs is not None:
        config = replace(config, epochs=epochs)
    cells = [
        Cell(workload, system, config, primer_factory)
        for workload in workloads
        for system in systems
    ]
    flat = run_cells(cells, workers=workers, cache=cache)
    results: dict[str, dict[str, RunResult]] = {}
    for cell, result in zip(cells, flat):
        results.setdefault(cell.workload, {})[cell.system] = result
    return results


def normalize(
    results: dict[str, dict[str, RunResult]],
    metric: str,
    baseline: str = BASELINE,
) -> dict[str, dict[str, float]]:
    """Per-workload values of *metric* normalised to *baseline*'s value.

    *metric* is any numeric property of :class:`RunResult` (``throughput``,
    ``mean_latency``, ``p99_latency``, ``tlb_misses``...).
    """
    table: dict[str, dict[str, float]] = {}
    for workload_name, row in results.items():
        base_value = getattr(row[baseline], metric)
        table[workload_name] = {
            system: (getattr(result, metric) / base_value if base_value else 0.0)
            for system, result in row.items()
        }
    return table


def format_table(
    table: dict[str, dict[str, float]],
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Render a workload x system table the way the paper's tables read."""
    if not table:
        return title
    systems = list(next(iter(table.values())).keys())
    width = max(len(name) for name in table) + 1
    lines = []
    if title:
        lines.append(title)
    header = " " * width + "  ".join(f"{s:>12s}" for s in systems)
    lines.append(header)
    for workload_name, row in table.items():
        cells = "  ".join(f"{fmt.format(row[s]):>12s}" for s in systems)
        lines.append(f"{workload_name:<{width}}" + cells)
    # Geometric-mean style summary row (arithmetic mean, as the paper's
    # "on average" statements use).
    means = {
        s: sum(row[s] for row in table.values()) / len(table) for s in systems
    }
    cells = "  ".join(f"{fmt.format(means[s]):>12s}" for s in systems)
    lines.append(f"{'average':<{width}}" + cells)
    return "\n".join(lines)
