"""Overcommit interplay: alignment retained under memory pressure.

The paper's Section 8 states the pressure rule — only misaligned and
infrequently-used huge pages may be demoted under memory pressure — but
measures nothing overcommitted.  This experiment builds the scenario the
rule exists for: a small Gemini fleet admits ~2.5x its physical memory in
commitments, tenants fault their working sets, and the hosts spend most
epochs below the free-memory watermark, reclaiming through the full
ladder (balloon, KSM, swap-out).

The contrast is the swap victim policy under an identical pressure trace:

* ``lru-cold`` evicts purely by working-set coldness — it happily demotes
  a well-aligned huge page whose tenant went quiet, destroying alignment
  Gemini spent faults building;
* ``alignment-aware`` is the paper's rule — base pages and misaligned
  huge pages first, well-aligned-but-cold last, well-aligned-and-hot only
  below the critical watermark.

Both run on clean hosts and on aged hosts (a Section 6.3-style
fragmentation gradient), since pressure on an aged fleet is where
alignment is scarcest.  Expected shape: alignment-aware retains strictly
more well-aligned huge pages (and destroys strictly fewer) at similar
swap traffic, on both host populations.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster import ClusterConfig, FleetResult, run_cluster
from repro.cluster.config import ChurnConfig
from repro.experiments.common import format_table
from repro.pressure import PressureConfig

__all__ = [
    "OVERCOMMIT_CONFIG",
    "VICTIM_POLICIES",
    "format_overcommit",
    "overcommit_table",
    "run_overcommit",
]

#: Victim policies compared, paper rule last.
VICTIM_POLICIES = ["lru-cold", "alignment-aware"]

#: Three small Gemini hosts admitting 2.5x physical memory.  Headroom is
#: 1.0 (commitments count at face value) and the workload pool is the
#: small-footprint slice of the suite, so hosts really reach ~5 tenants
#: and spend the run's second half under the watermark, swapping.
OVERCOMMIT_CONFIG = ClusterConfig(
    hosts=3,
    host_mib=128,
    epochs=10,
    seed=7,
    system="Gemini",
    overcommit_ratio=2.5,
    placement_headroom=1.0,
    churn=ChurnConfig(
        initial_vms=12,
        arrivals_per_epoch=0.5,
        departure_rate=0.03,
        max_vms=24,
        guest_mib_choices=(48, 64),
        workload_pool=("Shore", "SP.D", "Sphinx", "Moses"),
    ),
    pressure=PressureConfig(enabled=True),
)


def run_overcommit(
    policies: list[str] | None = None,
    config: ClusterConfig = OVERCOMMIT_CONFIG,
    epochs: int | None = None,
    aged_fragment: float = 0.4,
    workers: int | None = None,
) -> dict[str, FleetResult]:
    """Run the same overcommitted churn trace per victim policy, on
    clean and on aged (fragmentation-gradient) hosts."""
    policies = policies or VICTIM_POLICIES
    if epochs is not None:
        config = replace(config, epochs=epochs)
    results: dict[str, FleetResult] = {}
    for label, fragment in (("clean", 0.0), ("aged", aged_fragment)):
        for policy in policies:
            cell = replace(
                config,
                fragment_host=fragment,
                pressure=replace(config.pressure, victim_policy=policy),
            )
            results[f"{policy} ({label})"] = run_cluster(
                cell, workers=workers
            )
    return results


def overcommit_table(
    results: dict[str, FleetResult],
) -> dict[str, dict[str, float]]:
    """Pressure metrics (rows) per victim policy x host age (columns)."""
    metrics: dict[str, dict[str, float]] = {
        "aligned huge retained": {},
        "aligned demotions": {},
        "huge demotions": {},
        "well-aligned rate": {},
        "swap-out Kpages": {},
        "swap-in Kpages": {},
        "throughput (ops/Gcycle)": {},
    }
    for column, result in results.items():
        metrics["aligned huge retained"][column] = result.fleet_aligned_huge
        metrics["aligned demotions"][column] = (
            result.fleet_pressure_aligned_demotions
        )
        metrics["huge demotions"][column] = result.fleet_pressure_demotions
        metrics["well-aligned rate"][column] = result.fleet_well_aligned_rate
        metrics["swap-out Kpages"][column] = result.fleet_swap_out_pages / 1e3
        metrics["swap-in Kpages"][column] = result.fleet_swap_in_pages / 1e3
        metrics["throughput (ops/Gcycle)"][column] = (
            result.mean_throughput * 1e9
        )
    return metrics


def format_overcommit(results: dict[str, FleetResult]) -> str:
    lines = [
        "Overcommit interplay: swap victim policy vs alignment retained",
        "(2.5x committed, Gemini hosts; identical churn and pressure trace)",
        "",
        format_table(overcommit_table(results)),
    ]
    return "\n".join(lines)
