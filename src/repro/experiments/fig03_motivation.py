"""Figure 3 and Table 1: the huge page misalignment problem.

Four workloads (two throughput-oriented PARSEC applications, two
latency-sensitive TailBench applications) under all eight systems, with
fragmented memory.  Table 1 reports the rate of well-aligned huge pages;
Figure 3 the normalised performance.  Expected shape: uncoordinated
coalescing aligns well under half of its huge pages and converts little of
it into performance; Gemini aligns the majority and wins.
"""

from __future__ import annotations

from repro.experiments.common import (
    FRAGMENTED,
    PAPER_SYSTEMS,
    format_table,
    normalize,
    run_matrix,
)
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.workloads.suite import MOTIVATION_SUITE

__all__ = ["run_fig03", "table1_alignment", "format_fig03"]

#: Table 1 reports alignment only for the coalescing systems.
TABLE1_SYSTEMS = ["THP", "CA-paging", "Translation-Ranger", "HawkEye", "Ingens", "Gemini"]


def run_fig03(
    config: SimulationConfig = FRAGMENTED,
    epochs: int | None = None,
    workloads: list[str] | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Run the motivation matrix: 4 workloads x 8 systems."""
    return run_matrix(
        workloads or MOTIVATION_SUITE,
        systems=PAPER_SYSTEMS,
        config=config,
        epochs=epochs,
    )


def table1_alignment(results: dict[str, dict[str, RunResult]]) -> dict[str, dict[str, float]]:
    """Table 1: rates of well-aligned huge pages."""
    return {
        workload: {
            system: row[system].well_aligned_rate
            for system in TABLE1_SYSTEMS
            if system in row
        }
        for workload, row in results.items()
    }


def format_fig03(results: dict[str, dict[str, RunResult]]) -> str:
    throughput = normalize(results, "throughput")
    alignment = table1_alignment(results)
    parts = [
        format_table(throughput, "Figure 3: throughput (normalised to Host-B-VM-B)"),
        "",
        format_table(alignment, "Table 1: rates of well-aligned huge pages", fmt="{:.0%}"),
    ]
    return "\n".join(parts)
