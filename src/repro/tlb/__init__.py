"""TLB modelling: cycle-cost constants, a trace-driven set-associative TLB,
and the analytic capacity model used for epoch-level simulation."""

from repro.tlb import costs
from repro.tlb.cache import SetAssociativeTLB, TLBStats
from repro.tlb.model import (
    SegmentResult,
    TLBConfig,
    TLBModel,
    TranslationSegment,
    TranslationStats,
)

__all__ = [
    "SegmentResult",
    "SetAssociativeTLB",
    "TLBConfig",
    "TLBModel",
    "TLBStats",
    "TranslationSegment",
    "TranslationStats",
    "costs",
]
