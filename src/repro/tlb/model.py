"""Analytic TLB capacity model.

Trace-driven simulation of the paper's workloads is infeasible (tens of GiB
of footprint, billions of accesses), so epoch-level results use a standard
LRU capacity approximation instead:

1. the epoch's memory accesses are summarised as *translation segments* —
   groups of TLB entries with uniform per-entry access frequency (one
   segment per VMA region class produced by the alignment analysis);
2. entries are granted TLB residency in descending order of per-entry
   frequency until the (conflict-derated) capacity is exhausted;
3. resident entries miss only compulsorily (once per entry per epoch),
   non-resident entries miss on every access.

This preserves the paper's mechanism exactly: a well-aligned huge region
needs 512x fewer entries than a splintered one, so alignment directly
shrinks the working set competing for TLB capacity.

The approximation is validated against the trace-driven
:class:`repro.tlb.cache.SetAssociativeTLB` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tlb.costs import TLB_HIT_CYCLES

__all__ = ["TLBConfig", "TranslationSegment", "SegmentResult", "TranslationStats", "TLBModel"]


@dataclass(frozen=True)
class TLBConfig:
    """Capacity parameters of the modelled (second-level, shared) TLB.

    Defaults follow the paper's Xeon E5-2620 v4 testbed: 1536 L2 entries
    shared between 4 KiB and 2 MiB pages.  ``utilization`` derates the
    nominal capacity for set conflicts; ``hit_cycles`` is the translation
    cost of a TLB hit.
    """

    entries: int = 1536
    utilization: float = 0.85
    hit_cycles: float = TLB_HIT_CYCLES

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError(f"non-positive TLB entries: {self.entries}")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError(f"utilization out of (0, 1]: {self.utilization}")

    @property
    def effective_entries(self) -> float:
        return self.entries * self.utilization


@dataclass(frozen=True)
class TranslationSegment:
    """A group of TLB entries accessed with uniform per-entry frequency."""

    entries: int
    accesses: float
    walk_cycles: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.entries < 0 or self.accesses < 0 or self.walk_cycles < 0:
            raise ValueError(f"negative segment parameter: {self}")

    @property
    def frequency(self) -> float:
        """Accesses per entry; the residency priority."""
        return self.accesses / self.entries if self.entries else 0.0


@dataclass(frozen=True)
class SegmentResult:
    """Per-segment outcome of a model evaluation."""

    segment: TranslationSegment
    resident_entries: float
    misses: float

    @property
    def walk_cycles(self) -> float:
        return self.misses * self.segment.walk_cycles


@dataclass
class TranslationStats:
    """Aggregate translation behaviour of one epoch."""

    accesses: float = 0.0
    misses: float = 0.0
    walk_cycles: float = 0.0
    segments: list[SegmentResult] = field(default_factory=list)

    @property
    def hits(self) -> float:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def translation_cycles(self, hit_cycles: float = TLB_HIT_CYCLES) -> float:
        """Total cycles spent translating addresses this epoch."""
        return self.hits * hit_cycles + self.walk_cycles


class TLBModel:
    """Evaluates translation segments against a TLB capacity."""

    #: Memo retention cap; the table resets wholesale when it fills so a
    #: long churn of unique signatures cannot grow it without bound.
    MEMO_LIMIT = 4096

    def __init__(self, config: TLBConfig | None = None, memoize: bool = False) -> None:
        self.config = config or TLBConfig()
        #: Reuse results for repeated segment signatures.  The evaluation
        #: is a pure function of the segment tuple (all inputs are frozen
        #: dataclasses) and callers treat the returned stats as read-only,
        #: so replaying a cached result is exact.
        self.memoize = memoize
        self._memo: dict[tuple[TranslationSegment, ...], TranslationStats] = {}

    def evaluate(self, segments: list[TranslationSegment]) -> TranslationStats:
        """Compute expected misses and walk cycles for one epoch."""
        key: tuple[TranslationSegment, ...] | None = None
        if self.memoize:
            key = tuple(segments)
            cached = self._memo.get(key)
            if cached is not None:
                return cached
        stats = TranslationStats()
        remaining = self.config.effective_entries
        ordered = sorted(
            (s for s in segments if s.accesses > 0 and s.entries > 0),
            key=lambda s: s.frequency,
            reverse=True,
        )
        for segment in ordered:
            resident = min(float(segment.entries), remaining)
            remaining -= resident
            resident_frac = resident / segment.entries
            capacity_misses = segment.accesses * (1.0 - resident_frac)
            compulsory = min(resident, segment.accesses * resident_frac)
            misses = min(segment.accesses, capacity_misses + compulsory)
            stats.segments.append(
                SegmentResult(segment=segment, resident_entries=resident, misses=misses)
            )
            stats.accesses += segment.accesses
            stats.misses += misses
            stats.walk_cycles += misses * segment.walk_cycles
        # Segments with zero accesses still appear in the result for
        # completeness of reporting.
        for segment in segments:
            if segment.accesses <= 0 or segment.entries <= 0:
                stats.segments.append(
                    SegmentResult(segment=segment, resident_entries=0.0, misses=0.0)
                )
                stats.accesses += max(segment.accesses, 0.0)
        if key is not None:
            if len(self._memo) >= self.MEMO_LIMIT:
                self._memo.clear()
            self._memo[key] = stats
        return stats
