"""Cycle-cost constants for the performance model.

Every cost in the simulator is expressed in abstract CPU cycles.  Absolute
values are calibrated to commodity x86 latencies only loosely — the paper's
claims that this reproduction targets are *relative* (who wins, by what
rough factor), and those depend on ratios between these constants, all of
which are grounded in the paper or its references:

* a nested base-page walk costs ~6x a native walk (Section 1);
* page migrations are expensive and trigger TLB shoot-downs whose cost is
  amplified on virtualized systems (Section 6.2, citing [52-54]);
* demand-paging a huge page zeroes 512x the memory of a base fault.
"""

from __future__ import annotations

#: Cycles for a memory access that hits the TLB (the translation component
#: only; data-cache behaviour is outside the model's scope).
TLB_HIT_CYCLES = 1.0

#: Baseline per-access execution cost (compute + data access) excluding
#: address translation.  Sets the ceiling on how much translation overhead
#: can matter, i.e. the TLB-sensitivity of a workload with weight 1.0.
BASE_ACCESS_CYCLES = 6.0

#: Cost of servicing one base-page demand fault (allocation, zeroing, PTE
#: install).
BASE_FAULT_CYCLES = 2_000.0

#: Extra cost of zeroing/installing a full 2 MiB page on a huge fault.
HUGE_FAULT_CYCLES = 60_000.0

#: In-place promotion: page-table surgery plus a TLB shoot-down, no copy.
INPLACE_PROMOTION_CYCLES = 5_000.0

#: Copying one base page during compaction/migration-based promotion.
PAGE_COPY_CYCLES = 3_000.0

#: One TLB shoot-down (IPI round).  Costlier on virtualized systems where
#: vCPU preemption amplifies IPI latency; the factor below applies then.
TLB_SHOOTDOWN_CYCLES = 8_000.0
VIRT_SHOOTDOWN_FACTOR = 3.0

#: Cost of one copy-on-write fault (used by the HawkEye zero-page
#: deduplication model, Section 6.2's Specjbb anomaly).
COW_FAULT_CYCLES = 4_000.0

#: Cost of scanning one page-table region in a background daemon pass
#: (khugepaged / MHPS style).  Background work is charged at a discount
#: since it mostly overlaps with idle cores.
SCAN_REGION_CYCLES = 30.0
BACKGROUND_DISCOUNT = 0.25

#: Mean cost of writing one page to the hypervisor swap device
#: (background: the host writes victims out asynchronously).  Calibrated
#: to fast NVMe-class backends, the regime Flexible-Swapping-style
#: hypervisor swap targets; the device model adds a seeded jitter.
SWAP_OUT_CYCLES = 150_000.0

#: Mean cost of one demand swap-in fault (synchronous: the vCPU stalls on
#: the EPT violation until the page is read back and remapped).  Roughly
#: a device read plus the nested fault, so ~2-3x the write-out path.
SWAP_IN_CYCLES = 400_000.0
