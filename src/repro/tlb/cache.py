"""Trace-driven set-associative TLB.

Models the shared second-level TLB of the paper's testbed (Section 6.1:
1536 entries shared between 4 KiB and 2 MiB pages per core).  Both page
sizes compete for the same entries, each tagged with its size so a 2 MiB
entry covers 512 base pages.

This trace-driven cache backs the Figure 2 microbenchmark and serves as a
ground-truth cross-check for the analytic capacity model in
:mod:`repro.tlb.model` (see ``tests/tlb/test_model_vs_cache.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.layout import huge_region_index

__all__ = ["TLBStats", "SetAssociativeTLB"]


@dataclass
class TLBStats:
    """Hit/miss counters for one TLB instance."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class _Set:
    """One associativity set with LRU ordering (front == LRU)."""

    keys: list[tuple[int, int]] = field(default_factory=list)


class SetAssociativeTLB:
    """LRU set-associative TLB shared between 4 KiB and 2 MiB entries."""

    def __init__(self, entries: int = 1536, ways: int = 12) -> None:
        if entries <= 0 or ways <= 0:
            raise ValueError("entries and ways must be positive")
        if entries % ways != 0:
            raise ValueError(f"{entries} entries not divisible by {ways} ways")
        self.entries = entries
        self.ways = ways
        self.nsets = entries // ways
        self._sets = [_Set() for _ in range(self.nsets)]
        self.stats = TLBStats()

    def access(self, vpn: int, huge: bool = False) -> bool:
        """Look up the translation for base VPN *vpn*; fill on miss.

        For huge mappings the lookup key is the 2 MiB region index, so all
        512 VPNs of an aligned huge page share one entry.  Returns True on
        hit.
        """
        key = (1, huge_region_index(vpn)) if huge else (0, vpn)
        tlb_set = self._sets[key[1] % self.nsets]
        if key in tlb_set.keys:
            tlb_set.keys.remove(key)
            tlb_set.keys.append(key)
            self.stats.hits += 1
            return True
        if len(tlb_set.keys) >= self.ways:
            tlb_set.keys.pop(0)
        tlb_set.keys.append(key)
        self.stats.misses += 1
        return False

    def flush(self) -> None:
        """Invalidate every entry (context switch / shoot-down)."""
        for tlb_set in self._sets:
            tlb_set.keys.clear()

    def reset_stats(self) -> None:
        self.stats = TLBStats()

    @property
    def occupancy(self) -> int:
        """Number of currently-valid entries."""
        return sum(len(s.keys) for s in self._sets)
