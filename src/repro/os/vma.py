"""Virtual memory areas and per-process virtual address spaces.

A :class:`VMA` is a contiguous range of guest-virtual pages created by a
workload allocation (an ``mmap`` in the real system).  The
:class:`AddressSpace` hands out virtual ranges with a bump allocator.  Large
mappings are huge-aligned by default, as glibc/THP arrange in practice;
Gemini's EMA additionally aligns the *physical* side to these boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.mem.layout import PAGES_PER_HUGE, huge_align_up, huge_region_index

__all__ = ["VMA", "AddressSpace"]


@dataclass
class VMA:
    """One mapped virtual range: pages ``[start, start + npages)``."""

    start: int
    npages: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.start < 0 or self.npages <= 0:
            raise ValueError(f"invalid VMA: start={self.start} npages={self.npages}")

    @property
    def end(self) -> int:
        """One past the last page of the VMA."""
        return self.start + self.npages

    @property
    def size_pages(self) -> int:
        return self.npages

    def __contains__(self, vpn: int) -> bool:
        return self.start <= vpn < self.end

    def regions(self) -> Iterator[int]:
        """2 MiB region indices overlapping this VMA."""
        first = huge_region_index(self.start)
        last = huge_region_index(self.end - 1)
        yield from range(first, last + 1)

    def region_span(self, vregion: int) -> tuple[int, int]:
        """The (first_vpn, npages) part of *vregion* covered by this VMA."""
        region_start = vregion * PAGES_PER_HUGE
        lo = max(self.start, region_start)
        hi = min(self.end, region_start + PAGES_PER_HUGE)
        if lo >= hi:
            raise ValueError(f"region {vregion} does not overlap VMA {self}")
        return lo, hi - lo

    def covers_full_region(self, vregion: int) -> bool:
        """True if the whole 2 MiB region lies inside this VMA."""
        region_start = vregion * PAGES_PER_HUGE
        return self.start <= region_start and region_start + PAGES_PER_HUGE <= self.end


class AddressSpace:
    """Bump-allocated virtual address space of one guest process."""

    def __init__(self, base: int = PAGES_PER_HUGE) -> None:
        self._next = base
        self._vmas: dict[str, VMA] = {}

    def mmap(self, npages: int, name: str, huge_aligned: bool = True) -> VMA:
        """Create a new VMA of *npages* pages named *name*.

        Names must be unique within the address space (workloads use them to
        refer back to their allocations).  A one-region guard gap separates
        consecutive VMAs so their huge regions never overlap.
        """
        if name in self._vmas:
            raise ValueError(f"VMA name already in use: {name}")
        start = huge_align_up(self._next) if huge_aligned else self._next
        vma = VMA(start=start, npages=npages, name=name)
        self._vmas[name] = vma
        self._next = huge_align_up(vma.end) + PAGES_PER_HUGE
        return vma

    def munmap(self, name: str) -> VMA:
        """Remove and return the VMA named *name*."""
        if name not in self._vmas:
            raise KeyError(f"no such VMA: {name}")
        return self._vmas.pop(name)

    def vma(self, name: str) -> VMA:
        return self._vmas[name]

    def find(self, vpn: int) -> VMA | None:
        """The VMA containing *vpn*, if any."""
        for vma in self._vmas.values():
            if vpn in vma:
                return vma
        return None

    def vmas(self) -> Iterator[VMA]:
        yield from self._vmas.values()

    @property
    def mapped_pages(self) -> int:
        return sum(v.npages for v in self._vmas.values())

    def __len__(self) -> int:
        return len(self._vmas)

    def __contains__(self, name: str) -> bool:
        return name in self._vmas
