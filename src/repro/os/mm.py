"""MemoryLayer: one level of address-translation management.

The simulator runs two instances of :class:`MemoryLayer`:

* the **guest layer** — per-VM: maps guest-virtual pages (GVA) to
  guest-physical frames (GPA) through process page tables, allocating GPAs
  from the VM's guest-physical memory;
* the **host layer** — maps guest-physical frames (GPA) to host-physical
  frames (HPA) through per-VM tables (the EPT), allocating HPAs from host
  memory.

Both layers run a :class:`repro.policies.base.HugePagePolicy` that decides
huge-page faults, frame placement and background promotion.  The layer
provides the mechanism — demand faults, in-place promotion, migration-based
promotion (khugepaged-style copy into a fresh huge page), compaction into a
*specific* target region (the primitive Gemini's promoter needs), demotion
and unmapping — and charges every action to a :class:`CostLedger`.

A reverse map (frame -> mapping) is maintained so policies and the
misaligned-huge-page scanner can attribute physical regions to their users,
mirroring the kernel's rmap.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.mem.buddy import AllocationError
from repro.mem.layout import HUGE_ORDER, PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.metrics.counters import CostLedger
from repro.paging.pagetable import PageTable
from repro.policies.base import HugePagePolicy
from repro.tlb import costs

__all__ = ["PROCESS", "OutOfMemory", "MemoryLayer"]

#: Client id of the single simulated process inside each VM (the paper runs
#: one workload per VM).
PROCESS = 0

#: Shared empty owner bucket for regions with no base-mapped frames.
_EMPTY_COUNTS: dict[tuple[int, int], int] = {}


def _contiguous_runs(frames: list[int]) -> Iterator[tuple[int, int]]:
    """Group a frame list into (start, count) runs of consecutive values,
    preserving the list order."""
    if not frames:
        return
    run_start = prev = frames[0]
    for frame in frames[1:]:
        if frame == prev + 1:
            prev = frame
            continue
        yield run_start, prev - run_start + 1
        run_start = prev = frame
    yield run_start, prev - run_start + 1


class OutOfMemory(Exception):
    """Raised when an allocation fails even after reclaim."""


class MemoryLayer:
    """One translation layer: page tables + allocator + policy + accounting."""

    def __init__(
        self,
        name: str,
        memory: PhysicalMemory,
        policy: HugePagePolicy,
        ledger: CostLedger | None = None,
        virtualized: bool = False,
    ) -> None:
        self.name = name
        self.memory = memory
        self.policy = policy
        self.ledger = ledger if ledger is not None else CostLedger(name)
        #: True when TLB shoot-downs on this layer suffer virtualization
        #: amplification (vCPU preemption delaying IPIs; Section 6.2).
        self.virtualized = virtualized
        #: Optional cross-layer callback: is physical region *pregion*
        #: part of a well-aligned huge page?  Wired by the platform; used
        #: to tag freed regions for Gemini's huge bucket.
        self.alignment_probe: Callable[[int], bool] | None = None
        #: Optional eligibility callback: may virtual region (client,
        #: vregion) legitimately be huge-mapped?  In the guest this is "the
        #: region lies fully inside one VMA"; the host backs the whole
        #: guest-physical space, so every region is eligible there.
        self.region_eligible: Callable[[int, int], bool] | None = None
        #: Optional VMA lookup for placement policies: (client, vpn) ->
        #: (vstart, vend) of the enclosing VMA.  Wired by the VM on its
        #: guest layer; stays None in the host layer.
        self.vma_bounds: Callable[[int, int], tuple[int, int] | None] | None = None
        #: Serve batchable operations through the span kernels (same
        #: results, O(spans)/O(words) work); False forces the per-page
        #: reference paths everywhere.
        self.fast_kernels = True
        #: Optional last-chance reclaim callback: given a page deficit,
        #: free at least that many frames and return how many were freed.
        #: Wired to the pressure controller's emergency swap-out on host
        #: layers; tried only after the policy's own reclaim fails.
        self.reclaimer: Callable[[int], int] | None = None
        self._tables: dict[int, PageTable] = {}
        #: reverse map for base mappings: pfn -> (client, vpn)
        self._rmap_base: dict[int, tuple[int, int]] = {}
        #: per-region occupancy bitsets, maintained with the owner index:
        #: physical region -> 512-bit int, bit ``pfn - region * 512`` set
        #: iff *pfn* has a base reverse-map entry.  Promoter scans walk
        #: set bits instead of probing all 512 frames.
        self._rmap_bits: dict[int, int] = {}
        #: optional incremental owner summary: physical region ->
        #: {(client, vregion): frames owned}; None when disabled.  Lets
        #: Gemini's promoters find a region's dominant owner without 512
        #: rmap probes.
        self._owner_counts: dict[int, dict[tuple[int, int], int]] | None = None
        #: reverse map for huge mappings: pregion -> (client, vregion)
        self._rmap_huge: dict[int, tuple[int, int]] = {}
        #: zero-filled bloat introduced by promoting partially-populated
        #: regions: (client, vregion) -> pages
        self._bloat: dict[tuple[int, int], int] = {}
        #: extra references on shared frames (KSM-merged pages): pfn ->
        #: count of *additional* mappings beyond the first.  A shared frame
        #: is only freed when its last reference is released.
        self._frame_refs: dict[int, int] = {}
        policy.attach(self)

    # ------------------------------------------------------------------
    # Tables and translation
    # ------------------------------------------------------------------

    def table(self, client: int) -> PageTable:
        """The page table of *client* (a process in the guest, a VM in the
        host), created on first use."""
        if client not in self._tables:
            self._tables[client] = PageTable(name=f"{self.name}:{client}")
        return self._tables[client]

    def clients(self) -> Iterator[int]:
        yield from self._tables.keys()

    def translate(self, client: int, vpn: int) -> int | None:
        return self.table(client).translate(vpn)

    def owner_of_frame(self, pfn: int) -> tuple[int, int] | None:
        """(client, vpn) base-mapping the frame, if any."""
        return self._rmap_base.get(pfn)

    def owner_of_region(self, pregion: int) -> tuple[int, int] | None:
        """(client, vregion) huge-mapping the physical region, if any."""
        return self._rmap_huge.get(pregion)

    def add_frame_ref(self, pfn: int) -> None:
        """Register an additional mapping of *pfn* (page sharing/KSM)."""
        self._frame_refs[pfn] = self._frame_refs.get(pfn, 0) + 1

    def release_frame(self, pfn: int) -> None:
        """Drop one reference to *pfn*; free it when none remain."""
        refs = self._frame_refs.get(pfn)
        if refs is not None:
            if refs <= 1:
                del self._frame_refs[pfn]
            else:
                self._frame_refs[pfn] = refs - 1
            return
        self.memory.free(pfn, 0)

    def _free_frames_batch(self, pfns) -> None:
        """Batch of :meth:`release_frame`: shared frames drop a reference
        one by one, everything else goes to the buddy batch kernel (buddy
        coalescing is order-independent, so the final state matches the
        sequential releases)."""
        refs = self._frame_refs
        if refs:
            direct: list[int] = []
            for pfn in pfns:
                if pfn in refs:
                    self.release_frame(pfn)
                else:
                    direct.append(pfn)
            self.memory.free_frames(direct)
        else:
            self.memory.free_frames(list(pfns))

    def enable_owner_index(self) -> None:
        """Turn on incremental per-region owner counts (idempotent);
        bootstraps from the current reverse map."""
        if self._owner_counts is not None:
            return
        counts: dict[int, dict[tuple[int, int], int]] = {}
        bits: dict[int, int] = {}
        for pfn, (client, vpn) in self._rmap_base.items():
            key = (client, vpn // PAGES_PER_HUGE)
            pregion = pfn // PAGES_PER_HUGE
            bucket = counts.setdefault(pregion, {})
            bucket[key] = bucket.get(key, 0) + 1
            bits[pregion] = bits.get(pregion, 0) | (
                1 << (pfn - pregion * PAGES_PER_HUGE)
            )
        self._owner_counts = counts
        self._rmap_bits = bits

    def rmap_bits(self, pregion: int) -> int | None:
        """512-bit occupancy word of *pregion* (bit set iff the frame has
        a base reverse-map entry); None when the owner index is off."""
        if self._owner_counts is None:
            return None
        return self._rmap_bits.get(pregion, 0)

    def region_owner_counts(self, pregion: int) -> dict[tuple[int, int], int] | None:
        """Read-only ``{(client, vregion): frames}`` owner summary of
        physical region *pregion*; None when the index is disabled."""
        if self._owner_counts is None:
            return None
        return self._owner_counts.get(pregion, _EMPTY_COUNTS)

    def base_owned_in_region(self, pregion: int) -> int:
        """Frames of *pregion* with a base reverse-map entry (requires the
        owner index)."""
        assert self._owner_counts is not None
        bucket = self._owner_counts.get(pregion)
        return sum(bucket.values()) if bucket else 0

    def _set_rmap(self, pfn: int, client: int, vpn: int) -> None:
        self._rmap_base[pfn] = (client, vpn)
        counts = self._owner_counts
        if counts is not None:
            key = (client, vpn // PAGES_PER_HUGE)
            pregion = pfn // PAGES_PER_HUGE
            bucket = counts.setdefault(pregion, {})
            bucket[key] = bucket.get(key, 0) + 1
            bits = self._rmap_bits
            bits[pregion] = bits.get(pregion, 0) | (
                1 << (pfn - pregion * PAGES_PER_HUGE)
            )

    def _set_rmap_run(self, pfn: int, client: int, vpn: int, count: int) -> None:
        """Batch of :meth:`_set_rmap` over the contiguous, same-virtual-
        region run ``pfn + i <- (client, vpn + i)``."""
        self._rmap_base.update(
            zip(
                range(pfn, pfn + count),
                ((client, v) for v in range(vpn, vpn + count)),
            )
        )
        counts = self._owner_counts
        if counts is None:
            return
        key = (client, vpn // PAGES_PER_HUGE)
        bits = self._rmap_bits
        pos = pfn
        end = pfn + count
        while pos < end:
            pregion = pos // PAGES_PER_HUGE
            chunk = min(end, (pregion + 1) * PAGES_PER_HUGE) - pos
            bucket = counts.setdefault(pregion, {})
            bucket[key] = bucket.get(key, 0) + chunk
            bits[pregion] = bits.get(pregion, 0) | (
                ((1 << chunk) - 1) << (pos - pregion * PAGES_PER_HUGE)
            )
            pos += chunk

    def _del_rmap(self, pfn: int) -> None:
        client, vpn = self._rmap_base.pop(pfn)
        counts = self._owner_counts
        if counts is not None:
            pregion = pfn // PAGES_PER_HUGE
            bucket = counts[pregion]
            key = (client, vpn // PAGES_PER_HUGE)
            remaining = bucket[key] - 1
            if remaining:
                bucket[key] = remaining
            else:
                del bucket[key]
                if not bucket:
                    del counts[pregion]
            bits = self._rmap_bits
            word = bits[pregion] & ~(1 << (pfn - pregion * PAGES_PER_HUGE))
            if word:
                bits[pregion] = word
            else:
                del bits[pregion]

    def _drop_rmap_region(
        self, client: int, vregion: int, mappings: dict[int, int]
    ) -> None:
        """Batch of :meth:`_drop_rmap` over one virtual region's base
        mappings, with the owner-summary updates aggregated per physical
        region."""
        rmap = self._rmap_base
        counts = self._owner_counts
        if counts is None:
            for vpn, pfn in mappings.items():
                if rmap.get(pfn) == (client, vpn):
                    del rmap[pfn]
            return
        key = (client, vregion)
        dropped: dict[int, list[int]] = {}
        for vpn, pfn in mappings.items():
            if rmap.get(pfn) != (client, vpn):
                continue
            del rmap[pfn]
            dropped.setdefault(pfn // PAGES_PER_HUGE, []).append(pfn)
        bits = self._rmap_bits
        for pregion, pfns in dropped.items():
            bucket = counts[pregion]
            remaining = bucket[key] - len(pfns)
            if remaining:
                bucket[key] = remaining
            else:
                del bucket[key]
                if not bucket:
                    del counts[pregion]
            mask = 0
            base = pregion * PAGES_PER_HUGE
            for pfn in pfns:
                mask |= 1 << (pfn - base)
            word = bits[pregion] & ~mask
            if word:
                bits[pregion] = word
            else:
                del bits[pregion]

    def _drop_rmap(self, pfn: int, client: int, vpn: int) -> None:
        """Remove the reverse-map entry if it names this mapping (shared
        frames keep their original owner's entry)."""
        if self._rmap_base.get(pfn) == (client, vpn):
            self._del_rmap(pfn)

    def is_region_eligible(self, client: int, vregion: int) -> bool:
        """May (client, vregion) be covered by one huge mapping?"""
        if self.region_eligible is None:
            return True
        return self.region_eligible(client, vregion)

    # ------------------------------------------------------------------
    # Fault path
    # ------------------------------------------------------------------

    def fault(self, client: int, vpn: int, full_region: bool = True) -> int:
        """Demand-fault *vpn*; return the frame it is mapped to.

        *full_region* says whether the whole surrounding 2 MiB virtual
        region is fault-eligible (inside one VMA), which gates huge faults.
        """
        table = self.table(client)
        pfn = table.translate(vpn)
        if pfn is not None:
            return pfn
        vregion = vpn // PAGES_PER_HUGE
        if (
            full_region
            and table.region_population(vregion) == 0
            and self.policy.wants_huge_fault(client, vregion)
        ):
            pregion = self.policy.alloc_huge_region(client, vregion)
            if pregion is not None:
                table.map_huge(vregion, pregion)
                self._rmap_huge[pregion] = (client, vregion)
                self.ledger.charge("huge_fault", costs.HUGE_FAULT_CYCLES)
                result = table.translate(vpn)
                assert result is not None
                return result
        frame = self.policy.choose_base_frame(client, vpn)
        if frame is None:
            frame = self.alloc_base_frame()
        table.map_base(vpn, frame)
        self._set_rmap(frame, client, vpn)
        self.ledger.charge("base_fault", costs.BASE_FAULT_CYCLES)
        return frame

    def fault_range(
        self,
        client: int,
        start: int,
        npages: int,
        full_region_of: Callable[[int], bool] | None = None,
    ) -> list[tuple[int, int, int, str]]:
        """Batched :meth:`fault` over ``[start, start + npages)``.

        Produces the exact same mappings, allocator state and ledger totals
        as *npages* successive ``fault`` calls, but in O(spans) Python-level
        work instead of O(pages).  *full_region_of* maps a virtual region to
        the ``full_region`` flag a per-page fault would have received
        (defaults to True everywhere, matching the host layer).

        Returns ascending spans ``(vpn, pfn, count, kind)`` covering every
        page of the range.  *kind* tells the caller which pages would have
        *triggered* a per-page fault (and hence a fault notification):

        * ``"mapped"`` — pre-existing mappings, no page triggers;
        * ``"base"`` — demand base faults, every page triggers;
        * ``"huge"`` — one huge fault: only the span's first page triggers
          (per-page faulting would find the rest already mapped).  Huge
          spans are never merged so each one is exactly one trigger.
        """
        table = self.table(client)
        end = start + npages
        spans: list[tuple[int, int, int, str]] = []

        def emit(vpn: int, pfn: int, count: int, kind: str) -> None:
            if spans and kind != "huge":
                lvpn, lpfn, lcount, lkind = spans[-1]
                if (
                    lkind == kind
                    and lvpn + lcount == vpn
                    and lpfn + lcount == pfn
                ):
                    spans[-1] = (lvpn, lpfn, lcount + count, kind)
                    return
            spans.append((vpn, pfn, count, kind))

        base_faults = 0
        huge_faults = 0
        pos = start
        while pos < end:
            pfn = table.translate(pos)
            if pfn is not None:
                emit(pos, pfn, 1, "mapped")
                pos += 1
                continue
            vregion = pos // PAGES_PER_HUGE
            region_end = min(end, (vregion + 1) * PAGES_PER_HUGE)
            # The huge-fault gate can only open on the first fault of a
            # region: every later page of the segment sees a non-zero
            # population, exactly as the per-page path would.
            full = True if full_region_of is None else full_region_of(vregion)
            if (
                full
                and table.region_population(vregion) == 0
                and self.policy.wants_huge_fault(client, vregion)
            ):
                pregion = self.policy.alloc_huge_region(client, vregion)
                if pregion is not None:
                    table.map_huge(vregion, pregion)
                    self._rmap_huge[pregion] = (client, vregion)
                    huge_faults += 1
                    first = pregion * PAGES_PER_HUGE + (
                        pos - vregion * PAGES_PER_HUGE
                    )
                    emit(pos, first, region_end - pos, "huge")
                    pos = region_end
                    continue
            while pos < region_end:
                pfn = table.translate(pos)
                if pfn is not None:
                    emit(pos, pfn, 1, "mapped")
                    pos += 1
                    continue
                run_end = pos + 1
                while run_end < region_end and table.translate(run_end) is None:
                    run_end += 1
                while pos < run_end:
                    batch = self.policy.choose_base_frames(
                        client, pos, run_end - pos
                    )
                    if batch is None:
                        frame = self.policy.choose_base_frame(client, pos)
                        if frame is None:
                            frame = self.alloc_base_frame()
                        table.map_base(pos, frame)
                        self._set_rmap(frame, client, pos)
                        base_faults += 1
                        emit(pos, frame, 1, "base")
                        pos += 1
                        continue
                    frame, count = batch
                    if frame is None:
                        if self.fast_kernels and self.memory.free_pages >= count:
                            # Order-0 allocation cannot fail while frames
                            # remain, so the batch kernel reproduces the
                            # per-page alloc sequence exactly; the frames
                            # arrive in allocation order and pair with
                            # ascending vpns just as the loop would.
                            frames = self.memory.alloc_frames(count)
                            for rstart, rcount in _contiguous_runs(frames):
                                table.map_base_run(pos, rstart, rcount)
                                self._set_rmap_run(rstart, client, pos, rcount)
                                emit(pos, rstart, rcount, "base")
                                pos += rcount
                        else:
                            for _ in range(count):
                                frame = self.alloc_base_frame()
                                table.map_base(pos, frame)
                                self._set_rmap(frame, client, pos)
                                emit(pos, frame, 1, "base")
                                pos += 1
                    else:
                        if self.fast_kernels:
                            table.map_base_run(pos, frame, count)
                            self._set_rmap_run(frame, client, pos, count)
                        else:
                            for i in range(count):
                                table.map_base(pos + i, frame + i)
                                self._set_rmap(frame + i, client, pos + i)
                        emit(pos, frame, count, "base")
                        pos += count
                    base_faults += count
        if huge_faults:
            self.ledger.charge(
                "huge_fault",
                costs.HUGE_FAULT_CYCLES * huge_faults,
                count=huge_faults,
            )
        if base_faults:
            self.ledger.charge(
                "base_fault",
                costs.BASE_FAULT_CYCLES * base_faults,
                count=base_faults,
            )
        return spans

    def alloc_base_frame(self, node: int | None = None) -> int:
        """Allocate one frame, invoking policy reclaim under pressure."""
        try:
            return self.memory.alloc(0, node=node)
        except AllocationError:
            released = self.policy.on_pressure()
            if released <= 0 and self.reclaimer is not None:
                released = self.reclaimer(PAGES_PER_HUGE)
            if released <= 0:
                raise OutOfMemory(f"{self.name}: out of memory") from None
            try:
                return self.memory.alloc(0, node=node)
            except AllocationError:
                raise OutOfMemory(f"{self.name}: out of memory") from None

    def alloc_huge_region(self, node: int | None = None) -> int | None:
        """Allocate one huge-aligned 2 MiB region; None when unavailable."""
        try:
            start = self.memory.alloc(HUGE_ORDER, node=node)
        except AllocationError:
            return None
        return start // PAGES_PER_HUGE

    # ------------------------------------------------------------------
    # Promotion / demotion primitives
    # ------------------------------------------------------------------

    def try_promote_in_place(self, client: int, vregion: int) -> bool:
        """Zero-copy promotion when the region is contiguous and aligned."""
        table = self.table(client)
        pregion = table.promotable(vregion)
        if pregion is None:
            return False
        for vpn, pfn in table.region_items(vregion):
            self._del_rmap(pfn)
        table.promote_in_place(vregion)
        self._rmap_huge[pregion] = (client, vregion)
        self.ledger.charge("inplace_promotion", costs.INPLACE_PROMOTION_CYCLES)
        self._shootdown()
        return True

    def promote_with_migration(self, client: int, vregion: int) -> bool:
        """khugepaged-style promotion: copy the region into a fresh huge page.

        Works on partially-populated regions (the unpopulated tail is
        zero-filled, i.e. memory bloat) and charges per-page copy costs plus
        a TLB shoot-down.
        """
        table = self.table(client)
        if table.is_huge(vregion):
            return False
        mappings = table.region_mappings(vregion)
        if not mappings:
            return False
        pregion = self.alloc_huge_region()
        if pregion is None:
            return False
        if self.fast_kernels:
            table.unmap_region_base(vregion)
            self._drop_rmap_region(client, vregion, mappings)
            self._free_frames_batch(mappings.values())
        else:
            for vpn, old_pfn in mappings.items():
                table.unmap_base(vpn)
                self._drop_rmap(old_pfn, client, vpn)
                self.release_frame(old_pfn)
        table.map_huge(vregion, pregion)
        self._rmap_huge[pregion] = (client, vregion)
        populated = len(mappings)
        bloat = PAGES_PER_HUGE - populated
        if bloat:
            self._bloat[(client, vregion)] = bloat
        self.ledger.charge(
            "migration_promotion", costs.PAGE_COPY_CYCLES * populated
        )
        self.ledger.charge("pages_copied", 0.0, count=populated)
        self._shootdown()
        return True

    def compact_region(self, client: int, vregion: int, pregion: int) -> bool:
        """Migrate the region's pages *into* physical region *pregion* so
        every page sits at its huge-aligned offset.

        This is the primitive Gemini's promoter uses to turn a type-2
        mis-aligned huge page at the other layer into a well-aligned one:
        the target region is dictated by the other layer's huge page.  The
        move succeeds only if each destination frame is free or already
        holds the right page; returns False (without side effects)
        otherwise.
        """
        table = self.table(client)
        if table.is_huge(vregion):
            return False
        mappings = table.region_mappings(vregion)
        if not mappings:
            return False
        base = pregion * PAGES_PER_HUGE
        vbase = vregion * PAGES_PER_HUGE
        desired = {vpn: base + (vpn - vbase) for vpn in mappings}
        moves = {
            vpn: dst
            for vpn, dst in desired.items()
            if mappings[vpn] != dst
        }
        if not all(self.memory.is_free(dst) for dst in moves.values()):
            return False
        for dst in moves.values():
            self.memory.alloc_at(dst, 0)
        old = table.remap_region(vregion, desired)
        for vpn, dst in desired.items():
            old_pfn = old[vpn]
            if old_pfn == dst:
                continue
            self._drop_rmap(old_pfn, client, vpn)
            self._set_rmap(dst, client, vpn)
            self.release_frame(old_pfn)
        if moves:
            self.ledger.charge(
                "compaction_moves", costs.PAGE_COPY_CYCLES * len(moves)
            )
            self.ledger.charge("pages_copied", 0.0, count=len(moves))
            self._shootdown()
        return True

    def relocate_huge(self, client: int, vregion: int) -> bool:
        """Migrate a whole huge mapping to a freshly allocated region.

        Translation Ranger's contiguity maintenance moves even huge pages
        to assemble larger contiguous ranges; at the other translation
        layer the old backing no longer matches, so such moves *break*
        cross-layer alignment (one reason the paper measures the lowest
        well-aligned rates for Ranger).
        """
        table = self.table(client)
        old = table.huge_target(vregion)
        if old is None:
            return False
        target = self.alloc_huge_region()
        if target is None:
            return False
        table.unmap_huge(vregion)
        del self._rmap_huge[old]
        table.map_huge(vregion, target)
        self._rmap_huge[target] = (client, vregion)
        self.memory.free_range(old * PAGES_PER_HUGE, PAGES_PER_HUGE)
        self.ledger.charge(
            "huge_relocation", costs.PAGE_COPY_CYCLES * PAGES_PER_HUGE
        )
        self.ledger.charge("pages_copied", 0.0, count=PAGES_PER_HUGE)
        self._shootdown()
        return True

    def relocate_page(self, client: int, vpn: int, dst: int | None = None) -> bool:
        """Migrate one base page to *dst* (or a fresh frame).

        Used to evict pages that sit inside a region another mapping needs
        (Gemini's promoter clears foreign pages out of a target region).
        Charges the copy; the caller batches the TLB shoot-down.
        """
        table = self.table(client)
        vregion = vpn // PAGES_PER_HUGE
        mappings = table.region_mappings(vregion)
        old = mappings.get(vpn)
        if old is None:
            return False
        if dst is None:
            try:
                dst = self.memory.alloc(0)
            except AllocationError:
                return False
        else:
            if not self.memory.is_free(dst):
                return False
            self.memory.alloc_at(dst, 0)
        new_pfns = dict(mappings)
        new_pfns[vpn] = dst
        table.remap_region(vregion, new_pfns)
        self._drop_rmap(old, client, vpn)
        self._set_rmap(dst, client, vpn)
        self.release_frame(old)
        self.ledger.charge("page_relocation", costs.PAGE_COPY_CYCLES)
        self.ledger.charge("pages_copied", 0.0, count=1)
        return True

    def map_prealloc(self, client: int, vpn: int, frame: int) -> bool:
        """Pre-allocate and map a not-yet-touched page at a specific frame.

        EMA's huge preallocation (Section 4.2): when only a few base pages
        are missing from an otherwise promotable region, the allocator
        installs them eagerly so the region can be promoted in place.
        """
        table = self.table(client)
        if table.is_mapped(vpn) or not self.memory.is_free(frame):
            return False
        self.memory.alloc_at(frame, 0)
        table.map_base(vpn, frame)
        self._set_rmap(frame, client, vpn)
        self.ledger.charge("prealloc_fault", costs.BASE_FAULT_CYCLES, sync=False)
        return True

    def demote(self, client: int, vregion: int) -> None:
        """Splinter a huge mapping back into base mappings."""
        table = self.table(client)
        pregion = table.huge_target(vregion)
        if pregion is None:
            return
        table.demote(vregion)
        del self._rmap_huge[pregion]
        if self.fast_kernels:
            self._set_rmap_run(
                pregion * PAGES_PER_HUGE,
                client,
                vregion * PAGES_PER_HUGE,
                PAGES_PER_HUGE,
            )
        else:
            for vpn, pfn in table.region_items(vregion):
                self._set_rmap(pfn, client, vpn)
        self._bloat.pop((client, vregion), None)
        self.ledger.charge("demotion", costs.INPLACE_PROMOTION_CYCLES)
        self._shootdown()

    # ------------------------------------------------------------------
    # Unmapping
    # ------------------------------------------------------------------

    def unmap_range(self, client: int, start: int, npages: int) -> None:
        """Unmap ``[start, start + npages)`` and free the backing frames.

        Huge mappings fully inside the range are freed as whole regions
        (offered to the policy first — Gemini's bucket intercepts
        well-aligned ones); partially-covered huge mappings are demoted
        first.
        """
        table = self.table(client)
        end = start + npages
        first = start // PAGES_PER_HUGE
        last = (end - 1) // PAGES_PER_HUGE
        for vregion in range(first, last + 1):
            rstart = vregion * PAGES_PER_HUGE
            rend = rstart + PAGES_PER_HUGE
            if table.is_huge(vregion):
                if start <= rstart and rend <= end:
                    self._free_huge_mapping(client, vregion)
                    continue
                self.demote(client, vregion)
            if self.fast_kernels and start <= rstart and rend <= end:
                mappings = table.unmap_region_base(vregion)
                if mappings:
                    self._drop_rmap_region(client, vregion, mappings)
                    self._free_frames_batch(mappings.values())
                continue
            for vpn, pfn in table.region_mappings(vregion).items():
                if start <= vpn < end:
                    table.unmap_base(vpn)
                    self._drop_rmap(pfn, client, vpn)
                    self.release_frame(pfn)
        self.policy.on_unmap(client, start, end)

    def has_client(self, client: int) -> bool:
        """Does *client* have a page table on this layer?"""
        return client in self._tables

    def release_client(self, client: int) -> int:
        """Tear down *client*'s entire table and free its backing frames.

        The detach half of live migration: unlike :meth:`unmap_range`, the
        policy cannot intercept freed regions (no bucket custody — the VM
        is leaving this host), every frame goes straight back to the buddy
        allocator, and the table itself is dropped so the client id can be
        reused.  Returns the number of pages freed.  Shared (KSM) frames
        only count when their last reference is released.
        """
        table = self._tables.pop(client, None)
        if table is None:
            return 0
        freed = 0
        for vregion, pregion in list(table.huge_mappings()):
            table.unmap_huge(vregion)
            del self._rmap_huge[pregion]
            self._bloat.pop((client, vregion), None)
            self.memory.free_range(pregion * PAGES_PER_HUGE, PAGES_PER_HUGE)
            freed += PAGES_PER_HUGE
        if self.fast_kernels and not table._watchers:
            # The table is being discarded and nothing observes its events,
            # so the per-page unmaps are pure bookkeeping on dead state;
            # only the rmap drops, the refcount releases, and the buddy
            # frees are observable.  Buddy coalescing is order-independent,
            # so the batch free lands on the same allocator state.
            refs = self._frame_refs
            direct: list[int] = []
            for vpn, pfn in table.base_mappings():
                self._drop_rmap(pfn, client, vpn)
                if pfn in refs:
                    self.release_frame(pfn)
                else:
                    freed += 1
                    direct.append(pfn)
            self.memory.free_frames(direct)
        else:
            for vpn, pfn in list(table.base_mappings()):
                table.unmap_base(vpn)
                self._drop_rmap(pfn, client, vpn)
                if pfn not in self._frame_refs:
                    freed += 1
                self.release_frame(pfn)
        # Let the policy forget any per-client placement state (offset
        # descriptors, contiguity lists); the huge range covers every vpn.
        self.policy.on_unmap(client, 0, 1 << 52)
        return freed

    def _free_huge_mapping(self, client: int, vregion: int) -> None:
        table = self.table(client)
        pregion = table.unmap_huge(vregion)
        del self._rmap_huge[pregion]
        self._bloat.pop((client, vregion), None)
        aligned = bool(self.alignment_probe and self.alignment_probe(pregion))
        if not self.policy.on_region_freed(client, pregion, aligned):
            self.memory.free_range(pregion * PAGES_PER_HUGE, PAGES_PER_HUGE)

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------

    def charge_scan(self, nregions: int) -> None:
        """Charge (discounted) background scanning work."""
        self.ledger.charge(
            "daemon_scan",
            costs.SCAN_REGION_CYCLES * nregions * costs.BACKGROUND_DISCOUNT,
            count=nregions,
            sync=False,
        )

    def _shootdown(self) -> None:
        factor = costs.VIRT_SHOOTDOWN_FACTOR if self.virtualized else 1.0
        self.ledger.charge("tlb_shootdown", costs.TLB_SHOOTDOWN_CYCLES * factor)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def bloat_pages(self) -> int:
        """Zero-filled pages created by promoting under-populated regions."""
        return sum(self._bloat.values())

    def huge_mapping_count(self) -> int:
        return sum(t.huge_count for t in self._tables.values())

    def mapped_pages(self) -> int:
        return sum(t.mapped_pages for t in self._tables.values())
