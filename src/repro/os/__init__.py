"""Guest operating system substrate: virtual memory areas, address spaces,
and the MemoryLayer mechanism shared with the hypervisor."""

from repro.os.mm import MemoryLayer, OutOfMemory
from repro.os.vma import VMA, AddressSpace

__all__ = ["AddressSpace", "MemoryLayer", "OutOfMemory", "VMA"]
