"""Registry of the evaluated systems: (guest policy, host policy) pairs.

Names follow the paper's figures: Host-B-VM-B, Misalignment, THP, Ingens,
HawkEye, CA-paging, Translation-Ranger and Gemini, plus the two extra
static configurations of Figure 2 (Host-H-VM-H, Host-B-VM-H, Host-H-VM-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.policies.base import HugePagePolicy
from repro.policies.systems import (
    BasePagesOnly,
    CAPagingPolicy,
    HawkEyePolicy,
    HugeAlways,
    IngensPolicy,
    RangerPolicy,
    THPPolicy,
)

__all__ = ["SystemSpec", "SYSTEMS", "PAPER_SYSTEMS", "system_spec"]


def _gemini_guest() -> HugePagePolicy:
    # Imported lazily: repro.core builds on repro.policies, so a module-level
    # import here would be circular.
    from repro.core.policy import GeminiGuestPolicy

    return GeminiGuestPolicy()


def _gemini_host() -> HugePagePolicy:
    from repro.core.policy import GeminiHostPolicy

    return GeminiHostPolicy()


@dataclass(frozen=True)
class SystemSpec:
    """Factories for one evaluated system's per-layer policies."""

    name: str
    guest_factory: Callable[[], HugePagePolicy]
    host_factory: Callable[[], HugePagePolicy]
    uses_gemini_runtime: bool = False

    def make_guest(self) -> HugePagePolicy:
        return self.guest_factory()

    def make_host(self) -> HugePagePolicy:
        return self.host_factory()


SYSTEMS: dict[str, SystemSpec] = {
    spec.name: spec
    for spec in [
        SystemSpec("Host-B-VM-B", BasePagesOnly, BasePagesOnly),
        SystemSpec("Host-H-VM-H", HugeAlways, HugeAlways),
        SystemSpec("Host-B-VM-H", HugeAlways, BasePagesOnly),
        SystemSpec("Host-H-VM-B", BasePagesOnly, HugeAlways),
        SystemSpec("Misalignment", BasePagesOnly, HugeAlways),
        SystemSpec("THP", THPPolicy, THPPolicy),
        SystemSpec("Ingens", IngensPolicy, IngensPolicy),
        SystemSpec("HawkEye", HawkEyePolicy, HawkEyePolicy),
        SystemSpec("CA-paging", CAPagingPolicy, CAPagingPolicy),
        SystemSpec("Translation-Ranger", RangerPolicy, RangerPolicy),
        SystemSpec("Gemini", _gemini_guest, _gemini_host, uses_gemini_runtime=True),
    ]
}

#: The eight systems compared throughout Section 6.
PAPER_SYSTEMS = [
    "Host-B-VM-B",
    "Misalignment",
    "THP",
    "CA-paging",
    "Translation-Ranger",
    "HawkEye",
    "Ingens",
    "Gemini",
]


def system_spec(name: str) -> SystemSpec:
    """Look up a system by its paper name (case-sensitive)."""
    if name not in SYSTEMS:
        known = ", ".join(sorted(SYSTEMS))
        raise KeyError(f"unknown system {name!r}; known systems: {known}")
    return SYSTEMS[name]
