"""Concrete huge-page systems the paper evaluates (Section 2.3 / 6.1).

Each paper "system" is a (guest policy, host policy) pair; this module
defines the per-layer policy classes.  The pairings live in
:mod:`repro.policies.registry`.
"""

from __future__ import annotations

from repro.mem.layout import PAGES_PER_HUGE
from repro.policies.base import HugePagePolicy
from repro.policies.coalescing import CoalescingPolicy
from repro.policies.placement import OffsetPlacer
from repro.tlb import costs

__all__ = [
    "BasePagesOnly",
    "HugeAlways",
    "THPPolicy",
    "IngensPolicy",
    "HawkEyePolicy",
    "CAPagingPolicy",
    "RangerPolicy",
]


class BasePagesOnly(HugePagePolicy):
    """Never creates huge pages (one layer of the Host-B-VM-B baseline)."""

    name = "base-only"


class HugeAlways(HugePagePolicy):
    """Backs every eligible fault with a huge page, no coalescing.

    Used as the host side of the *Misalignment* scenario (host allocates
    only huge pages while the guest uses base pages) and, paired with
    itself, for the Host-H-VM-H configuration of Figure 2.
    """

    name = "huge-always"

    def wants_huge_fault(self, client: int, vregion: int) -> bool:
        assert self.layer is not None
        return self.layer.is_region_eligible(client, vregion)


class THPPolicy(CoalescingPolicy):
    """Linux Transparent Huge Pages.

    Synchronous huge faults (``always`` mode) that stall on direct
    compaction when memory is fragmented, plus a slow khugepaged daemon
    that promotes even sparsely-populated regions (``max_ptes_none`` is
    511 by default) by copying into freshly allocated huge pages.
    """

    name = "thp"

    def __init__(self, scan_budget: int = 1, sync_fault_budget: int = 1) -> None:
        super().__init__(
            sync_huge_faults=True,
            util_threshold=1.0 / PAGES_PER_HUGE,  # promote any population
            scan_budget=scan_budget,
            allow_migration=True,
            benefit_sorted=False,
            compaction_stalls=True,
            sync_fault_budget=sync_fault_budget,
            scan_period=2,
        )


class IngensPolicy(CoalescingPolicy):
    """Ingens (OSDI '16): asynchronous, utilization-based promotion.

    No synchronous huge faults (removing THP's fault latency); a dedicated
    daemon promotes regions whose utilization crosses 90%.
    """

    name = "ingens"

    def __init__(self, scan_budget: int = 3, util_threshold: float = 0.9) -> None:
        super().__init__(
            sync_huge_faults=False,
            util_threshold=util_threshold,
            scan_budget=scan_budget,
            allow_migration=True,
            benefit_sorted=False,
        )


class HawkEyePolicy(CoalescingPolicy):
    """HawkEye (ASPLOS '19): benefit-ordered asynchronous promotion.

    Promotes the regions with the highest expected translation benefit
    first (access coverage measured with performance counters; region
    population is the simulator's proxy), at a lower utilization threshold
    than Ingens.  Also deduplicates zero-filled pages, which backfires on
    workloads that later write those pages (the Specjbb anomaly of
    Section 6.2) — modelled by the engine charging copy-on-write faults
    when this flag is set.
    """

    name = "hawkeye"

    def __init__(self, scan_budget: int = 4, util_threshold: float = 0.5) -> None:
        super().__init__(
            sync_huge_faults=False,
            util_threshold=util_threshold,
            scan_budget=scan_budget,
            allow_migration=True,
            benefit_sorted=True,
            deduplicates_zero_pages=True,
        )


class CAPagingPolicy(CoalescingPolicy):
    """CA-paging (ISCA '20), software component.

    Contiguity-aware placement: each VMA is anchored to a large free
    physical region and subsequent faults extend the run contiguously.
    The anchor offset follows the first fault address, so it is generally
    *not* huge-aligned: the contiguity would pay off with range-TLB
    hardware, but yields few in-place-promotable huge regions, which is
    why the paper measures low well-aligned rates for it (Tables 1/3/4).
    Promotion behaviour is THP-like (it runs atop vanilla khugepaged).
    """

    name = "ca-paging"

    def __init__(
        self,
        scan_budget: int = 1,
        host_chunk_regions: int = 16,
        sync_fault_budget: int = 1,
    ) -> None:
        super().__init__(
            sync_huge_faults=True,
            util_threshold=1.0 / PAGES_PER_HUGE,
            scan_budget=scan_budget,
            allow_migration=True,
            compaction_stalls=True,
            sync_fault_budget=sync_fault_budget,
            scan_period=2,
        )
        self.host_chunk_regions = host_chunk_regions
        self._placer: OffsetPlacer | None = None

    def attach(self, layer) -> None:
        super().attach(layer)
        self._placer = OffsetPlacer(
            layer, align_huge=False, range_of=self._range_of
        )

    def _range_of(self, client: int, vpn: int) -> tuple[int, int] | None:
        """The contiguity scope: the VMA in a guest, a fixed chunk of
        guest-physical space in the host."""
        assert self.layer is not None
        if self.layer.virtualized:
            finder = getattr(self.layer, "vma_bounds", None)
            if finder is None:
                return None
            return finder(client, vpn)
        chunk = self.host_chunk_regions * PAGES_PER_HUGE
        start = (vpn // chunk) * chunk
        return (start, start + chunk)

    def choose_base_frame(self, client: int, vpn: int) -> int | None:
        assert self._placer is not None
        return self._placer.place(client, vpn)

    def choose_base_frames(
        self, client: int, vpn: int, max_pages: int
    ) -> tuple[int | None, int] | None:
        assert self._placer is not None
        return self._placer.place_run(client, vpn, max_pages)

    def on_unmap(self, client: int, vstart: int, vend: int) -> None:
        if self._placer is not None:
            self._placer.drop_client(client, vstart, vend)


class RangerPolicy(CoalescingPolicy):
    """Translation Ranger (ISCA '19): aggressive contiguity through
    continuous page migration.

    Promotes anything it can reach with a large budget and additionally
    keeps migrating pages to coalesce contiguous runs, paying copy and
    TLB-shoot-down costs that the paper finds negate its benefits in VMs
    (Section 6.2: the only system that *lowers* throughput vs. the
    base-page baseline).
    """

    name = "ranger"

    #: Fraction of the layer's mapped pages re-migrated per scan purely
    #: for contiguity maintenance (Translation Ranger continuously
    #: rearranges memory; the copies and shoot-downs compete with the
    #: workload for memory bandwidth and run synchronously).
    CONTIGUITY_MOVE_FRACTION = 1.0

    def __init__(self, scan_budget: int = 8) -> None:
        super().__init__(
            sync_huge_faults=False,
            util_threshold=1.0 / PAGES_PER_HUGE,
            scan_budget=scan_budget,
            allow_migration=True,
            benefit_sorted=False,
        )

    #: Fraction of huge mappings relocated per scan while assembling
    #: contiguous ranges (minimum a handful).
    HUGE_RELOCATION_FRACTION = 0.35
    HUGE_RELOCATIONS_MIN = 8

    def scan(self, budget: int | None = None) -> int:
        assert self.layer is not None
        promoted = super().scan(budget)
        self._reshuffle_huge_mappings()
        # Contiguity maintenance: migrate pages between regions even when
        # no promotion results.  These moves run while the workload
        # executes, so their shoot-downs and copies are synchronous costs.
        mapped = self.layer.mapped_pages()
        if mapped == 0:
            return promoted
        moves = int(mapped * self.CONTIGUITY_MOVE_FRACTION)
        self.layer.ledger.charge(
            "ranger_contiguity_moves", costs.PAGE_COPY_CYCLES * moves, count=moves
        )
        factor = costs.VIRT_SHOOTDOWN_FACTOR if self.layer.virtualized else 1.0
        self.layer.ledger.charge(
            "tlb_shootdown",
            costs.TLB_SHOOTDOWN_CYCLES * factor * max(1, moves // 64),
            count=max(1, moves // 64),
        )
        return promoted

    def _reshuffle_huge_mappings(self) -> None:
        """Relocate a few huge mappings per scan to grow contiguous runs.

        The relocation keeps this layer's huge page but decouples it from
        whatever the other layer had formed underneath/above it — one
        reason the paper measures the lowest well-aligned rates for
        Ranger.
        """
        assert self.layer is not None
        total_huge = self.layer.huge_mapping_count()
        quota = max(
            self.HUGE_RELOCATIONS_MIN,
            int(total_huge * self.HUGE_RELOCATION_FRACTION),
        )
        moved = 0
        for client in list(self.layer.clients()):
            table = self.layer.table(client)
            for vregion, _ in list(table.huge_mappings()):
                if moved >= quota:
                    return
                if self.layer.relocate_huge(client, vregion):
                    moved += 1
