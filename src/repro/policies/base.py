"""Huge-page policy interface.

A :class:`HugePagePolicy` instance governs one layer (the guest OS or the
host/hypervisor) of one :class:`repro.os.mm.MemoryLayer`.  The layer calls
into the policy on the fault path, during background daemon passes, and on
frees; the policy calls back into the layer's promotion/allocation
primitives.  All seven systems the paper compares — Host-B-VM-B,
Misalignment, THP, Ingens, HawkEye, CA-paging, Translation-Ranger — and
Gemini itself are implementations of this interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.os.mm import MemoryLayer

__all__ = ["EpochTelemetry", "HugePagePolicy"]


class EpochTelemetry:
    """Per-epoch feedback delivered to policies (Algorithm 1 inputs)."""

    def __init__(self, epoch: int, tlb_misses: float, fmfi: float) -> None:
        self.epoch = epoch
        self.tlb_misses = tlb_misses
        self.fmfi = fmfi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpochTelemetry(epoch={self.epoch}, tlb_misses={self.tlb_misses:.0f}, "
            f"fmfi={self.fmfi:.2f})"
        )


class HugePagePolicy:
    """Default policy: base pages only, no coalescing (one layer of
    Host-B-VM-B)."""

    name = "base-only"

    def __init__(self) -> None:
        self.layer: "MemoryLayer | None" = None

    def attach(self, layer: "MemoryLayer") -> None:
        """Bind the policy to its layer; called once by the layer."""
        self.layer = layer

    # ------------------------------------------------------------------
    # Fault path
    # ------------------------------------------------------------------

    def wants_huge_fault(self, client: int, vregion: int) -> bool:
        """Should the fault on *vregion* be served with a whole huge page?

        Only consulted when the faulting VMA covers the full 2 MiB region
        and the region has no existing base mappings.
        """
        return False

    def alloc_huge_region(self, client: int, vregion: int) -> int | None:
        """Provide the physical region for a huge fault, or None to decline.

        The returned region must already be allocated from the layer's
        memory (the default implementation allocates from the buddy).
        """
        assert self.layer is not None
        return self.layer.alloc_huge_region()

    def choose_base_frame(self, client: int, vpn: int) -> int | None:
        """Pick and allocate the frame for a base fault; None for default.

        Returning a frame transfers ownership: the policy must have
        allocated it (e.g. via ``layer.memory.alloc_at``).  CA-paging and
        Gemini's EMA implement their placement logic here.
        """
        return None

    def choose_base_frames(
        self, client: int, vpn: int, max_pages: int
    ) -> tuple[int | None, int] | None:
        """Batched :meth:`choose_base_frame` for the unmapped, same-region
        run ``[vpn, vpn + max_pages)``.

        Must reproduce exactly what ``max_pages`` successive
        ``choose_base_frame`` calls would decide, including side effects:

        * ``(frame, count)`` — the serial path would have returned
          ``frame + i`` for page ``vpn + i`` for the first *count* pages,
          and those frames are now claimed;
        * ``(None, count)`` — the serial path would have returned None for
          the first *count* pages, with no placement side effects (the
          caller default-allocates them);
        * ``None`` — no batched equivalent is available: the caller must
          fall back to one single-page ``choose_base_frame`` call.

        The default is safe for any subclass: policies that keep the
        default per-page placement (always None, no side effects) batch
        trivially; policies that override :meth:`choose_base_frame` must
        provide their own batched form or run page by page.
        """
        if type(self).choose_base_frame is HugePagePolicy.choose_base_frame:
            return (None, max_pages)
        return None

    # ------------------------------------------------------------------
    # Background daemon
    # ------------------------------------------------------------------

    def scan(self, budget: int) -> None:
        """One background promotion pass, at most *budget* regions of work."""

    # ------------------------------------------------------------------
    # Feedback and reclaim
    # ------------------------------------------------------------------

    def on_epoch(self, telemetry: EpochTelemetry) -> None:
        """Epoch-boundary feedback (TLB misses, fragmentation)."""

    def on_region_freed(self, client: int, pregion: int, aligned: bool) -> bool:
        """A huge-mapped physical region was just unmapped.

        Return True to take ownership of the (still-allocated) region —
        Gemini's huge bucket does this to recycle well-aligned huge pages —
        or False to let the layer free it to the buddy allocator.
        """
        return False

    def on_pressure(self) -> int:
        """Memory pressure callback; return the number of pages released."""
        return 0

    def on_unmap(self, client: int, vstart: int, vend: int) -> None:
        """A virtual range was unmapped; drop placement state covering it."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
