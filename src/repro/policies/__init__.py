"""Huge-page policies: the policy interface, shared coalescing and
placement machinery, the seven comparison systems, and the system registry."""

from repro.policies.base import EpochTelemetry, HugePagePolicy
from repro.policies.coalescing import CoalescingPolicy
from repro.policies.placement import ContiguityList, OffsetDescriptor, OffsetPlacer
from repro.policies.registry import PAPER_SYSTEMS, SYSTEMS, SystemSpec, system_spec
from repro.policies.systems import (
    BasePagesOnly,
    CAPagingPolicy,
    HawkEyePolicy,
    HugeAlways,
    IngensPolicy,
    RangerPolicy,
    THPPolicy,
)

__all__ = [
    "BasePagesOnly",
    "CAPagingPolicy",
    "CoalescingPolicy",
    "ContiguityList",
    "EpochTelemetry",
    "HawkEyePolicy",
    "HugeAlways",
    "HugePagePolicy",
    "IngensPolicy",
    "OffsetDescriptor",
    "OffsetPlacer",
    "PAPER_SYSTEMS",
    "RangerPolicy",
    "SYSTEMS",
    "SystemSpec",
    "system_spec",
    "THPPolicy",
]
