"""Offset-based physical placement: contiguity list, offset descriptors and
sub-VMA re-anchoring.

This module implements the allocation machinery of the paper's Section 4.2
and Section 5 in a form shared by two policies:

* **CA-paging** anchors each VMA to a free physical region at an *arbitrary*
  offset (it maximises contiguity, which would pay off with range-TLB
  hardware, but the offset is generally not a multiple of 512 pages so the
  resulting contiguity rarely yields in-place-promotable, huge-aligned
  regions);
* **Gemini's EMA** anchors with *huge-aligned* offsets
  (``GuestOffset = GVA1 - GPA1`` with both region starts 2 MiB aligned) and
  prefers regions supplied by a hook — the huge-booking component and the
  huge bucket — so new huge pages form exactly under the other layer's
  mis-aligned huge pages.

Descriptors are kept in a self-organizing (move-to-front) list as described
in Section 5.  When a computed target frame is unavailable, the remaining
part of the range is re-anchored on a fresh region — the paper's *sub-VMA*
mechanism — keeping descriptor ranges disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.mem.buddy import AllocationError
from repro.mem.layout import PAGES_PER_HUGE, huge_align_down, huge_align_up

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.os.mm import MemoryLayer

__all__ = ["OffsetDescriptor", "ContiguityList", "OffsetPlacer"]


@dataclass
class OffsetDescriptor:
    """Physical placement rule for virtual range ``[vstart, vend)``:
    ``pfn = vpn - offset``."""

    client: int
    vstart: int
    vend: int
    offset: int
    #: Target frames found occupied under this descriptor.  A few misses
    #: are tolerated (the stray pages are placed by the default allocator
    #: and later compacted back); persistent conflict re-anchors the
    #: remaining range (sub-VMA).
    misses: int = 0

    def covers(self, client: int, vpn: int) -> bool:
        return client == self.client and self.vstart <= vpn < self.vend


class ContiguityList:
    """Sorted list of free contiguous physical regions with next-fit search.

    Rebuilt from the buddy allocator's free lists on demand (anchoring is
    rare: once per VMA or sub-VMA).  The next-fit cursor persists across
    rebuilds, as in the paper's Section 5: searches resume "from the place
    where it left off the previous time" so small allocations keep to the
    low end of memory and large free regions stay unfragmented.
    """

    def __init__(self, layer: "MemoryLayer") -> None:
        self._layer = layer
        self._cursor = 0

    def find(self, span: int, huge_aligned: bool) -> int | None:
        """Start frame of a free region able to host *span* pages.

        Falls back to the largest free region when nothing fits the whole
        span (the caller then covers the tail through sub-VMA re-anchoring).
        Returns None only when no usable free region exists at all.
        """
        if huge_aligned:
            return self._find_aligned(span)
        return self._find_unaligned(span)

    def _find_aligned(self, span: int) -> int | None:
        # Only regions of at least one huge page can survive the alignment
        # padding, so the allocator's (short) large-region list is the
        # complete candidate set.
        usable = []
        for start, size in self._layer.memory.large_free_regions():
            aligned = huge_align_up(start)
            remaining = size - (aligned - start)
            if remaining >= PAGES_PER_HUGE:
                usable.append((aligned, remaining))
        if not usable:
            return None
        ordered = self._from_cursor(usable)
        for start, size in ordered:
            if size >= span:
                self._cursor = start
                return start
        start, size = max(usable, key=lambda r: r[1])
        self._cursor = start
        return start

    def _find_unaligned(self, span: int) -> int | None:
        # Next-fit over every free region, resuming at the cursor; the
        # allocator iterates its region index directly, so no per-call
        # region list is materialised.
        memory = self._layer.memory
        for start, size in memory.iter_free_regions_split(self._cursor):
            if size >= span:
                self._cursor = start
                return start
        largest = memory.max_free_region()
        if largest is None:
            return None
        self._cursor = largest[0]
        return largest[0]

    def _from_cursor(self, regions: list[tuple[int, int]]) -> list[tuple[int, int]]:
        after = [r for r in regions if r[0] >= self._cursor]
        before = [r for r in regions if r[0] < self._cursor]
        return after + before


class OffsetPlacer:
    """Places base-fault frames according to per-range offset descriptors."""

    def __init__(
        self,
        layer: "MemoryLayer",
        align_huge: bool,
        range_of: Callable[[int, int], tuple[int, int] | None],
        preferred_anchor: Callable[[int, int], int | None] | None = None,
        claim_hook: Callable[[int], bool] | None = None,
    ) -> None:
        """*range_of(client, vpn)* returns the enclosing virtual range
        ``(vstart, vend)`` (the VMA in the guest, a fixed-size chunk of
        guest-physical space in the host) or None when the placer should not
        handle the fault.  *preferred_anchor(client, vpn)* may return a
        physical region index to anchor at (Gemini's booked/bucket regions).
        *claim_hook(frame)* may claim a frame from policy-reserved space
        (booked regions are already allocated in the buddy, so the default
        buddy claim cannot hand them out)."""
        self.layer = layer
        self.align_huge = align_huge
        self.range_of = range_of
        self.preferred_anchor = preferred_anchor
        self.claim_hook = claim_hook
        self.contiguity = ContiguityList(layer)
        self._descriptors: list[OffsetDescriptor] = []
        self.anchors = 0
        self.sub_vma_splits = 0
        #: Occupied-target faults tolerated per descriptor before the
        #: remaining range is re-anchored.  Transiently-held frames (short
        #: -lived kernel objects) release quickly, and the stray pages they
        #: cause are cheap to compact later; wholesale re-anchoring on the
        #: first conflict would shatter the layout instead.
        self.miss_tolerance = 16

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def place(self, client: int, vpn: int) -> int | None:
        """Allocate and return the frame for *vpn*, or None to use the
        default allocator."""
        bounds = self.range_of(client, vpn)
        if bounds is None:
            return None
        vstart, vend = bounds
        if vend - vstart < PAGES_PER_HUGE:
            # The paper only applies the mechanism to VMAs larger than the
            # huge page size.
            return None
        descriptor = self._lookup(client, vpn)
        if descriptor is not None:
            target = vpn - descriptor.offset
            if self._claim(target):
                return target
            descriptor.misses += 1
            if descriptor.misses <= self.miss_tolerance:
                # Tolerate the conflict: let the default allocator place
                # this one page; compaction pulls it back later.
                return None
            # Persistent conflict: re-anchor the remaining range (sub-VMA).
            self._truncate(descriptor, vpn)
            self.sub_vma_splits += 1
        descriptor = self._anchor(client, vpn, vend)
        if descriptor is None:
            return None
        target = vpn - descriptor.offset
        if self._claim(target):
            return target
        return None

    def place_run(
        self, client: int, vpn: int, max_pages: int
    ) -> tuple[int | None, int]:
        """Batched :meth:`place` for the unmapped run ``[vpn, vpn + max_pages)``
        (all pages inside the virtual range enclosing *vpn*).

        Returns ``(frame, count)`` when the serial path would have placed
        the first *count* pages at ``frame .. frame + count - 1`` (now
        claimed), or ``(None, count)`` when it would have returned None for
        the first *count* pages without placement side effects.  Descriptor
        bookkeeping (misses, truncation, anchoring) is applied exactly as
        the per-page path would.
        """
        bounds = self.range_of(client, vpn)
        if bounds is None:
            return (None, 1)
        vstart, vend = bounds
        limit = min(max_pages, vend - vpn)
        if limit <= 0:
            return (None, 1)
        if vend - vstart < PAGES_PER_HUGE:
            # Under the huge-page size: every page of this range takes the
            # default allocator, with no descriptor side effects.
            return (None, limit)
        descriptor = self._lookup(client, vpn)
        if descriptor is not None:
            target = vpn - descriptor.offset
            claimed = self._claim_run(target, min(limit, descriptor.vend - vpn))
            if claimed:
                return (target, claimed)
            descriptor.misses += 1
            if descriptor.misses <= self.miss_tolerance:
                return (None, 1)
            self._truncate(descriptor, vpn)
            self.sub_vma_splits += 1
        descriptor = self._anchor(client, vpn, vend)
        if descriptor is None:
            return (None, 1)
        target = vpn - descriptor.offset
        claimed = self._claim_run(target, min(limit, descriptor.vend - vpn))
        if claimed:
            return (target, claimed)
        return (None, 1)

    # ------------------------------------------------------------------
    # Descriptor management (self-organizing list)
    # ------------------------------------------------------------------

    def _lookup(self, client: int, vpn: int) -> OffsetDescriptor | None:
        for index, descriptor in enumerate(self._descriptors):
            if descriptor.covers(client, vpn):
                if index:
                    # Move to front: recently used descriptors are found
                    # faster next time (self-organizing linear search).
                    self._descriptors.insert(0, self._descriptors.pop(index))
                return descriptor
        return None

    def _truncate(self, descriptor: OffsetDescriptor, vpn: int) -> None:
        """Shrink *descriptor* so it no longer covers *vpn* onwards."""
        cut = max(huge_align_down(vpn), descriptor.vstart)
        if cut <= descriptor.vstart:
            self._descriptors.remove(descriptor)
        else:
            descriptor.vend = cut

    def drop_client(self, client: int, vstart: int, vend: int) -> None:
        """Forget descriptors overlapping an unmapped range."""
        self._descriptors = [
            d
            for d in self._descriptors
            if not (d.client == client and d.vstart < vend and vstart < d.vend)
        ]

    # ------------------------------------------------------------------
    # Anchoring
    # ------------------------------------------------------------------

    def _anchor(self, client: int, vpn: int, vend: int) -> OffsetDescriptor | None:
        anchor_vstart = huge_align_down(vpn)
        span = vend - anchor_vstart
        physical_start = self._preferred_start(client, vpn)
        if physical_start is None:
            physical_start = self.contiguity.find(span, self.align_huge)
        if physical_start is None:
            return None
        if self.align_huge:
            # GuestOffset = GVA1 - GPA1 with both huge-region starts, so the
            # offset is a multiple of 512 and contiguously-placed base pages
            # are in-place promotable.
            offset = anchor_vstart - physical_start
        else:
            # CA-paging: contiguity from the fault address itself; offset is
            # generally unaligned.
            offset = vpn - physical_start
        descriptor = OffsetDescriptor(
            client=client, vstart=anchor_vstart, vend=vend, offset=offset
        )
        self._descriptors.insert(0, descriptor)
        self.anchors += 1
        return descriptor

    def _preferred_start(self, client: int, vpn: int) -> int | None:
        if self.preferred_anchor is None:
            return None
        pregion = self.preferred_anchor(client, vpn)
        if pregion is None:
            return None
        return pregion * PAGES_PER_HUGE

    # ------------------------------------------------------------------
    # Claiming
    # ------------------------------------------------------------------

    def _claim(self, frame: int) -> bool:
        if frame < 0 or frame >= self.layer.memory.total_pages:
            return False
        if self.claim_hook is not None and self.claim_hook(frame):
            return True
        if not self.layer.memory.is_free(frame):
            return False
        try:
            self.layer.memory.alloc_at(frame, 0)
        except (AllocationError, ValueError):
            return False
        return True

    def _claim_run(self, start: int, npages: int) -> int:
        """Claim the maximal prefix of ``[start, start + npages)``, frame by
        frame exactly as :meth:`_claim` would; returns the claimed count.

        Buddy-free stretches are claimed in one ``alloc_range`` call, which
        leaves the free lists in the same (canonical) state as per-frame
        ``alloc_at`` calls.  The hook-first probe order is preserved: frames
        claimable through the hook (booked/bucketed regions) are already
        allocated in the buddy, so the two sources are disjoint.
        """
        memory = self.layer.memory
        total = memory.total_pages
        hook = self.claim_hook
        claimed = 0
        while claimed < npages:
            frame = start + claimed
            if frame < 0 or frame >= total:
                break
            if hook is not None and hook(frame):
                claimed += 1
                continue
            run = memory.free_run_length(frame, npages - claimed)
            if run == 0:
                break
            memory.alloc_range(frame, run)
            claimed += run
        return claimed
