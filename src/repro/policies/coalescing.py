"""Parameterised dynamic page-coalescing engine.

THP, Ingens, HawkEye and Translation-Ranger all follow the same skeleton —
optionally serve faults with huge pages, and run a background daemon that
promotes populated regions, in place when possible and by copying into a
fresh huge page otherwise.  They differ in the knobs (Sections 2.3 and 7 of
the paper, and the cited systems' own papers):

============  ==========  ===========  ========  =========================
system        sync fault  threshold    budget    candidate order
============  ==========  ===========  ========  =========================
THP           yes         sparse (1)   small     round-robin (khugepaged)
Ingens        no (async)  90% util     medium    round-robin
HawkEye       no (async)  ~50% util    medium    access benefit (population)
Ranger        no          any (1)      large     round-robin + extra moves
============  ==========  ===========  ========  =========================

Concrete policy classes live in :mod:`repro.policies.systems`.
"""

from __future__ import annotations

from repro.mem.layout import PAGES_PER_HUGE
from repro.policies.base import HugePagePolicy
from repro.tlb import costs

__all__ = ["CoalescingPolicy"]

#: Synchronous direct-compaction stall charged when a huge fault cannot
#: find a free huge page (the THP latency problem Ingens identifies).
DIRECT_COMPACTION_CYCLES = 30_000.0


class CoalescingPolicy(HugePagePolicy):
    """Fault-time and daemon-time page coalescing with tunable aggression."""

    name = "coalescing"

    def __init__(
        self,
        sync_huge_faults: bool = False,
        util_threshold: float = 0.9,
        scan_budget: int = 8,
        allow_migration: bool = True,
        benefit_sorted: bool = False,
        defer_limit: int = 8,
        compaction_stalls: bool = False,
        deduplicates_zero_pages: bool = False,
        sync_fault_budget: int | None = None,
        scan_period: int = 1,
    ) -> None:
        super().__init__()
        if not 0.0 <= util_threshold <= 1.0:
            raise ValueError(f"util_threshold out of [0, 1]: {util_threshold}")
        self.sync_huge_faults = sync_huge_faults
        self.util_threshold = util_threshold
        self.scan_budget = scan_budget
        self.allow_migration = allow_migration
        self.benefit_sorted = benefit_sorted
        self.defer_limit = defer_limit
        self.compaction_stalls = compaction_stalls
        self.deduplicates_zero_pages = deduplicates_zero_pages
        #: Maximum huge faults served per epoch (None = unlimited).  Real
        #: fault-time huge allocation is rate-limited by direct-reclaim /
        #: compaction stalls; beyond the budget the fault takes the base
        #: path and khugepaged handles the region later.
        self.sync_fault_budget = sync_fault_budget
        #: Run the daemon only every scan_period-th scan call (khugepaged's
        #: slow cadence relative to dedicated daemons like Ingens's).
        self.scan_period = max(1, scan_period)
        self._sync_faults_this_epoch = 0
        self._scan_calls = 0
        self._fail_streak = 0
        self._cursor = 0

    # ------------------------------------------------------------------
    # Fault path
    # ------------------------------------------------------------------

    def wants_huge_fault(self, client: int, vregion: int) -> bool:
        if not self.sync_huge_faults:
            return False
        if self._fail_streak >= self.defer_limit:
            # Like THP's deferred mode: stop stalling faults on compaction
            # after repeated failures; khugepaged picks the region up later.
            return False
        if (
            self.sync_fault_budget is not None
            and self._sync_faults_this_epoch >= self.sync_fault_budget
        ):
            return False
        assert self.layer is not None
        return self.layer.is_region_eligible(client, vregion)

    def alloc_huge_region(self, client: int, vregion: int) -> int | None:
        assert self.layer is not None
        pregion = self.layer.alloc_huge_region()
        if pregion is None:
            self._fail_streak += 1
            if self.compaction_stalls:
                self.layer.ledger.charge(
                    "direct_compaction", DIRECT_COMPACTION_CYCLES
                )
        else:
            self._fail_streak = 0
            self._sync_faults_this_epoch += 1
        return pregion

    # ------------------------------------------------------------------
    # Background daemon
    # ------------------------------------------------------------------

    def scan(self, budget: int | None = None) -> int:
        """One daemon pass; returns the number of regions promoted."""
        assert self.layer is not None
        self._scan_calls += 1
        if self._scan_calls % self.scan_period != 0:
            return 0
        budget = self.scan_budget if budget is None else budget
        candidates = self._candidates()
        self.layer.charge_scan(len(candidates))
        promoted = 0
        for client, vregion, _pop in self._ordered(candidates):
            if promoted >= budget:
                break
            if self._promote(client, vregion):
                promoted += 1
        return promoted

    def _candidates(self) -> list[tuple[int, int, int]]:
        assert self.layer is not None
        min_pages = max(1, int(self.util_threshold * PAGES_PER_HUGE))
        found = []
        for client in self.layer.clients():
            table = self.layer.table(client)
            for vregion in list(table.populated_regions()):
                population = table.region_population(vregion)
                if population < min_pages:
                    continue
                if not self.layer.is_region_eligible(client, vregion):
                    continue
                found.append((client, vregion, population))
        return found

    def _ordered(self, candidates: list[tuple[int, int, int]]) -> list[tuple[int, int, int]]:
        if self.benefit_sorted:
            # HawkEye orders by expected benefit; region population is the
            # simulator's proxy for its access-coverage estimate.
            return sorted(candidates, key=lambda c: c[2], reverse=True)
        if not candidates:
            return candidates
        # Round-robin: continue after the last scan position.
        self._cursor %= len(candidates)
        rotated = candidates[self._cursor:] + candidates[: self._cursor]
        self._cursor += self.scan_budget
        return rotated

    def _promote(self, client: int, vregion: int) -> bool:
        assert self.layer is not None
        if self.layer.try_promote_in_place(client, vregion):
            return True
        if self.allow_migration:
            return self.layer.promote_with_migration(client, vregion)
        return False

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------

    def on_epoch(self, telemetry) -> None:
        self._fail_streak = 0
        self._sync_faults_this_epoch = 0
