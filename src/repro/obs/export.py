"""Exporters: JSONL event logs, Chrome/Perfetto traces, time series.

Three output formats, all plain text/JSON so they need no dependencies:

* **JSONL** — one event per line, round-trippable via
  :func:`read_jsonl`; the replayable record of every decision a run
  made.
* **Chrome trace** — the ``chrome://tracing`` / Perfetto JSON array
  format (https://ui.perfetto.dev loads it directly).  Spans become
  complete (``"ph": "X"``) slices with microsecond timestamps; events
  become instants (``"ph": "i"``); hosts map to trace *pids* with
  metadata naming.
* **time series** — per ``(epoch, host)`` rows distilled from the
  event stream, rendered to CSV by
  :func:`repro.metrics.report.telemetry_series_to_csv`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from repro.obs.events import Event
from repro.obs.telemetry import Telemetry

__all__ = [
    "events_to_jsonl",
    "read_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "timeseries_rows",
    "export_run",
]


def events_to_jsonl(events: Iterable[Event]) -> str:
    """Serialise events as JSON Lines (one object per line)."""
    return "".join(event.to_json() + "\n" for event in events)


def read_jsonl(text: str) -> list[Event]:
    """Parse JSONL text back into events (inverse of events_to_jsonl)."""
    return [
        Event.from_json(line)
        for line in text.splitlines()
        if line.strip()
    ]


def write_jsonl(events: Iterable[Event], path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(events_to_jsonl(events))


def _trace_pid(host: int | None) -> int:
    """Hosts map to pid host+1; pid 0 is the controller (host=None)."""
    return 0 if host is None else host + 1


def chrome_trace(telemetry: Telemetry,
                 include_events: bool = True) -> dict[str, object]:
    """Render spans (and optionally events) in Chrome trace format.

    Returns the ``{"traceEvents": [...]}`` object; every slice carries
    the ``ph``/``ts``/``dur`` fields the viewers require, with
    timestamps in microseconds.
    """
    trace_events: list[dict[str, object]] = []
    pids: set[int] = set()
    for name, host, start, duration, depth in telemetry.span_trace():
        pid = _trace_pid(host)
        pids.add(pid)
        trace_events.append(
            {
                "name": name,
                "cat": "span",
                "ph": "X",
                "ts": start * 1e6,
                "dur": duration * 1e6,
                "pid": pid,
                "tid": 0,
                "args": {"depth": depth},
            }
        )
    if include_events:
        for event in telemetry.events():
            pid = _trace_pid(event.host)
            pids.add(pid)
            args: dict[str, object] = {"epoch": event.epoch, "seq": event.seq}
            for key, value in event.fields:
                args[key] = value if not isinstance(value, tuple) else list(value)
            trace_events.append(
                {
                    "name": event.kind,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": event.wall * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
    for pid in sorted(pids):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "controller" if pid == 0 else f"host{pid - 1}"},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(telemetry: Telemetry, path: str | pathlib.Path,
                       include_events: bool = True) -> None:
    pathlib.Path(path).write_text(
        json.dumps(chrome_trace(telemetry, include_events), default=str)
    )


#: Event kinds folded into the per-epoch time series, mapped to the
#: summed columns they contribute.
_SERIES_KINDS = frozenset({
    "host.epoch", "sim.epoch", "booking.book", "booking.expire",
    "promote.guest", "promote.host", "fleet.migrate",
    "pressure.watermark", "swap.out", "swap.in", "pressure.demote",
})


def timeseries_rows(events: Iterable[Event]) -> list[dict[str, object]]:
    """Distil the event stream into per ``(epoch, host)`` rows.

    Each row counts the decision events landed on that host in that
    epoch and carries the last-seen per-epoch summary fields (FMFI,
    alignment) from ``host.epoch``/``sim.epoch`` records.
    """
    table: dict[tuple[int, int | None], dict[str, object]] = {}
    for event in events:
        if event.kind not in _SERIES_KINDS or event.epoch is None:
            continue
        key = (event.epoch, event.host)
        row = table.get(key)
        if row is None:
            row = table[key] = {
                "epoch": event.epoch,
                "host": event.host,
                "bookings": 0,
                "expirations": 0,
                "guest_promotions": 0,
                "host_promotions": 0,
                "migrations": 0,
            }
        if event.kind == "booking.book":
            row["bookings"] = row["bookings"] + 1  # type: ignore[operator]
        elif event.kind == "booking.expire":
            row["expirations"] = row["expirations"] + dict(event.fields).get(
                "count", 1
            )  # type: ignore[operator]
        elif event.kind == "promote.guest":
            row["guest_promotions"] = (
                row["guest_promotions"]
                + dict(event.fields).get("promoted", 0)  # type: ignore[operator]
            )
        elif event.kind == "promote.host":
            row["host_promotions"] = (
                row["host_promotions"]
                + dict(event.fields).get("promoted", 0)  # type: ignore[operator]
            )
        elif event.kind == "fleet.migrate":
            row["migrations"] = row["migrations"] + 1  # type: ignore[operator]
        elif event.kind == "swap.out":
            row["swap_out_pages"] = (
                row.get("swap_out_pages", 0)
                + dict(event.fields).get("pages", 0)  # type: ignore[operator]
            )
        elif event.kind == "swap.in":
            row["swap_in_pages"] = (
                row.get("swap_in_pages", 0)
                + dict(event.fields).get("pages", 0)  # type: ignore[operator]
            )
        elif event.kind == "pressure.demote":
            row["aligned_demotions"] = (
                row.get("aligned_demotions", 0)
                + dict(event.fields).get("aligned", 0)  # type: ignore[operator]
            )
        elif event.kind == "pressure.watermark":
            fields = dict(event.fields)
            row["watermark"] = fields.get("level", "")
            row["free_pages"] = fields.get("free_pages", "")
        else:  # host.epoch / sim.epoch summary records
            for key_name, value in event.fields:
                row[key_name] = value
    return [table[key] for key in sorted(table, key=_row_order)]


def _row_order(key: tuple[int, int | None]) -> tuple[int, int]:
    epoch, host = key
    return (epoch, -1 if host is None else host)


def export_run(
    telemetry: Telemetry,
    out_dir: str | pathlib.Path,
    include_events: bool = True,
) -> dict[str, pathlib.Path]:
    """Write all exports for one run into *out_dir*.

    Produces ``events.jsonl``, ``trace.json`` (Chrome/Perfetto),
    ``series.csv``, ``spans.json`` and ``stats.json`` (volume
    accounting — including any dropped spans — plus counters, gauges
    and histogram quantiles, the deterministic side of the run that
    ``repro diff`` compares); returns the paths keyed by artifact name.
    """
    from repro.metrics.report import telemetry_series_to_csv

    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {
        "events": out / "events.jsonl",
        "trace": out / "trace.json",
        "series": out / "series.csv",
        "spans": out / "spans.json",
        "stats": out / "stats.json",
    }
    events = telemetry.events()
    write_jsonl(events, paths["events"])
    write_chrome_trace(telemetry, paths["trace"], include_events)
    paths["series"].write_text(telemetry_series_to_csv(timeseries_rows(events)))
    paths["spans"].write_text(
        json.dumps(telemetry.span_stats(), indent=2, sort_keys=True) + "\n"
    )
    paths["stats"].write_text(
        json.dumps(
            {
                "stats": telemetry.stats(),
                "counters": dict(telemetry.counters),
                "gauges": dict(telemetry.gauges),
                "histograms": telemetry.histogram_summary(),
            },
            indent=2,
            sort_keys=True,
            default=str,
        )
        + "\n"
    )
    return paths
