"""Online fleet-health watchdogs and the postmortem flight recorder.

The :class:`HealthMonitor` consumes the deterministic event stream as it
is buffered — local emissions *and* merged worker snapshots — and runs a
set of pluggable :class:`WatchdogRule`\\ s over it.  Rule state is kept
strictly per host stream, and findings are stamped with the monitor's
*own* per-host sequence counters, so the resulting ``health.*`` events
are bit-identical (by :meth:`Event.identity`) across serial, parallel
and fused-epoch layouts: every layout delivers each host's events in
the same per-host order, and health emission never perturbs the
underlying streams' sequence numbers.

The :class:`FlightRecorder` turns a watchdog breach or a worker
exception into a postmortem bundle on disk: the last-N buffered events,
the open-span stack, the run configuration and the volume counters —
enough to reconstruct what the fleet was doing when things went wrong
without re-running the simulation.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from collections import deque

from repro.obs.events import Event

__all__ = [
    "WatchdogRule",
    "WatermarkOscillationRule",
    "MigrationStormRule",
    "PromotionChurnRule",
    "SwapThrashRule",
    "PlacementFailureBurstRule",
    "DEFAULT_RULES",
    "HealthMonitor",
    "FlightRecorder",
    "summarize_health",
]


class WatchdogRule:
    """One health heuristic over a single host's event stream.

    Subclasses declare the event ``kinds`` they consume and implement
    :meth:`observe`, returning a fields dict to raise a finding or None
    to stay quiet.  The monitor instantiates one rule object per host
    stream, so instance state never mixes hosts — that is what keeps
    findings identical across process layouts.
    """

    #: ``health.<name>`` is the kind of the emitted finding.
    name = "generic"
    #: Event kinds routed to this rule.
    kinds: frozenset = frozenset()

    def observe(self, event: Event) -> dict | None:
        raise NotImplementedError


class WatermarkOscillationRule(WatchdogRule):
    """Pressure watermark flapping: the ladder repeatedly engages and
    disengages instead of settling.  Counts pressured/ok transitions
    within a sliding epoch window."""

    name = "watermark_oscillation"
    kinds = frozenset({"pressure.watermark"})

    def __init__(self, window: int = 8, flips: int = 3) -> None:
        self.window = window
        self.flips = flips
        self._pressured: bool | None = None
        self._edges: deque[int] = deque()

    def observe(self, event: Event) -> dict | None:
        level = dict(event.fields).get("level", "ok")
        pressured = level != "ok"
        flipped = self._pressured is not None and pressured != self._pressured
        self._pressured = pressured
        if not flipped or event.epoch is None:
            return None
        self._edges.append(event.epoch)
        while self._edges and self._edges[0] < event.epoch - self.window:
            self._edges.popleft()
        if len(self._edges) < self.flips:
            return None
        flips = len(self._edges)
        self._edges.clear()
        return {"flips": flips, "window_epochs": self.window}


class MigrationStormRule(WatchdogRule):
    """Too many fleet migrations in a short epoch window — the
    consolidator is thrashing VMs between hosts."""

    name = "migration_storm"
    kinds = frozenset({"fleet.migrate"})

    def __init__(self, window: int = 4, threshold: int = 6) -> None:
        self.window = window
        self.threshold = threshold
        self._counts: deque[tuple[int, int]] = deque()
        self._fired_epoch: int | None = None

    def observe(self, event: Event) -> dict | None:
        epoch = event.epoch
        if epoch is None:
            return None
        if self._counts and self._counts[-1][0] == epoch:
            self._counts[-1] = (epoch, self._counts[-1][1] + 1)
        else:
            self._counts.append((epoch, 1))
        while self._counts and self._counts[0][0] <= epoch - self.window:
            self._counts.popleft()
        total = sum(count for _, count in self._counts)
        if total < self.threshold or self._fired_epoch == epoch:
            return None
        self._fired_epoch = epoch
        return {"migrations": total, "window_epochs": self.window}


class PromotionChurnRule(WatchdogRule):
    """Huge pages promoted and demoted back in the same epoch window —
    the coalescer and the pressure ladder are fighting each other."""

    name = "promotion_churn"
    kinds = frozenset({"promote.host", "pressure.demote"})

    def __init__(self, window: int = 4, threshold: int = 8) -> None:
        self.window = window
        self.threshold = threshold
        #: epoch -> [promoted, demoted]
        self._sums: deque[tuple[int, list]] = deque()
        self._fired_epoch: int | None = None

    def observe(self, event: Event) -> dict | None:
        epoch = event.epoch
        if epoch is None:
            return None
        fields = dict(event.fields)
        promoted = int(fields.get("promoted", 0))
        demoted = int(fields.get("aligned", 0))
        if self._sums and self._sums[-1][0] == epoch:
            sums = self._sums[-1][1]
        else:
            sums = [0, 0]
            self._sums.append((epoch, sums))
        sums[0] += promoted
        sums[1] += demoted
        while self._sums and self._sums[0][0] <= epoch - self.window:
            self._sums.popleft()
        promos = sum(entry[1][0] for entry in self._sums)
        demos = sum(entry[1][1] for entry in self._sums)
        if min(promos, demos) < self.threshold or self._fired_epoch == epoch:
            return None
        self._fired_epoch = epoch
        return {
            "promoted": promos,
            "demoted": demos,
            "window_epochs": self.window,
        }


class SwapThrashRule(WatchdogRule):
    """Pages swapped out and faulted straight back in — the victim
    policy is evicting the working set."""

    name = "swap_thrash"
    kinds = frozenset({"swap.out", "swap.in"})

    def __init__(self, window: int = 4, min_pages: int = 256) -> None:
        self.window = window
        self.min_pages = min_pages
        #: epoch -> [out_pages, in_pages]
        self._sums: deque[tuple[int, list]] = deque()
        self._fired_epoch: int | None = None

    def observe(self, event: Event) -> dict | None:
        epoch = event.epoch
        if epoch is None:
            return None
        pages = int(dict(event.fields).get("pages", 0))
        if self._sums and self._sums[-1][0] == epoch:
            sums = self._sums[-1][1]
        else:
            sums = [0, 0]
            self._sums.append((epoch, sums))
        sums[0 if event.kind == "swap.out" else 1] += pages
        while self._sums and self._sums[0][0] <= epoch - self.window:
            self._sums.popleft()
        out_pages = sum(entry[1][0] for entry in self._sums)
        in_pages = sum(entry[1][1] for entry in self._sums)
        if (min(out_pages, in_pages) < self.min_pages
                or self._fired_epoch == epoch):
            return None
        self._fired_epoch = epoch
        return {
            "out_pages": out_pages,
            "in_pages": in_pages,
            "window_epochs": self.window,
        }


class PlacementFailureBurstRule(WatchdogRule):
    """Repeated placement failures — the fleet has no headroom left and
    arrivals are bouncing."""

    name = "placement_failures"
    kinds = frozenset({"fleet.place_fail"})

    def __init__(self, window: int = 4, threshold: int = 3) -> None:
        self.window = window
        self.threshold = threshold
        self._epochs: deque[int] = deque()
        self._fired_epoch: int | None = None

    def observe(self, event: Event) -> dict | None:
        epoch = event.epoch
        if epoch is None:
            return None
        self._epochs.append(epoch)
        while self._epochs and self._epochs[0] <= epoch - self.window:
            self._epochs.popleft()
        if len(self._epochs) < self.threshold or self._fired_epoch == epoch:
            return None
        self._fired_epoch = epoch
        return {"failures": len(self._epochs), "window_epochs": self.window}


DEFAULT_RULES = (
    WatermarkOscillationRule,
    MigrationStormRule,
    PromotionChurnRule,
    SwapThrashRule,
    PlacementFailureBurstRule,
)


class HealthMonitor:
    """Routes the buffered event stream through per-host watchdog rules.

    Attach one to ``Telemetry.monitor`` (the engines do this when
    tracing is enabled).  Findings are emitted as ``health.<rule>``
    events appended to the same ring, with a *separate* per-host
    sequence space so the underlying streams keep their deterministic
    numbering.  Workers never carry a monitor — ``obs.reset()`` after
    scatter drops it — so rules run exactly once, at the controller,
    over each host's stream in its canonical order.
    """

    def __init__(self, rules: tuple | None = None) -> None:
        self._factories = tuple(rules) if rules is not None else DEFAULT_RULES
        self._streams: dict[int | None, list[WatchdogRule]] = {}
        self._seqs: dict[int | None, int] = {}
        self.findings: list[Event] = []
        #: Optional callback invoked with each finding (flight recorder).
        self.on_breach = None

    def feed(self, telemetry, event: Event) -> None:
        """Observe one buffered event; may append ``health.*`` events."""
        if event.kind.startswith("health."):
            return
        rules = self._streams.get(event.host)
        if rules is None:
            rules = self._streams[event.host] = [
                factory() for factory in self._factories
            ]
        for rule in rules:
            if event.kind not in rule.kinds:
                continue
            fields = rule.observe(event)
            if fields is None:
                continue
            seq = self._seqs.get(event.host, 0) + 1
            self._seqs[event.host] = seq
            finding = Event(
                kind="health." + rule.name,
                host=event.host,
                epoch=event.epoch,
                seq=seq,
                wall=telemetry.clock.now(),
                fields=tuple(sorted(fields.items())),
            )
            telemetry.ring.emitted += 1
            telemetry.ring.append(finding)
            telemetry.count("health." + rule.name)
            self.findings.append(finding)
            if self.on_breach is not None:
                self.on_breach(finding)


def summarize_health(events) -> dict[str, dict]:
    """Roll ``health.*`` events up per kind: count and affected hosts."""
    out: dict[str, dict] = {}
    for event in events:
        if not event.kind.startswith("health."):
            continue
        entry = out.setdefault(event.kind, {"count": 0, "hosts": set()})
        entry["count"] += 1
        entry["hosts"].add(event.host)
    for entry in out.values():
        entry["hosts"] = sorted(
            entry["hosts"], key=lambda h: (h is None, h)
        )
    return out


class FlightRecorder:
    """Dumps a postmortem bundle when a watchdog fires or a worker dies.

    Each bundle is a directory under *out_dir*::

        postmortem-00-<reason>/
            events.jsonl     last-N buffered events, oldest first
            open_spans.json  span stack + (host, epoch) context at dump
            report.json      reason, error, volume stats, counters
            config.json      the run configuration, when provided

    Dumps are bounded (``limit``) and deduplicated: one bundle per
    distinct health kind, one per distinct exception object.
    """

    def __init__(self, telemetry, out_dir, last_n: int = 512,
                 limit: int = 4) -> None:
        self.telemetry = telemetry
        self.out_dir = pathlib.Path(out_dir)
        self.last_n = last_n
        self.limit = limit
        self.bundles: list[pathlib.Path] = []
        self._reasons: set[str] = set()
        self._last_error: BaseException | None = None

    def breach(self, finding: Event, config=None) -> pathlib.Path | None:
        """Dump for a watchdog finding; one bundle per health kind."""
        if finding.kind in self._reasons:
            return None
        self._reasons.add(finding.kind)
        return self.dump(finding.kind.replace(".", "-"), config=config)

    def dump(self, reason: str, config=None,
             error: BaseException | None = None) -> pathlib.Path | None:
        if error is not None:
            if error is self._last_error:
                return None
            self._last_error = error
        if len(self.bundles) >= self.limit:
            return None
        telemetry = self.telemetry
        bundle = self.out_dir / f"postmortem-{len(self.bundles):02d}-{reason}"
        bundle.mkdir(parents=True, exist_ok=True)
        events = telemetry.events()[-self.last_n:]
        with open(bundle / "events.jsonl", "w", encoding="utf-8") as stream:
            for event in events:
                stream.write(event.to_json() + "\n")
        from repro.obs.telemetry import current_context

        host, epoch = current_context()
        _write_json(bundle / "open_spans.json", {
            "stack": [handle.name for handle in telemetry._span_stack],
            "context": {"host": host, "epoch": epoch},
        })
        _write_json(bundle / "report.json", {
            "reason": reason,
            "error": repr(error) if error is not None else None,
            "stats": telemetry.stats(),
            "counters": dict(telemetry.counters),
            "gauges": dict(telemetry.gauges),
        })
        if config is not None:
            payload = (
                dataclasses.asdict(config)
                if dataclasses.is_dataclass(config)
                and not isinstance(config, type)
                else config
            )
            _write_json(bundle / "config.json", payload)
        self.bundles.append(bundle)
        return bundle


def _write_json(path: pathlib.Path, payload) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True, default=str)
        stream.write("\n")
