"""Process-local telemetry registry: counters, spans and the event ring.

One :class:`Telemetry` instance lives per process (the ``repro.obs``
facade owns the singleton).  It collects four kinds of data:

* **counters / gauges / histograms** — named scalar metrics,
* **spans** — nested timed sections with self-time attribution,
* **events** — the structured decision stream (:mod:`repro.obs.events`),
* **context** — the ``(host, epoch)`` pair the emitting code is working
  on, tracked at module level so it is available even when telemetry is
  disabled (worker exception notes use it for attribution).

Everything is cheaply serialisable: :meth:`Telemetry.snapshot` detaches
the collected data as a :class:`TelemetrySnapshot` which workers pickle
into the fused-epoch spool and the controller folds back in with
:meth:`Telemetry.merge`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.clock import Clock
from repro.obs.events import DEFAULT_CAPACITY, Event, EventRing

__all__ = [
    "Telemetry",
    "TelemetrySnapshot",
    "set_context",
    "current_context",
    "clear_context",
]

#: Sentinel for "leave this context component unchanged".
_KEEP = object()

# The (host, epoch) the current process is working on.  Module-level —
# not per-Telemetry — so exception attribution works with telemetry off.
_context: list[int | None] = [None, None]


def set_context(host: object = _KEEP, epoch: object = _KEEP) -> None:
    """Update the process-local ``(host, epoch)`` attribution context.

    Omitted components keep their previous value; pass ``None``
    explicitly to clear one.
    """
    if host is not _KEEP:
        _context[0] = host  # type: ignore[assignment]
    if epoch is not _KEEP:
        _context[1] = epoch  # type: ignore[assignment]


def current_context() -> tuple[int | None, int | None]:
    """The process-local ``(host, epoch)`` pair."""
    return (_context[0], _context[1])


def clear_context() -> None:
    set_context(host=None, epoch=None)


@dataclass
class TelemetrySnapshot:
    """Detached, picklable telemetry state for cross-process merging."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    #: name -> (count, total, min, max, samples, stride)
    histograms: dict[str, tuple] = field(default_factory=dict)
    #: name -> [count, total_s, child_s]
    span_stats: dict[str, list] = field(default_factory=dict)
    #: (name, host, start_s, duration_s, depth) tuples for trace export.
    span_trace: list[tuple] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)
    emitted: int = 0
    sampled: int = 0
    dropped: int = 0
    span_dropped: int = 0


class _SpanHandle:
    """Context manager for one timed section.

    Tracks accumulated child time so the owning :class:`Telemetry` can
    attribute *self* time (total minus children) per span name.
    """

    __slots__ = ("_telemetry", "name", "_start", "_child", "_depth")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self.name = name

    def __enter__(self) -> "_SpanHandle":
        telemetry = self._telemetry
        self._child = 0.0
        self._depth = len(telemetry._span_stack)
        telemetry._span_stack.append(self)
        self._start = telemetry.clock.now()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        telemetry = self._telemetry
        elapsed = telemetry.clock.now() - self._start
        telemetry._span_stack.pop()
        stat = telemetry._span_stats.get(self.name)
        if stat is None:
            stat = telemetry._span_stats[self.name] = [0, 0.0, 0.0]
        stat[0] += 1
        stat[1] += elapsed
        stat[2] += self._child
        if telemetry._span_stack:
            telemetry._span_stack[-1]._child += elapsed
        if len(telemetry._span_trace) < telemetry.span_capacity:
            telemetry._span_trace.append(
                (self.name, _context[0], self._start, elapsed, self._depth)
            )
        else:
            telemetry.spans_dropped += 1
        return False


class Telemetry:
    """The per-process telemetry registry.

    Not thread-safe by design: the simulator is single-threaded per
    process, and the cross-*process* path goes through snapshots.
    """

    #: Bound on per-histogram quantile samples.  When a reservoir fills
    #: up, every other sample is discarded and the keep-stride doubles —
    #: a deterministic decimation, so serial and merged runs agree.
    RESERVOIR_CAP = 256

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sample: float = 1.0,
        clock: Clock | None = None,
        span_capacity: int = 20000,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self.span_capacity = span_capacity
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: name -> [count, total, min, max, reservoir, stride]
        self._histograms: dict[str, list] = {}
        self._span_stack: list[_SpanHandle] = []
        #: name -> [count, total_s, child_s]
        self._span_stats: dict[str, list] = {}
        self._span_trace: list[tuple] = []
        self.spans_dropped = 0
        self.ring = EventRing(capacity, sample)
        #: Per-host event sequence counters; survive snapshot resets so
        #: spool drains continue each host's sequence where it left off.
        self._seqs: dict[int | None, int] = {}
        #: Optional online consumer of the event stream (a
        #: :class:`repro.obs.health.HealthMonitor`).  Fed every buffered
        #: event — local emissions and merged worker snapshots alike.
        self.monitor = None

    # -- scalar metrics ------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        stat = self._histograms.get(name)
        if stat is None:
            self._histograms[name] = [1, value, value, value, [value], 1]
            return
        stat[0] += 1
        stat[1] += value
        if value < stat[2]:
            stat[2] = value
        if value > stat[3]:
            stat[3] = value
        if (stat[0] - 1) % stat[5] == 0:
            stat[4].append(value)
            if len(stat[4]) > self.RESERVOIR_CAP:
                del stat[4][1::2]
                stat[5] *= 2

    def histogram(self, name: str) -> tuple[int, float, float, float] | None:
        """``(count, total, min, max)`` for *name*, or None."""
        stat = self._histograms.get(name)
        return tuple(stat[:4]) if stat is not None else None

    def quantiles(
        self, name: str, qs: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> dict[float, float] | None:
        """Approximate quantiles from the bounded reservoir, or None.

        Nearest-rank over the kept samples; exact while fewer than
        ``RESERVOIR_CAP`` values have been observed.
        """
        stat = self._histograms.get(name)
        if stat is None or not stat[4]:
            return None
        samples = sorted(stat[4])
        top = len(samples) - 1
        return {
            q: samples[min(top, max(0, math.ceil(q * len(samples)) - 1))]
            for q in qs
        }

    def histogram_summary(self) -> dict[str, dict[str, float]]:
        """Per-name histogram roll-up including p50/p95/p99."""
        out: dict[str, dict[str, float]] = {}
        for name, stat in self._histograms.items():
            quantiles = self.quantiles(name) or {}
            out[name] = {
                "count": stat[0],
                "mean": stat[1] / stat[0] if stat[0] else 0.0,
                "min": stat[2],
                "max": stat[3],
                "p50": quantiles.get(0.5, stat[3]),
                "p95": quantiles.get(0.95, stat[3]),
                "p99": quantiles.get(0.99, stat[3]),
            }
        return out

    # -- spans ---------------------------------------------------------

    def span(self, name: str) -> _SpanHandle:
        return _SpanHandle(self, name)

    def span_stats(self) -> dict[str, dict[str, float]]:
        """Per-name span summary: count, total and self seconds."""
        return {
            name: {
                "count": stat[0],
                "total_s": stat[1],
                "self_s": max(0.0, stat[1] - stat[2]),
            }
            for name, stat in self._span_stats.items()
        }

    def span_trace(self) -> list[tuple]:
        """``(name, host, start_s, duration_s, depth)`` per closed span."""
        return list(self._span_trace)

    # -- events --------------------------------------------------------

    def emit(self, kind: str, **fields: object) -> None:
        """Record an event attributed to the current (host, epoch)."""
        self.emit_at(kind, _context[0], _context[1], **fields)

    def emit_at(
        self,
        kind: str,
        host: int | None,
        epoch: int | None,
        **fields: object,
    ) -> None:
        """Record an event with explicit attribution.

        The per-host sequence number advances even for sampled-out
        events, so sampling never perturbs the deterministic ordering
        of the events that *are* kept.
        """
        seq = self._seqs.get(host, 0) + 1
        self._seqs[host] = seq
        if not self.ring.want(kind, host):
            return
        event = Event(
            kind=kind,
            host=host,
            epoch=epoch,
            seq=seq,
            wall=self.clock.now(),
            fields=tuple(sorted(fields.items())),
        )
        self.ring.append(event)
        if self.monitor is not None:
            self.monitor.feed(self, event)

    def events(self) -> list[Event]:
        return self.ring.events()

    # -- snapshots -----------------------------------------------------

    def snapshot(self, reset: bool = True) -> TelemetrySnapshot:
        """Detach collected data for spooling to the controller.

        With ``reset`` (the default) the metrics, spans and buffered
        events are cleared; sequence and sampling counters are *kept* so
        subsequent emissions continue their deterministic streams.
        """
        snapshot = TelemetrySnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={
                name: (*stat[:4], tuple(stat[4]), stat[5])
                for name, stat in self._histograms.items()
            },
            span_stats={
                name: list(stat) for name, stat in self._span_stats.items()
            },
            span_trace=list(self._span_trace),
            events=self.ring.drain() if reset else self.ring.events(),
            emitted=self.ring.emitted,
            sampled=self.ring.sampled,
            dropped=self.ring.dropped,
            span_dropped=self.spans_dropped,
        )
        if reset:
            self.counters.clear()
            self.gauges.clear()
            self._histograms.clear()
            self._span_stats.clear()
            self._span_trace.clear()
            self.spans_dropped = 0
            # Volume counters are per-interval so repeated spool merges
            # add cleanly; the sampling stride counters are kept.
            self.ring.emitted = 0
            self.ring.sampled = 0
            self.ring.dropped = 0
        return snapshot

    def merge(self, snapshot: TelemetrySnapshot) -> None:
        """Fold a worker's snapshot into this (controller) registry."""
        for name, value in snapshot.counters.items():
            self.count(name, value)
        self.gauges.update(snapshot.gauges)
        for name, stat in snapshot.histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = [
                    *stat[:4], list(stat[4]), stat[5]
                ]
            else:
                mine[0] += stat[0]
                mine[1] += stat[1]
                mine[2] = min(mine[2], stat[2])
                mine[3] = max(mine[3], stat[3])
                mine[4].extend(stat[4])
                mine[5] = max(mine[5], stat[5])
                while len(mine[4]) > self.RESERVOIR_CAP:
                    del mine[4][1::2]
                    mine[5] *= 2
        for name, stat in snapshot.span_stats.items():
            mine = self._span_stats.get(name)
            if mine is None:
                self._span_stats[name] = list(stat)
            else:
                mine[0] += stat[0]
                mine[1] += stat[1]
                mine[2] += stat[2]
        room = self.span_capacity - len(self._span_trace)
        kept = max(0, min(room, len(snapshot.span_trace)))
        if kept:
            self._span_trace.extend(snapshot.span_trace[:kept])
        self.spans_dropped += snapshot.span_dropped
        self.spans_dropped += len(snapshot.span_trace) - kept
        self.ring.emitted += snapshot.emitted
        self.ring.sampled += snapshot.sampled
        self.ring.dropped += snapshot.dropped
        if self.monitor is None:
            self.ring.extend(snapshot.events)
        else:
            # Interleave watchdog feeding with the append so any
            # ``health.*`` finding lands right after its trigger — the
            # same relative position it gets when the trigger is emitted
            # locally (serial runs), keeping per-host streams identical
            # across process layouts.
            for event in snapshot.events:
                self.ring.extend((event,))
                self.monitor.feed(self, event)

    def stats(self) -> dict[str, object]:
        """Volume accounting for reports and overhead checks."""
        return {
            "events_emitted": self.ring.emitted,
            "events_sampled": self.ring.sampled,
            "events_dropped": self.ring.dropped,
            "events_buffered": len(self.ring),
            "spans_closed": sum(s[0] for s in self._span_stats.values()),
            "spans_dropped": self.spans_dropped,
        }
