"""Unified telemetry: spans, structured events, cross-process metrics.

``repro.obs`` is the observability layer the rest of the stack emits
into.  It is **off by default** and designed to cost nearly nothing
when disabled: every module-level helper checks one global and the
``span`` helper returns a shared no-op context manager, so instrumented
hot paths pay a dict-free attribute test per call.

Typical use::

    from repro import obs

    obs.enable()                      # or REPRO_TRACE=1 / --trace-out
    result = run_cluster(config)
    obs.export.export_run(obs.get(), "trace-out/")

Instrumented code does not guard its own emissions::

    with obs.span("epoch.scan"):
        ...
    obs.emit("booking.book", region=pregion)

Cross-process: ActorPool workers inherit the enabled singleton via
fork; the cluster engine resets worker telemetry after scatter, workers
accumulate locally, and their pickled snapshots ride the fused-epoch
spool back to the controller, which merges them into one fleet-wide
view (see docs/OBSERVABILITY.md).

Environment variables (read by :func:`configure_from_env`):

* ``REPRO_TRACE=1`` — enable telemetry.
* ``REPRO_TRACE_OUT=dir`` — enable and export to *dir* (CLI honours it).
* ``REPRO_TRACE_EVENTS=n`` — event ring capacity (default 65536).
* ``REPRO_TRACE_SAMPLE=r`` — event keep rate in (0, 1], default 1.0.
"""

from __future__ import annotations

import os
import pickle
import zlib

from repro.obs import analyze, bench, export, health
from repro.obs.clock import Clock, ManualClock
from repro.obs.events import DEFAULT_CAPACITY, Event, EventRing
from repro.obs.telemetry import (
    Telemetry,
    TelemetrySnapshot,
    clear_context,
    current_context,
    set_context,
)

__all__ = [
    "Clock",
    "ManualClock",
    "Event",
    "EventRing",
    "Telemetry",
    "TelemetrySnapshot",
    "DEFAULT_CAPACITY",
    "enabled",
    "enable",
    "disable",
    "get",
    "reset",
    "span",
    "emit",
    "emit_at",
    "count",
    "gauge",
    "observe",
    "set_context",
    "current_context",
    "clear_context",
    "configure_from_env",
    "trace_out_dir",
    "set_trace_out_dir",
    "snapshot_blob",
    "merge_blob",
    "export",
    "analyze",
    "bench",
    "health",
]

#: The process-wide registry; None means telemetry is disabled and all
#: helpers take their early-out path.
_active: Telemetry | None = None

#: Export directory requested via REPRO_TRACE_OUT / --trace-out.
_out_dir: str | None = None


class _NoopSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


def enabled() -> bool:
    """True when a telemetry registry is collecting."""
    return _active is not None


def get() -> Telemetry | None:
    """The active registry, or None when disabled."""
    return _active


def enable(
    telemetry: Telemetry | None = None,
    *,
    capacity: int | None = None,
    sample: float = 1.0,
    clock: Clock | None = None,
) -> Telemetry:
    """Install (and return) the process-wide telemetry registry.

    Pass a prebuilt *telemetry* to install it verbatim, or construction
    arguments for a fresh one.  Idempotent when already enabled and no
    arguments are given.
    """
    global _active
    if telemetry is not None:
        _active = telemetry
    elif _active is None or capacity is not None or clock is not None:
        _active = Telemetry(
            capacity=capacity if capacity is not None else DEFAULT_CAPACITY,
            sample=sample,
            clock=clock,
        )
    return _active


def disable() -> None:
    """Drop the registry; subsequent emissions become no-ops."""
    global _active
    _active = None


def reset() -> Telemetry | None:
    """Replace the active registry with a fresh one (same shape).

    Used in forked workers to discard telemetry inherited from the
    controller so spooled snapshots carry only worker-side data.
    No-op when disabled.
    """
    global _active
    if _active is None:
        return None
    _active = Telemetry(
        capacity=_active.ring.capacity,
        sample=1.0 / _active.ring.stride,
        clock=_active.clock,
    )
    return _active


def span(name: str):
    """Timed section context manager; free no-op when disabled."""
    active = _active
    return active.span(name) if active is not None else _NOOP_SPAN


def emit(kind: str, **fields: object) -> None:
    """Record an event attributed to the current (host, epoch) context."""
    active = _active
    if active is not None:
        active.emit(kind, **fields)


def emit_at(kind: str, host: int | None, epoch: int | None,
            **fields: object) -> None:
    """Record an event with explicit host/epoch attribution."""
    active = _active
    if active is not None:
        active.emit_at(kind, host, epoch, **fields)


def count(name: str, value: float = 1.0) -> None:
    active = _active
    if active is not None:
        active.count(name, value)


def gauge(name: str, value: float) -> None:
    active = _active
    if active is not None:
        active.gauge(name, value)


def observe(name: str, value: float) -> None:
    active = _active
    if active is not None:
        active.observe(name, value)


def trace_out_dir() -> str | None:
    """The export directory requested via env/CLI, or None."""
    return _out_dir


def set_trace_out_dir(directory: str | None) -> None:
    global _out_dir
    _out_dir = directory or None


def configure_from_env(environ=os.environ) -> Telemetry | None:
    """Enable telemetry when the ``REPRO_TRACE*`` variables ask for it.

    ``REPRO_TRACE=1`` or a non-empty ``REPRO_TRACE_OUT`` enables
    collection; capacity and sampling come from ``REPRO_TRACE_EVENTS``
    and ``REPRO_TRACE_SAMPLE``.  Never *disables* an already-enabled
    registry.  Returns the active registry (or None).
    """
    out = environ.get("REPRO_TRACE_OUT", "").strip()
    flag = environ.get("REPRO_TRACE", "").strip().lower()
    wanted = bool(out) or flag in {"1", "true", "yes", "on"}
    if out:
        set_trace_out_dir(out)
    if not wanted:
        return _active
    capacity = int(environ.get("REPRO_TRACE_EVENTS", 0) or 0) or None
    sample = float(environ.get("REPRO_TRACE_SAMPLE", 0) or 1.0)
    if _active is None:
        return enable(capacity=capacity, sample=sample)
    return _active


def snapshot_blob(reset: bool = True) -> bytes | None:
    """Pickle+compress the active registry's snapshot; None if disabled.

    This is the payload workers append to the fused-epoch spool drain;
    the controller feeds it to :func:`merge_blob`.
    """
    active = _active
    if active is None:
        return None
    return zlib.compress(
        pickle.dumps(active.snapshot(reset=reset),
                     protocol=pickle.HIGHEST_PROTOCOL)
    )


def merge_blob(blob: bytes | None) -> None:
    """Merge a worker's :func:`snapshot_blob` payload; tolerant of None."""
    if blob is None:
        return
    active = _active
    if active is None:
        return
    active.merge(pickle.loads(zlib.decompress(blob)))
