"""Bench-history tracking: record perf-smoke runs, flag regressions.

The perf-smoke benchmark writes a nested ``BENCH_perf.json`` report
each run; this module flattens its numeric leaves into one compact
JSONL record per run (``BENCH_history.jsonl``) and compares a fresh
report against the recent history with noise-aware thresholds:

* the baseline per metric is the **median** of the last *K* recorded
  values, so a single noisy run does not poison the gate;
* only metrics with a known "better" direction are gated — names
  ending in ``_seconds``/``_ns``/``_s`` regress when they grow, names
  containing ``speedup``/``factor``/``reduction`` regress when they
  shrink — everything else is informational;
* the gate is **fail-soft** by design: CI surfaces regressions as
  warnings (``repro bench compare``), and only ``--strict`` turns them
  into a non-zero exit.
"""

from __future__ import annotations

import json
import pathlib
import statistics

__all__ = [
    "flatten_metrics",
    "history_record",
    "append_history",
    "load_history",
    "MetricDrift",
    "BenchComparison",
    "compare_history",
]

#: Default history window the baseline median is taken over.
DEFAULT_WINDOW = 5
#: Default relative drift that flags a regression.
DEFAULT_THRESHOLD = 0.25

_LOWER_IS_BETTER = ("_seconds", "_ns", "_s")
_HIGHER_IS_BETTER = ("speedup", "factor", "reduction")


def flatten_metrics(report: dict, prefix: str = "") -> dict[str, float]:
    """Flatten a nested report's numeric leaves to dotted-key scalars."""
    out: dict[str, float] = {}
    for key, value in report.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten_metrics(value, name + "."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def metric_direction(name: str) -> str:
    """``"lower"``, ``"higher"`` or ``"info"`` for a metric name."""
    leaf = name.rsplit(".", 1)[-1]
    if leaf.endswith(_LOWER_IS_BETTER):
        return "lower"
    if any(token in leaf for token in _HIGHER_IS_BETTER):
        return "higher"
    return "info"


def history_record(report: dict, timestamp: str | None = None,
                   rev: str | None = None) -> dict:
    """One compact JSONL record for a perf-smoke report."""
    record: dict = {"metrics": flatten_metrics(report)}
    if timestamp is not None:
        record["ts"] = timestamp
    if rev is not None:
        record["rev"] = rev
    return record


def append_history(report: dict, path: str | pathlib.Path,
                   timestamp: str | None = None,
                   rev: str | None = None) -> dict:
    """Append this run's record to the history file; returns it."""
    record = history_record(report, timestamp=timestamp, rev=rev)
    history = pathlib.Path(path)
    history.parent.mkdir(parents=True, exist_ok=True)
    with open(history, "a", encoding="utf-8") as stream:
        stream.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(path: str | pathlib.Path) -> list[dict]:
    """All recorded runs, oldest first; tolerates a missing file."""
    history = pathlib.Path(path)
    if not history.exists():
        return []
    records = []
    for line in history.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # a truncated CI write must not break the gate
    return records


class MetricDrift:
    """One metric's move against its baseline median."""

    __slots__ = ("name", "baseline", "value", "direction")

    def __init__(self, name: str, baseline: float, value: float,
                 direction: str) -> None:
        self.name = name
        self.baseline = baseline
        self.value = value
        self.direction = direction

    @property
    def drift(self) -> float:
        """Relative change versus the baseline (signed)."""
        if self.baseline == 0.0:
            return 0.0 if self.value == 0.0 else float("inf")
        return self.value / self.baseline - 1.0

    @property
    def is_regression(self) -> bool:
        if self.direction == "lower":
            return self.drift > 0.0
        if self.direction == "higher":
            return self.drift < 0.0
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricDrift({self.name!r}, baseline={self.baseline}, "
                f"value={self.value}, drift={self.drift:+.1%})")


class BenchComparison:
    """Outcome of gating a fresh report against recorded history."""

    def __init__(self, regressions: list[MetricDrift],
                 improvements: list[MetricDrift],
                 checked: int, baseline_runs: int) -> None:
        self.regressions = regressions
        self.improvements = improvements
        self.checked = checked
        self.baseline_runs = baseline_runs

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_history(history: list[dict], report: dict,
                    threshold: float = DEFAULT_THRESHOLD,
                    window: int = DEFAULT_WINDOW) -> BenchComparison:
    """Gate *report* against the recent *history*.

    Metrics absent from history (new benchmarks) are skipped; metrics
    flagged only when their drift against the window median exceeds
    *threshold* in the "worse" direction for their kind.
    """
    fresh = flatten_metrics(report)
    recent = history[-window:]
    regressions: list[MetricDrift] = []
    improvements: list[MetricDrift] = []
    checked = 0
    for name in sorted(fresh):
        direction = metric_direction(name)
        if direction == "info":
            continue
        values = [
            record["metrics"][name]
            for record in recent
            if name in record.get("metrics", {})
        ]
        if not values:
            continue
        checked += 1
        drift = MetricDrift(
            name, statistics.median(values), fresh[name], direction
        )
        if abs(drift.drift) < threshold:
            continue
        if drift.is_regression:
            regressions.append(drift)
        else:
            improvements.append(drift)
    regressions.sort(key=lambda d: -abs(d.drift))
    improvements.sort(key=lambda d: -abs(d.drift))
    return BenchComparison(
        regressions, improvements, checked, len(recent)
    )
