"""Clocks for the telemetry layer.

Telemetry records carry two notions of time: a *wall* reading (used for
span durations and trace timestamps) and a deterministic *virtual*
ordering (per-host sequence numbers assigned by the
:class:`~repro.obs.telemetry.Telemetry` registry).  The wall source is
injectable so tests — and the serial-versus-parallel equivalence
regression — can pin it to a constant and diff event streams byte for
byte.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "ManualClock"]


class Clock:
    """Monotonic wall-time source with an injectable reading function.

    The default reads :func:`time.perf_counter`; pass ``wall=lambda: 0.0``
    for fully deterministic traces.
    """

    __slots__ = ("wall",)

    def __init__(self, wall: Callable[[], float] | None = None) -> None:
        self.wall = wall if wall is not None else time.perf_counter

    def now(self) -> float:
        return self.wall()


class ManualClock(Clock):
    """Deterministic clock that advances by a fixed step per reading.

    Each ``now()`` call returns ``start + step * calls`` so successive
    readings are distinct but reproducible — spans get non-zero,
    machine-independent durations.
    """

    __slots__ = ("_next", "_step")

    def __init__(self, start: float = 0.0, step: float = 1e-6) -> None:
        super().__init__(wall=self._advance)
        self._next = start
        self._step = step

    def _advance(self) -> float:
        reading = self._next
        self._next += self._step
        return reading
