"""Structured events and the bounded ring that stores them.

An :class:`Event` is one typed decision record — a booking, a promotion
round, a placement choice, a migration — stamped with its emitting host,
epoch, a per-host sequence number and a wall reading.  The sequence
number is the *deterministic* ordering: two runs of the same fleet
produce identical per-host sequences regardless of how hosts are spread
across worker processes, so :meth:`Event.identity` (which drops the wall
reading) is the comparison key for serial-versus-parallel equivalence.

The :class:`EventRing` bounds memory with a drop-oldest deque and
applies deterministic stride sampling per ``(kind, host)`` stream —
no randomness, so sampling keeps the *same* subset of events in every
process layout.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = ["Event", "EventRing", "DEFAULT_CAPACITY"]

#: Default ring capacity; roughly an hour of fleet epochs at the default
#: emission rate, a few MiB of records.
DEFAULT_CAPACITY = 65536

#: Top-level JSON keys reserved for the envelope; ``fields`` may not
#: shadow them.
_RESERVED = frozenset({"kind", "host", "epoch", "seq", "wall"})


@dataclass(frozen=True)
class Event:
    """One immutable telemetry record.

    ``fields`` is a sorted tuple of ``(name, value)`` pairs so events
    hash and compare structurally; values must be JSON-representable
    scalars (or short tuples) — exporters serialise them as-is.
    """

    kind: str
    host: int | None
    epoch: int | None
    seq: int
    wall: float
    fields: tuple[tuple[str, object], ...] = ()

    def identity(self) -> tuple:
        """Comparison key that ignores wall time.

        Serial and parallel runs of the same fleet agree on this key
        event-for-event (per host); only the wall reading differs.
        """
        return (self.host, self.epoch, self.seq, self.kind, self.fields)

    def to_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "kind": self.kind,
            "host": self.host,
            "epoch": self.epoch,
            "seq": self.seq,
            "wall": self.wall,
        }
        for name, value in self.fields:
            record[name] = value
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "Event":
        fields = tuple(
            sorted(
                (name, _revive(value))
                for name, value in record.items()
                if name not in _RESERVED
            )
        )
        return cls(
            kind=str(record["kind"]),
            host=record.get("host"),  # type: ignore[arg-type]
            epoch=record.get("epoch"),  # type: ignore[arg-type]
            seq=int(record.get("seq", 0)),  # type: ignore[arg-type]
            wall=float(record.get("wall", 0.0)),  # type: ignore[arg-type]
            fields=fields,
        )

    @classmethod
    def from_json(cls, text: str) -> "Event":
        return cls.from_dict(json.loads(text))


def _revive(value: object) -> object:
    """Restore tuple field values that JSON round-tripped as lists."""
    if isinstance(value, list):
        return tuple(_revive(item) for item in value)
    return value


class EventRing:
    """Drop-oldest event buffer with deterministic stride sampling.

    ``sample`` is the target keep rate in ``(0, 1]``; it is converted to
    an integer stride (``sample=0.25`` keeps every 4th event).  The
    stride counter is keyed by ``(kind, host)`` so the kept subset is
    identical whether a host's events were emitted from the controller
    process (serial) or its own worker (parallel).
    """

    __slots__ = ("capacity", "stride", "emitted", "sampled", "dropped",
                 "_events", "_stream_counts")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 sample: float = 1.0) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive: {capacity}")
        if not 0.0 < sample <= 1.0:
            raise ValueError(f"sample rate must be in (0, 1]: {sample}")
        self.capacity = capacity
        self.stride = max(1, round(1.0 / sample))
        self.emitted = 0   # events offered, pre-sampling
        self.sampled = 0   # events kept by the sampler
        self.dropped = 0   # sampled events evicted by capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._stream_counts: dict[tuple[str, int | None], int] = {}

    def want(self, kind: str, host: int | None) -> bool:
        """Advance the ``(kind, host)`` stride counter; True to keep."""
        self.emitted += 1
        if self.stride == 1:
            return True
        stream = (kind, host)
        count = self._stream_counts.get(stream, 0)
        self._stream_counts[stream] = count + 1
        return count % self.stride == 0

    def append(self, event: Event) -> None:
        self.sampled += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        """Merge already-sampled events (worker snapshots) verbatim.

        Does not advance the local ``sampled`` counter — the donor's
        counters are folded in separately by ``Telemetry.merge``.
        """
        for event in events:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)

    def drain(self) -> list[Event]:
        """Return and clear buffered events; counters are preserved."""
        events = list(self._events)
        self._events.clear()
        return events

    def events(self) -> list[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)
