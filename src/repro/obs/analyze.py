"""Trace analysis: span trees, critical paths and differential runs.

Two consumers of the telemetry a run leaves behind:

* **Critical-path extraction** — rebuild the span forest from the
  close-ordered ``(name, host, start, duration, depth)`` trace, walk
  each ``fleet.epoch``/``sim.epoch`` tree down its dominant child and
  roll the walks up into a "where did the time go" report.
* **Differential run analysis** — :func:`diff_runs` compares two runs
  (live :class:`Telemetry`, detached :class:`TelemetrySnapshot` or an
  ``export_run`` directory) on three axes: per-host event-stream
  divergence keyed on :meth:`Event.identity` (deterministic — two runs
  of the same seed must match exactly), counter deltas (also
  deterministic) and span self-time deltas (wall-clock, noisy).  Span
  deltas are *attributed*: each significant one is paired with the
  event-kind count change most likely driving it.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.obs.events import Event
from repro.obs.export import read_jsonl
from repro.obs.telemetry import Telemetry, TelemetrySnapshot

__all__ = [
    "SpanNode",
    "build_span_trees",
    "CriticalPath",
    "CriticalPathReport",
    "critical_paths",
    "RunData",
    "SpanDelta",
    "KindDelta",
    "HostDivergence",
    "RunDiff",
    "diff_runs",
    "host_range_text",
]

#: Root span names analysed by default: one per simulated epoch.
DEFAULT_ROOTS = ("fleet.epoch", "sim.epoch")


# ---------------------------------------------------------------------------
# span forest reconstruction


@dataclass
class SpanNode:
    """One closed span with its reconstructed children."""

    name: str
    host: int | None
    start: float
    duration: float
    depth: int
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def child_s(self) -> float:
        return sum(child.duration for child in self.children)

    @property
    def self_s(self) -> float:
        return max(0.0, self.duration - self.child_s)


def build_span_trees(trace: list[tuple]) -> list[SpanNode]:
    """Rebuild the span forest from close-ordered trace tuples.

    Spans are appended when they *close*, so every child precedes its
    parent and a single pass with a pending-per-depth map reattaches
    them: a span at depth ``d`` adopts everything pending at ``d + 1``.
    Orphans (parents lost to trace truncation, or worker-process roots
    that closed at depth 0 in their own process) surface as roots.
    """
    pending: dict[int, list[SpanNode]] = {}
    roots: list[SpanNode] = []
    for name, host, start, duration, depth in trace:
        node = SpanNode(
            name, host, start, duration, depth, pending.pop(depth + 1, [])
        )
        if depth == 0:
            roots.append(node)
        else:
            pending.setdefault(depth, []).append(node)
    for depth in sorted(pending):
        roots.extend(pending[depth])
    return roots


# ---------------------------------------------------------------------------
# critical paths


@dataclass
class CriticalPath:
    """One dominant-child walk, aggregated over the epochs it won."""

    path: tuple[str, ...]
    count: int
    total_s: float
    share: float


@dataclass
class CriticalPathReport:
    """Where the time went, over all matched root spans."""

    roots: tuple[str, ...]
    epochs: int
    total_s: float
    paths: list[CriticalPath]
    #: name -> {"count", "total_s", "self_s"} over matched trees only.
    attribution: dict[str, dict[str, float]]


def critical_paths(
    source, roots: tuple[str, ...] = DEFAULT_ROOTS
) -> CriticalPathReport:
    """Extract per-epoch dominant-child critical paths from a trace.

    *source* is a :class:`Telemetry`, a :class:`TelemetrySnapshot` or a
    raw span-trace list.  Each root span (one per epoch) is walked down
    its largest child; identical walks are aggregated and ranked by the
    time they account for.
    """
    if isinstance(source, Telemetry):
        trace = source.span_trace()
    elif isinstance(source, TelemetrySnapshot):
        trace = list(source.span_trace)
    else:
        trace = list(source)
    trees = build_span_trees(trace)
    matched = [tree for tree in trees if tree.name in roots]
    if not matched:
        matched = trees
    paths: dict[tuple[str, ...], list] = {}
    attribution: dict[str, dict[str, float]] = {}
    total_s = 0.0
    for tree in matched:
        total_s += tree.duration
        walk = [tree.name]
        node = tree
        while node.children:
            node = max(
                node.children, key=lambda child: (child.duration, -child.start)
            )
            walk.append(node.name)
        entry = paths.setdefault(tuple(walk), [0, 0.0])
        entry[0] += 1
        entry[1] += tree.duration
        stack = [tree]
        while stack:
            node = stack.pop()
            stat = attribution.setdefault(
                node.name, {"count": 0, "total_s": 0.0, "self_s": 0.0}
            )
            stat["count"] += 1
            stat["total_s"] += node.duration
            stat["self_s"] += node.self_s
            stack.extend(node.children)
    ranked = sorted(
        (
            CriticalPath(
                path=path,
                count=entry[0],
                total_s=entry[1],
                share=entry[1] / total_s if total_s else 0.0,
            )
            for path, entry in paths.items()
        ),
        key=lambda item: (-item.total_s, item.path),
    )
    return CriticalPathReport(
        roots=tuple(roots),
        epochs=len(matched),
        total_s=total_s,
        paths=ranked,
        attribution=attribution,
    )


# ---------------------------------------------------------------------------
# differential run analysis


@dataclass
class RunData:
    """Normalised view of one run, whatever it came from."""

    label: str
    spans: dict[str, dict[str, float]]
    counters: dict[str, float]
    events: list[Event]
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)
    stats: dict = field(default_factory=dict)

    @classmethod
    def from_telemetry(cls, telemetry: Telemetry, label: str) -> "RunData":
        return cls(
            label=label,
            spans=telemetry.span_stats(),
            counters=dict(telemetry.counters),
            events=telemetry.events(),
            histograms=telemetry.histogram_summary(),
            stats=telemetry.stats(),
        )

    @classmethod
    def from_snapshot(
        cls, snapshot: TelemetrySnapshot, label: str
    ) -> "RunData":
        spans = {
            name: {
                "count": stat[0],
                "total_s": stat[1],
                "self_s": max(0.0, stat[1] - stat[2]),
            }
            for name, stat in snapshot.span_stats.items()
        }
        return cls(
            label=label,
            spans=spans,
            counters=dict(snapshot.counters),
            events=list(snapshot.events),
        )

    @classmethod
    def from_export_dir(
        cls, path: str | pathlib.Path, label: str | None = None
    ) -> "RunData":
        out = pathlib.Path(path)
        events_path = out / "events.jsonl"
        spans_path = out / "spans.json"
        stats_path = out / "stats.json"
        events = (
            read_jsonl(events_path.read_text())
            if events_path.exists()
            else []
        )
        spans = (
            json.loads(spans_path.read_text()) if spans_path.exists() else {}
        )
        counters: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        stats: dict = {}
        if stats_path.exists():
            payload = json.loads(stats_path.read_text())
            counters = payload.get("counters", {})
            histograms = payload.get("histograms", {})
            stats = payload.get("stats", {})
        return cls(
            label=label if label is not None else str(out),
            spans=spans,
            counters=counters,
            events=events,
            histograms=histograms,
            stats=stats,
        )

    @classmethod
    def coerce(cls, source, label: str) -> "RunData":
        if isinstance(source, cls):
            return source
        if isinstance(source, Telemetry):
            return cls.from_telemetry(source, label)
        if isinstance(source, TelemetrySnapshot):
            return cls.from_snapshot(source, label)
        return cls.from_export_dir(source)


@dataclass
class SpanDelta:
    name: str
    self_a: float
    self_b: float

    @property
    def ratio(self) -> float:
        if self.self_a <= 0.0:
            return float("inf") if self.self_b > 0.0 else 1.0
        return self.self_b / self.self_a


@dataclass
class KindDelta:
    """Per-event-kind count change, with the hosts carrying it."""

    kind: str
    count_a: int
    count_b: int
    hosts: list  # hosts whose per-host count changed

    @property
    def ratio(self) -> float:
        if self.count_a == 0:
            return float("inf") if self.count_b else 1.0
        return self.count_b / self.count_a


@dataclass
class HostDivergence:
    """First point where one host's event streams disagree."""

    host: int | None
    first_seq: int | None  # seq of the first mismatching event, if any
    first_kind: str | None
    len_a: int
    len_b: int


@dataclass
class RunDiff:
    """The comparison ``repro diff`` renders."""

    a_label: str
    b_label: str
    threshold: float
    counter_deltas: list[tuple]  # (name, a_value, b_value)
    span_deltas: list[SpanDelta]  # significant only, largest first
    kind_deltas: list[KindDelta]  # changed event-kind counts
    divergence: dict  # host -> HostDivergence
    attributions: list[str]

    @property
    def deterministic_match(self) -> bool:
        """True when the reproducible side of both runs is identical."""
        return not self.divergence and not self.counter_deltas


def host_range_text(hosts) -> str:
    """Compact "hosts 3-5" style rendering of a host list."""
    numbered = sorted(h for h in hosts if h is not None)
    parts: list[str] = []
    if None in hosts:
        parts.append("controller")
    run_start = run_end = None
    for host in numbered:
        if run_start is None:
            run_start = run_end = host
        elif host == run_end + 1:
            run_end = host
        else:
            parts.append(_run_text(run_start, run_end))
            run_start = run_end = host
    if run_start is not None:
        parts.append(_run_text(run_start, run_end))
    return ", ".join(parts) if parts else "no hosts"


def _run_text(start: int, end: int) -> str:
    if start == end:
        return f"host {start}"
    return f"hosts {start}-{end}"


def _stream_divergence(
    events_a: list[Event], events_b: list[Event]
) -> dict:
    """Per-host first-mismatch report over :meth:`Event.identity`."""
    by_host_a: dict = {}
    by_host_b: dict = {}
    for event in events_a:
        by_host_a.setdefault(event.host, []).append(event)
    for event in events_b:
        by_host_b.setdefault(event.host, []).append(event)
    divergence: dict = {}
    for host in sorted(
        set(by_host_a) | set(by_host_b), key=lambda h: (h is None, h)
    ):
        stream_a = by_host_a.get(host, [])
        stream_b = by_host_b.get(host, [])
        first_seq = first_kind = None
        for event_a, event_b in zip(stream_a, stream_b):
            if event_a.identity() != event_b.identity():
                first_seq = event_a.seq
                first_kind = event_a.kind
                break
        else:
            if len(stream_a) == len(stream_b):
                continue  # streams agree
            tail = stream_a if len(stream_a) > len(stream_b) else stream_b
            extra = tail[min(len(stream_a), len(stream_b))]
            first_seq = extra.seq
            first_kind = extra.kind
        divergence[host] = HostDivergence(
            host=host,
            first_seq=first_seq,
            first_kind=first_kind,
            len_a=len(stream_a),
            len_b=len(stream_b),
        )
    return divergence


def _kind_counts(events: list[Event]) -> dict:
    counts: dict = {}
    for event in events:
        key = (event.kind, event.host)
        counts[key] = counts.get(key, 0) + 1
    return counts


def diff_runs(a, b, threshold: float = 0.1) -> RunDiff:
    """Compare two runs; see the module docstring for the three axes.

    *a* and *b* may each be a :class:`Telemetry`, a
    :class:`TelemetrySnapshot`, a :class:`RunData` or an ``export_run``
    directory path.  *threshold* is the relative span self-time change
    below which timing deltas are considered noise.
    """
    run_a = RunData.coerce(a, "A")
    run_b = RunData.coerce(b, "B")

    counter_deltas = [
        (name, run_a.counters.get(name, 0.0), run_b.counters.get(name, 0.0))
        for name in sorted(set(run_a.counters) | set(run_b.counters))
        if run_a.counters.get(name, 0.0) != run_b.counters.get(name, 0.0)
    ]

    span_deltas = []
    for name in sorted(set(run_a.spans) | set(run_b.spans)):
        self_a = run_a.spans.get(name, {}).get("self_s", 0.0)
        self_b = run_b.spans.get(name, {}).get("self_s", 0.0)
        base = max(self_a, self_b)
        if base <= 0.0 or abs(self_b - self_a) < threshold * max(
            self_a, 1e-9
        ):
            continue
        span_deltas.append(SpanDelta(name, self_a, self_b))
    span_deltas.sort(key=lambda d: (-abs(d.self_b - d.self_a), d.name))

    counts_a = _kind_counts(run_a.events)
    counts_b = _kind_counts(run_b.events)
    per_kind: dict = {}
    for kind, host in set(counts_a) | set(counts_b):
        entry = per_kind.setdefault(kind, [0, 0, []])
        count_a = counts_a.get((kind, host), 0)
        count_b = counts_b.get((kind, host), 0)
        entry[0] += count_a
        entry[1] += count_b
        if count_a != count_b:
            entry[2].append(host)
    kind_deltas = [
        KindDelta(kind=kind, count_a=entry[0], count_b=entry[1],
                  hosts=sorted(entry[2], key=lambda h: (h is None, h)))
        for kind, entry in sorted(per_kind.items())
        if entry[2]
    ]
    kind_deltas.sort(key=lambda d: (-abs(d.count_b - d.count_a), d.kind))

    divergence = _stream_divergence(run_a.events, run_b.events)
    attributions = _attribute(span_deltas, kind_deltas, threshold)
    return RunDiff(
        a_label=run_a.label,
        b_label=run_b.label,
        threshold=threshold,
        counter_deltas=counter_deltas,
        span_deltas=span_deltas,
        kind_deltas=kind_deltas,
        divergence=divergence,
        attributions=attributions,
    )


def _attribute(
    span_deltas: list[SpanDelta],
    kind_deltas: list[KindDelta],
    threshold: float,
) -> list[str]:
    """Pair each significant span delta with its likeliest driver."""
    out: list[str] = []
    for delta in span_deltas[:5]:
        grew = delta.self_b > delta.self_a
        pct = (delta.ratio - 1.0) * 100.0 if delta.ratio != float("inf") \
            else float("inf")
        text = (
            f"{delta.name} self "
            f"{'+' if grew else ''}{pct:.0f}% "
            f"({delta.self_a * 1e3:.2f}ms -> {delta.self_b * 1e3:.2f}ms)"
        )
        driver = None
        for kind in kind_deltas:
            kind_grew = kind.count_b > kind.count_a
            if kind_grew == grew and abs(kind.ratio - 1.0) >= threshold:
                driver = kind
                break
        if driver is not None:
            ratio_text = (
                f"{driver.ratio:.2f}x"
                if driver.ratio != float("inf")
                else f"0 -> {driver.count_b}"
            )
            text += (
                f", driven by {driver.kind} count {ratio_text} "
                f"on {host_range_text(driver.hosts)}"
            )
        out.append(text)
    return out
