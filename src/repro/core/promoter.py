"""Misaligned huge page promoter (MHPP, the ``kgeminid`` daemon).

Handles *type-2* mis-aligned huge pages — regions that already have base
pages mapped into them, so booking alone cannot align them (Section 3):

* **guest side**: a host huge page covers guest-physical region R, but the
  guest has scattered base allocations in R.  The promoter picks the guest
  virtual region owning most of R's frames, evicts foreign pages, compacts
  the owner into R at huge-aligned offsets, then promotes in place —
  optionally pre-allocating the few missing tail pages when fragmentation
  is low (EMA huge preallocation, Section 4.2).
* **host side**: a guest huge page covers guest-physical region R, but the
  EPT backs R with scattered base pages.  Any fresh huge host page aligns
  it, so the promoter uses ordinary migration-based EPT promotion, steered
  to these regions first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import obs
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS, MemoryLayer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.vm import VM

__all__ = ["GuestPromoter", "HostPromoter"]


def _iter_set_bits(base: int, bits: int):
    """Frames ``base + i`` for each set bit *i*, lowest first — the same
    ascending order as ``range(base, base + PAGES_PER_HUGE)`` filtered to
    occupied frames."""
    while bits:
        low = bits & -bits
        yield base + low.bit_length() - 1
        bits ^= low


class GuestPromoter:
    """Turns type-2 mis-aligned *host* huge pages into well-aligned ones."""

    def __init__(
        self,
        vm: "VM",
        budget: int = 8,
        prealloc_threshold: int = 256,
        prealloc_fmfi: float = 0.5,
    ) -> None:
        self.vm = vm
        self.budget = budget
        self.prealloc_threshold = prealloc_threshold
        self.prealloc_fmfi = prealloc_fmfi
        self._queue: list[int] = []
        self._queued: set[int] = set()
        self._attempts: dict[int, int] = {}
        self.max_attempts = 3
        self.promoted_total = 0
        self.preallocated_pages = 0

    def enqueue(self, gpregions: list[int]) -> None:
        for gpregion in gpregions:
            if gpregion not in self._queued:
                self._queue.append(gpregion)
                self._queued.add(gpregion)

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def run(self, ept_is_huge, fmfi: float) -> int:
        """One pass: align up to ``budget`` queued regions.

        *ept_is_huge(gpregion)* reports whether the host huge page still
        exists (it may have been demoted since the scan).
        """
        layer = self.vm.guest
        promoted = 0
        prealloc_before = self.preallocated_pages
        retry: list[int] = []
        while self._queue and promoted < self.budget:
            gpregion = self._queue.pop(0)
            self._queued.discard(gpregion)
            if not ept_is_huge(gpregion):
                continue
            if self._align_region(layer, gpregion, fmfi):
                promoted += 1
                self._attempts.pop(gpregion, None)
            else:
                attempts = self._attempts.get(gpregion, 0) + 1
                self._attempts[gpregion] = attempts
                if attempts < self.max_attempts:
                    retry.append(gpregion)
                else:
                    # Give up on regions that cannot be aligned (e.g. pinned
                    # kernel pages inside); the next scan may re-submit them
                    # once conditions change.
                    self._attempts.pop(gpregion, None)
        for gpregion in retry:
            self.enqueue([gpregion])
        self.promoted_total += promoted
        if promoted or retry:
            obs.emit(
                "promote.guest",
                promoted=promoted,
                retried=len(retry),
                backlog=self.backlog,
                prealloc=self.preallocated_pages - prealloc_before,
            )
        return promoted

    def _align_region(self, layer: MemoryLayer, gpregion: int, fmfi: float) -> bool:
        owner = self._dominant_owner(layer, gpregion)
        if owner is None:
            # No base pages left in the region: it is type-1 now and the
            # next MHPS scan will book it instead.
            return False
        vregion = owner
        table = layer.table(PROCESS)
        if table.is_huge(vregion):
            return False
        if not layer.is_region_eligible(PROCESS, vregion):
            return False
        self._evict_blockers(layer, gpregion, vregion)
        if not layer.compact_region(PROCESS, vregion, gpregion):
            return False
        population = table.region_population(vregion)
        if population < PAGES_PER_HUGE:
            if population < self.prealloc_threshold or fmfi > self.prealloc_fmfi:
                return False
            if not self._preallocate(layer, vregion, gpregion):
                return False
        return layer.try_promote_in_place(PROCESS, vregion)

    def _dominant_owner(self, layer: MemoryLayer, gpregion: int) -> int | None:
        """The guest virtual region owning the most frames of *gpregion*."""
        buckets = layer.region_owner_counts(gpregion)
        if buckets is not None:
            # Owner-count fast path: same per-vregion totals as the
            # 512-probe scan below.  A tied maximum falls back to the scan
            # — the reference tie-break is first-seen frame order, which
            # the counts cannot reproduce; a unique maximum is
            # order-independent.
            if not buckets:
                return None
            summed: dict[int, int] = {}
            for (_, vregion), count in buckets.items():
                summed[vregion] = summed.get(vregion, 0) + count
            best_count = max(summed.values())
            tied = [v for v, c in summed.items() if c == best_count]
            if len(tied) == 1:
                return tied[0]
        counts: dict[int, int] = {}
        start = gpregion * PAGES_PER_HUGE
        bits = layer.rmap_bits(gpregion) if layer.fast_kernels else None
        frames = (
            _iter_set_bits(start, bits)
            if bits is not None
            else range(start, start + PAGES_PER_HUGE)
        )
        for frame in frames:
            owner = layer.owner_of_frame(frame)
            if owner is not None:
                _, vpn = owner
                vregion = vpn // PAGES_PER_HUGE
                counts[vregion] = counts.get(vregion, 0) + 1
        if not counts:
            return None
        return max(counts, key=counts.get)

    def _evict_blockers(self, layer: MemoryLayer, gpregion: int, vregion: int) -> int:
        """Relocate pages blocking the compaction target out of *gpregion*.

        Blockers are pages of *other* virtual regions, and pages of the
        owner region itself that sit at the wrong huge-aligned offset (e.g.
        an off-by-one layout where every destination frame is occupied by
        its neighbour) — both are moved to scratch frames first, then the
        compaction pass pulls the owner's pages into place.
        """
        start = gpregion * PAGES_PER_HUGE
        vbase = vregion * PAGES_PER_HUGE
        evicted = 0
        # Snapshot bitset iteration: the loop body only ever clears the
        # *current* frame's occupancy bit (relocations move pages out of
        # the region, scratch frames live outside it), so walking the
        # snapshot visits exactly the frames the 512-probe walk finds
        # occupied, in the same ascending order.
        bits = layer.rmap_bits(gpregion) if layer.fast_kernels else None
        frames = (
            _iter_set_bits(start, bits)
            if bits is not None
            else range(start, start + PAGES_PER_HUGE)
        )
        for frame in frames:
            owner = layer.owner_of_frame(frame)
            if owner is None:
                continue
            _, vpn = owner
            in_place = vpn // PAGES_PER_HUGE == vregion and frame == start + (vpn - vbase)
            if not in_place:
                scratch = self._scratch_frame(layer, gpregion)
                if scratch is None:
                    break
                # The helper returns the frame allocated; hand it to
                # relocate_page, which expects to claim it itself.
                layer.memory.free(scratch, 0)
                if layer.relocate_page(PROCESS, vpn, dst=scratch):
                    evicted += 1
        return evicted

    @staticmethod
    def _scratch_frame(layer: MemoryLayer, avoid_pregion: int) -> int | None:
        """Allocate a frame outside *avoid_pregion* for evicted pages."""
        from repro.mem.buddy import AllocationError

        held: list[int] = []
        scratch = None
        try:
            while True:
                frame = layer.memory.alloc(0)
                if frame // PAGES_PER_HUGE != avoid_pregion:
                    scratch = frame
                    break
                held.append(frame)
        except AllocationError:
            scratch = None
        finally:
            for frame in held:
                layer.memory.free(frame, 0)
        return scratch

    def _preallocate(self, layer: MemoryLayer, vregion: int, gpregion: int) -> bool:
        """Install the missing tail pages at their aligned frames."""
        table = layer.table(PROCESS)
        mapped = {vpn for vpn, _ in table.region_items(vregion)}
        vbase = vregion * PAGES_PER_HUGE
        pbase = gpregion * PAGES_PER_HUGE
        missing = [vbase + i for i in range(PAGES_PER_HUGE) if vbase + i not in mapped]
        for vpn in missing:
            if not layer.map_prealloc(PROCESS, vpn, pbase + (vpn - vbase)):
                return False
            self.preallocated_pages += 1
        return True


class HostPromoter:
    """Turns type-2 mis-aligned *guest* huge pages into well-aligned ones
    by promoting the corresponding EPT regions first."""

    def __init__(self, host: MemoryLayer, budget: int = 8) -> None:
        self.host = host
        self.budget = budget
        self._queue: list[tuple[int, int]] = []
        self._queued: set[tuple[int, int]] = set()
        self._attempts: dict[tuple[int, int], int] = {}
        self.max_attempts = 3
        self.promoted_total = 0

    def enqueue(self, vm_id: int, gpregions: list[int]) -> None:
        for gpregion in gpregions:
            key = (vm_id, gpregion)
            if key not in self._queued:
                self._queue.append(key)
                self._queued.add(key)

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def drop_client(self, vm_id: int) -> None:
        """Forget queued work for a departed VM.

        Without this, a stale queue entry would recreate the VM's EPT (the
        layer's ``table()`` builds tables on first use) after detach.
        """
        self._queue = [key for key in self._queue if key[0] != vm_id]
        self._queued = {key for key in self._queued if key[0] != vm_id}
        self._attempts = {
            key: count for key, count in self._attempts.items() if key[0] != vm_id
        }

    def run(self) -> int:
        promoted = 0
        retry: list[tuple[int, int]] = []
        while self._queue and promoted < self.budget:
            vm_id, gpregion = self._queue.pop(0)
            self._queued.discard((vm_id, gpregion))
            table = self.host.table(vm_id)
            if table.is_huge(gpregion):
                continue
            if table.region_population(gpregion) == 0:
                continue  # type-1: host booking handles it
            key = (vm_id, gpregion)
            if self.host.try_promote_in_place(vm_id, gpregion):
                promoted += 1
                self._attempts.pop(key, None)
            elif self.host.promote_with_migration(vm_id, gpregion):
                promoted += 1
                self._attempts.pop(key, None)
            else:
                attempts = self._attempts.get(key, 0) + 1
                self._attempts[key] = attempts
                if attempts < self.max_attempts:
                    retry.append(key)
                else:
                    self._attempts.pop(key, None)
        for vm_id, gpregion in retry:
            self.enqueue(vm_id, [gpregion])
        self.promoted_total += promoted
        if promoted or retry:
            obs.emit(
                "promote.host",
                promoted=promoted,
                retried=len(retry),
                backlog=self.backlog,
            )
        return promoted
