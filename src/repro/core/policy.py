"""Gemini's per-layer huge-page policies.

The guest policy combines the enhanced memory allocator (EMA) — huge-aligned
offset placement preferring booked and bucketed regions — with low-overhead
coalescing (in-place promotion and huge preallocation only; Gemini avoids
migration except through the targeted promoter).  The host policy is
KVM/THP-like on the EPT but serves booked guest-physical regions with their
reserved huge pages first, so type-1 mis-aligned guest huge pages become
well-aligned the moment the EPT fault arrives.
"""

from __future__ import annotations

from repro.core.booking import BookingTable
from repro.core.bucket import HugeBucket
from repro.mem.layout import PAGES_PER_HUGE, is_huge_aligned
from repro.policies.base import EpochTelemetry
from repro.policies.coalescing import CoalescingPolicy
from repro.policies.placement import OffsetPlacer

__all__ = ["GeminiGuestPolicy", "GeminiHostPolicy"]


class GeminiGuestPolicy(CoalescingPolicy):
    """Guest layer: EMA placement + booking/bucket-backed huge faults +
    in-place-only background promotion with huge preallocation."""

    name = "gemini-guest"

    def __init__(
        self,
        scan_budget: int = 8,
        prealloc_threshold: int = 256,
        prealloc_fmfi: float = 0.5,
        migration_budget: int = 1,
    ) -> None:
        super().__init__(
            sync_huge_faults=True,
            util_threshold=1.0,
            scan_budget=scan_budget,
            allow_migration=True,
            benefit_sorted=False,
            sync_fault_budget=1,
        )
        self.prealloc_threshold = prealloc_threshold
        self.prealloc_fmfi = prealloc_fmfi
        self.migration_budget = migration_budget
        self._migrations_this_scan = 0
        #: Cross-layer hint, refreshed each epoch by the Gemini runtime:
        #: can the host currently form new huge pages (free huge regions
        #: available)?  When it cannot, promoting guest regions whose
        #: guest-physical target is not already host-huge would only mint
        #: mis-aligned huge pages — Gemini holds back instead (Section 3:
        #: "Gemini does not create huge pages excessively").
        self.host_can_align = True
        self.booking: BookingTable | None = None
        self.bucket: HugeBucket | None = None
        self._placer: OffsetPlacer | None = None
        self._fmfi = 0.0
        self.preallocated_pages = 0

    def bind(self, booking: BookingTable | None, bucket: HugeBucket | None) -> None:
        """Attach the Gemini runtime's per-VM components; either may be
        None when the corresponding mechanism is ablated (Figure 16)."""
        self.booking = booking
        self.bucket = bucket

    def attach(self, layer) -> None:
        super().attach(layer)
        self._placer = OffsetPlacer(
            layer,
            align_huge=True,
            range_of=self._vma_bounds,
            preferred_anchor=self._preferred_anchor,
            claim_hook=self._claim_reserved,
        )

    # ------------------------------------------------------------------
    # Fault path: huge faults only from aligned-by-construction regions
    # ------------------------------------------------------------------

    def wants_huge_fault(self, client: int, vregion: int) -> bool:
        assert self.layer is not None
        if not self.layer.is_region_eligible(client, vregion):
            return False
        if self._reserved_region_available():
            # Aligned-by-construction huge pages (booked/bucketed regions)
            # are always worth serving -- no budget applies.
            return True
        # Otherwise fall back to the THP behaviour Gemini runs on top of
        # (rate-limited fault-time huge allocation from the buddy).
        return super().wants_huge_fault(client, vregion)

    def _reserved_region_available(self) -> bool:
        if self.booking is not None and self.booking.untouched_regions():
            return True
        return self.bucket is not None and bool(self.bucket.untouched_regions())

    def alloc_huge_region(self, client: int, vregion: int) -> int | None:
        # Prefer regions that are already backed by host huge pages (booked
        # targets and bucketed well-aligned pages): huge pages formed there
        # are well-aligned by construction.  Only then fall back to the
        # rate-limited THP path Gemini runs on top of.
        if self.booking is not None:
            pregion = self.booking.claim_region()
            if pregion is not None:
                return pregion
        if self.bucket is not None:
            pregion = self.bucket.take()
            if pregion is not None:
                return pregion
        return super().alloc_huge_region(client, vregion)

    # ------------------------------------------------------------------
    # EMA placement
    # ------------------------------------------------------------------

    def choose_base_frame(self, client: int, vpn: int) -> int | None:
        assert self._placer is not None
        if self.booking is None:
            # EMA/HB ablated: fall back to default placement.
            return None
        return self._placer.place(client, vpn)

    def choose_base_frames(
        self, client: int, vpn: int, max_pages: int
    ) -> tuple[int | None, int] | None:
        assert self._placer is not None
        if self.booking is None:
            # EMA/HB ablated: every page takes the default allocator.
            return (None, max_pages)
        return self._placer.place_run(client, vpn, max_pages)

    def _vma_bounds(self, client: int, vpn: int) -> tuple[int, int] | None:
        assert self.layer is not None
        if self.layer.vma_bounds is None:
            return None
        return self.layer.vma_bounds(client, vpn)

    def _preferred_anchor(self, client: int, vpn: int) -> int | None:
        if self.booking is not None:
            untouched = self.booking.untouched_regions()
            if untouched:
                return untouched[0]
        if self.bucket is not None:
            untouched = self.bucket.untouched_regions()
            if untouched:
                return untouched[0]
        return None

    def _claim_reserved(self, frame: int) -> bool:
        if self.booking is not None and self.booking.claim_page(frame):
            return True
        return self.bucket is not None and self.bucket.claim_page(frame)

    # ------------------------------------------------------------------
    # Background promotion: in-place plus huge preallocation
    # ------------------------------------------------------------------

    def _promote(self, client: int, vregion: int) -> bool:
        assert self.layer is not None
        if not self._alignable(client, vregion):
            return False
        if self.layer.try_promote_in_place(client, vregion):
            return True
        # Stray compaction and huge preallocation are EMA machinery: they
        # only run when EMA/HB is enabled (Figure 16 ablation accounting).
        if self.booking is not None:
            if self._try_stray_fix(client, vregion):
                return True
            if self._try_prealloc_promote(client, vregion):
                return True
        # Gemini runs on top of the kernel's page coalescing: regions the
        # EMA could not lay out alignably are still promoted by migration
        # (rate-limited); MHPS then directs the host to back them with
        # huge pages, turning them into well-aligned pairs.
        if self._migrations_this_scan < self.migration_budget:
            if self.layer.promote_with_migration(client, vregion):
                self._migrations_this_scan += 1
                return True
        return False

    def _alignable(self, client: int, vregion: int) -> bool:
        """Would a huge page formed here become well-aligned?

        True when the region's guest-physical target is already backed by
        a host huge page, or when the host still has capacity to form one
        (MHPS will direct it there).  Otherwise promotion would only mint
        a permanently mis-aligned huge page.
        """
        assert self.layer is not None
        if self.host_can_align:
            return True
        probe = self.layer.alignment_probe
        if probe is None:
            return True
        target = self._majority_region(client, vregion)
        if target is None:
            table = self.layer.table(client)
            mappings = table.region_items(vregion)
            if not mappings:
                return False
            regions = {pfn // PAGES_PER_HUGE for _, pfn in mappings}
            return any(probe(pregion) for pregion in regions)
        return probe(target)

    def scan(self, budget: int | None = None) -> int:
        self._migrations_this_scan = 0
        return super().scan(budget)

    def _candidates(self) -> list[tuple[int, int, int]]:
        assert self.layer is not None
        found = []
        for client in self.layer.clients():
            table = self.layer.table(client)
            for vregion in list(table.populated_regions()):
                population = table.region_population(vregion)
                if population < self.prealloc_threshold:
                    continue
                if not self.layer.is_region_eligible(client, vregion):
                    continue
                found.append((client, vregion, population))
        return found

    #: Maximum stray pages worth compacting back per region.
    miss_fix_limit = 24

    def _try_stray_fix(self, client: int, vregion: int) -> bool:
        """Compact stray pages back to their EMA-intended frames.

        The EMA tolerates occupied target frames (transient kernel
        objects) by letting the default allocator place those pages; once
        the transient holder releases the frame, pulling the strays back
        restores an in-place-promotable layout.
        """
        assert self.layer is not None
        pregion = self._majority_region(client, vregion)
        if pregion is None:
            return False
        if not self.layer.compact_region(client, vregion, pregion):
            return False
        table = self.layer.table(client)
        if table.region_population(vregion) == PAGES_PER_HUGE:
            return self.layer.try_promote_in_place(client, vregion)
        return self._try_prealloc_promote(client, vregion)

    def _majority_region(self, client: int, vregion: int) -> int | None:
        """The aligned physical region most of this virtual region's pages
        already occupy at consistent offsets, if a clear majority exists."""
        assert self.layer is not None
        table = self.layer.table(client)
        vbase = vregion * PAGES_PER_HUGE
        deltas = table.region_deltas(vregion)
        if deltas is not None:
            # Delta-summary fast path: pbase = pfn - (vpn - vbase) =
            # vbase + delta, so each distinct huge-aligned delta is one
            # candidate region and its count is the page count.  A tied
            # maximum falls back to the scan below — the reference
            # tie-break is dict insertion order, which the summary cannot
            # reproduce; a unique maximum is order-independent.
            if not deltas:
                return None
            total = 0
            counts: dict[int, int] = {}
            for delta, count in deltas.items():
                total += count
                if delta % PAGES_PER_HUGE == 0 and delta >= -vbase:
                    counts[(vbase + delta) // PAGES_PER_HUGE] = count
            if not counts:
                return None
            best_count = max(counts.values())
            tied = [r for r, c in counts.items() if c == best_count]
            if len(tied) == 1:
                if best_count < total - self.miss_fix_limit:
                    return None
                return tied[0]
        mappings = table.region_mappings(vregion)
        if not mappings:
            return None
        counts = {}
        for vpn, pfn in mappings.items():
            pbase = pfn - (vpn - vbase)
            if pbase >= 0 and is_huge_aligned(pbase):
                counts[pbase // PAGES_PER_HUGE] = (
                    counts.get(pbase // PAGES_PER_HUGE, 0) + 1
                )
        if not counts:
            return None
        best = max(counts, key=counts.get)
        if counts[best] < len(mappings) - self.miss_fix_limit:
            return None
        return best

    def _try_prealloc_promote(self, client: int, vregion: int) -> bool:
        """EMA huge preallocation: when the mapped pages already sit at
        consistent huge-aligned offsets and only a few are missing,
        pre-install the missing pages and promote in place."""
        assert self.layer is not None
        if self._fmfi > self.prealloc_fmfi:
            return False
        table = self.layer.table(client)
        deltas = table.region_deltas(vregion)
        if deltas is not None:
            # O(1) rejection from the delta summary: the reference path
            # below rejects (with no side effects) any region that is not
            # all-at-one-huge-aligned-offset, i.e. anything but a single
            # aligned non-negative delta of plausible population.  Only
            # plausible regions pay for the O(region) completion attempt.
            if len(deltas) != 1:
                return False
            ((delta, count),) = deltas.items()
            if count < self.prealloc_threshold or count >= PAGES_PER_HUGE:
                return False
            if delta % PAGES_PER_HUGE != 0 or delta < -(vregion * PAGES_PER_HUGE):
                return False
        mappings = table.region_mappings(vregion)
        population = len(mappings)
        if population < self.prealloc_threshold or population >= PAGES_PER_HUGE:
            return False
        vbase = vregion * PAGES_PER_HUGE
        some_vpn, some_pfn = next(iter(mappings.items()))
        pbase = some_pfn - (some_vpn - vbase)
        if pbase < 0 or not is_huge_aligned(pbase):
            return False
        if any(pfn != pbase + (vpn - vbase) for vpn, pfn in mappings.items()):
            return False
        missing = [vbase + i for i in range(PAGES_PER_HUGE) if vbase + i not in mappings]
        if not all(self.layer.memory.is_free(pbase + (vpn - vbase)) for vpn in missing):
            return False
        for vpn in missing:
            if not self.layer.map_prealloc(client, vpn, pbase + (vpn - vbase)):
                return False
            self.preallocated_pages += 1
        return self.layer.try_promote_in_place(client, vregion)

    # ------------------------------------------------------------------
    # Free / pressure / feedback
    # ------------------------------------------------------------------

    def on_region_freed(self, client: int, pregion: int, aligned: bool) -> bool:
        if aligned and self.bucket is not None:
            return self.bucket.offer(pregion)
        return False

    def on_pressure(self) -> int:
        released = 0
        if self.bucket is not None:
            released += self.bucket.release_all()
        if self.booking is not None:
            released += self.booking.release_all()
        return released

    def on_epoch(self, telemetry: EpochTelemetry) -> None:
        super().on_epoch(telemetry)
        self._fmfi = telemetry.fmfi

    def on_unmap(self, client: int, vstart: int, vend: int) -> None:
        if self._placer is not None:
            self._placer.drop_client(client, vstart, vend)


class GeminiHostPolicy(CoalescingPolicy):
    """Host layer: KVM/THP-style EPT backing that honours bookings.

    A booked guest-physical region (a type-1 mis-aligned guest huge page)
    is served with its reserved huge host page on the first EPT fault,
    aligning it immediately; everything else follows THP behaviour.
    """

    name = "gemini-host"

    def __init__(self, scan_budget: int = 3) -> None:
        super().__init__(
            sync_huge_faults=False,  # only booked regions huge-fault
            util_threshold=0.9,
            scan_budget=scan_budget,
            allow_migration=True,
            # Benefit-sorted: fully-populated EPT regions first.  Scarce
            # huge host pages then go to the guest's dense regions (which a
            # guest huge page can match) instead of to stale or pinned
            # regions that no guest huge page will ever cover; the
            # MHPS-steered promoter handles the precisely-targeted cases.
            benefit_sorted=True,
            compaction_stalls=False,
        )
        self.booking: BookingTable | None = None
        #: Live guest-physical regions per VM (fed by MHPS each epoch):
        #: the generic scan skips stale EPT regions whose guest memory was
        #: freed, so huge host pages are not wasted where no guest huge
        #: page can ever form.
        self.live_regions: dict[int, set[int]] = {}
        #: Cross-layer movability probe (wired by the Gemini runtime):
        #: can the guest-physical region ever be covered by one guest huge
        #: page?  Regions holding unmovable guest frames (kernel objects,
        #: the fragmenter's pins) cannot, so backing them with a huge host
        #: page would waste it.
        self.guest_alignable = None

    def bind(self, booking: BookingTable) -> None:
        self.booking = booking

    def _candidates(self):
        candidates = super()._candidates()
        filtered = []
        for client, vregion, population in candidates:
            live = self.live_regions.get(client) if self.live_regions else None
            if live is not None and vregion not in live:
                continue
            if self.guest_alignable is not None and not self.guest_alignable(
                client, vregion
            ):
                continue
            filtered.append((client, vregion, population))
        return filtered

    def wants_huge_fault(self, client: int, vregion: int) -> bool:
        # Huge EPT faults are taken only for booked regions (type-1
        # mis-aligned guest huge pages): blind fault-time huge backing
        # would waste scarce huge host pages on guest-physical regions
        # that can never form a guest huge page.
        return bool(
            self.booking is not None
            and self.booking.has_purpose((client, vregion))
        )

    def alloc_huge_region(self, client: int, vregion: int) -> int | None:
        if self.booking is not None:
            pregion = self.booking.claim_region(purpose=(client, vregion))
            if pregion is not None:
                return pregion
        return super().alloc_huge_region(client, vregion)

    def on_pressure(self) -> int:
        if self.booking is not None:
            return self.booking.release_all()
        return 0
