"""Huge booking: temporary reservation of huge-page-sized memory regions.

Gemini reserves the memory regions corresponding to *type-1* mis-aligned
huge pages (Section 3): a region at one layer that a huge page at the other
layer maps onto, but into which no base pages have been allocated yet.
While booked, only huge-page allocations and contiguous base-page
allocations (via the EMA) may use the space, so the region can later become
a well-aligned huge page without migration.

Bookings expire after a timeout that Algorithm 1 adapts online: the
:class:`TimeoutController` perturbs the timeout by +/-10% and keeps the new
value when TLB misses decrease without increasing memory fragmentation.

The same reservation machinery (:class:`ReservedRegionPool`) backs the huge
bucket (Section 5), which holds *freed* well-aligned huge pages for reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro import obs
from repro.mem.buddy import AllocationError
from repro.mem.layout import PAGES_PER_HUGE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.os.mm import MemoryLayer

__all__ = ["ReservedRegionPool", "BookingTable", "TimeoutController"]


@dataclass
class _Reservation:
    pregion: int
    expiry: float
    purpose: Hashable | None = None
    #: frames handed out to the EMA (they now belong to page mappings and
    #: must not be freed when the reservation expires)
    handed: set[int] = field(default_factory=set)


class ReservedRegionPool:
    """Huge-page-sized physical regions held out of the buddy allocator.

    Regions enter the pool either by reserving free memory
    (:meth:`reserve_free`) or by absorbing an already-allocated region
    (:meth:`absorb`, used by the huge bucket when a well-aligned huge page
    is freed).  They leave by being claimed whole for a huge mapping, page
    by page through the EMA, or by expiring back to the buddy.
    """

    def __init__(self, layer: "MemoryLayer") -> None:
        self.layer = layer
        self._reservations: dict[int, _Reservation] = {}
        self._by_purpose: dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def reserve_free(
        self, pregion: int, expiry: float, purpose: Hashable | None = None
    ) -> bool:
        """Reserve the fully-free region *pregion* until *expiry*."""
        if pregion in self._reservations:
            return False
        if purpose is not None and purpose in self._by_purpose:
            return False
        start = pregion * PAGES_PER_HUGE
        try:
            self.layer.memory.alloc_range(start, PAGES_PER_HUGE)
        except AllocationError:
            return False
        self._insert(_Reservation(pregion, expiry, purpose))
        return True

    def absorb(
        self, pregion: int, expiry: float, purpose: Hashable | None = None
    ) -> bool:
        """Take custody of an already-allocated region (freed huge page)."""
        if pregion in self._reservations:
            return False
        self._insert(_Reservation(pregion, expiry, purpose))
        return True

    def _insert(self, reservation: _Reservation) -> None:
        self._reservations[reservation.pregion] = reservation
        if reservation.purpose is not None:
            self._by_purpose[reservation.purpose] = reservation.pregion

    # ------------------------------------------------------------------
    # Exit
    # ------------------------------------------------------------------

    def claim_region(self, pregion: int | None = None, purpose: Hashable | None = None) -> int | None:
        """Hand out a whole untouched region for a huge mapping.

        Select by region index, by purpose, or (both None) any untouched
        reservation.  The region stays allocated; its reservation ends.
        """
        if purpose is not None:
            pregion = self._by_purpose.get(purpose)
        if pregion is None:
            pregion = next(
                (p for p, r in self._reservations.items() if not r.handed), None
            )
        if pregion is None:
            return None
        reservation = self._reservations.get(pregion)
        if reservation is None or reservation.handed:
            return None
        self._remove(reservation)
        return pregion

    def claim_page(self, frame: int) -> bool:
        """Hand out one page of a reserved region (EMA base allocation)."""
        reservation = self._reservations.get(frame // PAGES_PER_HUGE)
        if reservation is None or frame in reservation.handed:
            return False
        reservation.handed.add(frame)
        if len(reservation.handed) == PAGES_PER_HUGE:
            # Fully handed out: nothing left to manage or return.
            self._remove(reservation)
        return True

    def expire(self, now: float) -> int:
        """Release reservations past their expiry; return pages returned."""
        due = [r for r in self._reservations.values() if r.expiry <= now]
        released = 0
        for reservation in due:
            released += self._release(reservation)
        return released

    def release_all(self) -> int:
        """Release everything (memory-pressure path); return pages freed."""
        released = 0
        for reservation in list(self._reservations.values()):
            released += self._release(reservation)
        return released

    def release_matching(self, predicate) -> int:
        """Release every reservation whose *purpose* satisfies *predicate*.

        Used when a VM detaches from the host: its ``(vm_id, gpregion)``
        purposed bookings must return their frames to the buddy allocator
        (the reservations back EPT faults that will never come).  Returns
        pages freed.
        """
        due = [
            r for r in self._reservations.values()
            if r.purpose is not None and predicate(r.purpose)
        ]
        released = 0
        for reservation in due:
            released += self._release(reservation)
        return released

    def _release(self, reservation: _Reservation) -> int:
        self._remove(reservation)
        start = reservation.pregion * PAGES_PER_HUGE
        released = 0
        for frame in range(start, start + PAGES_PER_HUGE):
            if frame not in reservation.handed:
                self.layer.memory.free(frame, 0)
                released += 1
        return released

    def _remove(self, reservation: _Reservation) -> None:
        del self._reservations[reservation.pregion]
        if reservation.purpose is not None:
            self._by_purpose.pop(reservation.purpose, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, pregion: int) -> bool:
        return pregion in self._reservations

    def __len__(self) -> int:
        return len(self._reservations)

    def has_purpose(self, purpose: Hashable) -> bool:
        return purpose in self._by_purpose

    def untouched_regions(self) -> list[int]:
        """Regions with no pages handed out yet (usable for huge faults)."""
        return [p for p, r in self._reservations.items() if not r.handed]

    def regions(self) -> list[int]:
        return list(self._reservations.keys())

    @property
    def reserved_pages(self) -> int:
        """Pages currently held back from the buddy allocator."""
        return sum(
            PAGES_PER_HUGE - len(r.handed) for r in self._reservations.values()
        )


class BookingTable(ReservedRegionPool):
    """The huge-booking component of one layer.

    A thin veneer over :class:`ReservedRegionPool` that stamps expiries
    from the adaptive timeout and counts booking outcomes for the
    evaluation's breakdowns.
    """

    def __init__(self, layer: "MemoryLayer", controller: "TimeoutController") -> None:
        super().__init__(layer)
        self.controller = controller
        self.booked_total = 0
        self.expired_total = 0

    def book(self, pregion: int, now: float, purpose: Hashable | None = None) -> bool:
        """Book *pregion* (type-1 mis-aligned target) for the current
        effective timeout."""
        ok = self.reserve_free(pregion, now + self.controller.effective, purpose)
        if ok:
            self.booked_total += 1
            obs.emit(
                "booking.book",
                region=pregion,
                timeout=round(self.controller.effective, 6),
                purpose=purpose,
            )
        return ok

    def expire(self, now: float) -> int:
        before = len(self)
        released = super().expire(now)
        expired = before - len(self)
        self.expired_total += expired
        if expired:
            obs.emit("booking.expire", count=expired, released=released)
        return released


class TimeoutController:
    """Algorithm 1: online booking-timeout adjustment.

    Cycles through measurement windows of *period* epochs: a baseline at
    the desired timeout, then a trial at +10%; if the trial reduced TLB
    misses without increasing fragmentation it is adopted, otherwise a
    fresh baseline is measured and -10% is trialled the same way.
    """

    _BASE_UP, _UP, _BASE_DOWN, _DOWN = range(4)

    def __init__(
        self,
        initial: float = 4.0,
        period: int = 3,
        min_timeout: float = 1.0,
        max_timeout: float = 64.0,
    ) -> None:
        if initial <= 0 or period <= 0:
            raise ValueError("initial timeout and period must be positive")
        self.desired = initial
        self.effective = initial
        self.period = period
        self.min_timeout = min_timeout
        self.max_timeout = max_timeout
        self._phase = self._BASE_UP
        self._window: list[tuple[float, float]] = []
        self._baseline: tuple[float, float] | None = None
        self.adjustments = 0

    def observe(self, tlb_misses: float, fmfi: float) -> None:
        """Feed one epoch of telemetry; advances the state machine."""
        self._window.append((tlb_misses, fmfi))
        if len(self._window) < self.period:
            return
        misses = sum(m for m, _ in self._window) / len(self._window)
        frag = sum(f for _, f in self._window) / len(self._window)
        self._window.clear()
        self._transition(misses, frag)

    def _transition(self, misses: float, frag: float) -> None:
        if self._phase in (self._BASE_UP, self._BASE_DOWN):
            self._baseline = (misses, frag)
            trial_up = self._phase == self._BASE_UP
            factor = 1.1 if trial_up else 0.9
            self.effective = self._clamp(self.desired * factor)
            self._phase = self._UP if trial_up else self._DOWN
            return
        assert self._baseline is not None
        base_misses, base_frag = self._baseline
        improved = misses < base_misses and frag <= base_frag
        if improved:
            # TestTimeout succeeded: adopt the trial value and keep probing
            # in the same (upward-first) order.
            self.desired = self.effective
            self.adjustments += 1
            obs.emit("booking.timeout", adopted=round(self.desired, 6))
            self._phase = self._BASE_UP
        else:
            self.effective = self.desired
            self._phase = (
                self._BASE_DOWN if self._phase == self._UP else self._BASE_UP
            )

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min_timeout), self.max_timeout)
