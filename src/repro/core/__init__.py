"""Gemini: the paper's primary contribution.

Cross-layer huge-page alignment for virtualized clouds — the misaligned
huge page scanner (MHPS), huge booking with Algorithm 1's adaptive timeout,
the enhanced memory allocator (EMA, built on the shared placement machinery
in :mod:`repro.policies.placement`), the huge bucket, the misaligned huge
page promoter (MHPP), and the runtime that orchestrates them.
"""

from repro.core.booking import BookingTable, ReservedRegionPool, TimeoutController
from repro.core.bucket import HugeBucket
from repro.core.mhps import MisalignedScanner, ScanResult
from repro.core.policy import GeminiGuestPolicy, GeminiHostPolicy
from repro.core.promoter import GuestPromoter, HostPromoter
from repro.core.runtime import GeminiConfig, GeminiRuntime

__all__ = [
    "BookingTable",
    "GeminiConfig",
    "GeminiGuestPolicy",
    "GeminiHostPolicy",
    "GeminiRuntime",
    "GuestPromoter",
    "HostPromoter",
    "HugeBucket",
    "MisalignedScanner",
    "ReservedRegionPool",
    "ScanResult",
    "TimeoutController",
]
