"""Huge bucket: recycling of well-aligned huge pages (Section 5).

When a guest frees a huge page whose guest-physical region is still backed
by a host huge page, returning it to the buddy allocator would let small
allocations splinter it — destroying a well-aligned huge page another
allocation could have reused wholesale (the reused-VM problem of
Section 6.3).  The huge bucket instead holds such regions for a grace
period and serves them, whole regions first, to later huge-page and EMA
allocations.  Regions are returned to the OS on timeout, on memory
pressure, or when fragmentation becomes severe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.booking import ReservedRegionPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.os.mm import MemoryLayer

__all__ = ["HugeBucket"]


class HugeBucket(ReservedRegionPool):
    """Pool of freed, still well-aligned huge regions awaiting reuse."""

    def __init__(self, layer: "MemoryLayer", hold_epochs: float = 8.0) -> None:
        super().__init__(layer)
        self.hold_epochs = hold_epochs
        self._now = 0.0
        self.offered_total = 0
        self.reused_total = 0

    def offer(self, pregion: int) -> bool:
        """Take custody of a freed well-aligned huge region."""
        ok = self.absorb(pregion, self._now + self.hold_epochs)
        if ok:
            self.offered_total += 1
        return ok

    def take(self) -> int | None:
        """Hand out one whole untouched region for a huge allocation."""
        pregion = self.claim_region()
        if pregion is not None:
            self.reused_total += 1
        return pregion

    def take_specific(self, pregion: int) -> int | None:
        """Hand out one specific region, if held and untouched."""
        claimed = self.claim_region(pregion=pregion)
        if claimed is not None:
            self.reused_total += 1
        return claimed

    def tick(self, now: float) -> int:
        """Advance time and return expired regions to the buddy."""
        self._now = now
        return self.expire(now)

    @property
    def reuse_rate(self) -> float:
        """Fraction of offered regions that were reused — the 88% statistic
        of Section 6.3."""
        return self.reused_total / self.offered_total if self.offered_total else 0.0
