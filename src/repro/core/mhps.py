"""Misaligned huge page scanner (MHPS, Section 4).

MHPS runs at the host layer.  It periodically scans the page tables of the
guest processes (for huge pages formed in the guest) and the VM page tables
(for huge pages formed in the host), labels each huge page with its layer,
guest-physical address and VM, and derives the two mis-alignment lists that
drive the rest of Gemini:

* *mis-aligned guest huge pages* — guest huge mappings whose guest-physical
  region is not backed by one huge EPT entry; the **host** should form a
  huge page there;
* *mis-aligned host huge pages* — huge EPT entries whose guest-physical
  region no guest huge page maps onto; the **guest** should form a huge
  page there.

The scanner shares results keyed by VM so each guest only sees its own
guest-physical addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.platform import Platform

__all__ = ["ScanResult", "MisalignedScanner"]


@dataclass
class ScanResult:
    """Mis-aligned huge pages found in one scan, keyed by VM id."""

    #: guest huge pages lacking huge host backing: vm -> [gpa region]
    misaligned_guest: dict[int, list[int]] = field(default_factory=dict)
    #: host huge pages lacking a guest huge page: vm -> [gpa region]
    misaligned_host: dict[int, list[int]] = field(default_factory=dict)
    #: guest-physical regions referenced by *current* guest mappings:
    #: vm -> {gpa region}.  EPT state persists after the guest frees
    #: memory, so the host cannot tell live regions from stale ones on its
    #: own; MHPS, which scans the guest page tables anyway, can.
    live_regions: dict[int, set[int]] = field(default_factory=dict)
    #: total huge mappings examined (scan-cost accounting)
    scanned: int = 0

    def guest_regions(self, vm_id: int) -> list[int]:
        return self.misaligned_guest.get(vm_id, [])

    def host_regions(self, vm_id: int) -> list[int]:
        return self.misaligned_host.get(vm_id, [])


class MisalignedScanner:
    """Periodic cross-layer page-table scanner."""

    def __init__(self, platform: "Platform") -> None:
        self.platform = platform
        self.scans = 0

    def scan(self) -> ScanResult:
        """One full pass over all guest page tables and EPTs."""
        result = ScanResult()
        for vm in self.platform.iter_vms():
            guest_table = vm.guest.table(PROCESS)
            ept = self.platform.ept(vm.id)
            index = self.platform.index_of(vm.id)
            guest_targets: set[int] = set()
            misaligned_guest: list[int] = []
            # The mis-aligned lists stay enumeration-based even with the
            # index: their *order* feeds the promoter queues (and thus the
            # results), and huge-mapping counts are small.  The lists also
            # feed the scanned total, which the cost model charges.
            for _, gpregion in guest_table.huge_mappings():
                guest_targets.add(gpregion)
                result.scanned += 1
                if not ept.is_huge(gpregion):
                    misaligned_guest.append(gpregion)
            misaligned_host: list[int] = []
            for gpregion, _ in ept.huge_mappings():
                result.scanned += 1
                if gpregion not in guest_targets:
                    misaligned_host.append(gpregion)
            if misaligned_guest:
                result.misaligned_guest[vm.id] = misaligned_guest
            if misaligned_host:
                result.misaligned_host[vm.id] = misaligned_host
            if index is not None:
                # Only membership in the live set matters downstream, so
                # the index's counter-maintained set (identical contents)
                # replaces the O(base-mappings) walk.
                result.live_regions[vm.id] = index.live_set()
            else:
                live = set(guest_targets)
                for _, gpn in guest_table.base_mappings():
                    live.add(gpn // PAGES_PER_HUGE)
                result.live_regions[vm.id] = live
        self.platform.host.charge_scan(result.scanned)
        self.scans += 1
        return result
