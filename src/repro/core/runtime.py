"""Gemini runtime: cross-layer orchestration.

Wires the scanner, bookings, buckets and promoters together and advances
them once per epoch:

1. MHPS scans both layers' page tables for mis-aligned huge pages.
2. Guest side, per VM: each mis-aligned *host* huge page is classified —
   type-1 (its guest-physical region is entirely free in the guest) is
   booked so the EMA fills it with alignable allocations; type-2 goes to
   the guest promoter, which compacts and promotes the dominant virtual
   region into it.
3. Host side: each mis-aligned *guest* huge page is classified — type-1
   (no EPT entries yet) gets a host huge page booked against its first EPT
   fault; type-2 goes to the host promoter for prioritized EPT promotion.
4. Bookings and buckets expire; Algorithm 1 adjusts the booking timeout
   from the epoch's TLB-miss and fragmentation telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.booking import BookingTable, TimeoutController
from repro.core.bucket import HugeBucket
from repro.core.mhps import MisalignedScanner
from repro.core.policy import GeminiGuestPolicy, GeminiHostPolicy
from typing import TYPE_CHECKING

from repro.mem.fragmentation import fmfi
from repro.mem.layout import PAGES_PER_HUGE, huge_align_up

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.platform import Platform
    from repro.hypervisor.vm import VM

__all__ = ["GeminiConfig", "GeminiRuntime"]


@dataclass(frozen=True)
class GeminiConfig:
    """Tunables of the Gemini runtime (paper defaults where given)."""

    promoter_budget: int = 12
    prealloc_threshold: int = 256  # Section 4.2: selected experimentally
    prealloc_fmfi: float = 0.5     # Section 4.2: low-fragmentation gate
    initial_timeout: float = 4.0   # epochs; adapted by Algorithm 1
    adjust_period: int = 3         # P in Algorithm 1
    bucket_hold: float = 8.0       # epochs a freed aligned page is held
    booking_cap_fraction: float = 0.125  # bound on reserved space
    #: Ablation switches (Figure 16 performance breakdown).
    enable_ema_hb: bool = True
    enable_bucket: bool = True


class _GuestState:
    """Per-VM Gemini state on the guest side."""

    def __init__(
        self, vm: "VM", policy: GeminiGuestPolicy, config: GeminiConfig
    ) -> None:
        from repro.core.promoter import GuestPromoter

        self.vm = vm
        self.policy = policy
        self.controller = TimeoutController(
            initial=config.initial_timeout, period=config.adjust_period
        )
        self.booking = BookingTable(vm.guest, self.controller)
        self.bucket = HugeBucket(vm.guest, hold_epochs=config.bucket_hold)
        self.ema_hb_enabled = config.enable_ema_hb
        self.bucket_enabled = config.enable_bucket
        self.promoter = GuestPromoter(
            vm,
            budget=config.promoter_budget,
            prealloc_threshold=config.prealloc_threshold,
            prealloc_fmfi=config.prealloc_fmfi,
        )
        policy.bind(
            self.booking if config.enable_ema_hb else None,
            self.bucket if config.enable_bucket else None,
        )


class GeminiRuntime:
    """Drives Gemini's components across the platform, once per epoch."""

    def __init__(self, platform: "Platform", config: GeminiConfig | None = None) -> None:
        from repro.core.promoter import HostPromoter

        self.platform = platform
        self.config = config or GeminiConfig()
        self.scanner = MisalignedScanner(platform)
        self.host_controller = TimeoutController(
            initial=self.config.initial_timeout, period=self.config.adjust_period
        )
        self.host_booking = BookingTable(platform.host, self.host_controller)
        self.host_promoter = HostPromoter(
            platform.host, budget=self.config.promoter_budget
        )
        host_policy = platform.host.policy
        if isinstance(host_policy, GeminiHostPolicy):
            host_policy.bind(self.host_booking)
        self._guests: dict[int, _GuestState] = {}

    def register_vm(self, vm: "VM") -> None:
        """Create the per-VM guest-side components; the VM's guest policy
        must be a :class:`GeminiGuestPolicy`."""
        policy = vm.guest.policy
        if not isinstance(policy, GeminiGuestPolicy):
            raise TypeError(
                f"VM {vm.name} guest policy is {type(policy).__name__}, "
                "expected GeminiGuestPolicy"
            )
        self._guests[vm.id] = _GuestState(vm, policy, self.config)

    def unregister_vm(self, vm_id: int) -> "_GuestState | None":
        """Detach a VM from this runtime (live-migration departure).

        Host-side state tied to the VM — purposed bookings reserving host
        frames for its future EPT faults, and host-promoter queue entries —
        is released here; the returned guest-side state (booking, bucket,
        promoter, timeout controller) lives entirely inside the VM's own
        guest-physical space and travels with it: hand it to the
        destination runtime's :meth:`adopt_vm`.
        """
        state = self._guests.pop(vm_id, None)
        self.host_booking.release_matching(
            lambda purpose: isinstance(purpose, tuple) and purpose[0] == vm_id
        )
        self.host_promoter.drop_client(vm_id)
        host_policy = self.platform.host.policy
        if isinstance(host_policy, GeminiHostPolicy):
            host_policy.live_regions.pop(vm_id, None)
        return state

    def adopt_vm(self, vm: "VM", state: "_GuestState | None") -> None:
        """Re-register a migrated-in VM with its travelling guest state.

        Falls back to :meth:`register_vm` when no state is available (the
        source host was not running the Gemini runtime)."""
        if state is None:
            self.register_vm(vm)
            return
        self._guests[vm.id] = state

    def guest_state(self, vm_id: int) -> _GuestState:
        return self._guests[vm_id]

    # ------------------------------------------------------------------
    # Epoch driver
    # ------------------------------------------------------------------

    def epoch(self, now: float, tlb_misses: float = 0.0) -> None:
        """One Gemini maintenance round."""
        with obs.span("gemini.epoch"):
            with obs.span("gemini.scan"):
                result = self.scanner.scan()
            host_policy = self.platform.host.policy
            if isinstance(host_policy, GeminiHostPolicy):
                host_policy.live_regions = result.live_regions
                host_policy.guest_alignable = self._guest_region_alignable
            host_fmfi = fmfi(self.platform.memory)
            with obs.span("gemini.guest"):
                for vm_id, state in self._guests.items():
                    self._guest_round(
                        state, result.host_regions(vm_id), now, tlb_misses
                    )
            with obs.span("gemini.host"):
                with obs.span("gemini.host.scan"):
                    for vm_id in self._guests:
                        self._host_round(vm_id, result.guest_regions(vm_id), now)
                with obs.span("gemini.host.promote"):
                    if self.config.enable_ema_hb:
                        self.host_promoter.run()
                    self.host_booking.expire(now)
            self.host_controller.observe(tlb_misses, host_fmfi)

    def _guest_round(
        self, state: _GuestState, misaligned_host: list[int], now: float, tlb_misses: float
    ) -> None:
        vm = state.vm
        guest_fmfi = fmfi(vm.gpa_space)
        cap = self.config.booking_cap_fraction * vm.gpa_space.total_pages
        type2: list[int] = []
        for gpregion in misaligned_host:
            if gpregion in state.booking or gpregion in state.bucket:
                continue
            start = gpregion * PAGES_PER_HUGE
            if vm.gpa_space.range_is_free(start, PAGES_PER_HUGE):
                # Type-1: nothing allocated there yet; reserve it so the
                # EMA can fill it alignably.
                if state.ema_hb_enabled and state.booking.reserved_pages < cap:
                    state.booking.book(gpregion, now)
            else:
                type2.append(gpregion)
        if state.ema_hb_enabled:
            state.promoter.enqueue(type2)
        # Cross-layer hint for the guest policy: can the host still form
        # new huge pages?  When it cannot, unguided guest promotions would
        # only create permanently mis-aligned huge pages.
        state.policy.host_can_align = self._free_host_region() is not None
        ept = self.platform.ept(vm.id)
        state.promoter.run(ept.is_huge, guest_fmfi)
        state.booking.expire(now)
        state.bucket.tick(now)
        state.controller.observe(tlb_misses, guest_fmfi)

    def _host_round(self, vm_id: int, misaligned_guest: list[int], now: float) -> None:
        host = self.platform.host
        ept = host.table(vm_id)
        cap = self.config.booking_cap_fraction * host.memory.total_pages
        for gpregion in misaligned_guest:
            purpose = (vm_id, gpregion)
            if self.host_booking.has_purpose(purpose):
                continue
            if ept.region_population(gpregion) == 0 and not ept.is_huge(gpregion):
                # Type-1: back the future EPT fault with a reserved huge page.
                if not self.config.enable_ema_hb:
                    continue
                if self.host_booking.reserved_pages >= cap:
                    continue
                candidate = self._free_host_region()
                if candidate is not None:
                    self.host_booking.book(candidate, now, purpose=purpose)
            elif self.config.enable_ema_hb:
                self.host_promoter.enqueue(vm_id, [gpregion])

    def _guest_region_alignable(self, vm_id: int, gpregion: int) -> bool:
        """Can guest-physical region *gpregion* ever be covered by one
        guest huge page?  False when it holds allocated-but-unmapped guest
        frames (unmovable kernel objects): a huge host page spent there
        could never become well-aligned."""
        state = self._guests.get(vm_id)
        if state is None:
            return True
        vm = state.vm
        start = gpregion * PAGES_PER_HUGE
        if vm.guest.region_owner_counts(gpregion) is not None:
            # Counting fast path.  The reference loop below returns False
            # iff some allocated frame is not base-owned while none of the
            # frame-independent escapes (huge owner, booked, bucketed)
            # hold; rmap entries only exist for allocated frames, so
            # "every allocated frame is base-owned" is exactly
            # allocated == base_owned_in_region.
            if vm.guest.owner_of_region(gpregion) is not None:
                return True
            if gpregion in state.booking or gpregion in state.bucket:
                return True
            free = vm.gpa_space.free_pages_in_range(start, PAGES_PER_HUGE)
            return PAGES_PER_HUGE - free == vm.guest.base_owned_in_region(gpregion)
        for frame in range(start, start + PAGES_PER_HUGE):
            if vm.gpa_space.is_free(frame):
                continue
            if vm.guest.owner_of_frame(frame) is not None:
                continue
            if vm.guest.owner_of_region(gpregion) is not None:
                continue
            if gpregion in state.booking or gpregion in state.bucket:
                continue
            return False
        return True

    def _free_host_region(self) -> int | None:
        """Lowest free huge-aligned host region, or None."""
        memory = self.platform.memory
        if self.platform.fast_kernels:
            # An aligned fit needs at least PAGES_PER_HUGE free pages, so
            # only the region index's large entries can qualify; both
            # listings ascend by start frame, so the first hit is the
            # same region the full walk would return.
            regions = memory.large_free_regions()
        else:
            regions = memory.free_regions()
        for start, npages in regions:
            aligned = huge_align_up(start)
            if aligned + PAGES_PER_HUGE <= start + npages:
                return aligned // PAGES_PER_HUGE
        return None

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Aggregate component statistics (for reports and breakdowns)."""
        booked = self.host_booking.booked_total
        reused = 0
        offered = 0
        promoted = self.host_promoter.promoted_total
        prealloc = 0
        for state in self._guests.values():
            booked += state.booking.booked_total
            offered += state.bucket.offered_total
            reused += state.bucket.reused_total
            promoted += state.promoter.promoted_total
            prealloc += state.promoter.preallocated_pages + state.policy.preallocated_pages
        return {
            "bookings": float(booked),
            "bucket_offered": float(offered),
            "bucket_reused": float(reused),
            "bucket_reuse_rate": reused / offered if offered else 0.0,
            "promotions": float(promoted),
            "preallocated_pages": float(prealloc),
            "scans": float(self.scanner.scans),
        }
