"""The virtualized platform: host memory, the host MM layer (EPT
management), and the VMs consolidated on the server.

:meth:`Platform.touch` is the simulator's memory-access entry point: it
drives the guest page-fault path (GVA -> GPA) and then the EPT-violation
path (GPA -> HPA), exactly the nesting real KVM demand paging performs.
"""

from __future__ import annotations

from typing import Iterator

from repro.mem.layout import MIB, PAGE_SIZE, PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.os.mm import MemoryLayer
from repro.os.vma import VMA
from repro.hypervisor.vm import PROCESS, VM
from repro.policies.base import HugePagePolicy

__all__ = ["Platform"]


class Platform:
    """Host machine running one or more VMs under nested paging."""

    def __init__(
        self,
        host_pages: int,
        host_policy: HugePagePolicy,
        nodes: int = 1,
    ) -> None:
        self.memory = PhysicalMemory(host_pages, nodes=nodes)
        self.host = MemoryLayer("host", self.memory, host_policy)
        self.vms: dict[int, VM] = {}
        self._next_vm_id = 0
        #: Optional callback fired after every demand fault (both layers);
        #: the simulation engine hooks OS allocation noise in here so that
        #: kernel/slab-style allocations interleave with workload faults.
        self.fault_hook = None

    @classmethod
    def with_mib(
        cls, host_mib: int, host_policy: HugePagePolicy, nodes: int = 1
    ) -> "Platform":
        return cls(host_mib * MIB // PAGE_SIZE, host_policy, nodes=nodes)

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------

    def create_vm(
        self, guest_pages: int, guest_policy: HugePagePolicy, name: str = ""
    ) -> VM:
        vm = VM(self._next_vm_id, guest_pages, guest_policy, name=name)
        self._next_vm_id += 1
        self.vms[vm.id] = vm
        # The guest layer can ask whether a guest-physical region it is
        # about to free was well-aligned (backed by a host huge page);
        # Gemini's huge bucket keys off this.
        ept = self.host.table(vm.id)
        vm.guest.alignment_probe = ept.is_huge
        return vm

    def create_vm_mib(
        self, guest_mib: int, guest_policy: HugePagePolicy, name: str = ""
    ) -> VM:
        return self.create_vm(guest_mib * MIB // PAGE_SIZE, guest_policy, name=name)

    # ------------------------------------------------------------------
    # Memory access path
    # ------------------------------------------------------------------

    def touch(self, vm: VM, vpn: int) -> int:
        """Access guest-virtual page *vpn*: fault both layers as needed.

        Returns the host frame ultimately backing the page.
        """
        faulted = False
        gpn = vm.translate(vpn)
        if gpn is None:
            vma = vm.address_space.find(vpn)
            if vma is None:
                raise ValueError(f"{vm.name}: touch of unmapped vpn {vpn}")
            full = vma.covers_full_region(vpn // PAGES_PER_HUGE)
            gpn = vm.guest.fault(PROCESS, vpn, full_region=full)
            faulted = True
        hpn = self.host.translate(vm.id, gpn)
        if hpn is None:
            hpn = self.host.fault(vm.id, gpn, full_region=True)
            faulted = True
        if faulted and self.fault_hook is not None:
            self.fault_hook(vm)
        return hpn

    def touch_vma(self, vm: VM, vma: VMA, start: int = 0, npages: int | None = None) -> None:
        """Touch a slice of *vma* (offsets relative to its start)."""
        count = vma.npages - start if npages is None else npages
        for vpn in range(vma.start + start, vma.start + start + count):
            self.touch(vm, vpn)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def ept(self, vm: VM | int):
        """The VM's EPT (GPA -> HPA page table); accepts a VM or its id."""
        vm_id = vm.id if isinstance(vm, VM) else vm
        return self.host.table(vm_id)

    def iter_vms(self) -> Iterator[VM]:
        yield from self.vms.values()

    @property
    def host_pages(self) -> int:
        return self.memory.total_pages
