"""The virtualized platform: host memory, the host MM layer (EPT
management), and the VMs consolidated on the server.

:meth:`Platform.touch` is the simulator's memory-access entry point: it
drives the guest page-fault path (GVA -> GPA) and then the EPT-violation
path (GPA -> HPA), exactly the nesting real KVM demand paging performs.
"""

from __future__ import annotations

from typing import Iterator

from repro.mem.layout import MIB, PAGE_SIZE, PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.os.mm import MemoryLayer
from repro.os.vma import VMA
from repro.hypervisor.vm import PROCESS, VM
from repro.paging.index import VMTranslationIndex
from repro.policies.base import HugePagePolicy

__all__ = ["Platform"]


class Platform:
    """Host machine running one or more VMs under nested paging."""

    def __init__(
        self,
        host_pages: int,
        host_policy: HugePagePolicy,
        nodes: int = 1,
    ) -> None:
        self.memory = PhysicalMemory(host_pages, nodes=nodes)
        self.host = MemoryLayer("host", self.memory, host_policy)
        self.vms: dict[int, VM] = {}
        self._next_vm_id = 0
        #: Optional callback fired after every demand fault (both layers);
        #: the simulation engine hooks OS allocation noise in here so that
        #: kernel/slab-style allocations interleave with workload faults.
        self.fault_hook = None
        #: Serve multi-page touches through the batched fault path (same
        #: results, O(spans) work); False forces the per-page path.
        self.batch_faults = True
        #: Maintain the incremental translation-state index for VMs
        #: created from now on (same results, O(changed-regions) epoch
        #: work); False keeps the enumerate-everything reference path.
        self.use_index = True
        #: Per-VM translation indices, populated by :meth:`create_vm`
        #: when ``use_index`` is set.
        self.indices: dict[int, VMTranslationIndex] = {}
        #: Serve hot paths through the batch/bitset kernels and the
        #: quiescent-range cache (same results, O(words)/O(spans) work);
        #: assign through the property to reach the MM layers too.
        self._fast_kernels = True
        #: vm id -> {(start, npages): index.invalidation_gen} for ranges
        #: proven fully translated at both layers.  While the generation
        #: matches, re-touching the range is a no-op and skips in O(1).
        self._quiescent: dict[int, dict[tuple[int, int], int]] = {}

    @property
    def fast_kernels(self) -> bool:
        return self._fast_kernels

    @fast_kernels.setter
    def fast_kernels(self, value: bool) -> None:
        self._fast_kernels = bool(value)
        self.host.fast_kernels = self._fast_kernels
        for vm in self.vms.values():
            vm.guest.fast_kernels = self._fast_kernels
        if not self._fast_kernels:
            self._quiescent.clear()

    @classmethod
    def with_mib(
        cls, host_mib: int, host_policy: HugePagePolicy, nodes: int = 1
    ) -> "Platform":
        return cls(host_mib * MIB // PAGE_SIZE, host_policy, nodes=nodes)

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------

    def create_vm(
        self, guest_pages: int, guest_policy: HugePagePolicy, name: str = ""
    ) -> VM:
        vm = VM(self._next_vm_id, guest_pages, guest_policy, name=name)
        self.attach_vm(vm)
        return vm

    def attach_vm(self, vm: VM) -> None:
        """Adopt an existing VM (arrival half of live migration).

        Creates a fresh EPT for the VM and wires the cross-layer hooks; the
        guest-side state (guest tables, guest-physical allocator, address
        space) arrives intact inside the VM object.  The EPT starts empty —
        the destination re-backs the resident set by demand-faulting it, so
        huge-page alignment is rebuilt under *this* host's policy.
        """
        if vm.id in self.vms:
            raise ValueError(f"VM id {vm.id} already attached")
        if self.host.has_client(vm.id):
            raise ValueError(f"VM id {vm.id} still has an EPT on this host")
        self.vms[vm.id] = vm
        self._next_vm_id = max(self._next_vm_id, vm.id + 1)
        # The guest layer can ask whether a guest-physical region it is
        # about to free was well-aligned (backed by a host huge page);
        # Gemini's huge bucket keys off this.
        ept = self.host.table(vm.id)
        vm.guest.alignment_probe = ept.is_huge
        vm.guest.fast_kernels = self._fast_kernels
        if self.use_index:
            guest_table = vm.guest.table(PROCESS)
            guest_table.enable_index()
            ept.enable_index()
            vm.guest.enable_owner_index()
            # The index bootstraps from the tables' current state, so a
            # migrated-in VM's populated guest table is summarised too.
            self.indices[vm.id] = VMTranslationIndex(guest_table, ept)

    def detach_vm(self, vm: VM | int) -> int:
        """Remove a VM from this host (departure half of live migration).

        Tears down the EPT and frees every host frame backing the VM; the
        VM object keeps its guest-side state so it can be re-attached
        elsewhere.  Returns the number of host pages freed.
        """
        vm = self.vms[vm] if isinstance(vm, int) else vm
        if vm.id not in self.vms:
            raise ValueError(f"VM id {vm.id} not attached to this platform")
        index = self.indices.pop(vm.id, None)
        self._quiescent.pop(vm.id, None)
        if index is not None:
            vm.guest.table(PROCESS).remove_watcher(index)
            self.ept(vm.id).remove_watcher(index)
        freed = self.host.release_client(vm.id)
        del self.vms[vm.id]
        vm.guest.alignment_probe = None
        return freed

    def create_vm_mib(
        self, guest_mib: int, guest_policy: HugePagePolicy, name: str = ""
    ) -> VM:
        return self.create_vm(guest_mib * MIB // PAGE_SIZE, guest_policy, name=name)

    # ------------------------------------------------------------------
    # Memory access path
    # ------------------------------------------------------------------

    def touch(self, vm: VM, vpn: int) -> int:
        """Access guest-virtual page *vpn*: fault both layers as needed.

        Returns the host frame ultimately backing the page.
        """
        faulted = False
        gpn = vm.translate(vpn)
        if gpn is None:
            vma = vm.address_space.find(vpn)
            if vma is None:
                raise ValueError(f"{vm.name}: touch of unmapped vpn {vpn}")
            full = vma.covers_full_region(vpn // PAGES_PER_HUGE)
            gpn = vm.guest.fault(PROCESS, vpn, full_region=full)
            faulted = True
        hpn = self.host.translate(vm.id, gpn)
        if hpn is None:
            hpn = self.host.fault(vm.id, gpn, full_region=True)
            faulted = True
        if faulted and self.fault_hook is not None:
            self.fault_hook(vm)
        return hpn

    def touch_vma(self, vm: VM, vma: VMA, start: int = 0, npages: int | None = None) -> None:
        """Touch a slice of *vma* (offsets relative to its start)."""
        count = vma.npages - start if npages is None else npages
        self.touch_range(vm, vma.start + start, count)

    def touch_range(self, vm: VM, start: int, npages: int) -> None:
        """Touch ``[start, start + npages)``, batching the fault path.

        Produces the identical end state (mappings, allocator layout,
        ledger totals, RNG stream) as *npages* :meth:`touch` calls.  The
        per-page path is kept for ``batch_faults=False`` and for foreign
        fault hooks that cannot pre-commit to a noise-free window.
        """
        end = start + npages
        hook = self.fault_hook
        horizon = getattr(hook, "act_horizon", None)
        if not self.batch_faults or (hook is not None and horizon is None):
            for vpn in range(start, end):
                self.touch(vm, vpn)
            return
        index = self.indices.get(vm.id)
        if self._fast_kernels and index is not None and npages > 0:
            # Quiescent-range cache: a range once proven fully translated
            # at both layers stays a no-op until some region anywhere
            # leaves the fully-translated set (demote, unmap, remap,
            # migration teardown) — every such event bumps the index's
            # invalidation generation, so a matching fingerprint makes the
            # replay O(1) instead of O(regions).
            cache = self._quiescent.get(vm.id)
            if cache is not None and cache.get((start, npages)) == index.invalidation_gen:
                return
        all_skipped = True
        pos = start
        while pos < end:
            if index is not None and (pos == start or pos % PAGES_PER_HUGE == 0):
                # A region translated at both layers cannot fault at
                # either, so touching it is a no-op: skip it whole.
                vregion = pos // PAGES_PER_HUGE
                if index.region_translated(vregion):
                    pos = min(end, (vregion + 1) * PAGES_PER_HUGE)
                    continue
            all_skipped = False
            if vm.translate(pos) is not None:
                # Guest-mapped: only the host layer can fault; no batching
                # needed, the per-page path is already O(1) here.
                self.touch(vm, pos)
                pos += 1
                continue
            window = end - pos
            n = window if horizon is None else horizon(window)
            if n <= 0:
                # The very next fault triggers noise: deliver it per-page
                # so the noise allocation lands at its exact position.
                self.touch(vm, pos)
                pos += 1
                continue
            pos += self._touch_unmapped_run(vm, pos, n)
        if all_skipped and self._fast_kernels and index is not None and npages > 0:
            self._quiescent.setdefault(vm.id, {})[(start, npages)] = index.invalidation_gen

    def _touch_unmapped_run(self, vm: VM, start: int, npages: int) -> int:
        """Fault a window starting at a guest-unmapped page; returns the
        number of pages handled.  Caller guarantees none of the resulting
        fault notifications triggers noise."""
        vma = vm.address_space.find(start)
        if vma is None:
            raise ValueError(f"{vm.name}: touch of unmapped vpn {start}")
        npages = min(npages, vma.end - start)
        spans = vm.guest.fault_range(
            PROCESS, start, npages, full_region_of=vma.covers_full_region
        )
        # Replay the per-page fault notifications: a page notifies iff it
        # triggered a fault at either layer (per-page delivery fires the
        # hook once per faulting touch).  Only the counts matter — none of
        # these notifications acts, so their relative order is free.
        fires = 0
        for _, gpn, count, guest_kind in spans:
            host_spans = self.host.fault_range(vm.id, gpn, count)
            if guest_kind == "base":
                fires += count
                continue
            host_triggers = sum(
                c if kind == "base" else (1 if kind == "huge" else 0)
                for _, _, c, kind in host_spans
            )
            fires += host_triggers
            if guest_kind == "huge" and host_spans[0][3] == "mapped":
                # The span's first page triggered the guest huge fault but
                # no host fault; it still notifies exactly once.
                fires += 1
        hook = self.fault_hook
        if hook is not None:
            for _ in range(fires):
                hook(vm)
        return npages

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def ept(self, vm: VM | int):
        """The VM's EPT (GPA -> HPA page table); accepts a VM or its id."""
        vm_id = vm.id if isinstance(vm, VM) else vm
        return self.host.table(vm_id)

    def index_of(self, vm: VM | int) -> VMTranslationIndex | None:
        """The VM's translation index, or None when disabled."""
        vm_id = vm.id if isinstance(vm, VM) else vm
        return self.indices.get(vm_id)

    def iter_vms(self) -> Iterator[VM]:
        yield from self.vms.values()

    @property
    def host_pages(self) -> int:
        return self.memory.total_pages
