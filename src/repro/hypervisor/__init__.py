"""Hypervisor substrate: VMs and the virtualized platform (host memory,
EPT management, nested fault paths)."""

from repro.hypervisor.balloon import BalloonDriver
from repro.hypervisor.platform import Platform
from repro.hypervisor.vm import PROCESS, VM

__all__ = ["BalloonDriver", "PROCESS", "Platform", "VM"]
