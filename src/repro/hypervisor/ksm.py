"""Kernel same-page merging (KSM) and its interplay with huge pages.

The second memory-pressure mechanism the paper's future-work section
(Section 8) flags: host-level deduplication merges identical pages across
VMs, but a huge EPT mapping cannot share a single 4 KiB subpage — the huge
page must be *demoted* first, destroying the alignment Gemini worked for.

The simulator models content at the granularity that matters for this
interplay: each VM reports a fraction of its touched pages as *mergeable*
(zero pages and common file contents — the same population HawkEye's
dedup targets inside the guest).  The daemon scans EPT mappings, merges
mergeable pages into per-content shared frames, and demotes huge EPT
entries when ``break_huge`` is set — Gemini's rule keeps well-aligned huge
pages off limits unless the host is under real pressure.
"""

from __future__ import annotations

import random

from repro import obs
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.hypervisor.platform import Platform

__all__ = ["KsmDaemon"]


class KsmDaemon:
    """Host-level same-page merging across all VMs."""

    def __init__(
        self,
        platform: Platform,
        mergeable_fraction: float = 0.1,
        break_huge: bool = False,
        spare_aligned: bool = True,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= mergeable_fraction <= 1.0:
            raise ValueError(
                f"mergeable fraction out of [0, 1]: {mergeable_fraction}"
            )
        self.platform = platform
        self.mergeable_fraction = mergeable_fraction
        #: May the daemon demote huge EPT entries to reach subpages?
        self.break_huge = break_huge
        #: Gemini's rule (Section 8): even when breaking huge pages, spare
        #: the well-aligned ones.
        self.spare_aligned = spare_aligned
        self._rng = random.Random(seed)
        #: Folded into the per-page content hash so daemons with different
        #: seeds model different guest content populations (seed 0 keeps
        #: the historical hash: x ^ 0 == x).
        self._content_salt = seed * 0x9E3779B1
        #: shared frames by content id; the first merged page donates its
        #: frame, later duplicates free theirs.
        self._shared: dict[int, int] = {}
        self.merged_pages = 0
        self.demoted_huge_pages = 0

    # ------------------------------------------------------------------

    def _content_of(self, vm_id: int, gpn: int) -> int | None:
        """Stable pseudo-content id; None when the page is unique.

        A deterministic hash assigns ``mergeable_fraction`` of pages to a
        small pool of shared contents (zero pages etc.).
        """
        draw = random.Random(
            ((vm_id * 1_000_003 + gpn) * 31 + 7) ^ self._content_salt
        ).random()
        if draw >= self.mergeable_fraction:
            return None
        return int(draw * 1000)  # a small pool of common contents

    def scan(self, budget: int = 512) -> int:
        """One merge pass over at most *budget* base EPT mappings per VM;
        returns pages merged."""
        merged = 0
        host = self.platform.host
        for vm in self.platform.iter_vms():
            ept = self.platform.ept(vm.id)
            if self.break_huge:
                self._break_candidate_huge_pages(vm.id)
            scanned = 0
            for gpn, hpn in list(ept.base_mappings()):
                if scanned >= budget:
                    break
                scanned += 1
                content = self._content_of(vm.id, gpn)
                if content is None:
                    continue
                shared = self._shared.get(content)
                if shared is not None and not self._frame_live(host, shared):
                    # Every VM referencing the shared frame departed and
                    # the frame went back to the allocator; merging into
                    # it would alias whoever owns it next.  Reseed.
                    shared = None
                if shared is None:
                    self._shared[content] = hpn
                    continue
                if shared == hpn:
                    continue
                # Merge: remap to the shared frame, free the duplicate.
                ept.unmap_base(gpn)
                host._drop_rmap(hpn, vm.id, gpn)
                host.release_frame(hpn)
                ept.map_base(gpn, shared)
                host.add_frame_ref(shared)
                merged += 1
        self.merged_pages += merged
        if merged:
            obs.count("ksm.merged_pages", merged)
        return merged

    @staticmethod
    def _frame_live(host, pfn: int) -> bool:
        """Is the shared frame still mapped by anyone?"""
        return host.owner_of_frame(pfn) is not None or pfn in host._frame_refs

    def _break_candidate_huge_pages(self, vm_id: int) -> None:
        """Demote huge EPT entries that likely contain mergeable pages."""
        host = self.platform.host
        ept = self.platform.ept(vm_id)
        guest_table = self.platform.vms[vm_id].guest.table(PROCESS)
        guest_huge_targets = {gp for _, gp in guest_table.huge_mappings()}
        for gpregion, _ in list(ept.huge_mappings()):
            if self.spare_aligned and gpregion in guest_huge_targets:
                continue
            base = gpregion * PAGES_PER_HUGE
            has_mergeable = any(
                self._content_of(vm_id, base + offset) is not None
                for offset in range(0, PAGES_PER_HUGE, 32)
            )
            if has_mergeable:
                host.demote(vm_id, gpregion)
                self.demoted_huge_pages += 1
                obs.count("ksm.demoted_huge_pages")

    @property
    def pages_saved(self) -> int:
        """Host frames freed by merging."""
        return self.merged_pages
