"""Memory ballooning and its interplay with huge pages (Section 8).

The paper's future-work section notes that mechanisms used under host
memory pressure — ballooning, deduplication, swapping — may demote the
huge pages Gemini creates, and states the current design's mitigation:
*"we only allow misaligned huge pages and infrequently used huge pages to
be demoted when system is under memory pressure."*

This module implements a virtio-balloon-style driver so that interplay can
be studied:

* :meth:`BalloonDriver.inflate` pins free guest-physical pages (so the
  guest stops using them) and releases their host backing.  Releasing a
  page that lies under a huge EPT entry forces a *demotion* of that host
  huge page first — the hazard the paper describes.
* Victim selection is pluggable: the ``naive`` policy takes the lowest
  free guest-physical pages regardless of backing (splintering well-
  aligned huge pages), while the ``alignment-aware`` policy implements the
  paper's rule — prefer pages whose host backing is base pages or
  mis-aligned huge pages, and only demote well-aligned huge pages as a
  last resort.
"""

from __future__ import annotations

from repro import obs
from repro.mem.buddy import AllocationError
from repro.mem.layout import PAGES_PER_HUGE
from repro.os.mm import PROCESS
from repro.hypervisor.platform import Platform
from repro.hypervisor.vm import VM

__all__ = ["BalloonDriver"]


class BalloonDriver:
    """Per-VM balloon: returns guest-free memory to the host."""

    def __init__(
        self, platform: Platform, vm: VM, alignment_aware: bool = True
    ) -> None:
        self.platform = platform
        self.vm = vm
        #: Gemini's pressure rule: spare well-aligned huge pages.
        self.alignment_aware = alignment_aware
        self._ballooned: list[int] = []
        self.demoted_huge_pages = 0
        self.demoted_aligned_huge_pages = 0

    # ------------------------------------------------------------------
    # Inflation
    # ------------------------------------------------------------------

    def inflate(self, npages: int) -> int:
        """Balloon up to *npages* guest pages; return host pages reclaimed.

        Pages are taken from the guest's free memory (a real balloon asks
        the guest allocator), so the workload's mappings are untouched;
        only the *host backing* of the ballooned pages is released.
        """
        reclaimed = 0
        inflated = 0
        for gpn in self._select_victims(npages):
            self._ballooned.append(gpn)
            inflated += 1
            reclaimed += self._release_host_backing(gpn)
        if inflated:
            obs.count("balloon.inflated_pages", inflated)
        if reclaimed:
            obs.count("balloon.reclaimed_pages", reclaimed)
        return reclaimed

    def deflate(self) -> int:
        """Return every ballooned page to the guest; the host re-backs
        them lazily on the next touch (EPT fault)."""
        released = len(self._ballooned)
        for gpn in self._ballooned:
            self.vm.gpa_space.free(gpn, 0)
        self._ballooned.clear()
        if released:
            obs.count("balloon.deflated_pages", released)
        return released

    @property
    def inflated_pages(self) -> int:
        return len(self._ballooned)

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------

    def _select_victims(self, npages: int) -> list[int]:
        if not self.alignment_aware:
            return self._take_lowest_free(npages)
        ept = self.platform.ept(self.vm.id)
        guest_table = self.vm.guest.table(PROCESS)
        guest_huge_targets = {gp for _, gp in guest_table.huge_mappings()}

        def backing_class(gpn: int) -> int:
            """0 = base-backed (reclaims a frame, breaks nothing),
            1 = unbacked (reclaims nothing), 2 = mis-aligned host huge,
            3 = well-aligned host huge (touch last)."""
            gpregion = gpn // PAGES_PER_HUGE
            if not ept.is_huge(gpregion):
                return 0 if ept.translate(gpn) is not None else 1
            return 3 if gpregion in guest_huge_targets else 2

        candidates = self._free_pages()
        candidates.sort(key=lambda gpn: (backing_class(gpn), gpn))
        victims = []
        for gpn in candidates[:npages]:
            try:
                self.vm.gpa_space.alloc_at(gpn, 0)
            except AllocationError:  # pragma: no cover - raced reservation
                continue
            victims.append(gpn)
        return victims

    def _take_lowest_free(self, npages: int) -> list[int]:
        victims = []
        for _ in range(npages):
            try:
                victims.append(self.vm.gpa_space.alloc(0))
            except AllocationError:
                break
        return victims

    def _free_pages(self) -> list[int]:
        pages = []
        for start, count in self.vm.gpa_space.free_regions():
            pages.extend(range(start, start + count))
        return pages

    # ------------------------------------------------------------------
    # Host side
    # ------------------------------------------------------------------

    def _release_host_backing(self, gpn: int) -> int:
        """Free the host frame behind *gpn*, demoting a huge EPT entry if
        one covers it."""
        host = self.platform.host
        ept = self.platform.ept(self.vm.id)
        gpregion = gpn // PAGES_PER_HUGE
        if ept.is_huge(gpregion):
            guest_table = self.vm.guest.table(PROCESS)
            aligned = any(
                gp == gpregion for _, gp in guest_table.huge_mappings()
            )
            host.demote(self.vm.id, gpregion)
            self.demoted_huge_pages += 1
            obs.count("balloon.demoted_huge_pages")
            if aligned:
                self.demoted_aligned_huge_pages += 1
                obs.count("balloon.demoted_aligned_huge_pages")
        if ept.translate(gpn) is None:
            return 0
        hpn = ept.unmap_base(gpn)
        # Refcount-aware release: the frame may be KSM-shared with other
        # mappings, in which case only this VM's reference goes away.
        host._drop_rmap(hpn, self.vm.id, gpn)
        host.release_frame(hpn)
        return 1
