"""Virtual machine abstraction.

A :class:`VM` bundles a guest-physical address space (the memory QEMU/KVM
gives the guest), a guest :class:`~repro.os.mm.MemoryLayer` running the
guest OS's huge-page policy, and the process address space of the workload
(the paper runs one workload per VM).
"""

from __future__ import annotations

from repro.mem.layout import MIB, PAGE_SIZE, PAGES_PER_HUGE
from repro.mem.physmem import PhysicalMemory
from repro.os.mm import PROCESS, MemoryLayer
from repro.os.vma import VMA, AddressSpace
from repro.policies.base import HugePagePolicy

__all__ = ["PROCESS", "VM"]


class VM:
    """One virtual machine: guest-physical memory, guest MM, one process."""

    def __init__(
        self,
        vm_id: int,
        guest_pages: int,
        guest_policy: HugePagePolicy,
        name: str = "",
    ) -> None:
        self.id = vm_id
        self.name = name or f"vm{vm_id}"
        self.gpa_space = PhysicalMemory(guest_pages)
        self.guest = MemoryLayer(
            f"guest:{self.name}", self.gpa_space, guest_policy, virtualized=True
        )
        self.address_space = AddressSpace()
        self.guest.region_eligible = self._region_in_one_vma
        self.guest.vma_bounds = self._vma_bounds

    def _region_in_one_vma(self, client: int, vregion: int) -> bool:
        vma = self.address_space.find(vregion * PAGES_PER_HUGE)
        return vma is not None and vma.covers_full_region(vregion)

    def _vma_bounds(self, client: int, vpn: int) -> tuple[int, int] | None:
        vma = self.address_space.find(vpn)
        return (vma.start, vma.end) if vma is not None else None

    @classmethod
    def with_mib(
        cls, vm_id: int, guest_mib: int, guest_policy: HugePagePolicy, name: str = ""
    ) -> "VM":
        return cls(vm_id, guest_mib * MIB // PAGE_SIZE, guest_policy, name=name)

    # ------------------------------------------------------------------
    # Process memory operations (the workload-facing API)
    # ------------------------------------------------------------------

    def mmap(self, npages: int, name: str) -> VMA:
        """Map a new anonymous region in the workload's address space."""
        return self.address_space.mmap(npages, name)

    def munmap(self, name: str) -> VMA:
        """Unmap a region: guest PTEs are torn down and guest-physical
        frames are freed, but — as in real virtualized systems — the host
        is *not* notified, so EPT mappings and host frames stay in place
        (Section 6.3's reused-VM scenario builds on this)."""
        vma = self.address_space.munmap(name)
        self.guest.unmap_range(PROCESS, vma.start, vma.npages)
        return vma

    def table(self):
        """The process page table (GVA -> GPA)."""
        return self.guest.table(PROCESS)

    def translate(self, vpn: int) -> int | None:
        return self.guest.translate(PROCESS, vpn)

    @property
    def guest_pages(self) -> int:
        return self.gpa_space.total_pages
