"""Memory-pressure subsystem: working-set estimation, hypervisor swap
and the watermark-driven reclaim ladder (paper Section 8).

Layering: :mod:`repro.pressure.config` is dependency-free (nested by the
sim and cluster configs); :mod:`repro.pressure.wse` and
:mod:`repro.pressure.victims` are pure policy inputs; the controller in
:mod:`repro.pressure.controller` drives the balloon, KSM and the
:class:`repro.mem.swap.SwapDevice` mechanisms from free-memory
watermarks.
"""

from repro.pressure.config import PressureConfig
from repro.pressure.controller import PressureController, dirty_regions
from repro.pressure.victims import (
    BACKING_ALIGNED_HUGE,
    BACKING_BASE,
    BACKING_MISALIGNED_HUGE,
    VICTIMS,
    AlignmentAwareVictims,
    LruColdVictims,
    VictimCandidate,
    VictimPolicy,
    make_victim_policy,
    victim_names,
)
from repro.pressure.wse import WorkingSetEstimator

__all__ = [
    "BACKING_ALIGNED_HUGE",
    "BACKING_BASE",
    "BACKING_MISALIGNED_HUGE",
    "VICTIMS",
    "AlignmentAwareVictims",
    "LruColdVictims",
    "PressureConfig",
    "PressureController",
    "VictimCandidate",
    "VictimPolicy",
    "WorkingSetEstimator",
    "dirty_regions",
    "make_victim_policy",
    "victim_names",
]
