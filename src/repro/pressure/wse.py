"""Per-VM working-set estimation from PML-style dirty logging.

Intel Page Modification Logging gives the hypervisor the set of
guest-physical pages each vCPU dirtied since the log was last drained
(Bitchebe et al., see PAPERS.md).  The estimator consumes exactly that
signal, epoch-sampled: each epoch the engine logs the dirty GPN set, and
the estimator maintains an exponentially-decayed *heat* per 2 MiB
guest-physical region — one dirty epoch adds 1.0, every quiet epoch
multiplies by ``decay``.

Heat lives at region granularity because that is the granularity the
consumers act on: the paper's Section 8 rule classifies *huge pages* as
infrequently used, and both swap victim selection and the last-resort
demotion rung decide per backing region.  Decay is applied lazily (heat
plus the epoch it was last touched), so quiet regions cost nothing per
epoch and the estimator's work is O(dirty set), like draining a PML
buffer.
"""

from __future__ import annotations

from typing import Iterable

from repro.mem.layout import PAGES_PER_HUGE

__all__ = ["WorkingSetEstimator"]


class WorkingSetEstimator:
    """Decayed dirty-region heat, per VM."""

    def __init__(self, decay: float = 0.5, hot_threshold: float = 0.5) -> None:
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay out of (0, 1): {decay}")
        if hot_threshold <= 0.0:
            raise ValueError(f"hot threshold must be positive: {hot_threshold}")
        self.decay = decay
        self.hot_threshold = hot_threshold
        #: vm id -> {gpregion: (heat at stamp, stamp epoch)}.
        self._heat: dict[int, dict[int, tuple[float, int]]] = {}

    # ------------------------------------------------------------------
    # Dirty logging
    # ------------------------------------------------------------------

    def log_dirty_regions(
        self, vm_id: int, regions: Iterable[int], epoch: int
    ) -> None:
        """Fold one epoch's dirty guest-physical regions in."""
        table = self._heat.setdefault(vm_id, {})
        for region in regions:
            entry = table.get(region)
            if entry is None:
                table[region] = (1.0, epoch)
                continue
            heat, stamp = entry
            table[region] = (heat * self.decay ** (epoch - stamp) + 1.0, epoch)

    def log_dirty(self, vm_id: int, gpns: Iterable[int], epoch: int) -> None:
        """Fold one epoch's dirty GPN set (a drained PML log) in."""
        self.log_dirty_regions(
            vm_id, {gpn // PAGES_PER_HUGE for gpn in gpns}, epoch
        )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def heat(self, vm_id: int, gpregion: int, epoch: int) -> float:
        """The region's decayed heat as of *epoch* (0.0 if never dirty)."""
        entry = self._heat.get(vm_id, {}).get(gpregion)
        if entry is None:
            return 0.0
        heat, stamp = entry
        return heat * self.decay ** (epoch - stamp)

    def page_heat(self, vm_id: int, gpn: int, epoch: int) -> float:
        """Heat of the region containing guest-physical page *gpn*."""
        return self.heat(vm_id, gpn // PAGES_PER_HUGE, epoch)

    def is_hot(self, vm_id: int, gpregion: int, epoch: int) -> bool:
        """Frequently used, per the paper's Section 8 wording: decayed
        heat at or above the threshold.  A region dirtied every epoch
        always qualifies (each dirty epoch contributes a fresh 1.0); a
        region never dirtied never does."""
        return self.heat(vm_id, gpregion, epoch) >= self.hot_threshold

    def forget_vm(self, vm_id: int) -> None:
        self._heat.pop(vm_id, None)
