"""Host memory-pressure controller: the escalation ladder.

The paper's Section 8 names three memory-pressure mechanisms that can
demote the huge pages Gemini builds — ballooning, deduplication and
swapping — and gives the rule that keeps them from undoing Gemini's work:
*"we only allow misaligned huge pages and infrequently used huge pages to
be demoted when system is under memory pressure."*  This module is the
policy engine that drives all three from free-memory watermarks:

1. **Watermarks** — below ``watermark_low`` the ladder engages and
   reclaims toward ``watermark_high``; above ``watermark_high`` any
   controller balloon is deflated again.
2. **Balloon** — ask each guest for free pages first (cheapest: nothing
   is lost, the pages were unused).
3. **KSM** — a bounded dedup scan (break_huge off: the scan itself never
   splinters huge pages under pressure).
4. **Swap-out** — evict working-set-cold regions to the swap device,
   ordered by the configured victim policy.  The *last-resort rung* —
   demoting well-aligned, hot huge pages — is the ``critical`` mode of
   this same rung: only below ``watermark_critical`` does the
   alignment-aware policy release tier-3 victims.

Classification of "infrequently used" comes from the PML-style
working-set estimator (:mod:`repro.pressure.wse`), fed each epoch by the
engines with the dirty guest-physical set of every workload.

Determinism: every VM iteration is in sorted vm-id order, the swap
device's latency RNG is seeded per host, and all telemetry *events* are
emitted from :meth:`PressureController.run` only — which executes inside
``step_epoch`` where the observability context (host, epoch) is correct
under both serial and parallel execution.  The emergency-reclaim path
(invoked from inside a failing host allocation) emits counters only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import obs
from repro.mem.layout import PAGES_PER_HUGE
from repro.mem.swap import SwapDevice
from repro.os.mm import PROCESS
from repro.hypervisor.balloon import BalloonDriver
from repro.hypervisor.ksm import KsmDaemon
from repro.pressure.config import PressureConfig
from repro.pressure.victims import (
    BACKING_ALIGNED_HUGE,
    BACKING_BASE,
    BACKING_MISALIGNED_HUGE,
    VictimCandidate,
    make_victim_policy,
)
from repro.pressure.wse import WorkingSetEstimator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hypervisor.platform import Platform
    from repro.hypervisor.vm import VM
    from repro.workloads.base import Workload

__all__ = ["PressureController", "dirty_regions"]


def dirty_regions(
    platform: Platform, vm: VM, workload: Workload, epoch: int
) -> set[int]:
    """The guest-physical regions *workload* dirties in *epoch* — the
    epoch-sampled equivalent of draining a PML log.

    Mirrors :func:`repro.sim.engine.build_segments`: each access phase
    touches the first ``hot_fraction`` of its VMA, so the dirty GVA range
    is known without replaying accesses; it is folded through the guest
    page table to guest-physical regions.
    """
    table = vm.guest.table(PROCESS)
    regions: set[int] = set()
    for phase in workload.access_phases(epoch):
        if phase.vma not in vm.address_space:
            continue
        vma = vm.address_space.vma(phase.vma)
        hot_pages = max(1, int(vma.npages * phase.hot_fraction))
        first = vma.start // PAGES_PER_HUGE
        last = (vma.start + hot_pages - 1) // PAGES_PER_HUGE
        for vregion in range(first, last + 1):
            if table.is_huge(vregion):
                target = table.huge_target(vregion)
                if target is not None:
                    regions.add(target)
                continue
            for _, gpn in table.region_items(vregion):
                regions.add(gpn // PAGES_PER_HUGE)
    return regions


class PressureController:
    """One host's watermark-driven reclaim ladder."""

    def __init__(
        self, platform: Platform, config: PressureConfig, salt: int = 0
    ) -> None:
        self.platform = platform
        self.config = config
        self.wse = WorkingSetEstimator(
            decay=config.wse_decay, hot_threshold=config.hot_threshold
        )
        self.device = SwapDevice(
            seed=config.seed + salt, jitter=config.swap_jitter
        )
        self.victims = make_victim_policy(config.victim_policy)
        #: Controller-owned balloons, separate from any tenant-owned
        #: driver; victim selection matches the swap policy so the
        #: lru-cold vs alignment-aware contrast is coherent end to end.
        self._alignment_aware = config.victim_policy != "lru-cold"
        self._balloons: dict[int, BalloonDriver] = {}
        self._ksm = (
            KsmDaemon(
                platform,
                mergeable_fraction=config.ksm_mergeable_fraction,
                break_huge=False,
                seed=config.seed,
            )
            if config.ksm_budget > 0
            else None
        )
        self._epoch = 0
        self.pressured_epochs = 0
        self._was_pressured = False
        self.emergency_reclaims = 0
        self.swap_demotions = 0
        self.swap_aligned_demotions = 0
        #: Emergency hook: a failing host base-frame allocation calls
        #: back into the ladder's swap rung before giving up.
        platform.host.reclaimer = self._emergency_reclaim

    # ------------------------------------------------------------------
    # Dirty logging (engine-facing)
    # ------------------------------------------------------------------

    def log_dirty(
        self,
        vm: VM,
        workload: Workload,
        epoch: int,
        workload_epoch: int | None = None,
    ) -> None:
        """Fold one workload-epoch's dirty set into the estimator.

        *workload_epoch* selects the access phases (a fleet tenant's own
        epoch count differs from the fleet epoch); heat is stamped with
        *epoch*, the clock decay runs on.
        """
        if workload_epoch is None:
            workload_epoch = epoch
        self.wse.log_dirty_regions(
            vm.id,
            dirty_regions(self.platform, vm, workload, workload_epoch),
            epoch,
        )

    # ------------------------------------------------------------------
    # Aggregate accounting (record/view-facing)
    # ------------------------------------------------------------------

    @property
    def ballooned_pages(self) -> int:
        return sum(b.inflated_pages for b in self._balloons.values())

    @property
    def demoted_huge_pages(self) -> int:
        """Huge EPT entries the ladder splintered (balloon + swap rungs)."""
        return self.swap_demotions + sum(
            b.demoted_huge_pages for b in self._balloons.values()
        )

    @property
    def demoted_aligned_huge_pages(self) -> int:
        """Well-aligned huge pages the ladder destroyed — the cost the
        alignment-aware policy exists to minimise."""
        return self.swap_aligned_demotions + sum(
            b.demoted_aligned_huge_pages for b in self._balloons.values()
        )

    @property
    def merged_pages(self) -> int:
        return 0 if self._ksm is None else self._ksm.merged_pages

    def pressure_signal(self) -> float:
        """Normalised pressure in [0, 1] for :class:`HostView`: 0 above
        the low watermark, 1 at or below critical, linear between."""
        memory = self.platform.memory
        frac = memory.free_pages / memory.total_pages
        config = self.config
        if frac >= config.watermark_low:
            return 0.0
        if frac <= config.watermark_critical:
            return 1.0
        span = config.watermark_low - config.watermark_critical
        return (config.watermark_low - frac) / span

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def forget_vm(self, vm_id: int) -> None:
        """Drop a departing VM's pressure state (call while the VM is
        still attached so balloon deflation can return its pages)."""
        balloon = self._balloons.pop(vm_id, None)
        if balloon is not None:
            balloon.deflate()
        self.device.drop_vm(vm_id)
        self.wse.forget_vm(vm_id)

    # ------------------------------------------------------------------
    # The ladder
    # ------------------------------------------------------------------

    def run(self, epoch: int) -> None:
        """One pressured-epoch pass; called from the engines' daemon
        phase, after workloads have run."""
        if not self.config.enabled:
            return
        self._epoch = epoch
        with obs.span("pressure.scan"):
            self._run(epoch)

    def _run(self, epoch: int) -> None:
        with obs.span("swap.in"):
            swapped_in = self._reconcile_swap_ins()
        if swapped_in:
            obs.emit("swap.in", pages=swapped_in)
        memory = self.platform.memory
        config = self.config
        total = memory.total_pages
        if memory.free_pages >= int(config.watermark_low * total):
            if self._was_pressured:
                # Transition-only recovery record, so stream consumers
                # (the oscillation watchdog) see the ladder disengage.
                self._was_pressured = False
                obs.emit(
                    "pressure.watermark",
                    level="ok",
                    free_pages=memory.free_pages,
                )
            if memory.free_pages >= int(config.watermark_high * total):
                self._deflate_all()
            return
        self._was_pressured = True
        self.pressured_epochs += 1
        critical = memory.free_pages < int(config.watermark_critical * total)
        obs.count("pressure.epochs")
        obs.emit(
            "pressure.watermark",
            level="critical" if critical else "low",
            free_pages=memory.free_pages,
        )
        target = int(config.watermark_high * total)
        self._balloon_rung(target)
        if self._ksm is not None and memory.free_pages < target:
            merged = self._ksm.scan(budget=config.ksm_budget)
            if merged:
                obs.count("pressure.ksm_merged_pages", merged)
        if memory.free_pages < target:
            with obs.span("swap.out"):
                pages, demoted, aligned = self._swap_rung(
                    epoch, target, critical
                )
            if pages:
                obs.emit(
                    "swap.out",
                    pages=pages,
                    demoted_huge=demoted,
                    demoted_aligned=aligned,
                )
            if aligned:
                obs.emit("pressure.demote", aligned=aligned)

    def _reconcile_swap_ins(self) -> int:
        """Demand swap-ins: any swapped page the guest re-touched this
        epoch (it is EPT-translated again) came back through a synchronous
        device read; charge the stall to the tenant."""
        total = 0
        for vm_id in sorted(self.platform.vms):
            ept = self.platform.ept(vm_id)
            vm = self.platform.vms[vm_id]
            cycles = 0.0
            pages = 0
            for gpn in self.device.swapped(vm_id):
                if ept.translate(gpn) is not None:
                    cycles += self.device.swap_in(vm_id, gpn)
                    pages += 1
            if pages:
                vm.guest.ledger.charge("swap_in", cycles, count=pages)
                obs.count("pressure.swap_in_pages", pages)
                total += pages
        return total

    def _deflate_all(self) -> None:
        for vm_id in sorted(self._balloons):
            released = self._balloons[vm_id].deflate()
            if released:
                obs.count("pressure.balloon_deflated_pages", released)

    def _balloon_rung(self, target: int) -> None:
        memory = self.platform.memory
        config = self.config
        for vm_id in sorted(self.platform.vms):
            deficit = target - memory.free_pages
            if deficit <= 0:
                return
            vm = self.platform.vms[vm_id]
            balloon = self._balloons.get(vm_id)
            if balloon is None:
                balloon = BalloonDriver(
                    self.platform, vm, alignment_aware=self._alignment_aware
                )
                self._balloons[vm_id] = balloon
            cap = int(vm.guest_pages * config.balloon_cap)
            room = cap - balloon.inflated_pages
            want = min(config.balloon_step, room, deficit)
            if want <= 0:
                continue
            reclaimed = balloon.inflate(want)
            if reclaimed:
                obs.count("pressure.balloon_reclaimed_pages", reclaimed)

    def _swap_rung(
        self, epoch: int, target: int, critical: bool
    ) -> tuple[int, int, int]:
        memory = self.platform.memory
        budget = self.config.swap_batch
        pages = demoted = aligned = 0
        ordered = self.victims.order(self._candidates(epoch), critical)
        for candidate in ordered:
            if memory.free_pages >= target or pages >= budget:
                break
            freed, was_huge, was_aligned = self._swap_out_region(candidate)
            pages += freed
            demoted += was_huge
            aligned += was_aligned
        if pages:
            obs.count("pressure.swap_out_pages", pages)
        return pages, demoted, aligned

    def _candidates(self, epoch: int) -> list[VictimCandidate]:
        """Every EPT-backed guest-physical region, classified."""
        out: list[VictimCandidate] = []
        for vm_id in sorted(self.platform.vms):
            vm = self.platform.vms[vm_id]
            ept = self.platform.ept(vm_id)
            guest_table = vm.guest.table(PROCESS)
            guest_huge_targets = {
                gp for _, gp in guest_table.huge_mappings()
            }
            huge_regions = {region for region, _ in ept.huge_mappings()}
            backed: dict[int, int] = {
                region: PAGES_PER_HUGE for region in huge_regions
            }
            for gpn, _ in ept.base_mappings():
                region = gpn // PAGES_PER_HUGE
                backed[region] = backed.get(region, 0) + 1
            for region in sorted(backed):
                if region in huge_regions:
                    backing = (
                        BACKING_ALIGNED_HUGE
                        if region in guest_huge_targets
                        else BACKING_MISALIGNED_HUGE
                    )
                else:
                    backing = BACKING_BASE
                heat = self.wse.heat(vm_id, region, epoch)
                out.append(
                    VictimCandidate(
                        vm_id=vm_id,
                        gpregion=region,
                        backing=backing,
                        heat=heat,
                        hot=heat >= self.wse.hot_threshold,
                        backed_pages=backed[region],
                    )
                )
        return out

    def _swap_out_region(
        self, candidate: VictimCandidate
    ) -> tuple[int, int, int]:
        """Evict one region to the swap device; returns (pages freed,
        huge entries demoted, well-aligned entries demoted)."""
        host = self.platform.host
        vm_id, gpregion = candidate.vm_id, candidate.gpregion
        if vm_id not in self.platform.vms:  # departed mid-pass
            return 0, 0, 0
        ept = self.platform.ept(vm_id)
        demoted = aligned = 0
        if ept.is_huge(gpregion):
            host.demote(vm_id, gpregion)
            demoted = 1
            self.swap_demotions += 1
            if candidate.backing == BACKING_ALIGNED_HUGE:
                aligned = 1
                self.swap_aligned_demotions += 1
        vm = self.platform.vms[vm_id]
        base = gpregion * PAGES_PER_HUGE
        freed = 0
        cycles = 0.0
        for gpn in range(base, base + PAGES_PER_HUGE):
            hpn = ept.translate(gpn)
            if hpn is None:
                continue
            if self.device.contains(vm_id, gpn):
                # Swapped out earlier, demand-faulted back in, and the
                # swap-in has not been reconciled yet (this pass can run
                # mid-epoch via emergency reclaim): settle the pending
                # swap-in before writing the page out again.
                vm.guest.ledger.charge(
                    "swap_in", self.device.swap_in(vm_id, gpn)
                )
                obs.count("pressure.swap_in_pages")
            ept.unmap_base(gpn)
            host._drop_rmap(hpn, vm_id, gpn)
            host.release_frame(hpn)
            cycles += self.device.swap_out(vm_id, gpn)
            freed += 1
        if freed:
            host.ledger.charge("swap_out", cycles, count=freed, sync=False)
        return freed, demoted, aligned

    # ------------------------------------------------------------------
    # Emergency reclaim (allocation-failure callback)
    # ------------------------------------------------------------------

    def _emergency_reclaim(self, npages: int) -> int:
        """Called by the host memory layer when a base-frame allocation
        fails and the placement policy has nothing to give back.  Runs
        the swap rung in critical mode until *npages* are free.  Counters
        only — no events or spans: this can fire from arbitrary fault
        contexts where the telemetry (host, epoch) context is stale.
        """
        if not self.config.enabled:
            return 0
        freed = 0
        ordered = self.victims.order(
            self._candidates(self._epoch), critical=True
        )
        for candidate in ordered:
            if freed >= npages:
                break
            pages, _, _ = self._swap_out_region(candidate)
            freed += pages
        if freed:
            self.emergency_reclaims += 1
            obs.count("pressure.emergency_reclaim_pages", freed)
        return freed
