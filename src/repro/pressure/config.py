"""Pressure-subsystem configuration.

Kept dependency-free so :mod:`repro.sim.config` and
:mod:`repro.cluster.config` can nest a :class:`PressureConfig` without
pulling the controller (and through it the hypervisor daemons) into
their import graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PressureConfig"]


@dataclass(frozen=True)
class PressureConfig:
    """All knobs of the host memory-pressure subsystem.

    Disabled by default: with ``enabled=False`` no estimator state is
    kept, no daemons run and every host behaves exactly as before the
    subsystem existed.
    """

    #: Master switch for the whole subsystem.
    enabled: bool = False
    #: Free-memory watermarks, as fractions of total host pages.  The
    #: escalation ladder engages when free memory drops below ``low``,
    #: reclaims toward ``high``, and only below ``critical`` may the
    #: last-resort rung demote well-aligned, hot huge pages.
    watermark_high: float = 0.18
    watermark_low: float = 0.12
    watermark_critical: float = 0.04
    #: Working-set estimator: per-epoch heat decay factor and the heat at
    #: or above which a region counts as hot (one dirty epoch adds 1.0).
    wse_decay: float = 0.5
    hot_threshold: float = 0.5
    #: Rung 1 — balloon: pages requested from each VM per pressured
    #: epoch, and the cap on controller-ballooned pages as a fraction of
    #: a VM's guest-physical size (so guests keep allocation room).
    balloon_step: int = 512
    balloon_cap: float = 0.25
    #: Rung 2 — KSM: base mappings scanned per VM per pass (0 disables
    #: the rung) and the modelled mergeable-content fraction.
    ksm_budget: int = 256
    ksm_mergeable_fraction: float = 0.05
    #: Rung 3 — swap: victim-selection policy (``lru-cold`` or
    #: ``alignment-aware``, see :mod:`repro.pressure.victims`) and the
    #: page budget per pressured epoch.
    victim_policy: str = "alignment-aware"
    swap_batch: int = 2048
    #: Swap-device latency jitter (fraction of the mean) and RNG seed.
    swap_jitter: float = 0.2
    seed: int = 17

    def __post_init__(self) -> None:
        if not 0.0 < self.watermark_critical < self.watermark_low:
            raise ValueError("need 0 < critical < low watermark")
        if not self.watermark_low < self.watermark_high < 1.0:
            raise ValueError("need critical < low < high < 1 watermarks")
        if not 0.0 < self.wse_decay < 1.0:
            raise ValueError(f"wse_decay out of (0, 1): {self.wse_decay}")
        if self.hot_threshold <= 0.0 or self.hot_threshold > 1.0:
            raise ValueError(
                f"hot_threshold out of (0, 1]: {self.hot_threshold}"
            )
        if self.balloon_step < 0 or self.swap_batch < 0 or self.ksm_budget < 0:
            raise ValueError("rung budgets must be non-negative")
        if not 0.0 <= self.balloon_cap <= 1.0:
            raise ValueError(f"balloon_cap out of [0, 1]: {self.balloon_cap}")
