"""Pluggable swap victim selection.

The controller enumerates every EPT-backed guest-physical region as a
:class:`VictimCandidate` — its backing shape (base pages, misaligned
huge, well-aligned huge) and its working-set heat — and a policy turns
that into an eviction order.  Registered by name in :data:`VICTIMS`,
mirroring :data:`repro.cluster.placement.PLACEMENTS`.

``lru-cold`` is pure working-set estimation: coldest first, blind to what
the eviction does to huge-page alignment.  ``alignment-aware`` is the
paper's Section 8 rule — *"we only allow misaligned huge pages and
infrequently used huge pages to be demoted when system is under memory
pressure"*: base-backed regions and misaligned huge pages go first,
well-aligned-but-cold huge pages are the last resort, and well-aligned
hot huge pages are off limits entirely unless the host is below the
critical watermark.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BACKING_ALIGNED_HUGE",
    "BACKING_BASE",
    "BACKING_MISALIGNED_HUGE",
    "VICTIMS",
    "AlignmentAwareVictims",
    "LruColdVictims",
    "VictimCandidate",
    "VictimPolicy",
    "make_victim_policy",
    "victim_names",
]

#: Backing shapes of a guest-physical region, as the EPT sees it.
BACKING_BASE = 0  # base-mapped frames: reclaim breaks nothing
BACKING_MISALIGNED_HUGE = 1  # host huge page with no guest huge on top
BACKING_ALIGNED_HUGE = 2  # well-aligned: the pages Gemini worked for


@dataclass(frozen=True)
class VictimCandidate:
    """One EPT-backed guest-physical region up for eviction."""

    vm_id: int
    gpregion: int
    backing: int
    heat: float
    hot: bool
    #: EPT-translated pages the region would free when swapped out.
    backed_pages: int


class VictimPolicy:
    """Base: order (and filter) candidates for eviction."""

    name = "base"

    def order(
        self, candidates: list[VictimCandidate], critical: bool
    ) -> list[VictimCandidate]:
        raise NotImplementedError


class LruColdVictims(VictimPolicy):
    """Pure WSE order: coldest region first, alignment ignored."""

    name = "lru-cold"

    def order(
        self, candidates: list[VictimCandidate], critical: bool
    ) -> list[VictimCandidate]:
        return sorted(
            candidates,
            key=lambda c: (c.heat, c.vm_id, c.gpregion),
        )


class AlignmentAwareVictims(VictimPolicy):
    """The paper's Section 8 demotion rule, as an eviction order."""

    name = "alignment-aware"

    @staticmethod
    def _tier(candidate: VictimCandidate) -> int:
        """0 = base-backed, 1 = misaligned huge, 2 = well-aligned cold,
        3 = well-aligned hot (critical pressure only)."""
        if candidate.backing == BACKING_BASE:
            return 0
        if candidate.backing == BACKING_MISALIGNED_HUGE:
            return 1
        return 3 if candidate.hot else 2

    def order(
        self, candidates: list[VictimCandidate], critical: bool
    ) -> list[VictimCandidate]:
        eligible = [
            candidate
            for candidate in candidates
            if critical or self._tier(candidate) < 3
        ]
        return sorted(
            eligible,
            key=lambda c: (self._tier(c), c.heat, c.vm_id, c.gpregion),
        )


VICTIMS: dict[str, type[VictimPolicy]] = {
    policy.name: policy for policy in (LruColdVictims, AlignmentAwareVictims)
}


def victim_names() -> list[str]:
    return list(VICTIMS)


def make_victim_policy(name: str) -> VictimPolicy:
    try:
        return VICTIMS[name]()
    except KeyError:
        raise ValueError(
            f"unknown victim policy {name!r}; choose from {', '.join(VICTIMS)}"
        ) from None
