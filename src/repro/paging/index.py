"""Incremental cross-layer translation-state index.

One :class:`VMTranslationIndex` watches a VM's guest process page table
(GVA -> GPA) and its EPT (GPA -> HPA) through the
:class:`~repro.paging.pagetable.TableWatcher` event API and maintains,
incrementally:

* the **alignment counters** of
  :class:`~repro.metrics.alignment.AlignmentReport` (guest/host huge
  mappings and how many of each are well-aligned), so per-epoch reports
  and the MHPS scan read counters instead of enumerating both tables;
* the **live guest-physical region set** (regions referenced by current
  guest mappings), replacing the O(base mappings) walk the MHPS scan
  performed every epoch;
* a **region-classification cache** for the engine's
  ``_build_segments``: per guest-virtual region, the
  :class:`~repro.metrics.alignment.RegionClass` list last computed, valid
  until a table event invalidates it.  Invalidation is tracked through a
  reverse dependency map from EPT regions to the guest regions whose
  classification reads them;
* a **fully-translated region set** for the platform's touch path: a
  guest-virtual region where every page translates at both layers cannot
  fault, so touching it is a no-op and the whole region can be skipped in
  O(1).

Invalidation rules (see docs/PERFORMANCE.md for the derivation):

* classification depends on the guest region's own mappings and on
  ``ept.is_huge`` of every guest-physical region it maps into, plus — via
  the engine's host backfill — on those regions' EPT translations.  Any
  guest-table event on the region invalidates it; EPT huge map/unmap/
  promote/demote and EPT base unmaps invalidate all dependents.  EPT base
  *maps* only add translations and change no classification input, so
  they do not invalidate.
* the fully-translated set is invalidated only by translation-removing
  events: guest/EPT base or huge unmaps and guest remaps.  Promotion,
  demotion and EPT remaps preserve every translation, so cached entries
  survive them.
"""

from __future__ import annotations

from repro.mem.layout import PAGES_PER_HUGE
from repro.metrics.alignment import AlignmentReport, RegionClass
from repro.paging.pagetable import PageTable, TableWatcher

__all__ = ["VMTranslationIndex"]


class VMTranslationIndex(TableWatcher):
    """Event-maintained translation summaries for one VM's table pair."""

    def __init__(self, guest_table: PageTable, ept: PageTable) -> None:
        self.guest = guest_table
        self.ept = ept
        # Alignment counters (AlignmentReport fields).
        self.guest_huge = 0
        self.host_huge = 0
        self.aligned_guest = 0
        self.aligned_host = 0
        #: guest-physical region -> number of guest huge mappings onto it
        self._targets: dict[int, int] = {}
        #: guest-physical region -> number of guest base mappings into it
        self._live_base: dict[int, int] = {}
        # Region-classification cache (engine._build_segments).
        self._classes: dict[int, list[RegionClass]] = {}
        self._class_fwd: dict[int, tuple[int, ...]] = {}
        self._class_deps: dict[int, set[int]] = {}
        # Fully-translated guest regions (platform touch skip).
        self._translated: set[int] = set()
        self._tr_fwd: dict[int, tuple[int, ...]] = {}
        self._tr_deps: dict[int, set[int]] = {}
        #: Bumped whenever a region leaves the fully-translated set.  The
        #: platform's quiescence cache fingerprints a touch range against
        #: this counter: an unchanged generation proves no translation the
        #: range might depend on was removed since the range last replayed
        #: as a pure skip, so the whole replay is a no-op.
        self.invalidation_gen = 0
        self._bootstrap()
        guest_table.add_watcher(self)
        ept.add_watcher(self)

    def _bootstrap(self) -> None:
        """Initialise counters from the tables' current state, so the
        index may be attached to already-populated tables."""
        ept = self.ept
        for _, gpregion in self.guest.huge_mappings():
            self.guest_huge += 1
            self._targets[gpregion] = self._targets.get(gpregion, 0) + 1
            if ept.is_huge(gpregion):
                self.aligned_guest += 1
        for gpregion, _ in ept.huge_mappings():
            self.host_huge += 1
            if gpregion in self._targets:
                self.aligned_host += 1
        for _, gpn in self.guest.base_mappings():
            gpregion = gpn // PAGES_PER_HUGE
            self._live_base[gpregion] = self._live_base.get(gpregion, 0) + 1

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------

    def report(self) -> AlignmentReport:
        """Fresh :class:`AlignmentReport` from the live counters."""
        return AlignmentReport(
            guest_huge=self.guest_huge,
            host_huge=self.host_huge,
            aligned_guest=self.aligned_guest,
            aligned_host=self.aligned_host,
        )

    def live_set(self) -> set[int]:
        """Guest-physical regions referenced by current guest mappings
        (a fresh set: callers keep it across later mutations)."""
        return set(self._targets) | set(self._live_base)

    def cached_classes(self, vregion: int) -> list[RegionClass] | None:
        """The region's cached classification, or None on a miss."""
        return self._classes.get(vregion)

    def store_classes(self, vregion: int, classes: list[RegionClass]) -> None:
        """Cache *vregion*'s classification (computed after host backfill,
        so validity also certifies the backfill is a no-op)."""
        guest = self.guest
        if guest.is_huge(vregion):
            deps: tuple[int, ...] = (guest.huge_target(vregion),)
        else:
            deps = tuple({gpn // PAGES_PER_HUGE for _, gpn in guest.region_items(vregion)})
        self._classes[vregion] = classes
        self._class_fwd[vregion] = deps
        for gpregion in deps:
            self._class_deps.setdefault(gpregion, set()).add(vregion)

    def region_translated(self, vregion: int) -> bool:
        """True when every page of guest region *vregion* translates at
        both layers — touching it cannot fault at either layer.

        Positive answers are cached (they only flip on a translation
        removal, which invalidates); negative answers are recomputed, as
        faults turn them positive without any table *removal* event.
        """
        if vregion in self._translated:
            return True
        guest = self.guest
        ept = self.ept
        if guest.is_huge(vregion):
            gpregion = guest.huge_target(vregion)
            if not ept.is_huge(gpregion) and (
                ept.region_population(gpregion) != PAGES_PER_HUGE
            ):
                return False
            deps: tuple[int, ...] = (gpregion,)
        else:
            if guest.region_population(vregion) != PAGES_PER_HUGE:
                return False
            regions = set()
            for _, gpn in guest.region_items(vregion):
                if ept.translate(gpn) is None:
                    return False
                regions.add(gpn // PAGES_PER_HUGE)
            deps = tuple(regions)
        self._translated.add(vregion)
        self._tr_fwd[vregion] = deps
        for gpregion in deps:
            self._tr_deps.setdefault(gpregion, set()).add(vregion)
        return True

    # ------------------------------------------------------------------
    # Invalidation helpers
    # ------------------------------------------------------------------

    def _drop_classes(self, vregion: int) -> None:
        if self._classes.pop(vregion, None) is None:
            return
        for gpregion in self._class_fwd.pop(vregion):
            deps = self._class_deps.get(gpregion)
            if deps is not None:
                deps.discard(vregion)
                if not deps:
                    del self._class_deps[gpregion]

    def _drop_classes_for_gpregion(self, gpregion: int) -> None:
        for vregion in self._class_deps.pop(gpregion, ()):
            self._classes.pop(vregion, None)
            fwd = self._class_fwd.pop(vregion, None)
            if fwd is None:
                continue
            for other in fwd:
                if other == gpregion:
                    continue
                deps = self._class_deps.get(other)
                if deps is not None:
                    deps.discard(vregion)
                    if not deps:
                        del self._class_deps[other]

    def _drop_translated(self, vregion: int) -> None:
        if vregion not in self._translated:
            return
        self.invalidation_gen += 1
        self._translated.discard(vregion)
        for gpregion in self._tr_fwd.pop(vregion):
            deps = self._tr_deps.get(gpregion)
            if deps is not None:
                deps.discard(vregion)
                if not deps:
                    del self._tr_deps[gpregion]

    def _drop_translated_for_gpregion(self, gpregion: int) -> None:
        for vregion in self._tr_deps.pop(gpregion, ()):
            self.invalidation_gen += 1
            self._translated.discard(vregion)
            fwd = self._tr_fwd.pop(vregion, None)
            if fwd is None:
                continue
            for other in fwd:
                if other == gpregion:
                    continue
                deps = self._tr_deps.get(other)
                if deps is not None:
                    deps.discard(vregion)
                    if not deps:
                        del self._tr_deps[other]

    # ------------------------------------------------------------------
    # Counter maintenance (shared by table events)
    # ------------------------------------------------------------------

    def _guest_target_added(self, gpregion: int) -> None:
        self.guest_huge += 1
        count = self._targets.get(gpregion, 0)
        self._targets[gpregion] = count + 1
        if self.ept.is_huge(gpregion):
            self.aligned_guest += 1
            if count == 0:
                self.aligned_host += 1

    def _guest_target_removed(self, gpregion: int) -> None:
        self.guest_huge -= 1
        count = self._targets[gpregion] - 1
        if count:
            self._targets[gpregion] = count
        else:
            del self._targets[gpregion]
        if self.ept.is_huge(gpregion):
            self.aligned_guest -= 1
            if count == 0:
                self.aligned_host -= 1

    def _host_huge_added(self, gpregion: int) -> None:
        self.host_huge += 1
        targets = self._targets.get(gpregion, 0)
        if targets:
            self.aligned_host += 1
            self.aligned_guest += targets

    def _host_huge_removed(self, gpregion: int) -> None:
        self.host_huge -= 1
        targets = self._targets.get(gpregion, 0)
        if targets:
            self.aligned_host -= 1
            self.aligned_guest -= targets

    def _live_add(self, gpregion: int, count: int = 1) -> None:
        self._live_base[gpregion] = self._live_base.get(gpregion, 0) + count

    def _live_drop(self, gpregion: int, count: int = 1) -> None:
        remaining = self._live_base[gpregion] - count
        if remaining:
            self._live_base[gpregion] = remaining
        else:
            del self._live_base[gpregion]

    # ------------------------------------------------------------------
    # TableWatcher events
    # ------------------------------------------------------------------

    def base_mapped(self, table: PageTable, vpn: int, pfn: int) -> None:
        if table is self.guest:
            self._live_add(pfn // PAGES_PER_HUGE)
            self._drop_classes(vpn // PAGES_PER_HUGE)
        # EPT base maps add translations only: nothing invalidates.

    def base_unmapped(self, table: PageTable, vpn: int, pfn: int) -> None:
        if table is self.guest:
            self._live_drop(pfn // PAGES_PER_HUGE)
            vregion = vpn // PAGES_PER_HUGE
            self._drop_classes(vregion)
            self._drop_translated(vregion)
        else:
            gpregion = vpn // PAGES_PER_HUGE
            self._drop_classes_for_gpregion(gpregion)
            self._drop_translated_for_gpregion(gpregion)

    def huge_mapped(self, table: PageTable, vregion: int, pregion: int) -> None:
        if table is self.guest:
            self._guest_target_added(pregion)
            self._drop_classes(vregion)
        else:
            self._host_huge_added(vregion)
            self._drop_classes_for_gpregion(vregion)

    def huge_unmapped(self, table: PageTable, vregion: int, pregion: int) -> None:
        if table is self.guest:
            self._guest_target_removed(pregion)
            self._drop_classes(vregion)
            self._drop_translated(vregion)
        else:
            self._host_huge_removed(vregion)
            self._drop_classes_for_gpregion(vregion)
            self._drop_translated_for_gpregion(vregion)

    def promoted(self, table: PageTable, vregion: int, pregion: int) -> None:
        # Promotion preserves every translation: the translated set keeps.
        if table is self.guest:
            self._live_drop(pregion, PAGES_PER_HUGE)
            self._guest_target_added(pregion)
            self._drop_classes(vregion)
        else:
            self._host_huge_added(vregion)
            self._drop_classes_for_gpregion(vregion)

    def demoted(self, table: PageTable, vregion: int, pregion: int) -> None:
        # Demotion preserves every translation: the translated set keeps.
        if table is self.guest:
            self._guest_target_removed(pregion)
            self._live_add(pregion, PAGES_PER_HUGE)
            self._drop_classes(vregion)
        else:
            self._host_huge_removed(vregion)
            self._drop_classes_for_gpregion(vregion)

    def region_remapped(
        self,
        table: PageTable,
        vregion: int,
        old: dict[int, int],
        new: dict[int, int],
    ) -> None:
        if table is self.guest:
            for vpn, pfn in old.items():
                self._live_drop(pfn // PAGES_PER_HUGE)
                self._live_add(new[vpn] // PAGES_PER_HUGE)
            self._drop_classes(vregion)
            self._drop_translated(vregion)
        # EPT remaps replace translations without removing any, and no
        # classification input reads host frame numbers: nothing to do.

    def base_mapped_run(
        self, table: PageTable, vpn: int, pfn: int, count: int
    ) -> None:
        # Batched form of `base_mapped`: the run stays inside one virtual
        # region, so the classification cache invalidates once and the
        # live counters take per-physical-region increments.
        if table is not self.guest:
            return  # EPT base maps add translations only: nothing invalidates.
        pos = pfn
        end = pfn + count
        while pos < end:
            gpregion = pos // PAGES_PER_HUGE
            chunk = min(end, (gpregion + 1) * PAGES_PER_HUGE) - pos
            self._live_add(gpregion, chunk)
            pos += chunk
        self._drop_classes(vpn // PAGES_PER_HUGE)

    def region_base_cleared(
        self, table: PageTable, vregion: int, mappings: dict[int, int]
    ) -> None:
        # Batched form of `base_unmapped` over a whole region: identical
        # end state, with per-page counter updates aggregated.
        if table is self.guest:
            drops: dict[int, int] = {}
            for pfn in mappings.values():
                gpregion = pfn // PAGES_PER_HUGE
                drops[gpregion] = drops.get(gpregion, 0) + 1
            for gpregion, count in drops.items():
                self._live_drop(gpregion, count)
            self._drop_classes(vregion)
            self._drop_translated(vregion)
        else:
            for gpregion in {gpn // PAGES_PER_HUGE for gpn in mappings}:
                self._drop_classes_for_gpregion(gpregion)
                self._drop_translated_for_gpregion(gpregion)
