"""Two-granularity page tables.

One :class:`PageTable` instance models either a guest process page table
(GVA -> GPA) or a VM / EPT page table in the host (GPA -> HPA).  Mappings
exist at two granularities, matching x86-64 with 2 MiB huge pages:

* *base* mappings: one virtual page number (VPN) -> one physical frame
  number (PFN);
* *huge* mappings: one 2 MiB-aligned virtual region -> one 2 MiB-aligned
  physical region, stored by region index (VPN // 512 -> PFN // 512).

The table enforces the invariant that a virtual region is covered either by
base mappings or by one huge mapping, never both, and exposes the promotion
and demotion primitives page-coalescing policies are built on:

* :meth:`PageTable.promotable` tells whether the 512 base mappings of a
  region are *in-place promotable* — fully populated, physically contiguous
  and huge-aligned — which is the zero-copy promotion Gemini engineers for;
* :meth:`PageTable.promote_in_place` collapses such a region into one huge
  PTE;
* :meth:`PageTable.demote` splinters a huge mapping back into 512 base
  mappings (used on partial unmap and under memory pressure).

Two optional facilities support the incremental translation-state index:

* **mutation events** — watchers registered with
  :meth:`PageTable.add_watcher` observe every mapping change.  Promotion,
  demotion and remapping are delivered as single composite events (not as
  512 base events) so watchers stay O(1) per operation.
* **per-region summaries** — with :meth:`PageTable.enable_index`, the
  table maintains a per-region multiset of placement deltas
  (``pfn - vpn``) alongside the mappings.  A region is in-place promotable
  exactly when it holds 512 mappings of one huge-aligned delta, which
  makes :meth:`PageTable.promotable` O(1) and lets policy scans reject
  regions without walking their entries.
"""

from __future__ import annotations

from typing import Iterator

from repro.mem.layout import PAGES_PER_HUGE, huge_region_index

__all__ = ["MappingError", "PageTable", "TableWatcher"]

#: Shared empty bucket backing ``region_items`` of unpopulated regions.
_EMPTY_REGION: dict[int, int] = {}


class MappingError(Exception):
    """Raised on conflicting or missing mappings."""


class TableWatcher:
    """Observer of :class:`PageTable` mutations; every hook is a no-op.

    Composite operations arrive as single events: a promotion fires
    ``promoted`` (not 512 ``base_unmapped`` plus one ``huge_mapped``), a
    demotion fires ``demoted``, and a migration remap fires
    ``region_remapped`` with the old and new vpn -> pfn dicts.
    """

    def base_mapped(self, table: "PageTable", vpn: int, pfn: int) -> None:
        pass

    def base_unmapped(self, table: "PageTable", vpn: int, pfn: int) -> None:
        pass

    def huge_mapped(self, table: "PageTable", vregion: int, pregion: int) -> None:
        pass

    def huge_unmapped(self, table: "PageTable", vregion: int, pregion: int) -> None:
        pass

    def promoted(self, table: "PageTable", vregion: int, pregion: int) -> None:
        pass

    def demoted(self, table: "PageTable", vregion: int, pregion: int) -> None:
        pass

    def region_remapped(
        self,
        table: "PageTable",
        vregion: int,
        old: dict[int, int],
        new: dict[int, int],
    ) -> None:
        pass

    def base_mapped_run(
        self, table: "PageTable", vpn: int, pfn: int, count: int
    ) -> None:
        """A contiguous run ``vpn + i -> pfn + i`` was installed.  The
        default replays the per-page events, so watchers that only know
        single-page hooks observe the identical sequence."""
        for i in range(count):
            self.base_mapped(table, vpn + i, pfn + i)

    def region_base_cleared(
        self, table: "PageTable", vregion: int, mappings: dict[int, int]
    ) -> None:
        """Every base mapping of *vregion* was removed at once (promotion
        by migration, whole-region unmap).  The default replays the
        per-page events in the order the pages were mapped."""
        for vpn, pfn in mappings.items():
            self.base_unmapped(table, vpn, pfn)


class PageTable:
    """Sparse two-level-granularity translation table."""

    def __init__(self, name: str = "pt") -> None:
        self.name = name
        #: base-page mappings: vpn -> pfn
        self._base: dict[int, int] = {}
        #: huge-page mappings: virtual region index -> physical region index
        self._huge: dict[int, int] = {}
        #: base mappings bucketed by virtual region, for O(1) region queries:
        #: region index -> {vpn -> pfn}
        self._region_base: dict[int, dict[int, int]] = {}
        #: mutation observers (see :class:`TableWatcher`)
        self._watchers: list[TableWatcher] = []
        #: when True, maintain per-region delta summaries incrementally
        self.use_index = False
        #: per-region placement-delta multiset: region -> {pfn - vpn: count}
        self._region_delta: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------------
    # Index / watcher management
    # ------------------------------------------------------------------

    def add_watcher(self, watcher: TableWatcher) -> None:
        """Register a mutation observer."""
        self._watchers.append(watcher)

    def remove_watcher(self, watcher: TableWatcher) -> None:
        """Unregister a mutation observer (idempotent).

        Needed when a VM detaches from its platform (live migration): the
        old translation index must stop observing tables that survive in
        the VM, or it would keep mutating stale summaries.
        """
        try:
            self._watchers.remove(watcher)
        except ValueError:
            pass

    def enable_index(self) -> None:
        """Turn on incremental per-region summaries (idempotent).

        Bootstraps the delta summaries from the current mappings, so the
        index may be enabled on a table that is already populated.
        """
        if self.use_index:
            return
        self.use_index = True
        self._region_delta = {}
        for region, bucket in self._region_base.items():
            deltas: dict[int, int] = {}
            for vpn, pfn in bucket.items():
                d = pfn - vpn
                deltas[d] = deltas.get(d, 0) + 1
            self._region_delta[region] = deltas

    def _delta_add(self, region: int, vpn: int, pfn: int) -> None:
        deltas = self._region_delta.setdefault(region, {})
        d = pfn - vpn
        deltas[d] = deltas.get(d, 0) + 1

    def _delta_drop(self, region: int, vpn: int, pfn: int) -> None:
        deltas = self._region_delta[region]
        d = pfn - vpn
        count = deltas[d] - 1
        if count:
            deltas[d] = count
        else:
            del deltas[d]
            if not deltas:
                del self._region_delta[region]

    # ------------------------------------------------------------------
    # Mapping / unmapping
    # ------------------------------------------------------------------

    def map_base(self, vpn: int, pfn: int) -> None:
        """Install a 4 KiB mapping vpn -> pfn."""
        region = huge_region_index(vpn)
        if region in self._huge:
            raise MappingError(
                f"{self.name}: vpn {vpn} already covered by huge mapping"
            )
        if vpn in self._base:
            raise MappingError(f"{self.name}: vpn {vpn} already mapped")
        self._base[vpn] = pfn
        self._region_base.setdefault(region, {})[vpn] = pfn
        if self.use_index:
            self._delta_add(region, vpn, pfn)
        if self._watchers:
            for watcher in self._watchers:
                watcher.base_mapped(self, vpn, pfn)

    def map_base_run(self, vpn: int, pfn: int, count: int) -> None:
        """Install the contiguous run ``vpn + i -> pfn + i`` (one region).

        Batch equivalent of *count* :meth:`map_base` calls for a run that
        stays inside a single virtual region: same mappings, same delta
        summary, one composite watcher event instead of *count*.
        """
        region = huge_region_index(vpn)
        if huge_region_index(vpn + count - 1) != region:
            raise MappingError(
                f"{self.name}: run [{vpn}, {vpn + count}) crosses a region"
            )
        if region in self._huge:
            raise MappingError(
                f"{self.name}: vpn {vpn} already covered by huge mapping"
            )
        bucket = self._region_base.setdefault(region, {})
        if bucket:
            for v in range(vpn, vpn + count):
                if v in bucket:
                    raise MappingError(f"{self.name}: vpn {v} already mapped")
        base = self._base
        for i in range(count):
            base[vpn + i] = pfn + i
            bucket[vpn + i] = pfn + i
        if self.use_index:
            deltas = self._region_delta.setdefault(region, {})
            d = pfn - vpn
            deltas[d] = deltas.get(d, 0) + count
        if self._watchers:
            for watcher in self._watchers:
                watcher.base_mapped_run(self, vpn, pfn, count)

    def unmap_region_base(self, vregion: int) -> dict[int, int]:
        """Remove every base mapping of *vregion*; return them.

        Batch equivalent of :meth:`unmap_base` over the region's pages in
        mapping order, fired to watchers as one composite event.
        """
        bucket = self._region_base.pop(vregion, None)
        if bucket is None:
            return {}
        base = self._base
        for vpn in bucket:
            del base[vpn]
        if self.use_index:
            self._region_delta.pop(vregion, None)
        if self._watchers:
            for watcher in self._watchers:
                watcher.region_base_cleared(self, vregion, bucket)
        return bucket

    def map_huge(self, vregion: int, pregion: int) -> None:
        """Install a 2 MiB mapping of virtual region -> physical region."""
        if vregion in self._huge:
            raise MappingError(f"{self.name}: region {vregion} already huge-mapped")
        if self._region_base.get(vregion):
            raise MappingError(
                f"{self.name}: region {vregion} has base mappings; "
                "unmap or promote them first"
            )
        self._huge[vregion] = pregion
        if self._watchers:
            for watcher in self._watchers:
                watcher.huge_mapped(self, vregion, pregion)

    def unmap_base(self, vpn: int) -> int:
        """Remove a 4 KiB mapping; return the PFN it pointed at."""
        if vpn not in self._base:
            raise MappingError(f"{self.name}: vpn {vpn} not base-mapped")
        pfn = self._base.pop(vpn)
        region = huge_region_index(vpn)
        bucket = self._region_base[region]
        del bucket[vpn]
        if not bucket:
            del self._region_base[region]
        if self.use_index:
            self._delta_drop(region, vpn, pfn)
        if self._watchers:
            for watcher in self._watchers:
                watcher.base_unmapped(self, vpn, pfn)
        return pfn

    def unmap_huge(self, vregion: int) -> int:
        """Remove a 2 MiB mapping; return the physical region index."""
        if vregion not in self._huge:
            raise MappingError(f"{self.name}: region {vregion} not huge-mapped")
        pregion = self._huge.pop(vregion)
        if self._watchers:
            for watcher in self._watchers:
                watcher.huge_unmapped(self, vregion, pregion)
        return pregion

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def translate(self, vpn: int) -> int | None:
        """Translate a base VPN to its PFN, through either mapping size."""
        region = huge_region_index(vpn)
        pregion = self._huge.get(region)
        if pregion is not None:
            offset = vpn - region * PAGES_PER_HUGE
            return pregion * PAGES_PER_HUGE + offset
        return self._base.get(vpn)

    def is_mapped(self, vpn: int) -> bool:
        return self.translate(vpn) is not None

    def is_huge(self, vregion: int) -> bool:
        """True if virtual region *vregion* is covered by a huge mapping."""
        return vregion in self._huge

    def huge_target(self, vregion: int) -> int | None:
        """Physical region index backing huge-mapped *vregion*, if any."""
        return self._huge.get(vregion)

    # ------------------------------------------------------------------
    # Region inspection
    # ------------------------------------------------------------------

    def region_population(self, vregion: int) -> int:
        """Number of base pages mapped within virtual region *vregion*."""
        return len(self._region_base.get(vregion, ()))

    def region_mappings(self, vregion: int) -> dict[int, int]:
        """Copy of the base vpn -> pfn mappings within *vregion*."""
        return dict(self._region_base.get(vregion, {}))

    def region_items(self, vregion: int):
        """Read-only (vpn, pfn) view of *vregion*'s base mappings.

        Unlike :meth:`region_mappings` this does not copy; callers must
        not mutate the table while iterating the view.
        """
        return self._region_base.get(vregion, _EMPTY_REGION).items()

    def promotable(self, vregion: int) -> int | None:
        """If *vregion* is in-place promotable, the target physical region.

        In-place promotion requires all 512 base pages mapped, physically
        contiguous, in virtual order, with the first frame 2 MiB-aligned.
        Returns ``None`` otherwise.
        """
        if self.use_index:
            # 512 mappings of one delta == fully populated, contiguous and
            # in virtual order; the delta is huge-aligned exactly when the
            # first frame is (the region's first vpn is region-aligned).
            deltas = self._region_delta.get(vregion)
            if deltas is None or len(deltas) != 1:
                return None
            ((delta, count),) = deltas.items()
            if count != PAGES_PER_HUGE or delta % PAGES_PER_HUGE != 0:
                return None
            return (vregion * PAGES_PER_HUGE + delta) // PAGES_PER_HUGE
        bucket = self._region_base.get(vregion)
        if bucket is None or len(bucket) != PAGES_PER_HUGE:
            return None
        first_vpn = vregion * PAGES_PER_HUGE
        first_pfn = bucket.get(first_vpn)
        if first_pfn is None or first_pfn % PAGES_PER_HUGE != 0:
            return None
        for offset in range(1, PAGES_PER_HUGE):
            if bucket.get(first_vpn + offset) != first_pfn + offset:
                return None
        return first_pfn // PAGES_PER_HUGE

    def region_deltas(self, vregion: int) -> dict[int, int] | None:
        """The region's ``{pfn - vpn: count}`` summary, or None when the
        index is disabled.  Callers must treat the dict as read-only."""
        if not self.use_index:
            return None
        return self._region_delta.get(vregion, _EMPTY_REGION)

    def promote_in_place(self, vregion: int) -> int:
        """Collapse the base mappings of *vregion* into one huge mapping.

        Returns the physical region index.  Raises :class:`MappingError`
        when the region is not in-place promotable.
        """
        pregion = self.promotable(vregion)
        if pregion is None:
            raise MappingError(
                f"{self.name}: region {vregion} not in-place promotable"
            )
        for vpn in list(self._region_base[vregion]):
            del self._base[vpn]
        del self._region_base[vregion]
        self._region_delta.pop(vregion, None)
        self._huge[vregion] = pregion
        if self._watchers:
            for watcher in self._watchers:
                watcher.promoted(self, vregion, pregion)
        return pregion

    def remap_region(self, vregion: int, new_pfns: dict[int, int]) -> dict[int, int]:
        """Replace the base mappings of *vregion* (migration support).

        *new_pfns* maps each currently-mapped vpn of the region to its new
        frame.  Returns the old vpn -> pfn mappings so the caller can free
        the vacated frames.  Every mapped vpn must be present in *new_pfns*.
        """
        bucket = self._region_base.get(vregion)
        if not bucket:
            raise MappingError(f"{self.name}: region {vregion} has no base mappings")
        if set(new_pfns) != set(bucket):
            raise MappingError(
                f"{self.name}: remap of region {vregion} must cover exactly "
                "the mapped vpns"
            )
        old = dict(bucket)
        for vpn, pfn in new_pfns.items():
            self._base[vpn] = pfn
            bucket[vpn] = pfn
        if self.use_index:
            deltas: dict[int, int] = {}
            for vpn, pfn in bucket.items():
                d = pfn - vpn
                deltas[d] = deltas.get(d, 0) + 1
            self._region_delta[vregion] = deltas
        if self._watchers:
            for watcher in self._watchers:
                watcher.region_remapped(self, vregion, old, new_pfns)
        return old

    def demote(self, vregion: int) -> None:
        """Splinter huge-mapped *vregion* into 512 base mappings."""
        if vregion not in self._huge:
            raise MappingError(f"{self.name}: region {vregion} not huge-mapped")
        pregion = self._huge.pop(vregion)
        first_vpn = vregion * PAGES_PER_HUGE
        first_pfn = pregion * PAGES_PER_HUGE
        bucket = self._region_base.setdefault(vregion, {})
        for offset in range(PAGES_PER_HUGE):
            self._base[first_vpn + offset] = first_pfn + offset
            bucket[first_vpn + offset] = first_pfn + offset
        if self.use_index:
            self._region_delta[vregion] = {first_pfn - first_vpn: PAGES_PER_HUGE}
        if self._watchers:
            for watcher in self._watchers:
                watcher.demoted(self, vregion, pregion)

    # ------------------------------------------------------------------
    # Iteration / statistics
    # ------------------------------------------------------------------

    def huge_mappings(self) -> Iterator[tuple[int, int]]:
        """Yield (virtual region, physical region) for every huge mapping."""
        yield from self._huge.items()

    def base_mappings(self) -> Iterator[tuple[int, int]]:
        """Yield (vpn, pfn) for every base mapping."""
        yield from self._base.items()

    def populated_regions(self) -> Iterator[int]:
        """Virtual regions with at least one base mapping (non-huge)."""
        yield from self._region_base.keys()

    @property
    def huge_count(self) -> int:
        return len(self._huge)

    @property
    def base_count(self) -> int:
        return len(self._base)

    @property
    def mapped_pages(self) -> int:
        """Total base pages covered, counting each huge mapping as 512."""
        return self.base_count + self.huge_count * PAGES_PER_HUGE
