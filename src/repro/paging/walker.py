"""Page-walk cost model: native one-dimensional and nested two-dimensional.

On a TLB miss the hardware walks the page tables.  On a native system this
is up to 4 memory references (one per level of the 4-level x86-64 table).
With nested paging every guest-physical address used *during* the guest walk
must itself be translated through the host table, so the walk is
two-dimensional: for a guest table of ``g`` levels and a host table of ``h``
levels the processor performs ``(g + 1) * (h + 1) - 1`` memory references —
24 for the standard 4+4 case, exactly the figure the paper quotes in
Section 2.1.

Huge pages shorten walks on both dimensions: a 2 MiB PTE lives one level
higher, so its dimension contributes one fewer level.  Page-walk caches
(PWCs) absorb references to high-level directories; following Section 2.1
they are highly effective for the upper levels but cannot easily cache the
lowest-level directories, which is why huge pages (whose PTEs sit in
well-cached high levels) see disproportionately cheaper walks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "WalkCost",
    "PAGE_TABLE_LEVELS",
    "HUGE_PAGE_LEVELS",
    "native_walk_refs",
    "nested_walk_refs",
    "native_walk_cost",
    "nested_walk_cost",
]

#: Levels walked to reach a base-page PTE on x86-64.
PAGE_TABLE_LEVELS = 4
#: Levels walked to reach a 2 MiB PTE (one fewer: the PTE is in the PD).
HUGE_PAGE_LEVELS = 3

#: Fraction of page-table references absorbed by the page-walk caches.  The
#: lowest-level directory of a base-page walk is hard to cache (Section 2.1
#: of the paper, citing Bhargava et al.), so base walks retain at least one
#: uncached reference per dimension while huge-page walks are almost fully
#: cached -- modelled by applying the PWC hit rate to all but the final
#: uncached reference(s).
PWC_HIT_RATE = 0.80

#: Cycles for one memory reference made by the walker.  A blend of cache and
#: DRAM latencies; only ratios between configurations matter for the
#: reproduction, not the absolute figure.
WALK_REF_CYCLES = 50.0


@dataclass(frozen=True)
class WalkCost:
    """Expected cost of one TLB-miss page walk."""

    refs: int
    cycles: float


def native_walk_refs(huge: bool) -> int:
    """Memory references of a native (one-dimensional) page walk."""
    return HUGE_PAGE_LEVELS if huge else PAGE_TABLE_LEVELS


def nested_walk_refs(guest_huge: bool, host_huge: bool) -> int:
    """Memory references of a two-dimensional (nested) page walk."""
    guest_levels = HUGE_PAGE_LEVELS if guest_huge else PAGE_TABLE_LEVELS
    host_levels = HUGE_PAGE_LEVELS if host_huge else PAGE_TABLE_LEVELS
    return (guest_levels + 1) * (host_levels + 1) - 1


def _expected_cycles(refs: int, uncached_refs: int) -> float:
    """Expected walk cycles once the PWC absorbs part of the references.

    *uncached_refs* references (the lowest-level directories) always go to
    memory; the remaining ``refs - uncached_refs`` hit the PWC with
    :data:`PWC_HIT_RATE`.
    """
    cached = max(refs - uncached_refs, 0)
    effective = uncached_refs + cached * (1.0 - PWC_HIT_RATE)
    return effective * WALK_REF_CYCLES


def native_walk_cost(huge: bool) -> WalkCost:
    """Walk cost on a native system for a base or huge page."""
    refs = native_walk_refs(huge)
    # Base walks keep one hard-to-cache low-level reference; huge-page walks
    # touch only well-cached high-level directories.
    uncached = 1 if not huge else 0
    return WalkCost(refs=refs, cycles=_expected_cycles(refs, uncached))


def nested_walk_cost(guest_huge: bool, host_huge: bool) -> WalkCost:
    """Walk cost on a virtualized system with nested paging.

    ``guest_huge``/``host_huge`` describe the page size *of the mapping
    being walked* in each dimension.  Whether the resulting translation can
    actually be cached in the TLB (the alignment question at the heart of
    the paper) is the TLB model's concern, not the walker's: misaligned
    huge pages still enjoy the shorter walk, as Section 2.2 notes.
    """
    refs = nested_walk_refs(guest_huge, host_huge)
    uncached = (0 if guest_huge else 1) + (0 if host_huge else 1)
    return WalkCost(refs=refs, cycles=_expected_cycles(refs, uncached))
