"""Page tables (guest process tables and host EPT) and the page-walk cost
model for native and nested (two-dimensional) translation."""

from repro.paging.pagetable import MappingError, PageTable
from repro.paging.walker import (
    HUGE_PAGE_LEVELS,
    PAGE_TABLE_LEVELS,
    WalkCost,
    native_walk_cost,
    native_walk_refs,
    nested_walk_cost,
    nested_walk_refs,
)

__all__ = [
    "HUGE_PAGE_LEVELS",
    "MappingError",
    "PAGE_TABLE_LEVELS",
    "PageTable",
    "WalkCost",
    "native_walk_cost",
    "native_walk_refs",
    "nested_walk_cost",
    "nested_walk_refs",
]
