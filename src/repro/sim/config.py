"""Simulation configuration.

Scaling note (DESIGN.md section 3): the paper's workloads use tens of GiB
against a 1536-entry shared L2 TLB; this simulator runs tens-of-MiB
footprints, so the TLB capacity is scaled down by roughly the same factor
(default 384 entries) to keep the working-set : TLB-reach ratio in the
paper's regime.  The base:huge page-size ratio (512:1) is *not* scaled —
the coalescing mechanics depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runtime import GeminiConfig
from repro.pressure.config import PressureConfig
from repro.tlb.model import TLBConfig

__all__ = ["SimulationConfig"]

#: Default scaled-down TLB (see module docstring).
DEFAULT_TLB = TLBConfig(entries=384, utilization=0.85)


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of one simulation run."""

    #: Host physical memory (MiB) and NUMA nodes.
    host_mib: int = 768
    nodes: int = 1
    #: Guest-physical memory per VM (MiB).
    guest_mib: int = 256
    #: Number of epochs to run.
    epochs: int = 20
    #: TLB capacity model.
    tlb: TLBConfig = field(default_factory=lambda: DEFAULT_TLB)
    #: Target FMFI at each layer before the workload starts (Section 6.1's
    #: fragmenter program); 0.0 disables fragmentation.
    fragment_guest: float = 0.0
    fragment_host: float = 0.0
    #: OS background noise: small kernel/slab-style allocations interleaved
    #: with the workload's faults at both layers (one noise allocation per
    #: ``1/noise_rate`` faults), which shift physical placement off huge
    #: alignment the way real mixed allocation streams do.
    noise_rate: float = 0.03
    noise_free_fraction: float = 0.5
    #: Random seed (fragmenter, workload churn, noise).
    seed: int = 42
    #: Serve multi-page touches through the batched fault path.  The batch
    #: path is bit-identical to per-page faulting (enforced by tests) and
    #: several times faster; False keeps the per-page reference path for
    #: equivalence checks.
    batch_faults: bool = True
    #: Maintain the incremental translation-state index (per-region
    #: summaries, live alignment counters, classification caches) so
    #: per-epoch work is O(changed regions) instead of O(all regions).
    #: Bit-identical to the reference enumerate-everything path (enforced
    #: by tests); False keeps the reference path for equivalence checks.
    incremental_index: bool = True
    #: Serve the profiled hot paths through batch kernels: bitset frame
    #: scans, span-level map/unmap/free batches, the quiescent-range touch
    #: cache, and memoized TLB segment evaluation.  Bit-identical to the
    #: per-frame reference paths (enforced by the equivalence suite);
    #: False forces the reference paths everywhere.
    fast_kernels: bool = True
    #: Gemini runtime tunables, including the Figure 16 ablation switches
    #: (only used when the system is Gemini).
    gemini: GeminiConfig = field(default_factory=GeminiConfig)
    #: Memory-pressure subsystem (working-set estimation, ballooning,
    #: KSM, hypervisor swap); disabled by default.
    pressure: PressureConfig = field(default_factory=PressureConfig)

    def __post_init__(self) -> None:
        if self.host_mib <= 0 or self.guest_mib <= 0:
            raise ValueError("memory sizes must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        for value in (self.fragment_guest, self.fragment_host):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"fragmentation target out of [0, 1): {value}")
