"""Simulation result records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.alignment import AlignmentReport
from repro.metrics.performance import EpochPerformance

__all__ = ["EpochRecord", "RunResult"]


@dataclass
class EpochRecord:
    """Everything measured in one epoch for one workload."""

    epoch: int
    performance: EpochPerformance
    alignment: AlignmentReport
    fmfi_guest: float
    fmfi_host: float
    guest_huge_pages: int
    host_huge_pages: int
    bloat_pages: int


@dataclass
class RunResult:
    """Aggregated outcome of one (workload, system) simulation."""

    system: str
    workload: str
    epochs: list[EpochRecord] = field(default_factory=list)
    gemini_stats: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Aggregates (steady state = second half of the run, matching how the
    # paper measures after warm-up)
    # ------------------------------------------------------------------

    def _steady(self) -> list[EpochRecord]:
        if not self.epochs:
            return []
        half = len(self.epochs) // 2
        return self.epochs[half:]

    @property
    def throughput(self) -> float:
        """Operations per cycle over the steady-state epochs."""
        steady = self._steady()
        cycles = sum(r.performance.total_cycles for r in steady)
        ops = sum(r.performance.ops for r in steady)
        return ops / cycles if cycles > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        steady = self._steady()
        ops = sum(r.performance.ops for r in steady)
        if ops <= 0:
            return 0.0
        weighted = sum(
            r.performance.mean_latency * r.performance.ops for r in steady
        )
        return weighted / ops

    @property
    def p99_latency(self) -> float:
        steady = self._steady()
        ops = sum(r.performance.ops for r in steady)
        if ops <= 0:
            return 0.0
        weighted = sum(r.performance.p99_latency * r.performance.ops for r in steady)
        return weighted / ops

    @property
    def tlb_misses(self) -> float:
        """Total TLB misses over the steady-state epochs."""
        return sum(r.performance.tlb_misses for r in self._steady())

    @property
    def well_aligned_rate(self) -> float:
        """Average well-aligned huge page rate over steady-state epochs
        (the Tables 1/3/4 statistic)."""
        steady = [r for r in self._steady() if r.alignment.total_huge > 0]
        if not steady:
            return 0.0
        return sum(r.alignment.well_aligned_rate for r in steady) / len(steady)

    @property
    def huge_pages(self) -> float:
        """Average total huge pages (both layers) in steady state."""
        steady = self._steady()
        if not steady:
            return 0.0
        return sum(r.guest_huge_pages + r.host_huge_pages for r in steady) / len(steady)

    @property
    def bloat_pages(self) -> float:
        steady = self._steady()
        if not steady:
            return 0.0
        return sum(r.bloat_pages for r in steady) / len(steady)

    def to_dict(self) -> dict[str, float | str]:
        """Flat summary, for report tables."""
        return {
            "system": self.system,
            "workload": self.workload,
            "throughput": self.throughput,
            "mean_latency": self.mean_latency,
            "p99_latency": self.p99_latency,
            "tlb_misses": self.tlb_misses,
            "well_aligned_rate": self.well_aligned_rate,
            "huge_pages": self.huge_pages,
            "bloat_pages": self.bloat_pages,
        }
