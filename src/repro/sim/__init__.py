"""Simulation engine: configuration, OS noise, the epoch-driven run loop,
and result records."""

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation, run_workload
from repro.sim.noise import NoiseAgent
from repro.sim.results import EpochRecord, RunResult

__all__ = [
    "EpochRecord",
    "NoiseAgent",
    "RunResult",
    "Simulation",
    "SimulationConfig",
    "run_workload",
]
