"""OS allocation noise.

Real systems never give a workload a pristine allocation stream: kernel
slabs, page cache, and other processes interleave small allocations with
the workload's demand faults, shifting its physical placement off huge
boundaries.  This entropy is one of the reasons uncoordinated page
coalescing aligns huge pages "largely by chance" (Section 2.3); without it
a clean simulator would make every baseline look artificially well-aligned.

The :class:`NoiseAgent` hooks the platform's fault path: after roughly one
in ``1/rate`` demand faults it allocates one small object at the faulting
layer (guest-physical for guest faults, host-physical always) and
randomly frees previously-held objects, producing the scattered-hole
pattern of mixed allocation streams.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING

from repro.mem.buddy import AllocationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.platform import Platform
    from repro.hypervisor.vm import VM

__all__ = ["NoiseAgent"]


class NoiseAgent:
    """Small kernel-style allocations interleaved with workload faults."""

    def __init__(
        self,
        platform: "Platform",
        rate: float = 0.03,
        free_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"noise rate out of [0, 1]: {rate}")
        if not 0.0 <= free_fraction <= 1.0:
            raise ValueError(f"free fraction out of [0, 1]: {free_fraction}")
        self.platform = platform
        self.rate = rate
        self.free_fraction = free_fraction
        self._rng = random.Random(seed)
        self._guest_held: dict[int, list[int]] = {}
        self._host_held: list[int] = []
        #: Current "unmovable pageblock" per arena, keyed by a stable arena
        #: tag (``("host",)`` or ``("guest", vm_id)`` — NOT ``id(memory)``,
        #: which changes across pickling and would break serial/parallel
        #: determinism for cluster host stepping): like Linux's
        #: migrate-type grouping, kernel-style allocations are clustered
        #: into dedicated 2 MiB blocks instead of splintering movable
        #: regions, so noise destroys few huge regions.
        self._blocks: dict[tuple, list[int]] = {}
        #: Transient allocations: short-lived objects (stack pages, network
        #: buffers, slab churn) that briefly claim the next free frame and
        #: release it a few faults later.  They do not occupy memory for
        #: long, but they shift the phase of the workload's sequential
        #: allocation stream — the entropy that makes naive policies'
        #: physical layouts mis-aligned "largely by chance" (Section 2.3).
        self._transient: dict[tuple, list[int]] = {}
        self.transient_hold = 24
        #: Pre-drawn per-fault gate bits (True = this fault triggers noise),
        #: in fault order.  :meth:`act_horizon` fills the queue so batched
        #: fault delivery can prove a noise-free window without perturbing
        #: the RNG stream; :meth:`on_fault` drains it before drawing fresh.
        self._pending: deque[bool] = deque()
        self.allocations = 0

    def install(self) -> None:
        # The agent itself is the hook (not the bound method) so the
        # platform can discover ``act_horizon`` on the hook object.
        self.platform.fault_hook = self

    def __call__(self, vm: "VM") -> None:
        self.on_fault(vm)

    def act_horizon(self, limit: int) -> int:
        """How many upcoming fault notifications, up to *limit*, are
        guaranteed not to trigger noise.

        Gate bits are drawn in fault order and queued; drawing stops at the
        first acting fault so the noise body's own RNG consumption stays in
        its per-fault position.  The result is that delivering the next
        ``act_horizon(n)`` faults as a batch consumes the exact random
        stream per-fault delivery would.
        """
        horizon = 0
        for acts in self._pending:
            if acts:
                return horizon
            horizon += 1
            if horizon >= limit:
                return horizon
        while horizon < limit:
            acts = self._rng.random() < self.rate
            self._pending.append(acts)
            if acts:
                return horizon
            horizon += 1
        return horizon

    def on_fault(self, vm: "VM") -> None:
        if self._pending:
            acts = self._pending.popleft()
        else:
            acts = self._rng.random() < self.rate
        if not acts:
            return
        self.allocations += 1
        guest_key = ("guest", vm.id)
        self._noise_alloc(
            vm.gpa_space, guest_key, self._guest_held.setdefault(vm.id, [])
        )
        self._noise_alloc(self.platform.memory, ("host",), self._host_held)
        self._transient_alloc(vm.gpa_space, guest_key)
        self._transient_alloc(self.platform.memory, ("host",))

    def forget_vm(self, vm_id: int) -> None:
        """Drop per-VM noise state when the VM leaves this platform.

        The held guest frames live inside the VM's own guest-physical
        space, which travels with it, so they are simply forgotten (not
        freed) here.
        """
        self._guest_held.pop(vm_id, None)
        self._blocks.pop(("guest", vm_id), None)
        self._transient.pop(("guest", vm_id), None)

    def _transient_alloc(self, memory, key: tuple) -> None:
        fifo = self._transient.setdefault(key, [])
        try:
            fifo.append(memory.alloc(0))
        except AllocationError:
            return
        while len(fifo) > self.transient_hold:
            memory.free(fifo.pop(0), 0)

    def _noise_alloc(self, memory, key: tuple, held: list[int]) -> None:
        frame = self._alloc_clustered(memory, key)
        if frame is not None:
            held.append(frame)
        # Free a random earlier object with probability free_fraction:
        # noise memory churns rather than monotonically growing.
        if held and self._rng.random() < self.free_fraction:
            index = self._rng.randrange(len(held))
            memory.free(held.pop(index), 0)

    def _alloc_clustered(self, memory, key: tuple) -> int | None:
        """Allocate one frame from the arena's current unmovable block."""
        block = self._blocks.get(key, [])
        if not block:
            # Claim a fresh pageblock for unmovable allocations; fall back
            # to single-frame allocation when no whole block is free.
            from repro.mem.layout import HUGE_ORDER, PAGES_PER_HUGE

            try:
                start = memory.alloc(HUGE_ORDER)
            except AllocationError:
                try:
                    return memory.alloc(0)
                except AllocationError:
                    return None
            block = list(range(start, start + PAGES_PER_HUGE))
        frame = block.pop(0)
        self._blocks[key] = block
        return frame

    @property
    def held_pages(self) -> int:
        guest = sum(len(frames) for frames in self._guest_held.values())
        return guest + len(self._host_held)
