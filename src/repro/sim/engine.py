"""The simulation engine: runs workloads on a virtualized platform under a
chosen huge-page system and produces :class:`~repro.sim.results.RunResult`
records.

One :class:`Simulation` hosts one or more workloads (one VM each — the
paper runs one workload per VM, and the collocation study of Section 6.5
puts several VMs on the server).  Each epoch:

1. the workloads allocate/touch/free memory (demand faults drive both
   translation layers, with OS noise interleaved);
2. background daemons run — the per-layer policy scans, and for Gemini the
   cross-layer runtime (MHPS, booking, promoters, bucket);
3. the epoch's accesses are classified region by region against both page
   tables (well-aligned / splintered / base) and evaluated by the TLB
   capacity model;
4. costs accrued by both layers are folded with the translation behaviour
   into the epoch's performance record.
"""

from __future__ import annotations

import zlib

from repro import obs
from repro.core.runtime import GeminiRuntime
from repro.hypervisor.platform import Platform
from repro.hypervisor.vm import PROCESS, VM
from repro.mem.fragmentation import Fragmenter, fmfi
from repro.mem.layout import PAGES_PER_HUGE
from repro.metrics.alignment import alignment_report, classify_region
from repro.metrics.performance import epoch_performance
from repro.policies.base import EpochTelemetry
from repro.policies.registry import system_spec
from repro.pressure.controller import PressureController
from repro.sim.config import SimulationConfig
from repro.sim.noise import NoiseAgent
from repro.sim.results import EpochRecord, RunResult
from repro.tlb import costs
from repro.tlb.model import TLBModel, TranslationSegment
from repro.workloads.base import Workload, WorkloadContext

__all__ = [
    "Simulation",
    "backfill_host",
    "build_segments",
    "charge_dedup_cow",
    "run_workload",
]


def build_segments(
    platform: Platform, vm: VM, workload: Workload, epoch: int
) -> list[TranslationSegment]:
    """Classify one epoch's accesses into TLB-model segments.

    Shared by :class:`Simulation` and the cluster's per-host stepping:
    walks the workload's access phases, classifies each touched 2 MiB
    region against both page tables (through the VM's translation index
    when present), and spreads the epoch's accesses over the resulting
    translation kinds.
    """
    segments: list[TranslationSegment] = []
    guest_table = vm.guest.table(PROCESS)
    ept = platform.ept(vm.id)
    vm_index = platform.index_of(vm.id)
    total_accesses = workload.accesses_per_epoch
    for phase in workload.access_phases(epoch):
        if phase.vma not in vm.address_space:
            continue
        vma = vm.address_space.vma(phase.vma)
        hot_pages = max(1, int(vma.npages * phase.hot_fraction))
        first_region = vma.start // PAGES_PER_HUGE
        last_region = (vma.start + hot_pages - 1) // PAGES_PER_HUGE
        entries: dict = {}
        pages: dict = {}
        walk: dict = {}
        for vregion in range(first_region, last_region + 1):
            # A valid cached classification implies every guest-physical
            # page the region depends on is still EPT-translated (any
            # removal invalidates the cache), so backfill_host would be
            # a pure no-op — skip both on a hit.
            classes = None if vm_index is None else vm_index.cached_classes(vregion)
            if classes is None:
                backfill_host(platform, vm, vregion)
                classes = classify_region(guest_table, ept, vregion)
                if vm_index is not None:
                    vm_index.store_classes(vregion, classes)
            for cls in classes:
                entries[cls.kind] = entries.get(cls.kind, 0) + cls.entries
                pages[cls.kind] = pages.get(cls.kind, 0) + cls.pages
                walk[cls.kind] = cls.walk_cycles
        total_pages = sum(pages.values())
        if total_pages == 0:
            continue
        phase_accesses = total_accesses * phase.weight
        for kind, kind_entries in entries.items():
            segments.append(
                TranslationSegment(
                    entries=kind_entries,
                    accesses=phase_accesses * pages[kind] / total_pages,
                    walk_cycles=walk[kind],
                    label=f"{vma.name}:{kind.value}",
                )
            )
    return segments


def backfill_host(platform: Platform, vm: VM, vregion: int) -> None:
    """Fault any host backing that accesses to *vregion* would demand.

    After a guest-side migration the data lives at new guest-physical
    addresses that the EPT has not backed yet; real accesses would
    EPT-fault, so the engine faults them before evaluating the epoch.
    """
    guest_table = vm.guest.table(PROCESS)
    ept = platform.ept(vm.id)
    if guest_table.is_huge(vregion):
        gpregion = guest_table.huge_target(vregion)
        if ept.is_huge(gpregion):
            return
        base = gpregion * PAGES_PER_HUGE
        if platform.batch_faults:
            # Contiguous ascending range, no fault hook on this path:
            # the batched walk makes the identical per-page decisions.
            platform.host.fault_range(vm.id, base, PAGES_PER_HUGE)
            return
        for gpn in range(base, base + PAGES_PER_HUGE):
            if ept.translate(gpn) is None:
                platform.host.fault(vm.id, gpn, full_region=True)
        return
    for _, gpn in guest_table.region_items(vregion):
        if ept.translate(gpn) is None:
            platform.host.fault(vm.id, gpn, full_region=True)


def charge_dedup_cow(vm: VM, workload: Workload) -> None:
    """HawkEye's zero-page deduplication backfires on workloads that
    write their deduplicated pages (Section 6.2, Specjbb)."""
    policy = vm.guest.policy
    if not getattr(policy, "deduplicates_zero_pages", False):
        return
    if workload.zero_page_dedup_rate <= 0.0:
        return
    faults = workload.zero_page_dedup_rate * workload.ops_per_epoch
    vm.guest.ledger.charge(
        "cow_fault", costs.COW_FAULT_CYCLES * faults, count=int(faults)
    )


class Simulation:
    """One simulation: a platform, one VM per workload, one system."""

    def __init__(
        self,
        workloads: Workload | list[Workload],
        system: str = "Gemini",
        config: SimulationConfig | None = None,
        primer: Workload | None = None,
    ) -> None:
        """*primer* is a workload executed to completion (and unmapped)
        inside the first VM before the main workload starts — the reused-VM
        setting of Section 6.3."""
        self.config = config or SimulationConfig()
        self.system = system
        self.spec = system_spec(system)
        self.workloads = [workloads] if isinstance(workloads, Workload) else list(workloads)
        if not self.workloads:
            raise ValueError("at least one workload required")
        self.primer = primer

        self.platform = Platform.with_mib(
            self.config.host_mib, self.spec.make_host(), nodes=self.config.nodes
        )
        self.platform.batch_faults = self.config.batch_faults
        # Must be set before the VMs are created below: the index attaches
        # its table watchers in create_vm.
        self.platform.use_index = self.config.incremental_index
        self.platform.fast_kernels = self.config.fast_kernels
        self.tlb_model = TLBModel(self.config.tlb, memoize=self.config.fast_kernels)
        self.noise = NoiseAgent(
            self.platform,
            rate=self.config.noise_rate,
            free_fraction=self.config.noise_free_fraction,
            seed=self.config.seed,
        )
        self.noise.install()

        self.runtime: GeminiRuntime | None = None
        if self.spec.uses_gemini_runtime:
            self.runtime = GeminiRuntime(self.platform, self.config.gemini)

        self._vms: list[VM] = []
        self._contexts: list[WorkloadContext] = []
        for index, workload in enumerate(self.workloads):
            vm = self.platform.create_vm_mib(
                self.config.guest_mib, self.spec.make_guest(), name=workload.name
            )
            if self.runtime is not None:
                self.runtime.register_vm(vm)
            self._vms.append(vm)
            # Differentiate the per-workload RNG stream by name so that
            # same-family workloads (e.g. Redis vs RocksDB) do not replay
            # identical churn sequences.  CRC32 keys on byte order, so
            # anagram names (unlike a plain byte sum) get distinct salts.
            name_salt = zlib.crc32(workload.name.encode()) % 997
            self._contexts.append(
                WorkloadContext(
                    self.platform, vm, seed=self.config.seed + index + name_salt
                )
            )

        self._fragmenters: list[Fragmenter] = []
        if self.config.fragment_host > 0.0:
            fragmenter = Fragmenter(self.platform.memory, seed=self.config.seed)
            fragmenter.fragment(self.config.fragment_host)
            self._fragmenters.append(fragmenter)
        if self.config.fragment_guest > 0.0:
            for vm in self._vms:
                fragmenter = Fragmenter(vm.gpa_space, seed=self.config.seed + vm.id)
                fragmenter.fragment(self.config.fragment_guest)
                self._fragmenters.append(fragmenter)

        self.pressure: PressureController | None = None
        if self.config.pressure.enabled:
            self.pressure = PressureController(
                self.platform, self.config.pressure
            )

        self._last_misses = 0.0
        # Persistent ledger snapshots: each epoch's cost delta is taken
        # against these and they are advanced at delta time, so work done
        # by the between-epoch daemons is charged to the *next* epoch
        # instead of disappearing between snapshots.
        self._host_snapshot = self.platform.host.ledger.snapshot()
        self._guest_snapshots = [vm.guest.ledger.snapshot() for vm in self._vms]

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self) -> list[RunResult]:
        """Run the configured number of epochs; one result per workload."""
        if self.primer is not None:
            self._run_primer()
            # The primer's costs belong to the previous tenant, not to the
            # measured workload's first epoch.
            self._host_snapshot = self.platform.host.ledger.snapshot()
            self._guest_snapshots = [
                vm.guest.ledger.snapshot() for vm in self._vms
            ]
        results = [
            RunResult(system=self.system, workload=w.name) for w in self.workloads
        ]
        telemetry, recorder, installed_monitor = self._attach_health()
        try:
            for epoch in range(self.config.epochs):
                self._epoch(epoch, results)
        except BaseException as error:
            if recorder is not None:
                recorder.dump("exception", config=self.config, error=error)
            raise
        finally:
            if installed_monitor and telemetry is not None:
                telemetry.monitor = None
        if self.runtime is not None:
            stats = self.runtime.stats()
            for result in results:
                result.gemini_stats = stats
        return results

    def _attach_health(self):
        """Arm the watchdog monitor (and flight recorder, when a trace
        directory is configured) for this run; single-process, so the
        monitor sees every event as it is emitted."""
        telemetry = obs.get()
        if telemetry is None:
            return None, None, False
        from repro.obs.health import FlightRecorder, HealthMonitor

        installed = False
        if telemetry.monitor is None:
            telemetry.monitor = HealthMonitor()
            installed = True
        recorder = None
        out_dir = obs.trace_out_dir()
        if out_dir is not None:
            recorder = FlightRecorder(telemetry, out_dir)
            config = self.config
            telemetry.monitor.on_breach = (
                lambda finding: recorder.breach(finding, config=config)
            )
        return telemetry, recorder, installed

    def run_single(self) -> RunResult:
        """Run and return the (single) workload's result."""
        results = self.run()
        if len(results) != 1:
            raise ValueError("run_single requires exactly one workload")
        return results[0]

    def _run_primer(self) -> None:
        """Execute the primer workload to completion in VM 0, then unmap
        everything it allocated (guest frames freed, EPT state retained)."""
        vm = self._vms[0]
        ctx = WorkloadContext(self.platform, vm, seed=self.config.seed + 1000)
        primer = self.primer
        assert primer is not None
        primer.setup(ctx)
        for epoch in range(primer.default_epochs):
            primer.run_epoch(ctx, epoch)
            self._run_daemons(epoch=-primer.default_epochs + epoch)
        for name in list(ctx.vma_names()):
            ctx.munmap(name)

    # ------------------------------------------------------------------
    # One epoch
    # ------------------------------------------------------------------

    def _epoch(self, epoch: int, results: list[RunResult]) -> None:
        obs.set_context(host=None, epoch=epoch)
        with obs.span("sim.epoch"):
            self._epoch_body(epoch, results)

    def _epoch_body(self, epoch: int, results: list[RunResult]) -> None:
        with obs.span("sim.workloads"):
            for workload, ctx in zip(self.workloads, self._contexts):
                if epoch == 0:
                    workload.setup(ctx)
                workload.run_epoch(ctx, epoch)

        epoch_misses = 0.0
        host_delta = self.platform.host.ledger.delta_since(self._host_snapshot)
        self._host_snapshot = self.platform.host.ledger.snapshot()
        host_share = 1.0 / len(self._vms)
        host_fmfi = fmfi(self.platform.memory)

        with obs.span("sim.classify"):
            for index, (workload, vm) in enumerate(
                zip(self.workloads, self._vms)
            ):
                self._charge_dedup_cow(workload, vm)
                if self.pressure is not None:
                    self.pressure.log_dirty(vm, workload, epoch)
                segments = self._build_segments(workload, vm, epoch)
                stats = self.tlb_model.evaluate(segments)
                epoch_misses += stats.misses

                guest_delta = vm.guest.ledger.delta_since(
                    self._guest_snapshots[index]
                )
                self._guest_snapshots[index] = vm.guest.ledger.snapshot()
                sync_mm = (
                    guest_delta.sync_cycles + host_delta.sync_cycles * host_share
                )
                background = (
                    guest_delta.background_cycles
                    + host_delta.background_cycles * host_share
                )
                performance = epoch_performance(
                    tlb_sensitivity=workload.tlb_sensitivity,
                    ops=workload.ops_per_epoch,
                    stats=stats,
                    sync_mm_cycles=sync_mm,
                    background_cycles=background,
                )
                vm_index = self.platform.index_of(vm.id)
                if vm_index is not None:
                    report = vm_index.report()
                else:
                    report = alignment_report(
                        vm.guest.table(PROCESS), self.platform.ept(vm.id)
                    )
                guest_fmfi = fmfi(vm.gpa_space)
                results[index].epochs.append(
                    EpochRecord(
                        epoch=epoch,
                        performance=performance,
                        alignment=report,
                        fmfi_guest=guest_fmfi,
                        fmfi_host=host_fmfi,
                        guest_huge_pages=vm.guest.huge_mapping_count(),
                        host_huge_pages=self.platform.ept(vm.id).huge_count,
                        bloat_pages=vm.guest.bloat_pages,
                    )
                )
                obs.emit(
                    "sim.epoch",
                    workload=workload.name,
                    tlb_misses=round(stats.misses, 3),
                    well_aligned_rate=round(report.well_aligned_rate, 6),
                    fmfi_guest=round(guest_fmfi, 6),
                    fmfi_host=round(host_fmfi, 6),
                )
                vm.guest.policy.on_epoch(
                    EpochTelemetry(epoch, stats.misses, guest_fmfi)
                )
        self.platform.host.policy.on_epoch(
            EpochTelemetry(epoch, epoch_misses, host_fmfi)
        )
        self._last_misses = epoch_misses
        # Daemons run *between* epochs: promotions and bookings made now
        # take effect for the next epoch's accesses, so repair mechanisms
        # carry a one-epoch lag while fault-time mechanisms (huge faults
        # from booked/bucketed regions) act immediately.
        with obs.span("sim.daemons"):
            self._run_daemons(epoch)

    def _run_daemons(self, epoch: int) -> None:
        for vm in self._vms:
            vm.guest.policy.scan(None)
        self.platform.host.policy.scan(None)
        if self.runtime is not None:
            self.runtime.epoch(now=float(epoch), tlb_misses=self._last_misses)
        if self.pressure is not None and epoch >= 0:
            self.pressure.run(epoch)

    def _charge_dedup_cow(self, workload: Workload, vm: VM) -> None:
        charge_dedup_cow(vm, workload)

    # ------------------------------------------------------------------
    # Access classification
    # ------------------------------------------------------------------

    def _build_segments(
        self, workload: Workload, vm: VM, epoch: int
    ) -> list[TranslationSegment]:
        return build_segments(self.platform, vm, workload, epoch)


def run_workload(
    workload: Workload,
    system: str,
    config: SimulationConfig | None = None,
    primer: Workload | None = None,
) -> RunResult:
    """Convenience wrapper: simulate one workload under one system."""
    return Simulation(workload, system=system, config=config, primer=primer).run_single()
