"""Performance model: from simulation counters to the paper's statistics.

Each epoch produces: translation behaviour from the TLB model, synchronous
memory-management cycles (faults, promotion stalls, shoot-downs — paid
inline by the application), and background daemon cycles (already
discounted at charge time).  The model combines them with the workload's
compute demand:

* the compute cost per access is derived from the workload's TLB
  sensitivity ``s`` — the fraction of baseline runtime spent translating
  addresses: ``compute = BASE_ACCESS_CYCLES * (1 - s) / s`` cycles per
  access, so low-sensitivity workloads (Shore, SP.D) are dominated by
  compute and barely react to translation improvements;
* throughput = operations / total cycles;
* mean latency = synchronous cycles per operation (compute + translation +
  inline MM work);
* p99 latency = a dispatch-queue tail (2x mean) plus the stall tail:
  synchronous MM stall cycles concentrated on the slowest 1% of
  operations, capped at 50x mean (a stalled request does not wait forever;
  shoot-downs and compaction run in bounded chunks).

Absolute cycle counts are model artefacts; every experiment reports values
normalised to a baseline system, exactly as the paper's figures do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tlb.model import TranslationStats

__all__ = ["EpochPerformance", "epoch_performance", "compute_cycles_per_access"]

#: Reference per-access translation cost of the Host-B-VM-B baseline (a
#: high nested-walk miss rate times the two-dimensional walk cost).  The
#: workload's TLB sensitivity is defined against this reference: a workload
#: with sensitivity ``s`` spends fraction ``s`` of its baseline runtime on
#: translation, so its compute demand is ``REF * (1 - s) / s`` per access.
REFERENCE_TRANSLATION_CYCLES = 250.0

#: Fraction of operations absorbing the synchronous stall tail.
TAIL_FRACTION = 0.01
#: Intrinsic p99/mean ratio of an unstalled server (queueing + service
#: variability), before MM-induced stalls are added.
INTRINSIC_TAIL_FACTOR = 2.0
#: Cap on the stall contribution to p99 in cycles: the longest single
#: inline stall a request can observe (one shoot-down round plus a bounded
#: compaction/migration batch — MM work is chunked, a request never waits
#: for a whole scan).
TAIL_STALL_CAP_CYCLES = 60_000.0


def compute_cycles_per_access(tlb_sensitivity: float) -> float:
    """Non-translation cycles per access implied by a TLB sensitivity."""
    if not 0.0 < tlb_sensitivity <= 1.0:
        raise ValueError(f"tlb_sensitivity out of (0, 1]: {tlb_sensitivity}")
    ratio = (1.0 - tlb_sensitivity) / tlb_sensitivity
    return REFERENCE_TRANSLATION_CYCLES * ratio


@dataclass
class EpochPerformance:
    """Performance of one epoch."""

    ops: float
    accesses: float
    compute_cycles: float
    translation_cycles: float
    tlb_misses: float
    sync_mm_cycles: float
    background_cycles: float

    @property
    def total_cycles(self) -> float:
        return (
            self.compute_cycles
            + self.translation_cycles
            + self.sync_mm_cycles
            + self.background_cycles
        )

    @property
    def throughput(self) -> float:
        """Operations per cycle."""
        total = self.total_cycles
        return self.ops / total if total > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        """Synchronous cycles per operation."""
        if self.ops <= 0:
            return 0.0
        inline = self.compute_cycles + self.translation_cycles + self.sync_mm_cycles
        return inline / self.ops

    @property
    def p99_latency(self) -> float:
        if self.ops <= 0:
            return 0.0
        mean = self.mean_latency
        stall = self.sync_mm_cycles / (TAIL_FRACTION * self.ops)
        return INTRINSIC_TAIL_FACTOR * mean + min(stall, TAIL_STALL_CAP_CYCLES)


def epoch_performance(
    tlb_sensitivity: float,
    ops: float,
    stats: TranslationStats,
    sync_mm_cycles: float,
    background_cycles: float,
) -> EpochPerformance:
    """Assemble one epoch's performance record."""
    compute = stats.accesses * compute_cycles_per_access(tlb_sensitivity)
    return EpochPerformance(
        ops=ops,
        accesses=stats.accesses,
        compute_cycles=compute,
        translation_cycles=stats.translation_cycles(),
        tlb_misses=stats.misses,
        sync_mm_cycles=sync_mm_cycles,
        background_cycles=background_cycles,
    )
