"""Event and cycle accounting.

Every memory-management action in the simulator (faults, promotions,
migrations, shoot-downs, daemon scans) charges a :class:`CostLedger`.
The performance model later splits charges into:

* *synchronous* cycles — paid inline by the application (page faults,
  synchronous promotion stalls, shoot-down waits); these inflate request
  latency and its tail;
* *background* cycles — daemon work that mostly overlaps with idle cores;
  charged against throughput at :data:`repro.tlb.costs.BACKGROUND_DISCOUNT`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["Charge", "CostLedger"]


@dataclass
class Charge:
    """Accumulated count and cycles for one event type."""

    count: int = 0
    cycles: float = 0.0


@dataclass
class CostLedger:
    """Per-layer accumulator of memory-management costs."""

    name: str = ""
    sync: dict[str, Charge] = field(default_factory=lambda: defaultdict(Charge))
    background: dict[str, Charge] = field(default_factory=lambda: defaultdict(Charge))

    def charge(self, event: str, cycles: float, count: int = 1, sync: bool = True) -> None:
        """Record *count* occurrences of *event* costing *cycles* in total."""
        if cycles < 0 or count < 0:
            raise ValueError(f"negative charge: {event} {cycles} x{count}")
        bucket = self.sync if sync else self.background
        charge = bucket[event]
        charge.count += count
        charge.cycles += cycles

    @property
    def sync_cycles(self) -> float:
        return sum(c.cycles for c in self.sync.values())

    @property
    def background_cycles(self) -> float:
        return sum(c.cycles for c in self.background.values())

    def count(self, event: str) -> int:
        """Total occurrences of *event* across both buckets."""
        return self.sync[event].count + self.background[event].count

    def cycles(self, event: str) -> float:
        """Total cycles of *event* across both buckets."""
        return self.sync[event].cycles + self.background[event].cycles

    def merge(self, other: "CostLedger") -> None:
        """Fold *other*'s charges into this ledger."""
        for event, charge in other.sync.items():
            self.charge(event, charge.cycles, charge.count, sync=True)
        for event, charge in other.background.items():
            self.charge(event, charge.cycles, charge.count, sync=False)

    def snapshot(self) -> "CostLedger":
        """Deep copy, for per-epoch deltas."""
        copy = CostLedger(name=self.name)
        copy.merge(self)
        return copy

    def delta_since(self, baseline: "CostLedger") -> "CostLedger":
        """Charges accumulated since *baseline* (a previous snapshot)."""
        delta = CostLedger(name=self.name)
        for bucket_name in ("sync", "background"):
            current: dict[str, Charge] = getattr(self, bucket_name)
            previous: dict[str, Charge] = getattr(baseline, bucket_name)
            target: dict[str, Charge] = getattr(delta, bucket_name)
            for event, charge in current.items():
                prior = previous.get(event, Charge())
                diff_count = charge.count - prior.count
                diff_cycles = charge.cycles - prior.cycles
                if diff_count or diff_cycles:
                    target[event] = Charge(count=diff_count, cycles=diff_cycles)
        return delta
