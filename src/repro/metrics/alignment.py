"""Huge-page alignment analysis.

The paper's central observation (Section 2.2): a huge page reduces address
translation overhead only when the guest and the host both map the same
data with huge pages — a huge GVP backed by a huge GPP backed by a huge
HPP.  This module computes, from the guest page table and the EPT:

* the *rate of well-aligned huge pages* reported in Tables 1, 3 and 4; and
* the per-region translation classification the TLB model consumes — an
  aligned region needs one TLB entry, every other combination is
  splintered into base-page entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.mem.layout import PAGES_PER_HUGE
from repro.paging.pagetable import PageTable
from repro.paging.walker import nested_walk_cost

__all__ = ["RegionKind", "RegionClass", "AlignmentReport", "alignment_report", "classify_region"]


class RegionKind(Enum):
    """Translation classification of one 2 MiB guest-virtual region."""

    ALIGNED_HUGE = "aligned-huge"      # guest huge + host huge: 1 TLB entry
    GUEST_HUGE_ONLY = "guest-huge"     # guest huge over base EPT: splintered
    HOST_HUGE_ONLY = "host-huge"       # guest base over huge EPT: splintered
    BASE_ONLY = "base"                 # base pages at both layers


#: Per-miss page-walk cycles by region kind.  Misaligned huge pages keep
#: the shorter walk of their huge dimension even though they splinter in
#: the TLB (Section 2.2).
WALK_CYCLES = {
    RegionKind.ALIGNED_HUGE: nested_walk_cost(True, True).cycles,
    RegionKind.GUEST_HUGE_ONLY: nested_walk_cost(True, False).cycles,
    RegionKind.HOST_HUGE_ONLY: nested_walk_cost(False, True).cycles,
    RegionKind.BASE_ONLY: nested_walk_cost(False, False).cycles,
}


@dataclass
class RegionClass:
    """TLB demand of one guest-virtual region: entries needed and the pages
    they cover, per kind."""

    kind: RegionKind
    entries: int
    pages: int

    @property
    def walk_cycles(self) -> float:
        return WALK_CYCLES[self.kind]


def classify_region(guest_table: PageTable, ept: PageTable, vregion: int) -> list[RegionClass]:
    """Classify guest-virtual region *vregion* into translation classes.

    A region mapped with base guest pages can span multiple classes (some
    of its GPAs behind huge EPT entries, others behind base entries), hence
    the list.
    """
    if guest_table.is_huge(vregion):
        gpregion = guest_table.huge_target(vregion)
        assert gpregion is not None
        if ept.is_huge(gpregion):
            return [
                RegionClass(RegionKind.ALIGNED_HUGE, entries=1, pages=PAGES_PER_HUGE)
            ]
        # Guest huge over splintered host backing: one 4 KiB translation
        # per host-backed page; pages not yet host-backed fault on first
        # touch and then behave the same, so count the full region.
        return [
            RegionClass(
                RegionKind.GUEST_HUGE_ONLY,
                entries=PAGES_PER_HUGE,
                pages=PAGES_PER_HUGE,
            )
        ]
    mappings = guest_table.region_items(vregion)
    if not mappings:
        return []
    host_huge = 0
    base = 0
    # Per-call memo: all pages of one guest-physical region share a single
    # is_huge answer, so probe the EPT once per region instead of per page.
    huge_memo: dict[int, bool] = {}
    for _, gpn in mappings:
        gpregion = gpn // PAGES_PER_HUGE
        is_huge = huge_memo.get(gpregion)
        if is_huge is None:
            is_huge = huge_memo[gpregion] = ept.is_huge(gpregion)
        if is_huge:
            host_huge += 1
        else:
            base += 1
    classes = []
    if host_huge:
        classes.append(
            RegionClass(RegionKind.HOST_HUGE_ONLY, entries=host_huge, pages=host_huge)
        )
    if base:
        classes.append(RegionClass(RegionKind.BASE_ONLY, entries=base, pages=base))
    return classes


@dataclass
class AlignmentReport:
    """Well-aligned huge page statistics for one VM."""

    guest_huge: int = 0
    host_huge: int = 0
    aligned_guest: int = 0
    aligned_host: int = 0

    @property
    def total_huge(self) -> int:
        return self.guest_huge + self.host_huge

    @property
    def aligned_total(self) -> int:
        return self.aligned_guest + self.aligned_host

    @property
    def well_aligned_rate(self) -> float:
        """Fraction of huge pages (both layers) that are well-aligned —
        the statistic of Tables 1, 3 and 4."""
        total = self.total_huge
        return self.aligned_total / total if total else 0.0

    def merge(self, other: "AlignmentReport") -> None:
        self.guest_huge += other.guest_huge
        self.host_huge += other.host_huge
        self.aligned_guest += other.aligned_guest
        self.aligned_host += other.aligned_host


def alignment_report(guest_table: PageTable, ept: PageTable) -> AlignmentReport:
    """Count well-aligned and mis-aligned huge pages across both layers.

    A guest huge page is well-aligned when its target guest-physical
    region is mapped by one huge EPT entry; a host huge page is
    well-aligned when some guest huge page maps onto its guest-physical
    region.
    """
    report = AlignmentReport()
    guest_targets = set()
    for _, gpregion in guest_table.huge_mappings():
        report.guest_huge += 1
        guest_targets.add(gpregion)
        if ept.is_huge(gpregion):
            report.aligned_guest += 1
    for gpregion, _ in ept.huge_mappings():
        report.host_huge += 1
        if gpregion in guest_targets:
            report.aligned_host += 1
    return report
