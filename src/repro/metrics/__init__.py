"""Metrics: cost accounting, huge-page alignment analysis, and the
performance model that converts simulation counters into the paper's
reported statistics."""

from repro.metrics.alignment import (
    AlignmentReport,
    RegionClass,
    RegionKind,
    alignment_report,
    classify_region,
)
from repro.metrics.counters import Charge, CostLedger

__all__ = [
    "AlignmentReport",
    "Charge",
    "CostLedger",
    "RegionClass",
    "RegionKind",
    "alignment_report",
    "classify_region",
]
