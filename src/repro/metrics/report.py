"""Result export: CSV and Markdown writers for experiment matrices.

The experiment harness produces nested ``results[workload][system]``
dictionaries of :class:`~repro.sim.results.RunResult`; these helpers
flatten them for spreadsheets and docs (EXPERIMENTS.md is generated with
them).
"""

from __future__ import annotations

import csv
import io
from typing import Mapping

from repro.sim.results import RunResult

__all__ = [
    "results_to_rows",
    "write_csv",
    "matrix_to_markdown",
    "series_to_csv",
    "format_cache_stats",
    "format_bench_fleet",
    "fleet_summary_rows",
    "fleet_to_markdown",
    "format_fleet_summary",
    "format_top_spans",
    "telemetry_series_to_csv",
    "format_critical_path",
    "format_histograms",
    "format_health_summary",
    "format_run_diff",
    "format_bench_compare",
]

#: RunResult properties exported by default.
DEFAULT_METRICS = [
    "throughput",
    "mean_latency",
    "p99_latency",
    "tlb_misses",
    "well_aligned_rate",
    "huge_pages",
    "bloat_pages",
]


def results_to_rows(
    results: Mapping[str, Mapping[str, RunResult]],
    metrics: list[str] | None = None,
) -> list[dict[str, object]]:
    """Flatten a results matrix into one dict per (workload, system)."""
    metrics = metrics or DEFAULT_METRICS
    rows = []
    for workload, row in results.items():
        for system, result in row.items():
            record: dict[str, object] = {"workload": workload, "system": system}
            for metric in metrics:
                record[metric] = getattr(result, metric)
            rows.append(record)
    return rows


def write_csv(
    results: Mapping[str, Mapping[str, RunResult]],
    path: str,
    metrics: list[str] | None = None,
) -> None:
    """Write the flattened matrix to *path* as CSV."""
    rows = results_to_rows(results, metrics)
    if not rows:
        raise ValueError("empty results matrix")
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def matrix_to_markdown(
    table: Mapping[str, Mapping[str, float]],
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Render a workload x system table of floats as GitHub Markdown."""
    if not table:
        return title
    systems = list(next(iter(table.values())).keys())
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| workload | " + " | ".join(systems) + " |")
    lines.append("|---" * (len(systems) + 1) + "|")
    for workload, row in table.items():
        cells = " | ".join(fmt.format(row.get(s, float("nan"))) for s in systems)
        lines.append(f"| {workload} | {cells} |")
    means = {
        s: sum(row[s] for row in table.values() if s in row) / len(table)
        for s in systems
    }
    cells = " | ".join(fmt.format(means[s]) for s in systems)
    lines.append(f"| **average** | {cells} |")
    return "\n".join(lines)


def format_cache_stats(stats) -> str:
    """One-line summary of a result cache's hit/miss accounting.

    *stats* is a :class:`repro.exec.CacheStats` (duck-typed so reports can
    be rendered without importing the executor).
    """
    return (
        f"result cache: {stats.hits} hits / {stats.misses} misses "
        f"({stats.hit_rate:.0%} hit rate), {stats.stores} results stored"
    )


def fleet_summary_rows(result) -> list[dict[str, object]]:
    """Per-host rows of a fleet run's final state.

    *result* is a :class:`repro.cluster.FleetResult` (duck-typed; this
    module must not import the cluster package, which imports metrics).
    Each row carries the host's final FMFI, utilization, VM count and
    well-aligned huge-page rate (blank when the host backs no huge
    pages).
    """
    fmfi = result.host_fmfi()
    alignment = result.alignment_distribution()
    final = {record.host: record for record in result._final_host_epochs()}
    rows: list[dict[str, object]] = []
    for host in sorted(final):
        record = final[host]
        rows.append(
            {
                "host": host,
                "vms": record.vms,
                "utilization": record.utilization,
                "fmfi": fmfi.get(host, 0.0),
                "well_aligned_rate": alignment.get(host),
            }
        )
    return rows


def fleet_to_markdown(result, title: str = "") -> str:
    """Render a fleet run's per-host state as a GitHub Markdown table."""
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| host | vms | utilization | FMFI | well-aligned |")
    lines.append("|---|---|---|---|---|")
    for row in fleet_summary_rows(result):
        aligned = row["well_aligned_rate"]
        aligned_cell = f"{aligned:.3f}" if aligned is not None else "-"
        lines.append(
            f"| {row['host']} | {row['vms']} | {row['utilization']:.2f} "
            f"| {row['fmfi']:.4f} | {aligned_cell} |"
        )
    lines.append(
        f"| **fleet** | | | {result.fleet_fmfi:.4f} "
        f"| {result.fleet_well_aligned_rate:.3f} |"
    )
    return "\n".join(lines)


def format_bench_fleet(bench: dict) -> str:
    """Markdown table of the fleet section of ``BENCH_perf.json``.

    Rendered into the CI job summary by the perf-smoke workflow, so the
    serial-versus-parallel trajectory is visible per run without digging
    the JSON artifact out.  Returns an empty string when the report
    carries no fleet section (old bench files).
    """
    fleet = bench.get("fleet")
    if not fleet:
        return ""
    serial_s = fleet.get("serial_seconds", 0.0)
    parallel_s = fleet.get("parallel_seconds", 0.0)
    lines = [
        f"**Fleet: {fleet.get('hosts', '?')} hosts x "
        f"{fleet.get('epochs', '?')} epochs** "
        f"({fleet.get('workers', '?')} workers, "
        f"{fleet.get('cores', '?')} cores, "
        f"adaptive mode: {fleet.get('parallel_mode', 'unknown')})",
        "",
        "| metric | serial | parallel |",
        "|---|---|---|",
        f"| wall clock | {serial_s:.2f} s | {parallel_s:.2f} s |",
        f"| speedup | 1.00x "
        f"| {fleet.get('speedup_parallel_vs_serial', 0.0):.2f}x |",
        "",
        "| controller IPC | bytes/epoch |",
        "|---|---|",
        f"| legacy per-event | {fleet.get('ipc_bytes_per_epoch_legacy', 0):,.0f} |",
        f"| fused batches | {fleet.get('ipc_bytes_per_epoch_fused', 0):,.0f} |",
        f"| **reduction** | **{fleet.get('ipc_reduction_factor', 0.0):,.1f}x** |",
        f"| peer-pipe payloads (total) "
        f"| {fleet.get('ipc_peer_bytes_fused', 0):,} |",
    ]
    return "\n".join(lines)


def format_fleet_summary(result) -> str:
    """Multi-line plain-text summary of a fleet run, for the CLI."""
    lines = [
        f"fleet: {result.hosts} hosts x {result.epochs} epochs, "
        f"system={result.system}, placement={result.placement}, "
        f"seed={result.seed}",
        f"  fleet FMFI           {result.fleet_fmfi:.4f}",
        f"  well-aligned rate    {result.fleet_well_aligned_rate:.3f}",
        f"  mean throughput      {result.mean_throughput:.3e} ops/cycle",
        f"  p99 latency          {result.p99_latency:.1f} cycles",
        f"  migrations           {result.migration_count} "
        f"({result.migration_pages} pages, "
        f"{result.migration_cycles:.3e} cycles)",
        f"  placement failures   {result.placement_failures}",
        "  per-host (host: vms util fmfi aligned):",
    ]
    for row in fleet_summary_rows(result):
        aligned = row["well_aligned_rate"]
        aligned_text = f"{aligned:.3f}" if aligned is not None else "-"
        lines.append(
            f"    host{row['host']}: {row['vms']:>2} "
            f"{row['utilization']:.2f} {row['fmfi']:.4f} {aligned_text}"
        )
    return "\n".join(lines)


def series_to_csv(result: RunResult) -> str:
    """Per-epoch time series of one run, as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "epoch", "throughput", "mean_latency", "p99_latency",
            "tlb_misses", "well_aligned_rate", "guest_huge_pages",
            "host_huge_pages", "fmfi_guest", "fmfi_host", "bloat_pages",
        ]
    )
    for record in result.epochs:
        perf = record.performance
        writer.writerow(
            [
                record.epoch,
                f"{perf.throughput:.6e}",
                f"{perf.mean_latency:.2f}",
                f"{perf.p99_latency:.2f}",
                f"{perf.tlb_misses:.1f}",
                f"{record.alignment.well_aligned_rate:.4f}",
                record.guest_huge_pages,
                record.host_huge_pages,
                f"{record.fmfi_guest:.3f}",
                f"{record.fmfi_host:.3f}",
                record.bloat_pages,
            ]
        )
    return buffer.getvalue()


def telemetry_series_to_csv(rows: list[Mapping[str, object]]) -> str:
    """Render :func:`repro.obs.export.timeseries_rows` output as CSV.

    Rows may carry different summary columns (controller rows have no
    FMFI, ``sim.epoch`` rows carry workload fields), so the header is
    the union: the fixed count columns first, extras sorted after.
    """
    fixed = [
        "epoch", "host", "bookings", "expirations",
        "guest_promotions", "host_promotions", "migrations",
    ]
    extras = sorted({key for row in rows for key in row} - set(fixed))
    columns = fixed + extras
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def format_top_spans(spans: Mapping[str, Mapping[str, float]], n: int = 5) -> str:
    """Markdown table of the *n* spans with the largest self time.

    *spans* is :meth:`repro.obs.Telemetry.span_stats` output (duck-typed
    ``name -> {"count", "total_s", "self_s"}``).
    """
    if not spans:
        return "no spans recorded"
    ranked = sorted(
        spans.items(), key=lambda item: (-item[1]["self_s"], item[0])
    )[:n]
    lines = [
        "| span | count | total (ms) | self (ms) |",
        "|---|---|---|---|",
    ]
    for name, stat in ranked:
        lines.append(
            f"| {name} | {int(stat['count'])} "
            f"| {stat['total_s'] * 1e3:.2f} | {stat['self_s'] * 1e3:.2f} |"
        )
    return "\n".join(lines)


def format_critical_path(report, n: int = 4) -> str:
    """Render a :class:`repro.obs.analyze.CriticalPathReport` as text.

    Top dominant-child walks first (with the share of root time each
    accounts for), then the per-span "where did the time go" self-time
    table over the matched trees.
    """
    if not report.epochs:
        return "no root spans matched"
    lines = [
        f"critical paths over {report.epochs} "
        f"{'/'.join(report.roots)} spans "
        f"({report.total_s * 1e3:.2f} ms total):"
    ]
    for path in report.paths[:n]:
        lines.append(
            f"  {path.share * 100:5.1f}%  {' > '.join(path.path)}  "
            f"({path.total_s * 1e3:.2f} ms, {path.count} epochs)"
        )
    ranked = sorted(
        report.attribution.items(),
        key=lambda item: (-item[1]["self_s"], item[0]),
    )[:n + 2]
    lines.append("where the time went (self time):")
    for name, stat in ranked:
        share = stat["self_s"] / report.total_s if report.total_s else 0.0
        lines.append(
            f"  {share * 100:5.1f}%  {name}  "
            f"({stat['self_s'] * 1e3:.2f} ms over {int(stat['count'])} spans)"
        )
    return "\n".join(lines)


def format_histograms(summary: Mapping[str, Mapping[str, float]],
                      n: int = 8) -> str:
    """Markdown table of histogram quantiles.

    *summary* is :meth:`repro.obs.Telemetry.histogram_summary` output.
    """
    if not summary:
        return "no histograms recorded"
    lines = [
        "| histogram | count | mean | p50 | p95 | p99 | max |",
        "|---|---|---|---|---|---|---|",
    ]
    for name in sorted(summary)[:n]:
        stat = summary[name]
        lines.append(
            f"| {name} | {int(stat['count'])} | {stat['mean']:.4g} "
            f"| {stat['p50']:.4g} | {stat['p95']:.4g} "
            f"| {stat['p99']:.4g} | {stat['max']:.4g} |"
        )
    return "\n".join(lines)


def format_health_summary(events) -> str:
    """One line per ``health.*`` kind found in the event stream."""
    from repro.obs.analyze import host_range_text
    from repro.obs.health import summarize_health

    summary = summarize_health(events)
    if not summary:
        return "health: no watchdog findings"
    lines = ["health findings:"]
    for kind in sorted(summary):
        entry = summary[kind]
        lines.append(
            f"  {kind}: {entry['count']} on {host_range_text(entry['hosts'])}"
        )
    return "\n".join(lines)


def format_run_diff(diff) -> str:
    """Render a :class:`repro.obs.analyze.RunDiff` for the CLI."""
    lines = [f"diff: {diff.a_label} vs {diff.b_label}"]
    if diff.deterministic_match:
        lines.append(
            "deterministic state: IDENTICAL "
            "(event streams and counters match)"
        )
    else:
        lines.append("deterministic state: DIVERGED")
        for name, value_a, value_b in diff.counter_deltas[:10]:
            lines.append(f"  counter {name}: {value_a:g} -> {value_b:g}")
        if len(diff.counter_deltas) > 10:
            lines.append(
                f"  ... {len(diff.counter_deltas) - 10} more counters"
            )
        for host in list(diff.divergence)[:10]:
            entry = diff.divergence[host]
            where = "controller" if host is None else f"host {host}"
            if entry.first_seq is not None:
                lines.append(
                    f"  events on {where}: first mismatch at seq "
                    f"{entry.first_seq} ({entry.first_kind}); "
                    f"{entry.len_a} vs {entry.len_b} events"
                )
            else:
                lines.append(
                    f"  events on {where}: "
                    f"{entry.len_a} vs {entry.len_b} events"
                )
    if diff.attributions:
        lines.append("attributed deltas:")
        for text in diff.attributions:
            lines.append(f"  {text}")
    elif not diff.span_deltas:
        lines.append(
            f"timing: span self-times within +/-{diff.threshold * 100:.0f}%"
        )
    return "\n".join(lines)


def format_bench_compare(comparison, threshold: float) -> str:
    """Render a :class:`repro.obs.bench.BenchComparison` for the CLI."""
    lines = [
        f"bench compare: {comparison.checked} gated metrics vs median of "
        f"{comparison.baseline_runs} recorded runs "
        f"(threshold {threshold * 100:.0f}%)"
    ]
    if comparison.ok:
        lines.append("no regressions beyond threshold")
    for drift in comparison.regressions:
        lines.append(
            f"  REGRESSION {drift.name}: {drift.baseline:.4g} -> "
            f"{drift.value:.4g} ({drift.drift:+.1%})"
        )
    for drift in comparison.improvements[:5]:
        lines.append(
            f"  improved {drift.name}: {drift.baseline:.4g} -> "
            f"{drift.value:.4g} ({drift.drift:+.1%})"
        )
    return "\n".join(lines)
