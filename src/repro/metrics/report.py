"""Result export: CSV and Markdown writers for experiment matrices.

The experiment harness produces nested ``results[workload][system]``
dictionaries of :class:`~repro.sim.results.RunResult`; these helpers
flatten them for spreadsheets and docs (EXPERIMENTS.md is generated with
them).
"""

from __future__ import annotations

import csv
import io
from typing import Mapping

from repro.sim.results import RunResult

__all__ = [
    "results_to_rows",
    "write_csv",
    "matrix_to_markdown",
    "series_to_csv",
    "format_cache_stats",
]

#: RunResult properties exported by default.
DEFAULT_METRICS = [
    "throughput",
    "mean_latency",
    "p99_latency",
    "tlb_misses",
    "well_aligned_rate",
    "huge_pages",
    "bloat_pages",
]


def results_to_rows(
    results: Mapping[str, Mapping[str, RunResult]],
    metrics: list[str] | None = None,
) -> list[dict[str, object]]:
    """Flatten a results matrix into one dict per (workload, system)."""
    metrics = metrics or DEFAULT_METRICS
    rows = []
    for workload, row in results.items():
        for system, result in row.items():
            record: dict[str, object] = {"workload": workload, "system": system}
            for metric in metrics:
                record[metric] = getattr(result, metric)
            rows.append(record)
    return rows


def write_csv(
    results: Mapping[str, Mapping[str, RunResult]],
    path: str,
    metrics: list[str] | None = None,
) -> None:
    """Write the flattened matrix to *path* as CSV."""
    rows = results_to_rows(results, metrics)
    if not rows:
        raise ValueError("empty results matrix")
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def matrix_to_markdown(
    table: Mapping[str, Mapping[str, float]],
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Render a workload x system table of floats as GitHub Markdown."""
    if not table:
        return title
    systems = list(next(iter(table.values())).keys())
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| workload | " + " | ".join(systems) + " |")
    lines.append("|---" * (len(systems) + 1) + "|")
    for workload, row in table.items():
        cells = " | ".join(fmt.format(row.get(s, float("nan"))) for s in systems)
        lines.append(f"| {workload} | {cells} |")
    means = {
        s: sum(row[s] for row in table.values() if s in row) / len(table)
        for s in systems
    }
    cells = " | ".join(fmt.format(means[s]) for s in systems)
    lines.append(f"| **average** | {cells} |")
    return "\n".join(lines)


def format_cache_stats(stats) -> str:
    """One-line summary of a result cache's hit/miss accounting.

    *stats* is a :class:`repro.exec.CacheStats` (duck-typed so reports can
    be rendered without importing the executor).
    """
    return (
        f"result cache: {stats.hits} hits / {stats.misses} misses "
        f"({stats.hit_rate:.0%} hit rate), {stats.stores} results stored"
    )


def series_to_csv(result: RunResult) -> str:
    """Per-epoch time series of one run, as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "epoch", "throughput", "mean_latency", "p99_latency",
            "tlb_misses", "well_aligned_rate", "guest_huge_pages",
            "host_huge_pages", "fmfi_guest", "fmfi_host", "bloat_pages",
        ]
    )
    for record in result.epochs:
        perf = record.performance
        writer.writerow(
            [
                record.epoch,
                f"{perf.throughput:.6e}",
                f"{perf.mean_latency:.2f}",
                f"{perf.p99_latency:.2f}",
                f"{perf.tlb_misses:.1f}",
                f"{record.alignment.well_aligned_rate:.4f}",
                record.guest_huge_pages,
                record.host_huge_pages,
                f"{record.fmfi_guest:.3f}",
                f"{record.fmfi_host:.3f}",
                record.bloat_pages,
            ]
        )
    return buffer.getvalue()
