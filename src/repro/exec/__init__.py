"""Parallel experiment execution and result caching.

Experiment matrices are embarrassingly parallel: every (workload, system,
config) cell is an independent, deterministic simulation.  This package
provides the execution layer the experiment harness, the CLI and the
benchmark suite share:

* :class:`Cell` / :func:`execute_cell` — a picklable unit of simulation
  work and the function that runs it;
* :func:`run_cells` — fan cells across a process pool (worker count from
  the ``workers`` argument, the ``REPRO_WORKERS`` environment variable, or
  a safe serial default) with identical results in any mode;
* :class:`ResultCache` — a content-keyed on-disk cache so repeated runs of
  the same cell under the same code version are loaded, not recomputed;
* :class:`ActorPool` — a sticky-state pool for stateful parallelism (the
  cluster engine's hosts live on their workers across epochs; only
  function calls and small results travel).
"""

from repro.exec.actors import ActorPool
from repro.exec.cache import CacheStats, ResultCache, cell_key, code_version
from repro.exec.cells import Cell, execute_cell
from repro.exec.pool import resolve_workers, run_cells

__all__ = [
    "ActorPool",
    "Cell",
    "execute_cell",
    "run_cells",
    "resolve_workers",
    "ResultCache",
    "CacheStats",
    "cell_key",
    "code_version",
]
