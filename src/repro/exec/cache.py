"""Content-keyed on-disk cache for simulation results.

A cell's cache key is a SHA-256 over everything its result depends on: the
workload and system names, every :class:`~repro.sim.config.SimulationConfig`
field, the primer factory's qualified name, and a code-version tag hashed
from the ``repro`` package sources — so editing the simulator invalidates
the whole cache instead of serving stale results.  ``batch_faults``,
``incremental_index`` and ``fast_kernels`` are excluded from the key: each
selects between two paths that produce bit-identical results by
construction (and by test), so all settings may share entries.

The cache directory comes from the ``REPRO_CACHE_DIR`` environment
variable (or an explicit :class:`ResultCache`); without it, caching is
off.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import tempfile
from dataclasses import asdict, dataclass

from repro.exec.cells import Cell
from repro.sim.results import RunResult

__all__ = ["CacheStats", "ResultCache", "cell_key", "code_version"]

_code_version: str | None = None


def code_version() -> str:
    """Digest of the ``repro`` package sources (computed once per process)."""
    global _code_version
    if _code_version is None:
        digest = hashlib.sha256()
        root = pathlib.Path(__file__).resolve().parent.parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def cell_key(cell: Cell) -> str:
    """Content key of one cell: same key == same simulation result."""
    config = asdict(cell.config)
    config.pop("batch_faults", None)
    config.pop("incremental_index", None)
    config.pop("fast_kernels", None)
    primer = None
    if cell.primer_factory is not None:
        primer = (
            f"{cell.primer_factory.__module__}:{cell.primer_factory.__qualname__}"
        )
    payload = {
        "workload": cell.workload,
        "system": cell.system,
        "config": config,
        "primer": primer,
        "code": code_version(),
    }
    raw = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(raw).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def __str__(self) -> str:
        return (
            f"{self.hits}/{self.requests} hits ({self.hit_rate:.0%}), "
            f"{self.stores} stored"
        )


class ResultCache:
    """Pickled result records under a cache directory.

    *expected* is the type a loaded entry must have to count as a hit;
    the default (:class:`RunResult`) serves the cell executor, while the
    cluster engine opens the same directory with its fleet result type —
    keys never collide because they hash disjoint payloads.
    """

    def __init__(
        self, directory: str | os.PathLike, expected: type | tuple = RunResult
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.expected = expected
        self.stats = CacheStats()

    @classmethod
    def from_env(cls, expected: type | tuple = RunResult) -> "ResultCache | None":
        """Cache at ``$REPRO_CACHE_DIR``, or None when the variable is
        unset/empty (caching disabled)."""
        directory = os.environ.get("REPRO_CACHE_DIR", "").strip()
        return cls(directory, expected=expected) if directory else None

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.stats.misses += 1
            return None
        if not isinstance(result, self.expected):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent workers may store the same key.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.stats.stores += 1
