"""Sticky-state worker pool: workers own long-lived state (actor model).

``run_cells`` ships each work item to whichever worker is free — right
for stateless cells, hopeless for the cluster engine, where every epoch
mutates the same N multi-megabyte host graphs.  Shipping hosts back and
forth every epoch costs more than stepping them.

:class:`ActorPool` fixes the economics by pinning state to workers:
``scatter`` distributes the state objects once (while they are still
small), after which every ``apply``/``map`` call sends only a function
reference plus its arguments and receives only the function's return
value — the state itself never travels.  The assignment is static
(state ``i`` lives on worker ``i % workers``), so a given state is
always mutated by the same process and results cannot depend on
scheduling.

Serial fallback is built in: with ``workers <= 1``, or when the sandbox
cannot fork, the pool keeps the states in-process and ``apply``/``map``
call the functions directly on them.  Both modes run the *same* caller
code; parallelism only changes where the mutation happens.

Functions passed to ``apply``/``map`` must be module-level (they are
pickled by reference) and take the state as their first argument.
Exceptions raised by a function are re-raised in the parent.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing.connection import Connection

from repro.exec.pool import resolve_workers

__all__ = ["ActorPool"]


def _worker_main(conn: Connection, states: dict[int, object]) -> None:
    """Child process loop: execute call batches against owned states."""
    while True:
        try:
            message = conn.recv()
        except EOFError:  # parent went away
            return
        if message is None:
            return
        kind = message[0]
        try:
            if kind == "batch":
                results = [
                    (index, fn(states[index], *args))
                    for index, fn, args in message[1]
                ]
                conn.send(("ok", results))
            elif kind == "gather":
                conn.send(("ok", sorted(states.items())))
            else:  # pragma: no cover - protocol misuse
                conn.send(("err", ValueError(f"unknown message {kind!r}")))
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            try:
                conn.send(("err", exc))
            except Exception:
                conn.send(("err", RuntimeError(repr(exc))))


class ActorPool:
    """Workers that own state objects across calls."""

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        self._local: list | None = None
        self._procs: list = []
        self._conns: list[Connection] = []
        self._owner: dict[int, int] = {}  # state index -> worker slot

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def is_local(self) -> bool:
        return self._local is not None

    def scatter(self, states: list) -> None:
        """Distribute *states*; must be called exactly once, first."""
        if self._local is not None or self._procs:
            raise RuntimeError("scatter may only be called once")
        if self.workers <= 1 or len(states) <= 1:
            self._local = list(states)
            return
        try:
            import pickle

            pickle.dumps(states)
        except Exception:
            self._local = list(states)
            return
        slots = min(self.workers, len(states))
        owned: list[dict[int, object]] = [{} for _ in range(slots)]
        for index, state in enumerate(states):
            self._owner[index] = index % slots
            owned[index % slots][index] = state
        try:
            context = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            for slot in range(slots):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=_worker_main,
                    args=(child_conn, owned[slot]),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except (OSError, PermissionError):
            # Sandboxes without process support: run everything locally.
            self.close()
            self._owner.clear()
            self._local = list(states)

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        self._conns = []
        self._procs = []

    def __enter__(self) -> "ActorPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _recv(self, conn: Connection):
        status, payload = conn.recv()
        if status == "err":
            raise payload
        return payload

    def apply(self, fn, index: int, *args):
        """Run ``fn(state[index], *args)`` on the owning worker."""
        if self._local is not None:
            return fn(self._local[index], *args)
        conn = self._conns[self._owner[index]]
        conn.send(("batch", [(index, fn, args)]))
        return self._recv(conn)[0][1]

    def map(self, fn, args_by_index: list[tuple]) -> list:
        """Run ``fn(state[i], *args_by_index[i])`` for every state, in
        parallel across workers; returns results in state order."""
        if self._local is not None:
            return [
                fn(state, *args)
                for state, args in zip(self._local, args_by_index)
            ]
        batches: list[list] = [[] for _ in self._conns]
        for index, args in enumerate(args_by_index):
            batches[self._owner[index]].append((index, fn, args))
        for conn, batch in zip(self._conns, batches):
            if batch:
                conn.send(("batch", batch))
        results: dict[int, object] = {}
        for conn, batch in zip(self._conns, batches):
            if batch:
                results.update(dict(self._recv(conn)))
        return [results[index] for index in range(len(args_by_index))]

    def gather(self) -> list:
        """Bring every state object back to the parent (state order)."""
        if self._local is not None:
            return list(self._local)
        collected: dict[int, object] = {}
        for conn in self._conns:
            conn.send(("gather",))
        for conn in self._conns:
            collected.update(dict(self._recv(conn)))
        return [collected[index] for index in sorted(collected)]
