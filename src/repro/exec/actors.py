"""Sticky-state worker pool: workers own long-lived state (actor model).

``run_cells`` ships each work item to whichever worker is free — right
for stateless cells, hopeless for the cluster engine, where every epoch
mutates the same N multi-megabyte host graphs.  Shipping hosts back and
forth every epoch costs more than stepping them.

:class:`ActorPool` fixes the economics by pinning state to workers:
``scatter`` distributes the state objects once (while they are still
small), after which every call sends only a function reference plus its
arguments and receives only the function's return value — the state
itself never travels.  The assignment is static (state ``i`` lives on
worker ``i % workers``), so a given state is always mutated by the same
process and results cannot depend on scheduling.

The hot-path API is the asynchronous ``submit``/``drain`` pair: the
caller stages one *batch* of ``(index, fn, args)`` operations — several
ops may target the same state, and they execute in batch order — and the
pool ships **one fused message per worker**, then decodes worker replies
in arrival order while the stragglers are still computing.  ``apply``
and ``map`` are thin wrappers over one submit/drain cycle.

A batch may carry one *per-worker epilogue* (``each_worker``): a
function every worker runs once over its whole state dict after the
batch, with the per-worker returns collected in :attr:`ActorPool.extras`.
Aggregations over many states (draining spooled records, say) thus cross
the pipe as one blob per worker instead of one per state.

``transfer`` separates the data plane from the control plane: moving a
payload from one state to another (a live-migrating VM, say) ships the
bulk bytes over a direct worker-to-worker pipe — or hands the object
straight across when both states share a worker — while the parent sends
only the two commands and receives only the two compact replies.  The
payload never transits the parent, so the parent's pipes (and the
``bytes_*`` counters, which measure exactly them) carry control traffic
only; data-plane bytes are tallied separately in ``peer_bytes``.

Wire format: every message and reply is an explicit
``pickle.dumps(..., pickle.HIGHEST_PROTOCOL)`` blob moved with
``send_bytes``/``recv_bytes``, so the pool can count the exact bytes
crossing the pipes (``bytes_sent``/``bytes_received``) and callers can
measure per-step IPC traffic.  Blobs above
:data:`WIRE_COMPRESS_THRESHOLD` are zlib-compressed when that makes them
smaller (a one-byte marker keeps small messages overhead-free); byte
counters always report what actually crossed the pipe.  Each reply
carries the worker's compute seconds for the batch; ``drain_window``
collects per-drain :class:`DrainStats` so callers can compare IPC
overhead against compute and call :meth:`ActorPool.retract` — pull every
state back in-process and continue locally — when parallelism cannot
win.

Serial fallback is built in: with ``workers <= 1``, or when the sandbox
cannot fork, the pool keeps the states in-process and calls the
functions directly on them.  Both modes run the *same* caller code;
parallelism only changes where the mutation happens.

Functions passed to the pool must be module-level (they are pickled by
reference) and take the state as their first argument.  Exceptions
raised by a function are re-raised in the parent; exceptions that cannot
survive the pipe (unpicklable, or unpicklable *on the parent side*) are
normalised to a ``RuntimeError`` carrying the original ``repr`` and the
worker traceback, never left to hang the protocol.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
import zlib
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait

from repro.exec.pool import resolve_workers
from repro.obs import current_context

__all__ = ["ActorPool", "DrainStats", "WIRE_COMPRESS_THRESHOLD"]

#: Smallest pickle worth attempting wire compression on.  Steady-state
#: command/reply blobs sit well below this and skip the zlib call; the
#: big wins are bulk payloads (migrating VM graphs, record spools).
WIRE_COMPRESS_THRESHOLD = 512


@dataclass(frozen=True)
class DrainStats:
    """Timing of one submit/drain cycle, for adaptive serial fallback."""

    #: Wall-clock seconds from submit to the last reply decoded.
    wall: float
    #: Per-worker compute seconds for the batch (one entry per worker
    #: that received ops; the single entry is the whole batch when the
    #: pool runs locally).
    computes: tuple[float, ...]

    @property
    def serial_estimate(self) -> float:
        """What the batch would have cost computed in-process."""
        return sum(self.computes)

    @property
    def ideal_parallel(self) -> float:
        """The batch's critical path: the slowest worker's compute."""
        return max(self.computes) if self.computes else 0.0

    @property
    def overhead(self) -> float:
        """Wall-clock not explained by compute: IPC, pickling, waiting."""
        return self.wall - self.ideal_parallel


def _dumps(obj) -> bytes:
    return pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)


def _encode_wire(blob: bytes, compress: bool) -> bytes:
    """Frame one pickle for the pipe: ``\\x00`` raw or ``\\x01`` zlib.

    Compression is attempted only above the threshold and kept only when
    it actually shrinks the blob, so small messages pay exactly one
    marker byte and incompressible ones never regress.
    """
    if compress and len(blob) > WIRE_COMPRESS_THRESHOLD:
        packed = zlib.compress(blob, 1)
        if len(packed) < len(blob):
            return b"\x01" + packed
    return b"\x00" + blob


def _decode_wire(data: bytes) -> bytes:
    if data[:1] == b"\x01":
        return zlib.decompress(data[1:])
    return data[1:]


def _portable_exception(exc: BaseException) -> BaseException:
    """An exception guaranteed to survive the pipe in *both* directions.

    A worker exception is proven picklable by round-tripping it here, in
    the worker — an exception that pickles but cannot be *unpickled*
    (e.g. an ``__init__`` with mandatory extra arguments) would otherwise
    detonate inside the parent's ``recv`` and desynchronise the
    protocol.  Anything that fails the round trip is replaced by a
    ``RuntimeError`` carrying its ``repr``; either way the worker-side
    traceback travels along as an exception note, prefixed with the
    telemetry context — which host and epoch the worker was on — so a
    fleet failure is attributable without re-running serially.
    """
    note = "worker traceback:\n" + traceback.format_exc()
    host, epoch = current_context()
    if host is not None or epoch is not None:
        note = f"worker context: host={host} epoch={epoch}\n" + note
    try:
        clone = pickle.loads(_dumps(exc))
    except Exception:
        clone = RuntimeError(f"unpicklable worker exception: {exc!r}")
    try:
        clone.add_note(note)
    except Exception:  # pragma: no cover - pre-3.11 or exotic exception
        pass
    return clone


def _worker_main(
    conn: Connection,
    states: dict[int, object],
    compress: bool,
    peers: dict[int, Connection],
) -> None:
    """Child process loop: execute fused op batches against owned states."""
    while True:
        try:
            message = pickle.loads(_decode_wire(conn.recv_bytes()))
        except EOFError:  # parent went away
            return
        if message is None:
            return
        kind = message[0]
        try:
            started = time.perf_counter()
            if kind == "batch":
                results = [
                    fn(states[index], *args) for index, fn, args in message[1]
                ]
                extra = None
                if message[2] is not None:
                    each_fn, each_args = message[2]
                    extra = each_fn(states, *each_args)
                payload = ("ok", results, extra, time.perf_counter() - started)
            elif kind == "xfer_out":
                _, index, fn, args, dst = message
                try:
                    peer_payload, reply = fn(states[index], *args)
                except BaseException:
                    # Unblock the destination before reporting the
                    # failure, or it would wait on the peer pipe forever.
                    peers[dst].send_bytes(
                        _encode_wire(_dumps(("err",)), False)
                    )
                    raise
                blob = _encode_wire(_dumps(("ok", peer_payload)), compress)
                peers[dst].send_bytes(blob)
                payload = (
                    "ok", [reply], len(blob), time.perf_counter() - started
                )
            elif kind == "xfer_in":
                _, index, fn, args, src = message
                peer_msg = pickle.loads(
                    _decode_wire(peers[src].recv_bytes())
                )
                if peer_msg[0] == "err":
                    raise RuntimeError("transfer source failed")
                reply = fn(states[index], peer_msg[1], *args)
                payload = (
                    "ok", [reply], None, time.perf_counter() - started
                )
            elif kind == "xfer_local":
                # Source and destination share this worker: hand the
                # payload object straight across, exactly like a local
                # pool would.
                _, src_index, out_fn, out_args, dst_index, in_fn, in_args = (
                    message
                )
                peer_payload, out_reply = out_fn(states[src_index], *out_args)
                in_reply = in_fn(states[dst_index], peer_payload, *in_args)
                payload = (
                    "ok",
                    [out_reply, in_reply],
                    None,
                    time.perf_counter() - started,
                )
            elif kind == "gather":
                payload = (
                    "ok",
                    sorted(states.items()),
                    None,
                    time.perf_counter() - started,
                )
            else:  # pragma: no cover - protocol misuse
                payload = ("err", ValueError(f"unknown message {kind!r}"))
            blob = _dumps(payload)
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            blob = _dumps(("err", _portable_exception(exc)))
        conn.send_bytes(_encode_wire(blob, compress))


class ActorPool:
    """Workers that own state objects across calls."""

    def __init__(
        self, workers: int | None = None, compress_wire: bool = True
    ) -> None:
        self.workers = resolve_workers(workers)
        self.compress_wire = compress_wire
        self._local: list | None = None
        self._procs: list = []
        self._conns: list[Connection] = []
        self._owner: dict[int, int] = {}  # state index -> worker slot
        #: Pending submit: (per-slot op batches, op count) in parallel
        #: mode, the raw op list in local mode.
        self._pending: tuple | None = None
        self._pending_started = 0.0
        #: Exact bytes moved over the parent's pipes (0 while running
        #: locally) — the control plane.
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Bytes moved over direct worker-to-worker pipes by
        #: :meth:`transfer` — the data plane, which never transits (or
        #: serialises on) the parent.
        self.peer_bytes = 0
        #: Per-worker epilogue returns of the last drained batch, in
        #: worker-slot order (one entry for a local pool); empty when the
        #: batch carried no ``each_worker``.
        self.extras: list = []
        #: Per-drain timing, appended by every drain; callers own the
        #: window (clear it, read it) to implement adaptive fallback.
        self.drain_window: list[DrainStats] = []
        #: Optional hook invoked with the captured worker exception just
        #: before a drain/transfer re-raises it — the flight recorder
        #: dumps its postmortem bundle here, while the pool (and the
        #: controller's telemetry) still reflect the failing batch.
        self.on_failure = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def is_local(self) -> bool:
        return self._local is not None

    def scatter(self, states: list) -> None:
        """Distribute *states*; must be called exactly once, first."""
        if self._local is not None or self._procs:
            raise RuntimeError("scatter may only be called once")
        if self.workers <= 1 or len(states) <= 1:
            self._local = list(states)
            return
        try:
            pickle.dumps(states)
        except Exception:
            self._local = list(states)
            return
        slots = min(self.workers, len(states))
        owned: list[dict[int, object]] = [{} for _ in range(slots)]
        for index, state in enumerate(states):
            self._owner[index] = index % slots
            owned[index % slots][index] = state
        try:
            context = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            # Data-plane mesh: one duplex pipe per worker pair, created
            # before any fork so every child inherits its ends.  The
            # parent uses none of them and closes its copies afterwards.
            peers: list[dict[int, Connection]] = [{} for _ in range(slots)]
            for a in range(slots):
                for b in range(a + 1, slots):
                    end_a, end_b = context.Pipe()
                    peers[a][b] = end_a
                    peers[b][a] = end_b
            for slot in range(slots):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        owned[slot],
                        self.compress_wire,
                        peers[slot],
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            for slot_peers in peers:
                for peer_conn in slot_peers.values():
                    peer_conn.close()
        except (OSError, PermissionError):
            # Sandboxes without process support: run everything locally.
            self.close()
            self._owner.clear()
            self._local = list(states)

    def retract(self) -> None:
        """Adaptive fallback: pull every state back and go local.

        After retract the pool behaves exactly like a ``workers=1`` pool
        seeded with the workers' current states — callers keep running
        the same code, mutations just happen in-process.  Results are
        unaffected: where a deterministic function runs does not change
        what it returns.
        """
        if self._local is not None:
            return
        if self._pending is not None:
            raise RuntimeError("retract with a drain pending")
        states = self.gather()
        self.close()
        self._owner.clear()
        self._local = states

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send_bytes(_encode_wire(_dumps(None), False))
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        self._conns = []
        self._procs = []

    def __enter__(self) -> "ActorPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    def _send(self, conn: Connection, message) -> None:
        data = _encode_wire(_dumps(message), self.compress_wire)
        self.bytes_sent += len(data)
        conn.send_bytes(data)

    def _recv(self, conn: Connection):
        data = conn.recv_bytes()
        self.bytes_received += len(data)
        payload = pickle.loads(_decode_wire(data))
        if payload[0] == "err":
            raise payload[1]
        return payload[1], payload[2], payload[3]

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def submit(
        self, ops: list[tuple], each_worker: tuple | None = None
    ) -> None:
        """Stage one batch of ``(index, fn, args)`` ops.

        One fused message per worker that owns any of the ops; several
        ops may target the same state and run in batch order.  Exactly
        one :meth:`drain` must follow before the next submit.

        *each_worker* — optional ``(fn, args)`` epilogue every worker
        runs once, after its ops, as ``fn(states, *args)`` over its whole
        ``{index: state}`` dict; the per-worker returns land in
        :attr:`extras` (worker-slot order) at drain time.  Workers with
        no ops in the batch still run the epilogue.
        """
        if self._pending is not None:
            raise RuntimeError("submit while a previous batch is undrained")
        self._pending_started = time.perf_counter()
        if self._local is not None:
            self._pending = ("local", list(ops), each_worker)
            return
        batches: list[list] = [[] for _ in self._conns]
        positions: list[list[int]] = [[] for _ in self._conns]
        for position, (index, fn, args) in enumerate(ops):
            slot = self._owner[index]
            batches[slot].append((index, fn, args))
            positions[slot].append(position)
        sent: list[int] = []
        for slot, (conn, batch) in enumerate(zip(self._conns, batches)):
            if batch or each_worker is not None:
                self._send(conn, ("batch", batch, each_worker))
                sent.append(slot)
        self._pending = (
            "remote", positions, len(ops), sent, each_worker is not None
        )

    def drain(self) -> list:
        """Results of the pending batch, in op order.

        Worker replies are received and decoded in *arrival* order —
        the parent aggregates one worker's output while the others are
        still stepping — and only the final placement is by op order.
        """
        if self._pending is None:
            raise RuntimeError("drain without a pending submit")
        pending, self._pending = self._pending, None
        self.extras = []
        if pending[0] == "local":
            _, ops, each_worker = pending
            started = time.perf_counter()
            results = [
                fn(self._local[index], *args) for index, fn, args in ops
            ]
            if each_worker is not None:
                each_fn, each_args = each_worker
                states = dict(enumerate(self._local))
                self.extras = [each_fn(states, *each_args)]
            compute = time.perf_counter() - started
            self.drain_window.append(
                DrainStats(wall=compute, computes=(compute,))
            )
            return results
        _, positions, count, sent, has_epilogue = pending
        results: list = [None] * count
        extras: dict[int, object] = {}
        computes: list[float] = []
        waiting = {self._conns[slot]: slot for slot in sent}
        failure: BaseException | None = None
        while waiting:
            for conn in wait(list(waiting)):
                slot = waiting.pop(conn)
                try:
                    payload, extra, seconds = self._recv(conn)
                except BaseException as exc:  # noqa: BLE001 - keep draining
                    # Drain the remaining workers before raising, so the
                    # pipes stay aligned for the caller's next batch.
                    failure = failure or exc
                    continue
                computes.append(seconds)
                extras[slot] = extra
                for position, result in zip(positions[slot], payload):
                    results[position] = result
        if has_epilogue:
            self.extras = [extras[slot] for slot in sorted(extras)]
        self.drain_window.append(
            DrainStats(
                wall=time.perf_counter() - self._pending_started,
                computes=tuple(computes),
            )
        )
        if failure is not None:
            if self.on_failure is not None:
                self.on_failure(failure)
            raise failure
        return results

    def apply(self, fn, index: int, *args):
        """Run ``fn(state[index], *args)`` on the owning worker."""
        self.submit([(index, fn, args)])
        return self.drain()[0]

    def map(self, fn, args_by_index: list[tuple]) -> list:
        """Run ``fn(state[i], *args_by_index[i])`` for every state, in
        parallel across workers; returns results in state order."""
        self.submit(
            [(index, fn, args) for index, args in enumerate(args_by_index)]
        )
        return self.drain()

    def transfer(
        self,
        source: int,
        dest: int,
        out_fn,
        out_args: tuple,
        in_fn,
        in_args: tuple,
    ) -> tuple:
        """Move a payload from one state to another, worker-to-worker.

        ``out_fn(state[source], *out_args)`` must return ``(payload,
        reply)``; the payload travels over the direct peer pipe to the
        destination worker (or is handed across in-process when both
        states share a worker), where ``in_fn(state[dest], payload,
        *in_args)`` consumes it and produces the second reply.  Returns
        ``(out_reply, in_reply)``.  Only the commands and the two replies
        touch the parent's pipes.
        """
        if self._pending is not None:
            raise RuntimeError("transfer while a batch is undrained")
        started = time.perf_counter()
        if self._local is not None:
            payload, out_reply = out_fn(self._local[source], *out_args)
            in_reply = in_fn(self._local[dest], payload, *in_args)
            compute = time.perf_counter() - started
            self.drain_window.append(
                DrainStats(wall=compute, computes=(compute,))
            )
            return out_reply, in_reply
        src_slot = self._owner[source]
        dst_slot = self._owner[dest]
        if src_slot == dst_slot:
            self._send(
                self._conns[src_slot],
                ("xfer_local", source, out_fn, out_args, dest, in_fn, in_args),
            )
            replies, _, seconds = self._recv(self._conns[src_slot])
            self.drain_window.append(
                DrainStats(
                    wall=time.perf_counter() - started, computes=(seconds,)
                )
            )
            return replies[0], replies[1]
        self._send(
            self._conns[src_slot], ("xfer_out", source, out_fn, out_args, dst_slot)
        )
        self._send(
            self._conns[dst_slot], ("xfer_in", dest, in_fn, in_args, src_slot)
        )
        roles = {self._conns[src_slot]: "out", self._conns[dst_slot]: "in"}
        replies: dict[str, object] = {}
        computes: list[float] = []
        failure: BaseException | None = None
        while roles:
            for conn in wait(list(roles)):
                role = roles.pop(conn)
                try:
                    payload, extra, seconds = self._recv(conn)
                except BaseException as exc:  # noqa: BLE001 - keep draining
                    failure = failure or exc
                    continue
                computes.append(seconds)
                if role == "out":
                    self.peer_bytes += extra
                replies[role] = payload[0]
        self.drain_window.append(
            DrainStats(
                wall=time.perf_counter() - started, computes=tuple(computes)
            )
        )
        if failure is not None:
            if self.on_failure is not None:
                self.on_failure(failure)
            raise failure
        return replies["out"], replies["in"]

    def gather(self) -> list:
        """Bring every state object back to the parent (state order)."""
        if self._local is not None:
            return list(self._local)
        collected: dict[int, object] = {}
        for conn in self._conns:
            self._send(conn, ("gather",))
        for conn in self._conns:
            items, _, _ = self._recv(conn)
            collected.update(dict(items))
        return [collected[index] for index in sorted(collected)]
