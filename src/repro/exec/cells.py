"""Experiment cells: picklable units of simulation work.

A :class:`Cell` captures everything needed to run one (workload, system,
config) simulation in any process: workload and system are referenced by
registry name, the config is a frozen dataclass, and the optional primer
is a zero-argument *factory* (a module-level function, so it pickles by
reference) rather than a workload instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.sim.config import SimulationConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.results import RunResult
    from repro.workloads.base import Workload

__all__ = ["Cell", "execute_cell"]


@dataclass(frozen=True)
class Cell:
    """One (workload, system, config) simulation, ready to ship anywhere."""

    workload: str
    system: str
    config: SimulationConfig
    primer_factory: "Callable[[], Workload] | None" = None


def execute_cell(cell: Cell) -> "RunResult":
    """Run one cell to completion; deterministic in the cell's seed."""
    from repro.sim.engine import Simulation
    from repro.workloads.suite import make_workload

    primer = cell.primer_factory() if cell.primer_factory is not None else None
    simulation = Simulation(
        make_workload(cell.workload),
        system=cell.system,
        config=cell.config,
        primer=primer,
    )
    return simulation.run_single()
