"""Process-pool execution of experiment cells.

``run_cells`` is the single execution entry point used by
``repro.experiments.common.run_matrix``, the CLI and the benchmark
harness.  Cells are independent deterministic simulations, so serial and
parallel execution produce identical result lists; the pool only changes
wall-clock time.

Worker-count resolution: the explicit ``workers`` argument wins, then the
``REPRO_WORKERS`` environment variable, then a serial default of 1.
Anything that cannot be shipped to a worker process (an unpicklable cell)
falls back to serial execution rather than failing, and batches smaller
than :data:`MIN_PARALLEL_CELLS` run serially because pool startup would
dominate (see the constant's note).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor

from repro.exec.cache import ResultCache, cell_key
from repro.exec.cells import Cell, execute_cell
from repro.sim.results import RunResult

__all__ = [
    "MIN_PARALLEL_CELLS",
    "min_parallel_threshold",
    "resolve_workers",
    "run_cells",
]

#: Smallest batch worth a process pool.  Spinning up the pool (fork,
#: executor bookkeeping, result pickling) costs on the order of a second,
#: while a typical cell runs for a comparable time — so small batches are
#: faster serial.  Measured on the benchmark matrix: the 6-cell cold run
#: took 2.6 s parallel vs 1.8 s serial.  ``REPRO_MIN_PARALLEL`` overrides
#: for experiments with unusually heavy cells.
MIN_PARALLEL_CELLS = 8


def min_parallel_threshold(default: int = MIN_PARALLEL_CELLS) -> int:
    """Smallest batch worth a pool: ``REPRO_MIN_PARALLEL`` env > *default*.

    Shared by ``run_cells`` (cells per batch) and the cluster engine
    (hosts per fleet), so one env var tunes both serial-fallback gates.
    """
    raw = os.environ.get("REPRO_MIN_PARALLEL", "").strip()
    try:
        return int(raw)
    except ValueError:
        return default


def _min_parallel() -> int:
    return min_parallel_threshold(MIN_PARALLEL_CELLS)


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: argument > ``REPRO_WORKERS`` env > 1."""
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
    return max(1, workers)


def _clone(result: RunResult) -> RunResult:
    """Fresh object for deduplicated cells, so callers never alias."""
    return pickle.loads(pickle.dumps(result))


def _run_pool(cells: list[Cell], workers: int) -> list[RunResult] | None:
    """Fan *cells* across worker processes; None means 'use serial'."""
    try:
        pickle.dumps(cells)
    except Exception:
        return None
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(cells)), mp_context=context
        ) as pool:
            return list(pool.map(execute_cell, cells))
    except (OSError, PermissionError):
        # Sandboxes without process/semaphore support: run serially.
        return None


def run_cells(
    cells: list[Cell],
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> list[RunResult]:
    """Execute every cell; returns results in cell order.

    Identical in output to running ``execute_cell`` over the list — the
    pool (``workers > 1``) and the cache only change where and whether the
    simulation actually runs.  With a cache, cached cells are loaded,
    duplicate cells within the call run once, and fresh results are
    stored.  When *cache* is None, ``REPRO_CACHE_DIR`` (if set) provides
    one.
    """
    cells = list(cells)
    if cache is None:
        cache = ResultCache.from_env()
    results: list[RunResult | None] = [None] * len(cells)

    pending: list[int] = []
    keys: dict[int, str] = {}
    first_of: dict[str, int] = {}
    duplicates: list[tuple[int, int]] = []
    for index, cell in enumerate(cells):
        if cache is None:
            pending.append(index)
            continue
        key = cell_key(cell)
        keys[index] = key
        cached = cache.get(key)
        if cached is not None:
            results[index] = cached
            continue
        if key in first_of:
            # Same cell appears twice in this batch: run it once.
            cache.stats.hits += 1
            cache.stats.misses -= 1
            duplicates.append((index, first_of[key]))
            continue
        first_of[key] = index
        pending.append(index)

    if pending:
        workers = resolve_workers(workers)
        computed = None
        if workers > 1 and len(pending) >= _min_parallel():
            computed = _run_pool([cells[i] for i in pending], workers)
        if computed is None:
            computed = [execute_cell(cells[i]) for i in pending]
        for index, result in zip(pending, computed):
            results[index] = result
            if cache is not None:
                cache.put(keys[index], result)
    for index, source in duplicates:
        results[index] = _clone(results[source])
    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]
