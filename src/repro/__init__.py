"""repro — a simulation-based reproduction of *Making Dynamic Page
Coalescing Effective on Virtualized Clouds* (Gemini, EuroSys '23).

The package builds, in pure Python, the full stack the paper's evaluation
rests on — buddy allocators, two layers of page tables (guest process
tables and the EPT), demand paging, page-coalescing policies for THP,
Ingens, HawkEye, CA-paging and Translation-Ranger, an analytic TLB and
two-dimensional page-walk model — and Gemini itself: the misaligned huge
page scanner, huge booking with Algorithm 1's adaptive timeout, the
enhanced memory allocator, the huge bucket, and the misaligned huge page
promoter.

Quick start::

    from repro import Simulation, SimulationConfig, make_workload

    result = Simulation(
        make_workload("Redis"),
        system="Gemini",
        config=SimulationConfig(fragment_guest=0.8, fragment_host=0.8),
    ).run_single()
    print(result.throughput, result.well_aligned_rate)

See ``examples/`` for runnable scenarios and ``repro.experiments`` for the
harness that regenerates every table and figure of the paper.
"""

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    FleetResult,
    run_cluster,
)
from repro.core import GeminiConfig, GeminiRuntime
from repro.hypervisor import Platform, VM
from repro.metrics.alignment import AlignmentReport, alignment_report
from repro.policies import PAPER_SYSTEMS, SYSTEMS, system_spec
from repro.sim import RunResult, Simulation, SimulationConfig, run_workload
from repro.workloads import (
    LATENCY_SUITE,
    MOTIVATION_SUITE,
    TLB_SENSITIVE_SUITE,
    Workload,
    make_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "AlignmentReport",
    "ClusterConfig",
    "ClusterSimulation",
    "FleetResult",
    "GeminiConfig",
    "GeminiRuntime",
    "LATENCY_SUITE",
    "MOTIVATION_SUITE",
    "PAPER_SYSTEMS",
    "Platform",
    "RunResult",
    "SYSTEMS",
    "Simulation",
    "SimulationConfig",
    "TLB_SENSITIVE_SUITE",
    "VM",
    "Workload",
    "alignment_report",
    "make_workload",
    "run_cluster",
    "run_workload",
    "system_spec",
    "workload_names",
    "__version__",
]
