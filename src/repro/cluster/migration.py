"""Live migration: pre-copy rounds, cost charging and EPT rebuild.

The model is iterative pre-copy (the qemu/KVM default): the whole
resident set goes over in round one while the VM keeps running, then each
round re-sends the pages dirtied during the previous round.  The dirty
set shrinks geometrically with the workload's ``dirty_fraction`` — the
share of the resident set it rewrites per round — until it fits the
downtime budget (stop-and-copy) or the round limit forces the stop.

Costs are charged through the source host's cost ledger: pre-copy page
copies run concurrently with the workload (background), stop-and-copy and
the per-round shoot-downs stall it (sync).

The destination side is where the paper's subject shows up: the EPT does
not travel.  The destination re-backs the resident set by demand-faulting
it through *its own* host policy, so the VM's huge-page alignment is
destroyed at the source and rebuilt from the destination's free-memory
state — a freshly-racked destination restores well-aligned backing, a
fragmented one leaves the VM splintered regardless of policy.

The two halves are module-level functions (:func:`migrate_out`,
:func:`migrate_in`) so the cluster engine can run each on the worker that
owns the respective host; :class:`MigrationEngine` composes them for
direct in-process use and keeps the records.
"""

from __future__ import annotations

from repro import obs
from repro.cluster.config import MigrationConfig
from repro.cluster.host import Host, HostView, Tenant, resident_pages, resident_runs
from repro.cluster.results import MigrationRecord
from repro.tlb import costs

__all__ = [
    "MigrationEngine",
    "MigrationInvariantError",
    "migrate_in",
    "migrate_out",
    "precopy_schedule",
    "resident_pages",
    "resident_runs",
]


class MigrationInvariantError(RuntimeError):
    """Page conservation violated by a migration (lost or duplicated
    pages, or source state left behind)."""


def precopy_schedule(
    resident: int, dirty_fraction: float, config: MigrationConfig
) -> tuple[int, int, int]:
    """Model the copy schedule: ``(rounds, copied_pages, downtime_pages)``.

    Round 1 copies the whole resident set; every further round re-sends
    the pages dirtied meanwhile (``resident * dirty_fraction``, then
    geometrically shrinking), until the dirty set fits the downtime
    budget or ``max_rounds`` is hit.
    """
    dirty_fraction = min(0.95, max(0.0, dirty_fraction))
    copied = resident
    rounds = 1
    dirty = int(resident * dirty_fraction)
    while dirty > config.downtime_pages and rounds < config.max_rounds:
        copied += dirty
        rounds += 1
        dirty = int(dirty * dirty_fraction)
    return rounds, copied, dirty


def migrate_out(
    host: Host, ordinal: int, config: MigrationConfig
) -> tuple[Tenant, object, list[tuple[int, int]], tuple[int, int, int], HostView]:
    """Source half: charge copy costs, detach the VM, free its frames.

    Returns ``(tenant, runtime_state, resident_runs, schedule, view)`` —
    everything the destination half and the migration record need.
    """
    # Attribute any failure (and nested emissions) to the source host;
    # the epoch is unknown here — the controller-side fleet.migrate
    # event carries it.
    obs.set_context(host=host.index)
    tenant = host.tenants[ordinal]
    vm = tenant.vm
    runs = resident_runs(vm)
    resident = sum(count for _, count in runs)
    schedule = precopy_schedule(resident, tenant.workload.dirty_fraction, config)
    rounds, copied, downtime = schedule
    obs.emit_at(
        "migration.out",
        host.index,
        None,
        ordinal=ordinal,
        resident=resident,
        rounds=rounds,
        copied=copied,
        downtime=downtime,
    )

    ledger = host.platform.host.ledger
    ledger.charge(
        "migration_precopy",
        float(costs.PAGE_COPY_CYCLES * copied),
        count=copied,
        sync=False,
    )
    ledger.charge(
        "migration_stopcopy",
        float(costs.PAGE_COPY_CYCLES * downtime),
        count=downtime,
        sync=True,
    )
    # One remote shoot-down per round: each round write-protects the
    # guest to track the next dirty set.
    ledger.charge(
        "tlb_shootdown",
        float(costs.TLB_SHOOTDOWN_CYCLES * rounds),
        count=rounds,
        sync=True,
    )

    free_before = host.platform.memory.free_pages
    tenant, state = host.detach_tenant(ordinal)
    if config.check_invariants:
        if host.platform.host.has_client(vm.id):
            raise MigrationInvariantError(
                f"host{host.index}: source still holds an EPT for vm{vm.id}"
            )
        if vm.id in host.platform.vms or vm.id in host.platform.indices:
            raise MigrationInvariantError(
                f"host{host.index}: source platform still tracks vm{vm.id}"
            )
        if host.platform.memory.free_pages < free_before:
            raise MigrationInvariantError(
                f"host{host.index}: vm{vm.id}'s source frames were not freed"
            )
    # Migrations are rare: ship a full view, which also re-baselines the
    # host's delta encoding for the next fused step.
    return tenant, state, runs, schedule, host.publish_view()


def migrate_in(
    host: Host,
    tenant: Tenant,
    state: object,
    runs: list[tuple[int, int]],
    config: MigrationConfig,
) -> HostView:
    """Destination half: adopt the VM and re-back its resident set.

    The demand faults go through this host's coalescing policy, so the
    EPT huge-page layout — and with it the VM's alignment — is rebuilt
    from the destination's memory state.
    """
    obs.set_context(host=host.index)
    obs.emit_at(
        "migration.in",
        host.index,
        None,
        ordinal=tenant.ordinal,
        pages=sum(count for _, count in runs),
    )
    host.adopt_tenant(tenant, state)
    vm = tenant.vm
    layer = host.platform.host
    if host.platform.batch_faults:
        for start, count in runs:
            layer.fault_range(vm.id, start, count)
    else:
        ept = host.platform.ept(vm.id)
        for start, count in runs:
            for gpn in range(start, start + count):
                if ept.translate(gpn) is None:
                    layer.fault(vm.id, gpn, full_region=True)
    if config.check_invariants:
        _check_destination(host, tenant, runs)
    return host.publish_view()


def _check_destination(
    host: Host, tenant: Tenant, runs: list[tuple[int, int]]
) -> None:
    """Page conservation at the destination: the resident set is intact,
    fully backed, and no two resident pages share a frame."""
    vm = tenant.vm

    def fail(what: str) -> None:
        raise MigrationInvariantError(
            f"migration of vm{vm.id} into host{host.index}: {what}"
        )

    if resident_runs(vm) != runs:
        fail("guest resident set changed across the migration")
    ept = host.platform.ept(vm.id)
    frames: set[int] = set()
    total = 0
    for start, count in runs:
        for gpn in range(start, start + count):
            hpn = ept.translate(gpn)
            if hpn is None:
                fail(f"resident gpn {gpn} unbacked at the destination")
            frames.add(hpn)
            total += 1
    if len(frames) != total:
        fail("resident pages share destination frames (duplication)")


class MigrationEngine:
    """Composes the two halves for in-process hosts; keeps the records."""

    def __init__(self, config: MigrationConfig | None = None) -> None:
        self.config = config or MigrationConfig()
        self.records: list[MigrationRecord] = []

    def migrate(
        self,
        tenant_ordinal: int,
        source: Host,
        destination: Host,
        epoch: int,
        reason: str,
    ) -> MigrationRecord:
        """Move one tenant from *source* to *destination*."""
        tenant, state, runs, schedule, _ = migrate_out(
            source, tenant_ordinal, self.config
        )
        migrate_in(destination, tenant, state, runs, self.config)
        record = build_record(
            epoch=epoch,
            ordinal=tenant_ordinal,
            source=source.index,
            destination=destination.index,
            reason=reason,
            runs=runs,
            schedule=schedule,
        )
        self.records.append(record)
        return record


def build_record(
    epoch: int,
    ordinal: int,
    source: int,
    destination: int,
    reason: str,
    schedule: tuple[int, int, int],
    runs: list[tuple[int, int]] | None = None,
    resident_pages: int | None = None,
) -> MigrationRecord:
    """Assemble the accounting record for one migration.

    The resident-set size comes from *runs* or directly from
    *resident_pages* — the fused cluster protocol ships only the sum, so
    the (possibly long) run list never crosses back to the controller.
    """
    if resident_pages is None:
        resident_pages = sum(count for _, count in runs or [])
    rounds, copied, downtime = schedule
    return MigrationRecord(
        epoch=epoch,
        ordinal=ordinal,
        source=source,
        destination=destination,
        reason=reason,
        resident_pages=resident_pages,
        rounds=rounds,
        copied_pages=copied,
        downtime_pages=downtime,
        precopy_cycles=float(costs.PAGE_COPY_CYCLES * copied),
        stopcopy_cycles=float(costs.PAGE_COPY_CYCLES * downtime),
        shootdown_cycles=float(costs.TLB_SHOOTDOWN_CYCLES * rounds),
    )
