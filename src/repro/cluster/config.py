"""Cluster (fleet) simulation configuration.

A fleet run is parameterised by one frozen :class:`ClusterConfig`, which
nests the churn, migration and consolidation knobs.  Everything the fleet
result depends on lives here (plus the code version), so a config doubles
as the content key for the on-disk result cache — mirroring how
:mod:`repro.exec.cache` keys single-host cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runtime import GeminiConfig
from repro.pressure.config import PressureConfig
from repro.sim.config import DEFAULT_TLB
from repro.tlb.model import TLBConfig

__all__ = [
    "ChurnConfig",
    "ClusterConfig",
    "ConsolidationConfig",
    "MigrationConfig",
]


@dataclass(frozen=True)
class ChurnConfig:
    """VM lifecycle generator knobs (arrivals / departures / resizes).

    The generator produces the tenancy dynamics of Section 6.3's reused
    scenario at fleet scale: VMs keep arriving, running and leaving, and
    every departure leaves allocation holes (noise objects, neighbours'
    pages) behind — the host-side fragmentation the paper measures via
    FMFI.
    """

    #: VMs placed before the first epoch.
    initial_vms: int = 8
    #: Expected arrivals per epoch (fractional part drawn per epoch).
    arrivals_per_epoch: float = 1.0
    #: Per-VM per-epoch probability of departing (after a grace epoch).
    departure_rate: float = 0.08
    #: Per-VM per-epoch probability of a balloon resize.
    resize_rate: float = 0.05
    #: Balloon delta as a fraction of the VM's guest-physical size.
    resize_fraction: float = 0.2
    #: Hard cap on concurrently live VMs.
    max_vms: int = 32
    #: Guest-physical sizes (MiB) arrivals draw from.
    guest_mib_choices: tuple[int, ...] = (128, 192, 256)
    #: Workload models arrivals draw from (see ``repro list``).
    workload_pool: tuple[str, ...] = (
        "Redis", "Memcached", "Masstree", "Xapian", "SVM", "CG.D",
    )


@dataclass(frozen=True)
class MigrationConfig:
    """Pre-copy live-migration model knobs."""

    #: Maximum pre-copy rounds before forcing stop-and-copy.
    max_rounds: int = 8
    #: Dirty-set size (pages) below which stop-and-copy is acceptable.
    downtime_pages: int = 64
    #: Verify the page-conservation invariant after every migration
    #: (source frames freed, destination covers the resident set, no
    #: duplicated frames).  Debug aid; raises MigrationInvariantError.
    check_invariants: bool = False


@dataclass(frozen=True)
class ConsolidationConfig:
    """Dynamic consolidation controller knobs.

    The controller follows OpenStack Neat's decomposition of dynamic
    consolidation into four subproblems — underload detection, overload
    detection, VM selection, and placement — applied between epochs.
    """

    #: Run a consolidation pass every N epochs (0 disables).
    every: int = 4
    #: Hosts below this utilisation are drained (all VMs migrated away).
    underload: float = 0.25
    #: Hosts above this utilisation shed VMs until they drop below it.
    overload: float = 0.9
    #: Migration budget per consolidation pass.
    max_migrations: int = 4


@dataclass(frozen=True)
class ClusterConfig:
    """All knobs of one fleet simulation."""

    #: Number of hosts in the fleet.
    hosts: int = 8
    #: Host physical memory (MiB) per host.
    host_mib: int = 768
    #: Fleet epochs (every host steps once per epoch).
    epochs: int = 16
    #: Random seed — fixes the churn trace, placement decisions, noise
    #: streams and migration schedule, identically in serial and parallel
    #: execution.
    seed: int = 42
    #: Coalescing system every host runs (see ``repro list``).
    system: str = "Gemini"
    #: Placement policy name (see ``repro.cluster.placement``).
    placement: str = "first-fit"
    #: Initial FMFI per host before any VM is placed (0 = clean hosts;
    #: churn alone fragments the fleet over time).
    fragment_host: float = 0.0
    #: Initial FMFI inside each arriving VM's guest-physical space.
    fragment_guest: float = 0.0
    #: OS allocation noise (same model as single-host runs).
    noise_rate: float = 0.03
    noise_free_fraction: float = 0.5
    #: TLB capacity model used for every tenant.
    tlb: TLBConfig = field(default_factory=lambda: DEFAULT_TLB)
    #: Multiple of a VM's guest size a host must have free for the VM to
    #: be placeable there (headroom for noise and page-table bloat; RAM
    #: is never overcommitted unless ``overcommit_ratio`` says so).
    placement_headroom: float = 1.25
    #: Commitment-based admission multiplier: hosts advertise
    #: ``total * overcommit_ratio`` placeable pages, so ratios above 1.0
    #: admit more guest-physical memory than physically exists and rely
    #: on the pressure subsystem (ballooning, KSM, swap) to absorb the
    #: difference when tenants actually touch their pages.
    overcommit_ratio: float = 1.0
    #: Batched fault delivery / incremental index (bit-identical fast
    #: paths, same flags as SimulationConfig).
    batch_faults: bool = True
    incremental_index: bool = True
    #: Profiled hot-path batch kernels (bitset frame scans, span-level
    #: map/free batches, quiescent-range touch cache, memoized TLB
    #: evaluation, incremental consolidation scores) — bit-identical to
    #: the per-frame reference paths; same flag as SimulationConfig.
    fast_kernels: bool = True
    #: Fleet IPC fast path (all bit-identical execution-strategy knobs,
    #: excluded from the result-cache key like the two flags above).
    #: ``fused_epochs`` collapses each epoch's churn ops and the step
    #: into one fused round-trip per worker; False keeps the reference
    #: one-blocking-call-per-event protocol selectable forever.
    fused_epochs: bool = True
    #: Ship ``HostView``s as changed-fields deltas (fused mode only).
    view_deltas: bool = True
    #: Drain worker-side epoch-record spools every N epochs (fused mode
    #: only); None resolves ``REPRO_SPOOL_EPOCHS`` or the default (8).
    spool_epochs: int | None = None
    #: Drop to in-process hosts when parallelism cannot win (single-core
    #: sandboxes up front, measured first-epoch IPC-vs-compute after);
    #: ``REPRO_FLEET_ADAPTIVE=0/1`` overrides.
    adaptive_parallel: bool = True
    #: zlib-compress large pool messages (migrating VM graphs, record
    #: spools); small messages stay raw.
    wire_compression: bool = True
    #: Nested knob groups.
    churn: ChurnConfig = field(default_factory=ChurnConfig)
    migration: MigrationConfig = field(default_factory=MigrationConfig)
    consolidation: ConsolidationConfig = field(default_factory=ConsolidationConfig)
    gemini: GeminiConfig = field(default_factory=GeminiConfig)
    #: Per-host memory-pressure subsystem (disabled by default; an
    #: overcommitted fleet without it will hard-OOM under load).
    pressure: PressureConfig = field(default_factory=PressureConfig)

    def __post_init__(self) -> None:
        if self.overcommit_ratio < 1.0:
            raise ValueError(
                f"overcommit_ratio below 1.0: {self.overcommit_ratio}"
            )
