"""Pluggable VM placement policies.

Placement decides which host receives an arriving (or migrating) VM.  On
long-lived clouds this decision feeds directly into the paper's problem:
hosts accumulate fragmentation as tenants churn, and a VM landed on a
host with no aligned free contiguity can never be backed by well-aligned
huge pages, no matter how hard the coalescing policy works afterwards.

Policies are registered by name in :data:`PLACEMENTS` — the same
string-keyed registry idiom as :mod:`repro.policies.registry` — and are
instantiated via :func:`make_placement`.  Every policy is deterministic
(ties break toward the lowest host index) and decides from
:class:`~repro.cluster.host.HostView` snapshots, never from live host
objects, so the controller makes identical decisions whether hosts live
in-process or on pool workers.

Feasibility is commitment-based: guests fault their memory lazily, so a
host that *looks* empty (high ``free_pages``) may be fully spoken for;
``available_pages`` is what the scheduler can still promise.

The interesting entry is :class:`AlignmentAwarePlacement`, which consults
each host's buddy allocator summary (free pages sitting in huge-aligned
blocks) and its per-VM :class:`~repro.paging.index.VMTranslationIndex`
reports (how many already-mapped huge pages are misaligned) to land the
VM where well-aligned backing is most available.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.host import HostView

__all__ = [
    "PLACEMENTS",
    "AlignmentAwarePlacement",
    "BestFitPlacement",
    "ContiguityFitPlacement",
    "FirstFitPlacement",
    "PlacementPolicy",
    "WorstFitPlacement",
    "make_placement",
    "placement_names",
]


class PlacementPolicy:
    """Base class: filter feasible hosts, then ``choose`` among them."""

    name = "base"

    def select(
        self,
        views: Sequence["HostView"],
        pages_needed: int,
        exclude: frozenset[int] = frozenset(),
    ) -> int | None:
        """Index of the chosen host, or None when no host fits."""
        # Hosts at critical memory pressure (signal saturated at 1.0) are
        # infeasible regardless of their commitment-based capacity: their
        # physical memory is exhausted and they are actively swapping.
        candidates = [
            view
            for view in views
            if view.index not in exclude
            and view.available_pages >= pages_needed
            and view.pressure < 1.0
        ]
        if not candidates:
            obs.emit_at(
                "placement.select",
                None,
                None,
                policy=self.name,
                candidates=0,
                pages_needed=pages_needed,
                chosen=None,
            )
            return None
        chosen = self.choose(candidates, pages_needed).index
        # Placement always runs on the controller; explicit attribution
        # keeps the stream identical across serial and parallel runs.
        obs.emit_at(
            "placement.select",
            None,
            None,
            policy=self.name,
            candidates=len(candidates),
            pages_needed=pages_needed,
            chosen=chosen,
        )
        return chosen

    def choose(
        self, candidates: list["HostView"], pages_needed: int
    ) -> "HostView":
        raise NotImplementedError


class FirstFitPlacement(PlacementPolicy):
    """Lowest-indexed host with room — the packing baseline."""

    name = "first-fit"

    def choose(
        self, candidates: list["HostView"], pages_needed: int
    ) -> "HostView":
        return min(candidates, key=lambda view: view.index)


class BestFitPlacement(PlacementPolicy):
    """Tightest fit: the feasible host with the least capacity left."""

    name = "best-fit"

    def choose(
        self, candidates: list["HostView"], pages_needed: int
    ) -> "HostView":
        return min(candidates, key=lambda view: (view.available_pages, view.index))


class WorstFitPlacement(PlacementPolicy):
    """Spread load: the host with the most capacity left."""

    name = "worst-fit"

    def choose(
        self, candidates: list["HostView"], pages_needed: int
    ) -> "HostView":
        return min(candidates, key=lambda view: (-view.available_pages, view.index))


class ContiguityFitPlacement(PlacementPolicy):
    """Best free contiguity: the host with the largest free region.

    A crude alignment proxy — one giant hole beats the same page count
    shredded into 4 KiB islands — but blind to alignment within the hole
    and to how fragmented the rest of the host already is.
    """

    name = "contiguity-fit"

    def choose(
        self, candidates: list["HostView"], pages_needed: int
    ) -> "HostView":
        return min(
            candidates, key=lambda view: (-view.largest_free_region, view.index)
        )


class AlignmentAwarePlacement(PlacementPolicy):
    """Place where well-aligned huge-page backing is most attainable.

    Three signals, all from the host views:

    * free pages in huge-aligned buddy blocks (the host allocator's
      region summary) — capacity for *new* aligned backing;
    * the resident VM count — the host coalescing policy's fault and
      scan budgets are per *host*, so every collocated tenant dilutes
      how fast any one VM's regions get huge backing (the khugepaged
      starvation the paper motivates with);
    * huge pages the host's translation indices already report as
      misaligned — standing misalignment marks a fragmented host whose
      coalescing is fighting uphill, and new tenants will inherit that.

    Contention dominates capacity (a starved coalescer never uses the
    contiguity it has), so the policy is lexicographic: fewest resident
    VMs first, then the largest alignment score — aligned free capacity
    minus the misalignment penalty.  With indices disabled the penalty
    term is zero and the tiebreak degrades to aligned-capacity fit.
    """

    name = "alignment-aware"

    #: Weight of one misaligned huge page against one free aligned page.
    misaligned_penalty_pages = 64
    #: Full-scale memory-pressure penalty (in free-aligned-page units): a
    #: pressured host is about to balloon/swap its way through the very
    #: contiguity the score is counting.  Zero on unpressured fleets.
    pressure_penalty_pages = 4096

    def score(self, view: "HostView") -> int:
        return (
            view.aligned_free_pages
            - self.misaligned_penalty_pages * view.misaligned_huge
            - int(self.pressure_penalty_pages * view.pressure)
        )

    def choose(
        self, candidates: list["HostView"], pages_needed: int
    ) -> "HostView":
        return min(
            candidates,
            key=lambda view: (view.vms, -self.score(view), view.index),
        )


PLACEMENTS: dict[str, type[PlacementPolicy]] = {
    policy.name: policy
    for policy in (
        FirstFitPlacement,
        BestFitPlacement,
        WorstFitPlacement,
        ContiguityFitPlacement,
        AlignmentAwarePlacement,
    )
}


def placement_names() -> list[str]:
    return list(PLACEMENTS)


def make_placement(name: str) -> PlacementPolicy:
    try:
        return PLACEMENTS[name]()
    except KeyError:
        raise ValueError(
            f"unknown placement {name!r}; choose from {', '.join(PLACEMENTS)}"
        ) from None
